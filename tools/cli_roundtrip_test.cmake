# Drives the full CLI cycle: train a tiny model, predict with it, run the
# suitability verdict. Any non-zero exit fails the test.
foreach(step
    "train;-o;${WORKDIR}/cli_model.txt;--apps;atax,gesummv;--scale;tiny"
    "predict;-m;${WORKDIR}/cli_model.txt;--app;mvt;--scale;tiny"
    "suitability;-m;${WORKDIR}/cli_model.txt;--app;mvt;--scale;tiny")
  execute_process(COMMAND ${CLI} ${step} RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "CLI step failed: ${step} (rc=${rc})")
  endif()
endforeach()
