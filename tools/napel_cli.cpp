// napel — command-line front end to the NAPEL framework.
//
//   napel list
//   napel doe <workload> [--scale tiny|bench|paper]
//   napel collect -o <csv-file> [--apps a,b,c] [--scale S] [--archs N]
//                 [--seed N] [--threads N] [--journal FILE] [--resume]
//                 [--max-failures N] [--retries N] [--backoff-ms N]
//                 [--task-deadline-ms N] [--max-sim-cycles N]
//                 [--trace-cache-mb N]
//   napel train -o <model-file> [--apps a,b,c] [--scale S] [--tune]
//               [--archs N] [--seed N] [--journal FILE] [--resume]
//               [--tune-checkpoint FILE] [--max-failures N]
//               [--split-mode exact|hist]
//   napel predict -m <model-file> --app <workload> [--scale S]
//                 [--pes N] [--freq GHZ] [--cache-lines N] [--seed N]
//   napel dse -m <model-file> --app <workload> [--scale S] [--threads N]
//             [--seed N] [-o csv-file]
//   napel suitability -m <model-file> --app <workload> [--scale S]
//   napel lint [--apps a,b] [--scale S] [--json] [--model FILE] [--csv FILE]
//              [--trace FILE] [--journal FILE] [--forest FILE [--space W]]
//              [--disable rule,rule] [--max-per-rule N]
//   napel serve -m <model-file> [--queue N] [--workers N] [--deadline-ms N]
//               [--degrade-depth N] [--degrade-trees N] [--batch N]
//               [--batch-linger-ms N] [--breaker N] [--breaker-cooldown N]
//               [--state FILE]
//
// Every command accepts --simd scalar|portable|avx2 to pin the flat-forest
// traversal kernel, overriding both the NAPEL_SIMD environment variable
// and CPU autodetection (an unavailable level falls back to the best the
// CPU supports; results are bit-identical at every level).
//
// `lint` with only artifact flags (--model/--csv/--trace/--journal/--forest)
// and no --apps skips the kernel-stream sweep and validates just the named
// artifacts; `lint --forest` additionally runs the static forest analyzer
// (src/verify/forest_analyzer.hpp) over the saved model, with the feature
// domain tightened by --space's DoE thread levels when given.
//
// `serve` answers line-delimited JSON prediction requests on stdin/stdout
// (src/serve/server.hpp) until EOF, a shutdown request, or SIGTERM/SIGINT —
// the signals drain the admission queue gracefully and exit with status 4.
// `collect`/`train` honour the same signals: in-flight DoE tasks finish and
// flush to the journal, then the run exits 4 and is resumable.
//
// Exit status: 0 on success, 1 on usage errors, 2 on runtime failures,
// 3 when `lint` found error-severity diagnostics, 4 after a graceful
// signal-initiated shutdown. The hidden --inject-crash-at N flag (CI crash
// drills) arms a fault that tears the N-th journal append and kills the
// process with exit status 42; --inject-{throw,hang,corrupt}-at N arm the
// N-th serve-time inference fault for chaos drills.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/cpuid.hpp"
#include "common/csv.hpp"
#include "common/fault_injection.hpp"
#include "common/shutdown.hpp"
#include "common/table.hpp"
#include "napel/journal.hpp"
#include "napel/model_io.hpp"
#include "napel/napel.hpp"
#include "serve/server.hpp"
#include "trace/trace_cache.hpp"
#include "trace/trace_file.hpp"
#include "verify/artifact_checks.hpp"
#include "verify/diagnostics.hpp"
#include "verify/forest_analyzer.hpp"
#include "verify/verifying_sink.hpp"

namespace {

using namespace napel;

struct Args {
  std::string command;
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;  // --key value / --flag ""
};

Args parse_args(int argc, char** argv) {
  Args a;
  if (argc >= 2) a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string s = argv[i];
    if (s.rfind("--", 0) == 0) {
      const std::string key = s.substr(2);
      const bool is_flag = key == "tune" || key == "json" || key == "resume";
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0 &&
          !is_flag) {
        a.options[key] = argv[++i];
      } else {
        a.options[key] = "";
      }
    } else if (s == "-o" || s == "-m") {
      if (i + 1 < argc) a.options[s == "-o" ? "out" : "model"] = argv[++i];
    } else {
      a.positional.push_back(std::move(s));
    }
  }
  return a;
}

workloads::Scale parse_scale(const Args& a) {
  const auto it = a.options.find("scale");
  const std::string s = it == a.options.end() ? "bench" : it->second;
  if (s == "tiny") return workloads::Scale::kTiny;
  if (s == "bench") return workloads::Scale::kBench;
  if (s == "paper") return workloads::Scale::kPaper;
  throw std::invalid_argument("unknown scale: " + s + " (tiny|bench|paper)");
}

std::uint64_t parse_u64(const Args& a, const std::string& key,
                        std::uint64_t fallback) {
  const auto it = a.options.find(key);
  return it == a.options.end() ? fallback : std::stoull(it->second);
}

double parse_double(const Args& a, const std::string& key, double fallback) {
  const auto it = a.options.find(key);
  return it == a.options.end() ? fallback : std::stod(it->second);
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

const workloads::Workload& require_app(const Args& a) {
  const auto it = a.options.find("app");
  if (it == a.options.end())
    throw std::invalid_argument("missing --app <workload>");
  if (!workloads::has_workload(it->second))
    throw std::invalid_argument("unknown workload: " + it->second);
  return workloads::workload(it->second);
}

sim::ArchConfig parse_arch(const Args& a) {
  sim::ArchConfig arch = sim::ArchConfig::paper_default();
  arch.n_pes = static_cast<unsigned>(parse_u64(a, "pes", arch.n_pes));
  arch.core_freq_ghz = parse_double(a, "freq", arch.core_freq_ghz);
  arch.cache_lines =
      static_cast<unsigned>(parse_u64(a, "cache-lines", arch.cache_lines));
  arch.validate();
  return arch;
}

int cmd_list() {
  Table t({"workload", "suite", "description"});
  for (const auto* w : workloads::all_workloads())
    t.add_row({std::string(w->name()), "paper (Table 2)",
               std::string(w->description())});
  for (const auto* w : workloads::extended_workloads())
    t.add_row({std::string(w->name()), "extended",
               std::string(w->description())});
  t.print(std::cout);
  return 0;
}

int cmd_doe(const Args& a) {
  if (a.positional.empty())
    throw std::invalid_argument("usage: napel doe <workload> [--scale S]");
  if (!workloads::has_workload(a.positional[0]))
    throw std::invalid_argument("unknown workload: " + a.positional[0]);
  const auto& w = workloads::workload(a.positional[0]);
  const auto space = w.doe_space(parse_scale(a));
  const auto configs = doe::central_composite(space);
  std::printf("%zu CCD configurations for %s:\n", configs.size(),
              a.positional[0].c_str());
  for (const auto& c : configs) std::printf("  %s\n", c.to_string().c_str());
  return 0;
}

std::vector<std::string> parse_apps(const Args& a) {
  std::vector<std::string> apps;
  if (const auto it = a.options.find("apps"); it != a.options.end()) {
    apps = split_csv(it->second);
    for (const auto& app : apps)
      if (!workloads::has_workload(app))
        throw std::invalid_argument("unknown workload: " + app);
  } else {
    for (const auto* w : workloads::all_workloads())
      apps.emplace_back(w->name());
  }
  return apps;
}

core::CollectOptions parse_collect_options(const Args& a) {
  core::CollectOptions copt;
  copt.scale = parse_scale(a);
  copt.archs_per_config = parse_u64(a, "archs", 3);
  copt.seed = parse_u64(a, "seed", 2019);
  // 0 = the process-wide pool (NAPEL_THREADS env override, hardware
  // concurrency default); results are identical at any thread count.
  copt.n_threads = static_cast<unsigned>(parse_u64(a, "threads", 0));
  copt.max_retries = parse_u64(a, "retries", 2);
  copt.retry_backoff_ms =
      static_cast<std::uint32_t>(parse_u64(a, "backoff-ms", 0));
  copt.max_failures = parse_u64(a, "max-failures", 0);
  copt.task_deadline_ms =
      static_cast<std::uint32_t>(parse_u64(a, "task-deadline-ms", 0));
  copt.sim_budget.max_cycles = parse_u64(a, "max-sim-cycles", 0);
  copt.sim_budget.max_events = parse_u64(a, "max-sim-events", 0);
  return copt;
}

/// Arms the CI crash drill: tear the N-th journal append, then die.
void arm_fault_plan(const Args& a, FaultPlan& faults) {
  if (const auto it = a.options.find("inject-crash-at"); it != a.options.end())
    faults.add({.site = "journal/append",
                .at = std::stoull(it->second),
                .kind = FaultKind::kCrash});
}

/// Runs collection for every app, wiring up the optional journal, the
/// shared trace cache, and the fault plan, and printing per-app accounting
/// (capture/replay split, replay throughput, cache hit rate,
/// resumed/retried/dropped counts).
std::vector<core::TrainingRow> run_collection(const Args& a,
                                              const std::vector<std::string>& apps,
                                              core::CollectOptions& copt,
                                              FaultPlan& faults) {
  std::unique_ptr<core::RunJournal> journal;
  if (const auto it = a.options.find("journal"); it != a.options.end()) {
    journal = core::RunJournal::open(it->second,
                                     core::collect_journal_meta(copt),
                                     a.options.contains("resume"), &faults)
                  .value_or_throw();
    copt.journal = journal.get();
  }
  if (!faults.empty()) copt.faults = &faults;

  // One trace cache across every app of the run: retried tasks replay the
  // already-captured trace instead of re-running the kernel.
  trace::TraceCache trace_cache(parse_u64(a, "trace-cache-mb", 256) << 20);
  copt.trace_cache = &trace_cache;

  std::vector<core::TrainingRow> rows;
  for (const auto& app : apps) {
    const auto stats =
        core::collect_training_data(workloads::workload(app), copt, rows);
    std::printf(
        "collected %-12s %2zu configs -> %3zu rows "
        "(%.1fs capture + %.1fs replay, %.1fM events/s, cache %2.0f%%)",
        app.c_str(), stats.n_input_configs, stats.n_rows,
        stats.capture_seconds, stats.replay_seconds,
        stats.replay_events_per_second() / 1e6, stats.cache_hit_rate() * 100);
    if (stats.n_resumed || stats.n_retries || stats.n_failed)
      std::printf("  [%zu resumed, %zu retried, %zu dropped]",
                  stats.n_resumed, stats.n_retries, stats.n_failed);
    std::printf("\n");
    for (const auto& f : stats.failures)
      std::fprintf(stderr, "warning: dropped DoE point: %s\n",
                   f.to_string().c_str());
  }
  return rows;
}

/// Shortest round-trippable decimal form of a double (deterministic).
std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

int cmd_collect(const Args& a) {
  const auto out_it = a.options.find("out");
  if (out_it == a.options.end())
    throw std::invalid_argument("missing -o <csv-file>");
  const std::vector<std::string> apps = parse_apps(a);
  core::CollectOptions copt = parse_collect_options(a);
  // Graceful SIGTERM/SIGINT: finish in-flight DoE tasks, flush the journal,
  // exit 4 (the kInterrupted error is mapped in main()).
  install_shutdown_handlers();
  copt.cancel = &shutdown_flag();
  FaultPlan faults;
  arm_fault_plan(a, faults);
  const std::vector<core::TrainingRow> rows =
      run_collection(a, apps, copt, faults);

  std::vector<std::string> headers = {
      "app",          "params",           "arch",
      "ipc",          "energy_pj_per_instr", "power_watts",
      "instructions", "sim_time_seconds", "sim_energy_joules"};
  for (const auto& name : core::model_feature_names()) headers.push_back(name);
  CsvWriter csv(std::move(headers));
  for (const auto& r : rows) {
    std::vector<std::string> cells = {
        r.app,
        r.params.to_string(),
        r.arch.to_string(),
        fmt_double(r.ipc),
        fmt_double(r.energy_pj_per_instr),
        fmt_double(r.power_watts),
        std::to_string(r.instructions),
        fmt_double(r.sim_time_seconds),
        fmt_double(r.sim_energy_joules)};
    for (const double f : r.features) cells.push_back(fmt_double(f));
    csv.add_row(std::move(cells));
  }
  csv.write_file(out_it->second);
  std::printf("wrote %zu rows (%zu apps) to %s\n", rows.size(), apps.size(),
              out_it->second.c_str());
  return 0;
}

int cmd_train(const Args& a) {
  const auto out_it = a.options.find("out");
  if (out_it == a.options.end())
    throw std::invalid_argument("missing -o <model-file>");

  const std::vector<std::string> apps = parse_apps(a);
  core::CollectOptions copt = parse_collect_options(a);
  // Validated before collection so a typo fails in milliseconds, not after
  // the full DoE sweep.
  ml::SplitMode split_mode = ml::SplitMode::kExact;
  if (const auto it = a.options.find("split-mode"); it != a.options.end())
    split_mode = ml::parse_split_mode(it->second);
  install_shutdown_handlers();
  copt.cancel = &shutdown_flag();
  FaultPlan faults;
  arm_fault_plan(a, faults);
  const std::vector<core::TrainingRow> rows =
      run_collection(a, apps, copt, faults);

  core::NapelModel model;
  core::NapelModel::Options mopt;
  mopt.tune = a.options.contains("tune");
  mopt.n_threads = copt.n_threads;
  mopt.untuned_params.n_trees = 100;
  mopt.split_mode = split_mode;
  if (const auto it = a.options.find("tune-checkpoint");
      it != a.options.end()) {
    mopt.tune_checkpoint = it->second;
    mopt.tune_resume = a.options.contains("resume");
  }
  model.train(rows, mopt);
  core::save_model_file(model, out_it->second);
  std::printf("trained on %zu rows%s; model written to %s\n", rows.size(),
              mopt.tune ? " (tuned)" : "", out_it->second.c_str());
  std::printf("out-of-bag MRE: ipc %.1f%%, power %.1f%%\n",
              100.0 * model.ipc_forest().oob_mre(),
              100.0 * model.energy_forest().oob_mre());
  return 0;
}

int cmd_predict(const Args& a) {
  const auto model_it = a.options.find("model");
  if (model_it == a.options.end())
    throw std::invalid_argument("missing -m <model-file>");
  const core::NapelModel model = core::load_model_file(model_it->second);
  const auto& w = require_app(a);
  const auto scale = parse_scale(a);
  const sim::ArchConfig arch = parse_arch(a);

  const auto input =
      workloads::WorkloadParams::test_input(w.doe_space(scale));
  const auto profile =
      core::profile_workload(w, input, parse_u64(a, "seed", 404));
  const auto pred = model.predict(profile, arch);

  std::printf("%s (%s) on %s:\n", std::string(w.name()).c_str(),
              input.to_string().c_str(), arch.to_string().c_str());
  std::printf("  predicted IPC:    %.3f\n", pred.ipc);
  std::printf("  predicted time:   %.3f us\n", pred.time_seconds * 1e6);
  std::printf("  predicted power:  %.2f W\n", pred.power_watts);
  std::printf("  predicted energy: %.3f uJ\n", pred.energy_joules * 1e6);
  std::printf("  predicted EDP:    %.4g J*s\n", pred.edp);
  return 0;
}

int cmd_record(const Args& a) {
  if (a.positional.empty())
    throw std::invalid_argument(
        "usage: napel record <workload> -o FILE [--scale S] [--seed N]");
  const auto out_it = a.options.find("out");
  if (out_it == a.options.end())
    throw std::invalid_argument("missing -o <trace-file>");
  if (!workloads::has_workload(a.positional[0]))
    throw std::invalid_argument("unknown workload: " + a.positional[0]);
  const auto& w = workloads::workload(a.positional[0]);
  const auto input =
      workloads::WorkloadParams::test_input(w.doe_space(parse_scale(a)));

  trace::Tracer t;
  trace::TraceWriter writer(out_it->second);
  t.attach(writer);
  w.run(t, input, parse_u64(a, "seed", 404));
  std::printf("recorded %llu events of %s (%s) to %s\n",
              static_cast<unsigned long long>(writer.events_written()),
              a.positional[0].c_str(), input.to_string().c_str(),
              out_it->second.c_str());
  return 0;
}

int cmd_simulate(const Args& a) {
  const auto it = a.options.find("trace");
  if (it == a.options.end())
    throw std::invalid_argument(
        "usage: napel simulate --trace FILE [--pes N] [--freq GHZ] "
        "[--cache-lines N]");
  const sim::ArchConfig arch = parse_arch(a);
  sim::NmcSimulator simulator(arch);
  const auto info = trace::replay_trace(it->second, {&simulator});
  const auto& r = simulator.result();
  std::printf("%s (%llu instructions, %u threads) on %s:\n",
              info.kernel_name.c_str(),
              static_cast<unsigned long long>(r.instructions), info.n_threads,
              arch.to_string().c_str());
  std::printf("  cycles: %llu   IPC: %.3f   time: %.3f us\n",
              static_cast<unsigned long long>(r.cycles), r.ipc,
              r.time_seconds * 1e6);
  std::printf("  L1 hit rate: %.1f%%   DRAM reads/writes: %llu/%llu\n",
              100.0 * r.l1_hit_rate(),
              static_cast<unsigned long long>(r.dram_reads),
              static_cast<unsigned long long>(r.dram_writes));
  std::printf("  energy: %.3f uJ (core %.1f%%, cache %.1f%%, dram %.1f%%, "
              "static %.1f%%)   EDP: %.4g J*s\n",
              r.energy_joules * 1e6, 100.0 * r.core_energy_j / r.energy_joules,
              100.0 * r.cache_energy_j / r.energy_joules,
              100.0 * r.dram_energy_j / r.energy_joules,
              100.0 * r.static_energy_j / r.energy_joules, r.edp);
  return 0;
}

// Design-space exploration: profile the kernel once, enumerate the default
// grid, and rank every candidate with the flat-forest inference engine.
// Output (and the optional CSV) is bit-identical at any --threads value.
int cmd_dse(const Args& a) {
  const auto model_it = a.options.find("model");
  if (model_it == a.options.end())
    throw std::invalid_argument("missing -m <model-file>");
  const core::NapelModel model = core::load_model_file(model_it->second);
  const auto& w = require_app(a);
  const auto scale = parse_scale(a);
  const auto threads = static_cast<unsigned>(parse_u64(a, "threads", 0));

  const auto input =
      workloads::WorkloadParams::test_input(w.doe_space(scale));
  const auto profile =
      core::profile_workload(w, input, parse_u64(a, "seed", 404));
  const std::vector<sim::ArchConfig> candidates =
      core::enumerate_grid(core::DseGrid{});

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<core::DsePoint> points =
      core::explore(model, profile, candidates, threads);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::printf("%s (%s): %zu candidate designs in %.3f ms (%.0f predictions/s)\n",
              std::string(w.name()).c_str(), input.to_string().c_str(),
              points.size(), secs * 1e3,
              static_cast<double>(points.size()) / secs);

  const std::vector<std::size_t> front = core::pareto_front(points);
  Table t({"design", "ipc", "ipc 10-90%", "time us", "energy uJ", "EDP J*s"});
  for (const std::size_t i : front) {
    const core::DsePoint& pt = points[i];
    char ival[64], edp[32];
    std::snprintf(ival, sizeof ival, "[%.2f, %.2f]", pt.ipc_interval.lo,
                  pt.ipc_interval.hi);
    std::snprintf(edp, sizeof edp, "%.4g", pt.pred.edp);
    char tbuf[32], ebuf[32], ibuf[32];
    std::snprintf(ibuf, sizeof ibuf, "%.3f", pt.pred.ipc);
    std::snprintf(tbuf, sizeof tbuf, "%.3f", pt.pred.time_seconds * 1e6);
    std::snprintf(ebuf, sizeof ebuf, "%.3f", pt.pred.energy_joules * 1e6);
    t.add_row({pt.arch.to_string(), ibuf, ival, tbuf, ebuf, edp});
  }
  std::printf("Pareto frontier (%zu of %zu points):\n", front.size(),
              points.size());
  t.print(std::cout);

  const core::DsePoint& best = points[core::best_edp_point(points)];
  std::printf("EDP-optimal design: %s (EDP %.4g J*s)\n",
              best.arch.to_string().c_str(), best.pred.edp);

  if (const auto out_it = a.options.find("out"); out_it != a.options.end()) {
    CsvWriter csv({"arch", "ipc", "ipc_lo", "ipc_hi", "power_watts",
                   "time_seconds", "energy_joules", "edp"});
    for (const core::DsePoint& pt : points)
      csv.add_row({pt.arch.to_string(), fmt_double(pt.pred.ipc),
                   fmt_double(pt.ipc_interval.lo),
                   fmt_double(pt.ipc_interval.hi),
                   fmt_double(pt.pred.power_watts),
                   fmt_double(pt.pred.time_seconds),
                   fmt_double(pt.pred.energy_joules),
                   fmt_double(pt.pred.edp)});
    csv.write_file(out_it->second);
    std::printf("wrote %zu design points to %s\n", points.size(),
                out_it->second.c_str());
  }
  return 0;
}

int cmd_suitability(const Args& a) {
  const auto model_it = a.options.find("model");
  if (model_it == a.options.end())
    throw std::invalid_argument("missing -m <model-file>");
  const core::NapelModel model = core::load_model_file(model_it->second);
  const auto& w = require_app(a);

  core::SuitabilityOptions sopt;
  sopt.scale = parse_scale(a);
  const hostmodel::HostModel host(sopt.scale == workloads::Scale::kBench
                                      ? hostmodel::HostConfig::bench_scaled()
                                      : hostmodel::HostConfig::paper_default());
  const auto row = core::analyze_suitability(
      w, model, host, sim::ArchConfig::paper_default(), sopt);
  std::printf("%s: host EDP %.4g, predicted NMC EDP %.4g -> reduction %.2fx "
              "(%s)\n",
              row.app.c_str(), row.host_edp, row.pred_edp,
              row.edp_reduction_pred(),
              row.nmc_suitable_pred() ? "offload to NMC" : "keep on host");
  return 0;
}

// Lints the kernel registry (and optional artifacts): every requested
// workload runs at a small problem size under verify::VerifyingSink, its
// DoE space passes the static legality checks, and any --model/--csv/--trace
// files are validated. Returns 0 when clean, 3 on error diagnostics, so CI
// can gate on a self-checking registry.
int cmd_lint(const Args& a) {
  verify::DiagnosticEngine::Options dopts;
  dopts.max_per_rule = parse_u64(a, "max-per-rule", 25);
  verify::DiagnosticEngine diags(dopts);
  if (const auto it = a.options.find("disable"); it != a.options.end())
    for (const auto& rule : split_csv(it->second))
      diags.set_rule_enabled(rule, false);

  // Lint defaults to tiny so the full registry verifies in seconds.
  const auto scale = a.options.contains("scale") ? parse_scale(a)
                                                 : workloads::Scale::kTiny;
  const std::uint64_t seed = parse_u64(a, "seed", 2019);
  const bool json = a.options.contains("json");

  // Artifact-only invocations (e.g. CI's journal or forest gates) skip the
  // kernel-stream sweep; a bare `napel lint` still verifies the registry.
  const bool artifact_only =
      !a.options.contains("apps") &&
      (a.options.contains("model") || a.options.contains("csv") ||
       a.options.contains("trace") || a.options.contains("journal") ||
       a.options.contains("forest"));

  std::vector<std::string> apps;
  if (const auto it = a.options.find("apps"); it != a.options.end()) {
    apps = split_csv(it->second);
    for (const auto& app : apps)
      if (!workloads::has_workload(app))
        throw std::invalid_argument("unknown workload: " + app);
  } else if (!artifact_only) {
    for (const auto* w : workloads::all_workloads())
      apps.emplace_back(w->name());
    for (const auto* w : workloads::extended_workloads())
      apps.emplace_back(w->name());
  }

  std::uint64_t events = 0;
  for (const auto& app : apps) {
    const auto& w = workloads::workload(app);
    const auto space = w.doe_space(scale);
    verify::check_doe_space(space, app, diags);

    trace::Tracer t;
    trace::CountingSink counts;
    verify::VerifyingSink verifier(diags, &counts);
    t.attach(verifier);
    try {
      w.run(t, workloads::WorkloadParams::central(space), seed);
    } catch (const std::exception& e) {
      diags.report(verify::Diagnostic{
          .rule = "kernel-run",
          .severity = verify::Severity::kError,
          .context = app,
          .index = -1,
          .message = std::string("kernel aborted: ") + e.what()});
    }
    events += verifier.events_seen();
  }

  if (const auto it = a.options.find("model"); it != a.options.end())
    verify::check_model_file(it->second, diags);
  if (const auto it = a.options.find("csv"); it != a.options.end())
    verify::check_csv_file(it->second, diags);
  if (const auto it = a.options.find("journal"); it != a.options.end())
    verify::check_journal_file(it->second, diags);
  if (const auto it = a.options.find("trace"); it != a.options.end())
    events += verify::check_trace_file(it->second, diags);
  if (const auto it = a.options.find("forest"); it != a.options.end()) {
    // --space tightens the feature domain with that workload's DoE thread
    // levels; without it the analyzer uses the build's default domain.
    workloads::DoeSpace space;
    const workloads::DoeSpace* space_ptr = nullptr;
    if (const auto sit = a.options.find("space"); sit != a.options.end()) {
      if (!workloads::has_workload(sit->second))
        throw std::invalid_argument("unknown workload: " + sit->second);
      space = workloads::workload(sit->second).doe_space(scale);
      space_ptr = &space;
    }
    verify::check_forest_model_file(it->second, space_ptr, diags);
  }

  if (json) {
    diags.print_json(std::cout);
  } else {
    std::printf("linted %zu kernel(s), %llu stream event(s)\n", apps.size(),
                static_cast<unsigned long long>(events));
    diags.print_text(std::cout);
  }
  return diags.ok() ? 0 : 3;
}

// Long-running prediction server: line-delimited JSON on stdin/stdout,
// bounded admission queue, deadline-bounded degraded inference with
// certified intervals, validated hot reload, circuit breaker. Exits 0 on
// EOF / {"op":"shutdown"}, 4 after a graceful SIGTERM/SIGINT drain.
int cmd_serve(const Args& a) {
  const auto model_it = a.options.find("model");
  if (model_it == a.options.end())
    throw std::invalid_argument("missing -m <model-file>");
  core::NapelModel model = core::load_model_file(model_it->second);

  serve::ServerOptions sopt;
  sopt.queue_capacity = parse_u64(a, "queue", 64);
  sopt.n_workers = static_cast<unsigned>(parse_u64(a, "workers", 1));
  sopt.default_deadline_ms =
      static_cast<std::uint32_t>(parse_u64(a, "deadline-ms", 0));
  sopt.degrade_queue_depth = parse_u64(a, "degrade-depth", 0);
  sopt.degrade_trees = parse_u64(a, "degrade-trees", 16);
  sopt.batch_max = parse_u64(a, "batch", 16);
  sopt.batch_linger_ms =
      static_cast<std::uint32_t>(parse_u64(a, "batch-linger-ms", 0));
  sopt.breaker_threshold = static_cast<int>(parse_u64(a, "breaker", 5));
  sopt.breaker_cooldown =
      static_cast<int>(parse_u64(a, "breaker-cooldown", 16));
  if (const auto it = a.options.find("state"); it != a.options.end())
    sopt.state_path = it->second;

  // Chaos-drill fault arming: the N-th predict requests misbehave (comma
  // list, so e.g. --inject-throw-at 3,4,5,6,7 can trip the breaker).
  FaultPlan faults;
  const auto arm = [&](const char* flag, FaultKind kind) {
    if (const auto it = a.options.find(flag); it != a.options.end())
      for (const std::string& at : split_csv(it->second))
        faults.add(
            {.site = "serve/infer", .at = std::stoull(at), .kind = kind});
  };
  arm("inject-throw-at", FaultKind::kThrow);
  arm("inject-hang-at", FaultKind::kHang);
  arm("inject-corrupt-at", FaultKind::kCorruptWrite);
  if (!faults.empty()) sopt.faults = &faults;

  install_shutdown_handlers();
  serve::Server server(
      sopt, serve::ServedModel::make(std::move(model), /*generation=*/1,
                                     model_it->second));
  serve::IoStreamTransport transport(std::cin, std::cout);
  return server.run(transport);
}

int usage() {
  std::fprintf(stderr,
               "usage: napel <command> [options]\n"
               "  list                               available workloads\n"
               "  doe <workload> [--scale S]         print CCD configurations\n"
               "  collect -o FILE [--apps a,b] [--scale S] [--archs N] [--threads N]\n"
               "          [--journal FILE] [--resume] [--max-failures N] [--retries N]\n"
               "          [--backoff-ms N] [--task-deadline-ms N] [--max-sim-cycles N]\n"
               "          [--trace-cache-mb N]\n"
               "          export training rows as CSV, checkpointed + resumable\n"
               "  train -o FILE [--apps a,b] [--scale S] [--tune] [--archs N]\n"
               "        [--threads N]  (0 = all cores; NAPEL_THREADS env also honoured)\n"
               "        [--journal FILE] [--resume] [--tune-checkpoint FILE]\n"
               "        [--max-failures N]   collection flags as for collect\n"
               "        [--split-mode exact|hist]   training engine (hist:\n"
               "        quantile-binned histogram splits, same seed contract)\n"
               "  predict -m FILE --app W [--pes N] [--freq GHZ] [--cache-lines N]\n"
               "  dse -m FILE --app W [--scale S] [--threads N] [--seed N] [-o CSV]\n"
               "      rank every grid design; Pareto front + EDP optimum\n"
               "  suitability -m FILE --app W [--scale S]\n"
               "  record <workload> -o FILE [--scale S]   capture a trace\n"
               "  simulate --trace FILE [--pes N] [...]   replay on a design\n"
               "  lint [--apps a,b] [--scale S] [--json] [--model FILE]\n"
               "       [--csv FILE] [--trace FILE] [--journal FILE]\n"
               "       [--forest FILE [--space W]]   static forest analysis\n"
               "       [--disable rule,rule]\n"
               "       [--max-per-rule N]   verify kernels + artifacts;\n"
               "       artifact flags alone skip the kernel sweep\n"
               "  serve -m FILE [--queue N] [--workers N] [--deadline-ms N]\n"
               "        [--degrade-depth N] [--degrade-trees N] [--batch N]\n"
               "        [--batch-linger-ms N] [--breaker N]\n"
               "        [--breaker-cooldown N] [--state FILE]\n"
               "        line-delimited JSON prediction server on stdin/stdout;\n"
               "        SIGTERM/SIGINT drain gracefully (exit 4)\n"
               "  any command: --simd scalar|portable|avx2 pins the\n"
               "        flat-forest traversal kernel (results identical)\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  try {
    // Kernel pin applies process-wide, before any command touches a
    // forest: serve, dse, predict and loao all route through the same
    // dispatch (common/cpuid.hpp), and the override outranks NAPEL_SIMD.
    if (const auto it = args.options.find("simd"); it != args.options.end())
      set_simd_level_override(parse_simd_level(it->second));
    if (args.command == "list") return cmd_list();
    if (args.command == "doe") return cmd_doe(args);
    if (args.command == "collect") return cmd_collect(args);
    if (args.command == "train") return cmd_train(args);
    if (args.command == "predict") return cmd_predict(args);
    if (args.command == "dse") return cmd_dse(args);
    if (args.command == "suitability") return cmd_suitability(args);
    if (args.command == "record") return cmd_record(args);
    if (args.command == "simulate") return cmd_simulate(args);
    if (args.command == "lint") return cmd_lint(args);
    if (args.command == "serve") return cmd_serve(args);
    return usage();
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const PipelineException& e) {
    if (e.error().kind == ErrorKind::kInterrupted) {
      // Graceful signal-initiated shutdown: the journal holds the completed
      // prefix, a --resume run picks up the rest.
      std::fprintf(stderr, "interrupted: %s\n",
                   e.error().to_string().c_str());
      return kShutdownExitCode;
    }
    std::fprintf(stderr, "fatal: %s\n", e.what());
    return 2;
  } catch (const InjectedCrash& e) {
    // CI crash drill: die the way SIGKILL would — no unwinding, no flushes
    // beyond what the torn write already fsynced.
    std::fprintf(stderr, "injected crash: %s\n", e.what());
    std::_Exit(42);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fatal: %s\n", e.what());
    return 2;
  }
}
