# DSE determinism drill: train a tiny model, explore the design grid at one
# thread and at four, and require byte-identical CSVs — the flat-forest
# engine's bit-identical-at-any-thread-count contract, end to end.
foreach(step
    "train;-o;${WORKDIR}/cli_dse_model.txt;--apps;atax,gesummv;--scale;tiny"
    "dse;-m;${WORKDIR}/cli_dse_model.txt;--app;mvt;--scale;tiny;--threads;1;-o;${WORKDIR}/cli_dse_t1.csv"
    "dse;-m;${WORKDIR}/cli_dse_model.txt;--app;mvt;--scale;tiny;--threads;4;-o;${WORKDIR}/cli_dse_t4.csv")
  execute_process(COMMAND ${CLI} ${step} RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "CLI step failed: ${step} (rc=${rc})")
  endif()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORKDIR}/cli_dse_t1.csv ${WORKDIR}/cli_dse_t4.csv
  RESULT_VARIABLE cmp_rc)
if(NOT cmp_rc EQUAL 0)
  message(FATAL_ERROR "DSE CSV differs between --threads 1 and --threads 4")
endif()
