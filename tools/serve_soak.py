#!/usr/bin/env python3
"""Chaos soak for `napel serve`: scripted client + kill-and-restart drill.

Drives a live server process through a deterministic request mix (healthy
predicts, zero-deadline predicts, malformed lines, wrong-shape requests,
stats probes, hot reloads against both a valid and a corrupted candidate)
while serve-time faults armed via --inject-throw-at / --inject-corrupt-at
fire mid-soak. The contract checked is the serving runtime's availability
invariant, not exact bytes (shedding depends on worker timing):

  * every input line yields exactly one line-delimited JSON response;
  * every response parses and carries "ok";
  * degraded responses carry certified intervals that contain the value;
  * a corrupted reload candidate is rejected while serving continues on
    the old generation; a valid candidate bumps the generation;
  * SIGTERM mid-stream drains in-flight requests, acks shutdown last, and
    exits with the dedicated status 4; a restart serves again.

Usage: serve_soak.py --cli <napel-binary> --workdir <dir> [--duration 10]
Exit 0 on a clean soak, 1 on any violated invariant.
"""

import argparse
import json
import signal
import subprocess
import sys
import threading
import time


def fail(msg):
    print(f"SOAK FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def train_model(cli, path):
    rc = subprocess.run(
        [cli, "train", "-o", path, "--apps", "atax", "--scale", "tiny",
         "--archs", "2"],
        stdout=subprocess.DEVNULL).returncode
    if rc != 0:
        fail(f"train exited {rc}")


def model_n_features(path):
    with open(path) as f:
        header = f.readline().split()
    if len(header) < 2 or header[0] != "napel-model-v2":
        fail(f"unexpected model header: {header}")
    return int(header[1])


def corrupt_model(src, dst):
    """Rewrite the certified-bounds line: the forest analyzer must reject."""
    with open(src) as f:
        lines = f.readlines()
    lines[1] = "bounds 0 0 0 0\n"
    with open(dst, "w") as f:
        f.writelines(lines)


def start_server(cli, model, extra):
    return subprocess.Popen(
        [cli, "serve", "-m", model] + extra,
        stdin=subprocess.PIPE, stdout=subprocess.PIPE, text=True,
        bufsize=1)


def predict_line(i, n_features, deadline_ms=None):
    req = {"op": "predict", "id": f"s{i}",
           "features": [((i * 7 + j) % 13) / 13.0 for j in range(n_features)]}
    if deadline_ms is not None:
        req["deadline_ms"] = deadline_ms
    return json.dumps(req)


def check_response(line, ctx):
    try:
        resp = json.loads(line)
    except json.JSONDecodeError as e:
        fail(f"{ctx}: unparseable response {line!r}: {e}")
    if "ok" not in resp:
        fail(f"{ctx}: response without ok: {line!r}")
    if resp.get("ok") and resp.get("mode") == "degraded":
        for metric, interval in (("ipc", "ipc_interval"),
                                 ("power_watts", "power_interval")):
            iv = resp[interval]
            if not (iv["lo"] <= resp[metric] <= iv["hi"]):
                fail(f"{ctx}: degraded {metric} {resp[metric]} escapes "
                     f"certified interval [{iv['lo']}, {iv['hi']}]")
    return resp


def soak_round(proc, lines, ctx):
    """Write a batch, read exactly one response per line, validate each."""
    responses = []
    got = []

    def reader():
        for _ in lines:
            got.append(proc.stdout.readline())

    t = threading.Thread(target=reader)
    t.start()
    for line in lines:
        proc.stdin.write(line + "\n")
    proc.stdin.flush()
    t.join(timeout=30)
    if t.is_alive():
        fail(f"{ctx}: server answered {len(got)} of {len(lines)} requests")
    for i, line in enumerate(got):
        if not line:
            fail(f"{ctx}: server closed stdout early ({i}/{len(lines)})")
        responses.append(check_response(line.strip(), f"{ctx}[{i}]"))
    return responses


def chaos_phase(args, model, bad_model, n_features):
    proc = start_server(args.cli, model, [
        "--queue", "8", "--degrade-depth", "4", "--degrade-trees", "4",
        "--breaker", "3", "--breaker-cooldown", "2",
        "--inject-throw-at", "5,6,7", "--inject-corrupt-at", "40",
        "--state", f"{args.workdir}/soak_state.txt",
    ])
    deadline = time.monotonic() + args.duration
    seq = 0
    rounds = 0
    counts = {"full": 0, "degraded": 0, "error": 0}
    try:
        while time.monotonic() < deadline or rounds < 3:
            batch = []
            for _ in range(40):
                if seq % 11 == 3:
                    batch.append(predict_line(seq, n_features, deadline_ms=0))
                elif seq % 17 == 5:
                    batch.append('{"op":"predict"}')  # wrong shape
                elif seq % 23 == 7:
                    batch.append("{not json")
                else:
                    batch.append(predict_line(seq, n_features))
                seq += 1
            for resp in soak_round(proc, batch, f"round{rounds}"):
                if resp.get("ok"):
                    counts[resp.get("mode", "full")] += 1
                else:
                    counts["error"] += 1

            # Interleave control-plane traffic: stats, then a reload that
            # must be rejected, then one that must succeed.
            (stats,) = soak_round(proc, ['{"op":"stats"}'], "stats")
            if not stats.get("ok"):
                fail(f"stats failed: {stats}")
            (rej,) = soak_round(
                proc, [json.dumps({"op": "reload", "model": bad_model})],
                "reload-reject")
            if rej.get("ok") or rej.get("error", {}).get("kind") != \
                    "model-reload-rejected":
                fail(f"corrupted reload not rejected: {rej}")
            (okr,) = soak_round(
                proc, [json.dumps({"op": "reload", "model": model})],
                "reload-ok")
            if not okr.get("ok"):
                fail(f"valid reload rejected: {okr}")
            rounds += 1
    finally:
        proc.stdin.close()
        rc = proc.wait(timeout=30)
    if rc != 0:
        fail(f"chaos server exited {rc}, want 0 on EOF")
    if counts["error"] == 0 or counts["degraded"] == 0:
        fail(f"soak mix never exercised faults/degradation: {counts}")
    print(f"chaos phase: {rounds} rounds, {seq} requests, mix {counts}")


def kill_drill(args, model, n_features):
    proc = start_server(args.cli, model, ["--queue", "8"])
    soak_round(proc, [predict_line(i, n_features) for i in range(5)],
               "pre-kill")
    proc.send_signal(signal.SIGTERM)
    tail = proc.stdout.read()  # drained responses + shutdown ack
    rc = proc.wait(timeout=30)
    if rc != 4:
        fail(f"SIGTERM drain exited {rc}, want 4")
    last = tail.strip().splitlines()[-1] if tail.strip() else ""
    if last:
        ack = check_response(last, "shutdown-ack")
        if ack.get("op") != "shutdown":
            fail(f"last drained line is not the shutdown ack: {last!r}")
    # Restart drill: a fresh process over the same model serves again.
    proc = start_server(args.cli, model, [])
    resp = soak_round(proc, [predict_line(99, n_features)], "post-restart")[0]
    if not resp.get("ok"):
        fail(f"restarted server refused a healthy predict: {resp}")
    proc.stdin.close()
    rc = proc.wait(timeout=30)
    if rc != 0:
        fail(f"restarted server exited {rc}")
    print("kill-and-restart drill: drain acked, exit 4, restart serves")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--cli", required=True)
    ap.add_argument("--workdir", required=True)
    ap.add_argument("--duration", type=float, default=10.0)
    args = ap.parse_args()

    model = f"{args.workdir}/soak_model.txt"
    bad_model = f"{args.workdir}/soak_model_corrupt.txt"
    train_model(args.cli, model)
    n_features = model_n_features(model)
    corrupt_model(model, bad_model)

    chaos_phase(args, model, bad_model, n_features)
    kill_drill(args, model, n_features)
    print("SOAK PASS")


if __name__ == "__main__":
    main()
