# Kill-and-resume drill for the journaled collection pipeline, run end to
# end through the CLI:
#   1. reference run (no journal, 4 threads) -> ref.csv
#   2. journaled run killed mid-append (--inject-crash-at) -> exit 42
#   3. `napel lint --journal` accepts the torn tail as crash debris (rc 0)
#   4. resumed run at a different thread count -> resumed.csv
#   5. resumed.csv must equal ref.csv byte for byte; the journal lints clean
set(common --apps atax,mvt --scale tiny --seed 7 --archs 2)
set(journal ${WORKDIR}/cli_resume.journal)

execute_process(
  COMMAND ${CLI} collect ${common} --threads 4 -o ${WORKDIR}/cli_resume_ref.csv
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "reference collect failed (rc=${rc})")
endif()

execute_process(
  COMMAND ${CLI} collect ${common} --threads 4 --journal ${journal}
          --inject-crash-at 4 -o ${WORKDIR}/cli_resume_crash.csv
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 42)
  message(FATAL_ERROR "crash run should exit 42, got rc=${rc}")
endif()

execute_process(COMMAND ${CLI} lint --journal ${journal} RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "lint should warn (not fail) on a torn tail (rc=${rc})")
endif()

execute_process(
  COMMAND ${CLI} collect ${common} --threads 1 --journal ${journal} --resume
          -o ${WORKDIR}/cli_resume_resumed.csv
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "resumed collect failed (rc=${rc})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORKDIR}/cli_resume_ref.csv ${WORKDIR}/cli_resume_resumed.csv
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "resumed CSV differs from the uninterrupted reference")
endif()

execute_process(COMMAND ${CLI} lint --journal ${journal} RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "post-resume journal should lint clean (rc=${rc})")
endif()
