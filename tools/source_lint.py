#!/usr/bin/env python3
"""Source determinism lint for the NAPEL tree.

The whole pipeline rests on bit-exact reproducibility: training rows,
trace replays, tuned models and DSE rankings must be identical across
runs, machines and build times. That dies the moment any source file
reaches for ambient entropy, so this lint bans the hazards outright:

  std-rand        std::rand / rand / srand — hidden global RNG state
  wall-clock-seed time(...) — wall-clock reads used as seeds or inputs
                  (std::chrono is fine for *measuring*; time() is the
                  classic seed idiom and has no other use in this tree)
  random-device   std::random_device — per-run hardware entropy
  build-stamp     __DATE__ / __TIME__ / __TIMESTAMP__ — binaries that
                  differ by build time break artifact comparison
  raw-intrinsics  _mm*/__m256/immintrin.h outside the dedicated SIMD
                  translation unit — vector code must live in the one TU
                  built with -mavx2 behind runtime dispatch (scattering
                  intrinsics lets the compiler emit AVX2 in code paths
                  that run on CPUs without it, and dodges the kernels'
                  bit-identity contract)
  raw-bin-codes   BinnedDataset code/edge accessors outside the binning
                  and histogram-split TUs — bin codes are a lossy private
                  encoding of the training matrix; a consumer doing its
                  own bin arithmetic silently couples itself to the
                  binner's quantile layout and breaks the exact/hist
                  equivalence contract (everything else consumes the
                  engine through DecisionTree/RandomForest split_mode)

A line can opt out with an inline justification marker:

    std::random_device rd;  // napel-lint: allow(random-device) <why>

Scans src/ and tools/ (C++ sources and headers). Exit status: 0 clean,
1 findings, 2 usage error. Wired into CI next to clang-tidy; also
callable on an explicit file list: source_lint.py [paths...].
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCAN_DIRS = ("src", "tools")
CPP_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".h"}

# rule id -> (compiled pattern, human explanation)
# Patterns use a lookbehind so `mytime(` or `x.rand(` never match; matches
# inside comments and string literals are stripped before scanning.
RULES = {
    "std-rand": (
        re.compile(r"(?<![\w.:])(?:std::)?s?rand\s*\("),
        "C rand()/srand() uses hidden global state; use common/rng.hpp "
        "with an explicit seed",
    ),
    "wall-clock-seed": (
        re.compile(r"(?<![\w.:])(?:std::)?time\s*\("),
        "wall-clock time() makes runs irreproducible; seeds must be "
        "explicit constants or CLI inputs",
    ),
    "random-device": (
        re.compile(r"std::random_device"),
        "hardware entropy differs per run; construct RNGs from explicit "
        "seeds only",
    ),
    "build-stamp": (
        re.compile(r"__(?:DATE|TIME|TIMESTAMP)__"),
        "build-time stamps make binaries differ by build; derive any "
        "versioning from source, not the clock",
    ),
    "raw-intrinsics": (
        re.compile(r"(?<!\w)(?:_mm\d*_\w+|__m(?:128|256|512)[a-z]*|"
                   r"(?:imm|x86|avx)intrin\.h)"),
        "x86 intrinsics belong in the dedicated SIMD TU "
        "(src/ml/flat_forest_simd_avx2.cpp) built with -mavx2 behind "
        "runtime dispatch; see forest_kernels.hpp for the kernel contract",
    ),
    "raw-bin-codes": (
        re.compile(r"\.codes\s*\(|(?<!\w)(?:bin_upper_edge|bin_offset|"
                   r"total_bins|BinCode|kMaxBins)\b"),
        "raw bin-code arithmetic is confined to ml/binned_dataset.* and "
        "ml/hist_split.*; consume the histogram engine through the "
        "split_mode knob on DecisionTree/RandomForest instead",
    ),
}

# rule id -> repo-relative paths where the hazard is the point of the file.
RULE_EXEMPT_PATHS = {
    "raw-intrinsics": {"src/ml/flat_forest_simd_avx2.cpp"},
    "raw-bin-codes": {
        "src/ml/binned_dataset.hpp",
        "src/ml/binned_dataset.cpp",
        "src/ml/hist_split.hpp",
        "src/ml/hist_split.cpp",
    },
}

ALLOW = re.compile(r"napel-lint:\s*allow\(([a-z-]+)\)")

STRING_OR_CHAR = re.compile(r'"(?:[^"\\]|\\.)*"|\'(?:[^\'\\]|\\.)*\'')
LINE_COMMENT = re.compile(r"//.*$")


def strip_noise(line: str, in_block_comment: bool) -> tuple[str, bool]:
    """Blanks string/char literals and comments so patterns only see code.

    Tracks /* */ state across lines; returns (code, still_in_block).
    """
    out = []
    i = 0
    if not in_block_comment:
        line = STRING_OR_CHAR.sub('""', line)
    while i < len(line):
        if in_block_comment:
            end = line.find("*/", i)
            if end < 0:
                return "".join(out), True
            i = end + 2
            in_block_comment = False
        else:
            start = line.find("/*", i)
            if start < 0:
                out.append(line[i:])
                break
            out.append(line[i:start])
            i = start + 2
            in_block_comment = True
    code = LINE_COMMENT.sub("", "".join(out))
    return code, in_block_comment


def lint_file(path: Path) -> list[str]:
    findings = []
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        return [f"{path}: unreadable: {e}"]
    rel = (
        path.relative_to(REPO_ROOT)
        if path.is_relative_to(REPO_ROOT)
        else path
    )
    exempt_rules = {
        rule
        for rule, paths in RULE_EXEMPT_PATHS.items()
        if str(rel) in paths
    }
    in_block = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        allowed = set(ALLOW.findall(raw))
        code, in_block = strip_noise(raw, in_block)
        for rule, (pattern, why) in RULES.items():
            if (
                rule in allowed
                or rule in exempt_rules
                or not pattern.search(code)
            ):
                continue
            findings.append(
                f"{rel}:{lineno}: [{rule}] {why}\n    {raw.strip()}"
            )
    return findings


def main(argv: list[str]) -> int:
    if argv:
        files = [Path(a).resolve() for a in argv]
        missing = [f for f in files if not f.is_file()]
        if missing:
            print(f"error: no such file: {missing[0]}", file=sys.stderr)
            return 2
    else:
        files = sorted(
            p
            for d in SCAN_DIRS
            for p in (REPO_ROOT / d).rglob("*")
            if p.suffix in CPP_SUFFIXES and p.is_file()
        )
    findings = []
    for f in files:
        findings.extend(lint_file(f))
    for finding in findings:
        print(finding)
    print(
        f"source-lint: {len(files)} file(s), {len(findings)} finding(s)",
        file=sys.stderr,
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
