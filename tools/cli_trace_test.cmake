foreach(step
    "record;atax;-o;${WORKDIR}/cli_trace.bin;--scale;tiny"
    "simulate;--trace;${WORKDIR}/cli_trace.bin"
    "simulate;--trace;${WORKDIR}/cli_trace.bin;--pes;8;--cache-lines;16")
  execute_process(COMMAND ${CLI} ${step} RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "CLI step failed: ${step} (rc=${rc})")
  endif()
endforeach()
