# Trains a tiny model, then requires the static forest analyzer to certify
# it clean: `lint --forest` exits 3 on any error-severity diagnostic
# (broken arena, bounds drift, schema mismatch), so a genuine freshly
# trained model must come back 0 — in both text and JSON modes, and with
# the DoE-space-tightened feature domain.
execute_process(
  COMMAND ${CLI} train -o ${WORKDIR}/forest_lint_model.txt
          --apps atax --scale tiny --archs 4
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "train failed (rc=${rc})")
endif()
foreach(step
    "lint;--forest;${WORKDIR}/forest_lint_model.txt"
    "lint;--forest;${WORKDIR}/forest_lint_model.txt;--space;atax"
    "lint;--forest;${WORKDIR}/forest_lint_model.txt;--json")
  execute_process(COMMAND ${CLI} ${step} RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "forest lint not clean: ${step} (rc=${rc})")
  endif()
endforeach()
# A truncated copy must be rejected with a dedicated diagnostic (exit 3).
file(READ ${WORKDIR}/forest_lint_model.txt model_text)
string(LENGTH "${model_text}" full_len)
math(EXPR half_len "${full_len} / 2")
string(SUBSTRING "${model_text}" 0 ${half_len} half_text)
file(WRITE ${WORKDIR}/forest_lint_model_truncated.txt "${half_text}")
execute_process(
  COMMAND ${CLI} lint --forest ${WORKDIR}/forest_lint_model_truncated.txt
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 3)
  message(FATAL_ERROR "truncated model not rejected (rc=${rc})")
endif()
