// NMC-suitability analysis (the paper's Section 3.4 use case): train NAPEL,
// then decide — without further simulation of the candidate — whether
// offloading a workload to the NMC system beats the host CPU on
// energy-delay product.
//
// Usage: nmc_suitability [workload ...]
//        (default: bfs gesummv bp trmm)
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "napel/napel.hpp"

int main(int argc, char** argv) {
  using namespace napel;

  std::vector<std::string> targets = {"bfs", "gesummv", "bp", "trmm"};
  if (argc > 1) {
    targets.assign(argv + 1, argv + argc);
    for (const auto& t : targets) {
      if (!workloads::has_workload(t)) {
        std::fprintf(stderr, "unknown workload: %s\n", t.c_str());
        return 1;
      }
    }
  }

  // Train on every application except the analysis targets, so the verdict
  // is a genuine previously-unseen-application prediction.
  core::CollectOptions copt;
  copt.scale = workloads::Scale::kTiny;
  copt.archs_per_config = 2;
  std::vector<core::TrainingRow> rows;
  for (const auto* w : workloads::all_workloads()) {
    const bool is_target =
        std::find(targets.begin(), targets.end(), std::string(w->name())) !=
        targets.end();
    if (!is_target) core::collect_training_data(*w, copt, rows);
  }
  std::printf("trained on %zu rows from %zu non-target applications\n",
              rows.size(), 12 - targets.size());

  core::NapelModel model;
  core::NapelModel::Options mopt;
  mopt.tune = false;
  mopt.untuned_params.n_trees = 60;
  model.train(rows, mopt);

  const hostmodel::HostModel host;
  const auto arch = sim::ArchConfig::paper_default();
  core::SuitabilityOptions sopt;
  sopt.scale = workloads::Scale::kTiny;

  Table t({"workload", "host EDP (nJ*s)", "NMC EDP pred (nJ*s)",
           "EDP reduction", "verdict"});
  for (const auto& name : targets) {
    const auto row = core::analyze_suitability(workloads::workload(name),
                                               model, host, arch, sopt);
    t.add_row({row.app, Table::fmt(row.host_edp * 1e18, 1),
               Table::fmt(row.pred_edp * 1e18, 1),
               Table::fmt(row.edp_reduction_pred(), 2) + "x",
               row.nmc_suitable_pred() ? "offload to NMC" : "keep on host"});
  }
  t.print(std::cout);
  return 0;
}
