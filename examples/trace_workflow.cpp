// Trace-driven workflow (§3.1 of the paper: traces are collected once and
// fed to the simulator): record a kernel's instruction trace to a file,
// then replay the same file through several architecture configurations —
// and through the profiler — without re-executing the kernel.
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "napel/napel.hpp"
#include "trace/trace_file.hpp"

int main() {
  using namespace napel;

  const char* path = "/tmp/napel_example_trace.bin";
  const auto& w = workloads::workload("gesummv");
  const auto space = w.doe_space(workloads::Scale::kTiny);
  const auto input = workloads::WorkloadParams::test_input(space);

  // 1. Record: one kernel execution, streamed to disk.
  {
    trace::Tracer t;
    trace::TraceWriter writer(path);
    t.attach(writer);
    w.run(t, input, 7);
    std::printf("recorded %llu instruction events to %s\n",
                static_cast<unsigned long long>(writer.events_written()),
                path);
  }

  // 2. Replay through the profiler (phase-1 analysis without the kernel).
  profiler::ProfileBuilder builder;
  const auto info = trace::replay_trace(path, {&builder});
  const auto profile = builder.build();
  std::printf("replayed '%s': %llu instructions on %u threads\n\n",
              info.kernel_name.c_str(),
              static_cast<unsigned long long>(profile.total_instructions),
              info.n_threads);

  // 3. Replay through the simulator at several design points.
  Table t({"design point", "IPC", "time (us)", "energy (uJ)", "L1 hit %"});
  for (unsigned pes : {8u, 32u}) {
    for (unsigned lines : {2u, 32u}) {
      sim::ArchConfig arch = sim::ArchConfig::paper_default();
      arch.n_pes = pes;
      arch.cache_lines = lines;
      sim::NmcSimulator sim(arch);
      trace::replay_trace(path, {&sim});
      const auto& r = sim.result();
      t.add_row({arch.to_string(), Table::fmt(r.ipc, 2),
                 Table::fmt(r.time_seconds * 1e6, 2),
                 Table::fmt(r.energy_joules * 1e6, 2),
                 Table::fmt(100.0 * r.l1_hit_rate(), 1)});
    }
  }
  std::printf("one recorded trace, four simulated design points:\n");
  t.print(std::cout);

  std::remove(path);
  return 0;
}
