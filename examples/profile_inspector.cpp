// Profile inspector: run one workload through the instrumentation layer and
// dump its microarchitecture-independent characterization (the phase-1
// analysis of Figure 1) — instruction mix, ILP, reuse-distance summaries,
// footprint, and the most informative model features.
//
// Usage: profile_inspector [workload] [tiny|bench] [param=value ...]
#include <cstdio>
#include <cstring>
#include <string>

#include "napel/napel.hpp"

int main(int argc, char** argv) {
  using namespace napel;

  const std::string name = argc > 1 ? argv[1] : "atax";
  if (!workloads::has_workload(name)) {
    std::fprintf(stderr, "unknown workload: %s\navailable:", name.c_str());
    for (const auto* w : workloads::all_workloads())
      std::fprintf(stderr, " %s", std::string(w->name()).c_str());
    std::fprintf(stderr, "\n");
    return 1;
  }
  const auto& w = workloads::workload(name);

  const workloads::Scale scale =
      (argc > 2 && std::strcmp(argv[2], "bench") == 0)
          ? workloads::Scale::kBench
          : workloads::Scale::kTiny;
  auto params = workloads::WorkloadParams::central(w.doe_space(scale));
  for (int i = 3; i < argc; ++i) {
    const std::string kv = argv[i];
    const auto eq = kv.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "expected param=value, got %s\n", kv.c_str());
      return 1;
    }
    params.set(kv.substr(0, eq), std::stoll(kv.substr(eq + 1)));
  }

  std::printf("profiling %s (%s)\n\n", name.c_str(),
              params.to_string().c_str());
  const auto p = core::profile_workload(w, params, 1);

  std::printf("instructions: %llu on %u threads\n",
              static_cast<unsigned long long>(p.total_instructions),
              p.n_threads);
  std::printf("\ninstruction mix:\n");
  for (std::size_t op = 0; op < trace::kNumOpTypes; ++op) {
    const auto t = static_cast<trace::OpType>(op);
    std::printf("  %-8s %6.2f%%\n", std::string(trace::op_name(t)).c_str(),
                100.0 * static_cast<double>(p.op_counts[op]) /
                    static_cast<double>(p.total_instructions));
  }

  std::printf("\nILP (ideal machine): w32 %.2f  w64 %.2f  w128 %.2f  "
              "w256 %.2f  inf %.2f\n",
              p.ilp[0], p.ilp[1], p.ilp[2], p.ilp[3], p.ilp[4]);

  std::printf("\ndata reuse distance (64B lines): mean 2^%.1f  p50 2^%.1f  "
              "p90 2^%.1f  cold %.2f%%\n",
              p.feature("rd_all_log_mean"), p.feature("rd_all_log_p50"),
              p.feature("rd_all_log_p90"),
              100.0 * p.feature("rd_all_cold_frac"));
  std::printf("DRAM access fraction at cache capacity: 1KiB %.1f%%  64KiB "
              "%.1f%%  2MiB %.1f%%\n",
              100.0 * p.feature("miss_frac_all_cap2e4"),
              100.0 * p.feature("miss_frac_all_cap2e10"),
              100.0 * p.feature("miss_frac_all_cap2e15"));

  std::printf("\nfootprint: %.1f KiB total (%.1f read / %.1f write), "
              "traffic %.1f KiB\n",
              static_cast<double>(p.unique_lines) * 64.0 / 1024.0,
              static_cast<double>(p.unique_read_lines) * 64.0 / 1024.0,
              static_cast<double>(p.unique_write_lines) * 64.0 / 1024.0,
              static_cast<double>(p.read_bytes + p.write_bytes) / 1024.0);
  std::printf("spatial: %.1f%% of strides within a line; %.1f%% of accesses "
              "stride-prefetchable\n",
              100.0 * p.feature("stride_frac_le_line"),
              100.0 * p.pc_stride_regular_fraction);
  std::printf("control: %.1f%% branches, basic block length %.1f\n",
              100.0 * p.feature("branch_fraction"),
              p.feature("avg_basic_block_len"));
  std::printf("\nfull model vector: %zu features (plus architecture "
              "features at prediction time)\n",
              p.features.size());
  return 0;
}
