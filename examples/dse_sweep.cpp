// Early-stage design-space exploration — the workflow NAPEL exists for:
// train once, then sweep hundreds of NMC design points per second instead
// of simulating each one for hours.
//
// Sweeps PE count x core frequency for one workload and prints the
// predicted performance/energy landscape plus the EDP-optimal design point.
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "napel/napel.hpp"

int main() {
  using namespace napel;

  core::CollectOptions copt;
  copt.scale = workloads::Scale::kTiny;
  copt.archs_per_config = 3;
  copt.arch_pool_size = 8;
  std::vector<core::TrainingRow> rows;
  for (const char* app :
       {"atax", "gesummv", "trmm", "kmeans", "cholesky", "lu", "syrk"})
    core::collect_training_data(workloads::workload(app), copt, rows);

  core::NapelModel model;
  core::NapelModel::Options mopt;
  mopt.tune = false;
  mopt.untuned_params.n_trees = 60;
  model.train(rows, mopt);
  std::printf("model trained on %zu rows\n\n", rows.size());

  // Profile the DSE subject once (an application the model never saw).
  const auto& w = workloads::workload("mvt");
  const auto space = w.doe_space(workloads::Scale::kTiny);
  const auto input = workloads::WorkloadParams::test_input(space);
  const auto profile = core::profile_workload(w, input, 7);
  std::printf("DSE subject: %s (%s), %llu instructions\n\n",
              std::string(w.name()).c_str(), input.to_string().c_str(),
              static_cast<unsigned long long>(profile.total_instructions));

  // Enumerate a PE-count x frequency x cache grid and predict every point.
  core::DseGrid grid;
  const auto candidates = core::enumerate_grid(grid);
  const auto points = core::explore(model, profile, candidates);
  std::printf("explored %zu design points via model inference\n\n",
              points.size());

  Table t({"design point", "pred IPC", "80% IPC band", "pred time (us)",
           "pred energy (uJ)"});
  for (std::size_t i : core::pareto_front(points)) {
    const auto& p = points[i];
    std::string band = "[";
    band += Table::fmt(p.ipc_interval.lo, 2);
    band += ", ";
    band += Table::fmt(p.ipc_interval.hi, 2);
    band += "]";
    t.add_row({p.arch.to_string(), Table::fmt(p.pred.ipc, 2), std::move(band),
               Table::fmt(p.pred.time_seconds * 1e6, 2),
               Table::fmt(p.pred.energy_joules * 1e6, 2)});
  }
  std::printf("time/energy Pareto frontier:\n");
  t.print(std::cout);

  const auto& best = points[core::best_edp_point(points)];
  std::printf("\nEDP-optimal predicted design point: %s\n",
              best.arch.to_string().c_str());

  // Spot-check the chosen design point against the simulator.
  const auto actual = core::simulate_workload(w, input, best.arch, 7);
  std::printf("simulator check at that point: IPC %.2f (predicted %.2f)\n",
              actual.ipc, best.pred.ipc);
  return 0;
}
