// Quickstart: train NAPEL on a few applications and predict the performance
// and energy of a previously-unseen one, comparing against the cycle-level
// simulator it never saw during training.
//
// Uses the tiny input scale so it finishes in seconds.
#include <cstdio>

#include "common/table.hpp"
#include "napel/napel.hpp"

int main() {
  using namespace napel;

  // 1. Collect training data for three known applications.
  core::CollectOptions copt;
  copt.scale = workloads::Scale::kTiny;
  copt.archs_per_config = 2;

  std::vector<core::TrainingRow> rows;
  for (const char* app : {"atax", "gesummv", "trmm", "kmeans", "cholesky"}) {
    const auto stats =
        core::collect_training_data(workloads::workload(app), copt, rows);
    std::printf("collected %-10s: %2zu input configs, %3zu rows\n", app,
                stats.n_input_configs, stats.n_rows);
  }

  // 2. Train the tuned random-forest model.
  core::NapelModel model;
  core::NapelModel::Options mopt;
  mopt.grid.n_trees = {50};
  mopt.grid.max_depth = {12, 24};
  mopt.grid.mtry_fraction = {1.0 / 3.0};
  mopt.grid.min_samples_leaf = {1, 2};
  model.train(rows, mopt);
  std::printf("trained: best CV MRE ipc=%.3f energy=%.3f\n",
              model.ipc_tuning().best_cv_mre,
              model.energy_tuning().best_cv_mre);

  // 3. Predict an application that is NOT in the training set (mvt) on the
  //    paper's reference NMC configuration, and check against the simulator.
  const auto& unseen = workloads::workload("mvt");
  const auto space = unseen.doe_space(workloads::Scale::kTiny);
  const auto input = workloads::WorkloadParams::test_input(space);
  const auto arch = sim::ArchConfig::paper_default();

  const auto profile = core::profile_workload(unseen, input, /*seed=*/1);
  const auto pred = model.predict(profile, arch);
  const auto actual = core::simulate_workload(unseen, input, arch, /*seed=*/1);

  Table t({"metric", "NAPEL prediction", "simulator", "rel. error"});
  auto rel = [](double p, double a) {
    return Table::fmt(a == 0.0 ? 0.0 : 100.0 * std::abs(p - a) / a, 1) + "%";
  };
  t.add_row({"IPC", Table::fmt(pred.ipc, 3), Table::fmt(actual.ipc, 3),
             rel(pred.ipc, actual.ipc)});
  t.add_row({"time [us]", Table::fmt(pred.time_seconds * 1e6, 2),
             Table::fmt(actual.time_seconds * 1e6, 2),
             rel(pred.time_seconds, actual.time_seconds)});
  t.add_row({"energy [uJ]", Table::fmt(pred.energy_joules * 1e6, 2),
             Table::fmt(actual.energy_joules * 1e6, 2),
             rel(pred.energy_joules, actual.energy_joules)});
  std::printf("\npredicting previously-unseen application 'mvt' (%s):\n%s",
              input.to_string().c_str(), t.to_string().c_str());
  return 0;
}
