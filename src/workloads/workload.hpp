// Workload: one instrumented benchmark kernel (the paper's candidate region
// for NMC offload). Each of the 12 evaluated applications (Table 2)
// implements this interface; `run` executes the real algorithm while
// streaming its dynamic instruction trace through the Tracer.
#pragma once

#include <cstdint>
#include <string_view>

#include "trace/tracer.hpp"
#include "workloads/params.hpp"

namespace napel::workloads {

class Workload {
 public:
  virtual ~Workload() = default;

  /// Short name as used in the paper ("atax", "bfs", ...).
  virtual std::string_view name() const = 0;
  virtual std::string_view description() const = 0;

  /// The DoE parameter space (Table 2) at the requested input scale.
  virtual DoeSpace doe_space(Scale scale) const = 0;

  /// Execute the kernel with input `p`, emitting the instruction stream into
  /// `t`'s attached sinks. `seed` drives input-data generation, so a given
  /// (params, seed) pair is fully reproducible.
  virtual void run(trace::Tracer& t, const WorkloadParams& p,
                   std::uint64_t seed) const = 0;
};

}  // namespace napel::workloads
