// Registry of all evaluated workloads, in the paper's Table 2 order.
#pragma once

#include <span>
#include <string_view>

#include "workloads/workload.hpp"

namespace napel::workloads {

/// All 12 workloads; pointers are to static singletons with program lifetime.
std::span<const Workload* const> all_workloads();

/// Extended suite beyond the paper's Table 2 (gemm, jacobi2d, spmv) — extra
/// training diversity for users; excluded from the paper-reproduction
/// benches. Also reachable by name through workload().
std::span<const Workload* const> extended_workloads();

/// Lookup by short name; throws std::invalid_argument for unknown names.
const Workload& workload(std::string_view name);

/// True when a workload with this name is registered.
bool has_workload(std::string_view name);

}  // namespace napel::workloads
