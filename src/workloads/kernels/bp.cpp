// bp (Rodinia): back-propagation training of a two-layer perceptron
// (input layer of `layer_size` units, small hidden layer, single output).
// Each iteration performs a forward pass and a backward weight-update pass
// over the input-to-hidden weight matrix — the memory-intensive part Rodinia
// offloads.
//
// DoE parameters: `layer_size`, `seed` (weight/data initialization),
// `threads`, `iterations` (training epochs).
#include <cstdint>

#include "workloads/kernels/kernel_utils.hpp"
#include "workloads/kernels/kernels.hpp"

namespace napel::workloads {

namespace {

constexpr std::size_t kHidden = 8;

class BpWorkload final : public Workload {
 public:
  std::string_view name() const override { return "bp"; }
  std::string_view description() const override {
    return "Back-propagation training of a 2-layer perceptron (Rodinia)";
  }

  DoeSpace doe_space(Scale scale) const override {
    switch (scale) {
      case Scale::kPaper:
        return {{DoeParam("layer_size",
                          {800000, 1000000, 2000000, 3500000, 4000000},
                          1100000),
                 DoeParam("seed", {2, 4, 5, 10, 12}, 5),
                 DoeParam("threads", {4, 8, 16, 32, 64}, 32),
                 DoeParam("iterations", {1, 3, 9, 16, 25}, 9)}};
      case Scale::kBench:
        return {{DoeParam("layer_size", {800, 1000, 2000, 3500, 4000}, 8000),
                 DoeParam("seed", {2, 4, 5, 10, 12}, 5),
                 DoeParam("threads", {4, 8, 16, 32, 64}, 32),
                 DoeParam("iterations", {1, 2, 3, 4, 6}, 3)}};
      case Scale::kTiny:
        return {{DoeParam("layer_size", {40, 60, 80, 120, 160}, 100),
                 DoeParam("seed", {2, 4, 5, 10, 12}, 5),
                 DoeParam("threads", {1, 2, 4, 8, 16}, 4),
                 DoeParam("iterations", {1, 2, 3, 4, 5}, 2)}};
    }
    napel::check_failed("valid scale", __FILE__, __LINE__, "");
  }

  void run(trace::Tracer& t, const WorkloadParams& p,
           std::uint64_t seed_base) const override {
    const auto n = static_cast<std::size_t>(p.get("layer_size"));
    const auto threads = static_cast<unsigned>(p.get("threads"));
    const auto iterations = static_cast<std::size_t>(p.get("iterations"));
    // The DoE `seed` parameter selects the data/weight initialization, on
    // top of the pipeline-level seed.
    Rng rng(seed_base * 1000003 + static_cast<std::uint64_t>(p.get("seed")));

    trace::TArray<double> input(t, n);
    trace::TArray<double> w1(t, n * kHidden);   // input -> hidden
    trace::TArray<double> hidden(t, kHidden);
    trace::TArray<double> w2(t, kHidden);       // hidden -> output
    trace::TArray<double> hidden_delta(t, kHidden);
    detail::fill_uniform(input, rng, 0.0, 1.0);
    detail::fill_uniform(w1, rng, -0.5, 0.5);
    detail::fill_uniform(w2, rng, -0.5, 0.5);
    const double target = 0.75;
    const double eta = 0.3;

    t.begin_kernel(name(), threads);
    {
      trace::Tracer::LoopScope liter(t);
      for (std::size_t it = 0; it < iterations; ++it) {
        liter.iteration();

        // Forward, input -> hidden: hidden[h] = sum_i input[i] * w1[i][h].
        // Partition the (large) input dimension across threads; each thread
        // accumulates into per-hidden partials it then stores.
        detail::parallel_range(t, kHidden, [&](std::size_t hb, std::size_t he) {
          trace::Tracer::LoopScope lh(t);
          for (std::size_t h = hb; h < he; ++h) {
            lh.iteration();
            auto acc = trace::imm(t, 0.0);
            trace::Tracer::LoopScope li(t);
            for (std::size_t i = 0; i < n; ++i) {
              li.iteration();
              acc = acc + input.load(i) * w1.load(i * kHidden + h);
            }
            // Squash: approximate sigmoid with a rational function (keeps the
            // op mix arithmetic, like Rodinia's squash()).
            auto denom = trace::imm(t, 1.0) + tabs(acc);
            hidden.store(h, acc / denom);
          }
        });

        // Forward, hidden -> output (tiny).
        auto out = trace::imm(t, 0.0);
        {
          trace::Tracer::LoopScope lh(t);
          for (std::size_t h = 0; h < kHidden; ++h) {
            lh.iteration();
            out = out + hidden.load(h) * w2.load(h);
          }
        }

        // Output error and hidden deltas.
        auto err = trace::imm(t, target) - out;
        {
          trace::Tracer::LoopScope lh(t);
          for (std::size_t h = 0; h < kHidden; ++h) {
            lh.iteration();
            auto d = err * w2.load(h);
            hidden_delta.store(h, d);
            w2.store(h, w2.load(h) + trace::imm(t, eta) * err * hidden.load(h));
          }
        }

        // Backward, adjust input->hidden weights (the big sweep).
        detail::parallel_range(t, n, [&](std::size_t ib, std::size_t ie) {
          trace::Tracer::LoopScope li(t);
          for (std::size_t i = ib; i < ie; ++i) {
            li.iteration();
            auto xi = input.load(i);
            trace::Tracer::LoopScope lh(t);
            for (std::size_t h = 0; h < kHidden; ++h) {
              lh.iteration();
              auto w = w1.load(i * kHidden + h);
              w1.store(i * kHidden + h,
                       w + trace::imm(t, eta) * hidden_delta.load(h) * xi);
            }
          }
        });
      }
    }
    t.end_kernel();
  }
};

}  // namespace

const Workload& bp_workload() {
  static const BpWorkload w;
  return w;
}

}  // namespace napel::workloads
