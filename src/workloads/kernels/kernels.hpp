// Accessors for the 12 evaluated workload singletons (internal to the
// workloads library; users go through the registry).
#pragma once

#include "workloads/workload.hpp"

namespace napel::workloads {

const Workload& atax_workload();
const Workload& bfs_workload();
const Workload& bp_workload();
const Workload& chol_workload();
const Workload& gemver_workload();
const Workload& gesummv_workload();
const Workload& gramschmidt_workload();
const Workload& kmeans_workload();
const Workload& lu_workload();
const Workload& mvt_workload();
const Workload& syrk_workload();
const Workload& trmm_workload();

// Extended suite (not in the paper's Table 2).
const Workload& gemm_workload();
const Workload& jacobi2d_workload();
const Workload& spmv_workload();

}  // namespace napel::workloads
