// gramschmidt (PolyBench): modified Gram-Schmidt QR factorization of an
// n_i × n_j matrix. Column-wise walks over a row-major matrix give the
// strided, cache-hostile pattern that makes this kernel NMC-friendly.
#include "workloads/kernels/kernel_utils.hpp"
#include "workloads/kernels/kernels.hpp"

namespace napel::workloads {

namespace {

class GramSchmidtWorkload final : public Workload {
 public:
  std::string_view name() const override { return "gramschmidt"; }
  std::string_view description() const override {
    return "Modified Gram-Schmidt QR factorization (PolyBench)";
  }

  DoeSpace doe_space(Scale scale) const override {
    switch (scale) {
      case Scale::kPaper:
        // Table 2 prints (64, 384, 128, 320, 512); normalized ascending.
        return {{DoeParam("dimension_i", {64, 128, 320, 384, 512}, 2000),
                 DoeParam("dimension_j", {64, 128, 320, 384, 512}, 2000),
                 DoeParam("threads", {4, 8, 16, 32, 64}, 32)}};
      case Scale::kBench:
        return {{DoeParam("dimension_i", {16, 24, 32, 48, 64}, 64),
                 DoeParam("dimension_j", {8, 12, 16, 24, 32}, 32),
                 DoeParam("threads", {4, 8, 16, 32, 64}, 32)}};
      case Scale::kTiny:
        return {{DoeParam("dimension_i", {6, 8, 10, 12, 16}, 12),
                 DoeParam("dimension_j", {4, 6, 8, 10, 12}, 8),
                 DoeParam("threads", {1, 2, 4, 8, 16}, 4)}};
    }
    napel::check_failed("valid scale", __FILE__, __LINE__, "");
  }

  void run(trace::Tracer& t, const WorkloadParams& p,
           std::uint64_t seed) const override {
    const auto rows = static_cast<std::size_t>(p.get("dimension_i"));
    const auto cols = static_cast<std::size_t>(p.get("dimension_j"));
    const auto threads = static_cast<unsigned>(p.get("threads"));
    Rng rng(seed);

    trace::TArray<double> a(t, rows * cols);  // factored into Q in place
    trace::TArray<double> r(t, cols * cols);
    detail::fill_uniform(a, rng, 0.5, 1.5);   // away from 0 => full rank w.h.p.

    t.begin_kernel(name(), threads);
    {
      trace::Tracer::LoopScope lk(t);
      for (std::size_t k = 0; k < cols; ++k) {
        lk.iteration();

        // r[k][k] = ||A_k||; normalize column k.
        auto nrm = trace::imm(t, 0.0);
        {
          trace::Tracer::LoopScope li(t);
          for (std::size_t i = 0; i < rows; ++i) {
            li.iteration();
            auto v = a.load(i * cols + k);
            nrm = nrm + v * v;
          }
        }
        auto rkk = tsqrt(nrm);
        r.store(k * cols + k, rkk);
        {
          trace::Tracer::LoopScope li(t);
          for (std::size_t i = 0; i < rows; ++i) {
            li.iteration();
            a.store(i * cols + k, a.load(i * cols + k) / rkk);
          }
        }

        // Orthogonalize the remaining columns against Q_k (parallel over j).
        detail::parallel_range(t, cols - k - 1, [&](std::size_t b,
                                                    std::size_t e) {
          trace::Tracer::LoopScope lj(t);
          for (std::size_t off = b; off < e; ++off) {
            lj.iteration();
            const std::size_t j = k + 1 + off;
            auto dot = trace::imm(t, 0.0);
            trace::Tracer::LoopScope li(t);
            for (std::size_t i = 0; i < rows; ++i) {
              li.iteration();
              dot = dot + a.load(i * cols + k) * a.load(i * cols + j);
            }
            r.store(k * cols + j, dot);
            trace::Tracer::LoopScope li2(t);
            for (std::size_t i = 0; i < rows; ++i) {
              li2.iteration();
              auto v = a.load(i * cols + j) - dot * a.load(i * cols + k);
              a.store(i * cols + j, v);
            }
          }
        });
      }
    }
    t.end_kernel();
  }
};

}  // namespace

const Workload& gramschmidt_workload() {
  static const GramSchmidtWorkload w;
  return w;
}

}  // namespace napel::workloads
