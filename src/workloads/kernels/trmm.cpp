// trmm (PolyBench): triangular matrix multiplication — B = α·Aᵀ·B with A
// an n_i × n_i unit lower triangular matrix and B an n_i × n_j matrix.
#include "workloads/kernels/kernel_utils.hpp"
#include "workloads/kernels/kernels.hpp"

namespace napel::workloads {

namespace {

class TrmmWorkload final : public Workload {
 public:
  std::string_view name() const override { return "trmm"; }
  std::string_view description() const override {
    return "Triangular matrix multiplication (PolyBench trmm)";
  }

  DoeSpace doe_space(Scale scale) const override {
    switch (scale) {
      case Scale::kPaper:
        return {{DoeParam("dimension_i", {196, 256, 320, 420, 512}, 2000),
                 DoeParam("dimension_j", {196, 256, 320, 420, 512}, 2000),
                 DoeParam("threads", {4, 8, 16, 32, 64}, 32)}};
      case Scale::kBench:
        return {{DoeParam("dimension_i", {16, 24, 32, 48, 64}, 64),
                 DoeParam("dimension_j", {16, 24, 32, 48, 64}, 64),
                 DoeParam("threads", {4, 8, 16, 32, 64}, 32)}};
      case Scale::kTiny:
        return {{DoeParam("dimension_i", {6, 8, 10, 12, 16}, 12),
                 DoeParam("dimension_j", {4, 6, 8, 10, 12}, 8),
                 DoeParam("threads", {1, 2, 4, 8, 16}, 4)}};
    }
    napel::check_failed("valid scale", __FILE__, __LINE__, "");
  }

  void run(trace::Tracer& t, const WorkloadParams& p,
           std::uint64_t seed) const override {
    const auto m = static_cast<std::size_t>(p.get("dimension_i"));
    const auto n = static_cast<std::size_t>(p.get("dimension_j"));
    const auto threads = static_cast<unsigned>(p.get("threads"));
    Rng rng(seed);

    trace::TArray<double> a(t, m * m);
    trace::TArray<double> b(t, m * n);
    detail::fill_uniform(a, rng, 0.0, 1.0);
    detail::fill_uniform(b, rng, 0.0, 1.0);
    const double alpha = 1.5;

    t.begin_kernel(name(), threads);

    // PolyBench 4.x trmm: B[i][j] += Σ_{k>i} A[k][i]·B[k][j]; B[i][j] *= α.
    // Columns of B are partitioned across threads.
    detail::parallel_range(t, n, [&](std::size_t jb, std::size_t je) {
      trace::Tracer::LoopScope lj(t);
      for (std::size_t j = jb; j < je; ++j) {
        lj.iteration();
        trace::Tracer::LoopScope li(t);
        for (std::size_t i = 0; i < m; ++i) {
          li.iteration();
          auto acc = b.load(i * n + j);
          trace::Tracer::LoopScope lk(t);
          for (std::size_t k = i + 1; k < m; ++k) {
            lk.iteration();
            acc = acc + a.load(k * m + i) * b.load(k * n + j);
          }
          b.store(i * n + j, trace::imm(t, alpha) * acc);
        }
      }
    });

    t.end_kernel();
  }
};

}  // namespace

const Workload& trmm_workload() {
  static const TrmmWorkload w;
  return w;
}

}  // namespace napel::workloads
