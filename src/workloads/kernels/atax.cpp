// atax (PolyBench): matrix transpose and vector multiplication, y = Aᵀ(A·x).
// The paper highlights atax as a mixed workload: the A·x pass has high data
// locality while the Aᵀ pass is memory intensive.
#include "workloads/kernels/kernel_utils.hpp"
#include "workloads/kernels/kernels.hpp"

namespace napel::workloads {

namespace {

class AtaxWorkload final : public Workload {
 public:
  std::string_view name() const override { return "atax"; }
  std::string_view description() const override {
    return "Matrix transpose and vector multiplication: y = A^T (A x)";
  }

  DoeSpace doe_space(Scale scale) const override {
    switch (scale) {
      case Scale::kPaper:
        return {{DoeParam("dimension", {500, 1250, 1500, 2000, 2300}, 8000),
                 DoeParam("threads", {4, 8, 16, 32, 64}, 32)}};
      case Scale::kBench:
        return {{DoeParam("dimension", {64, 96, 128, 160, 192}, 224),
                 DoeParam("threads", {4, 8, 16, 32, 64}, 32)}};
      case Scale::kTiny:
        return {{DoeParam("dimension", {6, 8, 10, 12, 16}, 20),
                 DoeParam("threads", {1, 2, 4, 8, 16}, 4)}};
    }
    napel::check_failed("valid scale", __FILE__, __LINE__, "");
  }

  void run(trace::Tracer& t, const WorkloadParams& p,
           std::uint64_t seed) const override {
    const auto n = static_cast<std::size_t>(p.get("dimension"));
    const auto threads = static_cast<unsigned>(p.get("threads"));
    Rng rng(seed);

    trace::TArray<double> a(t, n * n);
    trace::TArray<double> x(t, n);
    trace::TArray<double> tmp(t, n);
    trace::TArray<double> y(t, n);
    detail::fill_uniform(a, rng, 0.0, 1.0);
    detail::fill_uniform(x, rng, 0.0, 1.0);

    t.begin_kernel(name(), threads);

    // tmp = A·x  (row-major streaming; good locality)
    detail::parallel_range(t, n, [&](std::size_t rb, std::size_t re) {
      trace::Tracer::LoopScope li(t);
      for (std::size_t i = rb; i < re; ++i) {
        li.iteration();
        auto acc = trace::imm(t, 0.0);
        trace::Tracer::LoopScope lj(t);
        for (std::size_t j = 0; j < n; ++j) {
          lj.iteration();
          acc = acc + a.load(i * n + j) * x.load(j);
        }
        tmp.store(i, acc);
      }
    });

    // y = Aᵀ·tmp  (column-major walk over A; memory intensive)
    detail::parallel_range(t, n, [&](std::size_t jb, std::size_t je) {
      trace::Tracer::LoopScope lj(t);
      for (std::size_t j = jb; j < je; ++j) {
        lj.iteration();
        auto acc = trace::imm(t, 0.0);
        trace::Tracer::LoopScope li(t);
        for (std::size_t i = 0; i < n; ++i) {
          li.iteration();
          acc = acc + a.load(i * n + j) * tmp.load(i);
        }
        y.store(j, acc);
      }
    });

    t.end_kernel();
  }
};

}  // namespace

const Workload& atax_workload() {
  static const AtaxWorkload w;
  return w;
}

}  // namespace napel::workloads
