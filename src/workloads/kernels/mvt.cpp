// mvt (PolyBench): matrix-vector product and transpose —
// x1 = x1 + A·y1; x2 = x2 + Aᵀ·y2.
#include "workloads/kernels/kernel_utils.hpp"
#include "workloads/kernels/kernels.hpp"

namespace napel::workloads {

namespace {

class MvtWorkload final : public Workload {
 public:
  std::string_view name() const override { return "mvt"; }
  std::string_view description() const override {
    return "Matrix-vector product and transpose (PolyBench mvt)";
  }

  DoeSpace doe_space(Scale scale) const override {
    switch (scale) {
      case Scale::kPaper:
        return {{DoeParam("dimension", {500, 750, 1250, 2000, 2250}, 2000),
                 DoeParam("threads", {4, 8, 16, 32, 64}, 32),
                 DoeParam("iterations", {10, 20, 30, 50, 60}, 40)}};
      case Scale::kBench:
        return {{DoeParam("dimension", {32, 48, 64, 96, 128}, 128),
                 DoeParam("threads", {4, 8, 16, 32, 64}, 32),
                 DoeParam("iterations", {1, 2, 3, 4, 5}, 4)}};
      case Scale::kTiny:
        return {{DoeParam("dimension", {6, 8, 10, 12, 16}, 12),
                 DoeParam("threads", {1, 2, 4, 8, 16}, 4),
                 DoeParam("iterations", {1, 2, 3, 4, 5}, 2)}};
    }
    napel::check_failed("valid scale", __FILE__, __LINE__, "");
  }

  void run(trace::Tracer& t, const WorkloadParams& p,
           std::uint64_t seed) const override {
    const auto n = static_cast<std::size_t>(p.get("dimension"));
    const auto threads = static_cast<unsigned>(p.get("threads"));
    const auto iterations = static_cast<std::size_t>(p.get("iterations"));
    Rng rng(seed);

    trace::TArray<double> a(t, n * n);
    trace::TArray<double> x1(t, n), x2(t, n), y1(t, n), y2(t, n);
    detail::fill_uniform(a, rng, 0.0, 1.0);
    detail::fill_uniform(x1, rng, 0.0, 1.0);
    detail::fill_uniform(x2, rng, 0.0, 1.0);
    detail::fill_uniform(y1, rng, 0.0, 1.0);
    detail::fill_uniform(y2, rng, 0.0, 1.0);

    t.begin_kernel(name(), threads);
    {
      trace::Tracer::LoopScope liter(t);
      for (std::size_t it = 0; it < iterations; ++it) {
        liter.iteration();

        // x1 += A·y1
        detail::parallel_range(t, n, [&](std::size_t b, std::size_t e) {
          trace::Tracer::LoopScope li(t);
          for (std::size_t i = b; i < e; ++i) {
            li.iteration();
            auto acc = x1.load(i);
            trace::Tracer::LoopScope lj(t);
            for (std::size_t j = 0; j < n; ++j) {
              lj.iteration();
              acc = acc + a.load(i * n + j) * y1.load(j);
            }
            x1.store(i, acc);
          }
        });

        // x2 += Aᵀ·y2 (column-major walk)
        detail::parallel_range(t, n, [&](std::size_t b, std::size_t e) {
          trace::Tracer::LoopScope li(t);
          for (std::size_t i = b; i < e; ++i) {
            li.iteration();
            auto acc = x2.load(i);
            trace::Tracer::LoopScope lj(t);
            for (std::size_t j = 0; j < n; ++j) {
              lj.iteration();
              acc = acc + a.load(j * n + i) * y2.load(j);
            }
            x2.store(i, acc);
          }
        });
      }
    }
    t.end_kernel();
  }
};

}  // namespace

const Workload& mvt_workload() {
  static const MvtWorkload w;
  return w;
}

}  // namespace napel::workloads
