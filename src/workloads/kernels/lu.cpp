// lu (PolyBench): in-place LU decomposition without pivoting. Each DoE
// `iteration` re-copies the pristine (diagonally dominant) input and
// re-factorizes it.
#include "workloads/kernels/kernel_utils.hpp"
#include "workloads/kernels/kernels.hpp"

namespace napel::workloads {

namespace {

class LuWorkload final : public Workload {
 public:
  std::string_view name() const override { return "lu"; }
  std::string_view description() const override {
    return "LU decomposition without pivoting (PolyBench)";
  }

  DoeSpace doe_space(Scale scale) const override {
    switch (scale) {
      case Scale::kPaper:
        return {{DoeParam("dimension", {196, 256, 320, 420, 512}, 2000),
                 DoeParam("threads", {4, 8, 16, 32, 64}, 32),
                 DoeParam("iterations", {98, 128, 256, 420, 512}, 2000)}};
      case Scale::kBench:
        return {{DoeParam("dimension", {16, 24, 32, 48, 64}, 64),
                 DoeParam("threads", {4, 8, 16, 32, 64}, 32),
                 DoeParam("iterations", {1, 2, 3, 4, 5}, 3)}};
      case Scale::kTiny:
        return {{DoeParam("dimension", {6, 8, 10, 12, 16}, 12),
                 DoeParam("threads", {1, 2, 4, 8, 16}, 4),
                 DoeParam("iterations", {1, 2, 3, 4, 5}, 2)}};
    }
    napel::check_failed("valid scale", __FILE__, __LINE__, "");
  }

  void run(trace::Tracer& t, const WorkloadParams& p,
           std::uint64_t seed) const override {
    const auto n = static_cast<std::size_t>(p.get("dimension"));
    const auto threads = static_cast<unsigned>(p.get("threads"));
    const auto iterations = static_cast<std::size_t>(p.get("iterations"));
    Rng rng(seed);

    trace::TArray<double> a(t, n * n);
    trace::TArray<double> work(t, n * n);
    detail::fill_uniform(a, rng, 0.0, 1.0);
    // Diagonal dominance keeps the pivotless factorization well-conditioned.
    for (std::size_t i = 0; i < n; ++i)
      a.raw(i * n + i) += static_cast<double>(n);

    t.begin_kernel(name(), threads);
    {
      trace::Tracer::LoopScope liter(t);
      for (std::size_t it = 0; it < iterations; ++it) {
        liter.iteration();

        detail::parallel_range(t, n * n, [&](std::size_t b, std::size_t e) {
          trace::Tracer::LoopScope lc(t);
          for (std::size_t i = b; i < e; ++i) {
            lc.iteration();
            work.store(i, a.load(i));
          }
        });

        trace::Tracer::LoopScope lk(t);
        for (std::size_t k = 0; k < n; ++k) {
          lk.iteration();
          auto pivot = work.load(k * n + k);
          detail::parallel_range(t, n - k - 1, [&](std::size_t b,
                                                   std::size_t e) {
            trace::Tracer::LoopScope li(t);
            for (std::size_t off = b; off < e; ++off) {
              li.iteration();
              const std::size_t i = k + 1 + off;
              auto lik = work.load(i * n + k) / pivot;
              work.store(i * n + k, lik);
              trace::Tracer::LoopScope lj(t);
              for (std::size_t j = k + 1; j < n; ++j) {
                lj.iteration();
                auto v = work.load(i * n + j) - lik * work.load(k * n + j);
                work.store(i * n + j, v);
              }
            }
          });
        }
      }
    }
    t.end_kernel();
  }
};

}  // namespace

const Workload& lu_workload() {
  static const LuWorkload w;
  return w;
}

}  // namespace napel::workloads
