// bfs (Rodinia): level-synchronous breadth-first search with per-node cost
// updates over a random graph in CSR form. The mask/visited/updating array
// structure follows the Rodinia kernel; edge expansion produces the
// irregular, data-dependent access pattern that makes bfs NMC-friendly.
//
// DoE parameters: `nodes` (graph size), `weights` (maximum edge weight; the
// relaxed cost is cost[u] + w(u,v)), `threads`, and `iterations` (number of
// BFS traversals from rotating source nodes).
#include <cstdint>
#include <vector>

#include "workloads/kernels/kernel_utils.hpp"
#include "workloads/kernels/kernels.hpp"

namespace napel::workloads {

namespace {

constexpr std::size_t kAvgDegree = 4;

class BfsWorkload final : public Workload {
 public:
  std::string_view name() const override { return "bfs"; }
  std::string_view description() const override {
    return "Breadth-first search with cost relaxation (Rodinia)";
  }

  DoeSpace doe_space(Scale scale) const override {
    switch (scale) {
      case Scale::kPaper:
        return {{DoeParam("nodes", {400000, 800000, 900000, 1200000, 1400000},
                          1000000),
                 DoeParam("weights", {1, 2, 4, 25, 49}, 4),
                 DoeParam("threads", {1, 9, 16, 32, 64}, 32),
                 DoeParam("iterations", {30, 40, 65, 70, 80}, 95)}};
      case Scale::kBench:
        return {{DoeParam("nodes", {1000, 2000, 2500, 3000, 4000}, 16000),
                 DoeParam("weights", {1, 2, 4, 25, 49}, 4),
                 DoeParam("threads", {1, 9, 16, 32, 64}, 32),
                 DoeParam("iterations", {1, 2, 3, 4, 5}, 3)}};
      case Scale::kTiny:
        return {{DoeParam("nodes", {50, 80, 100, 150, 200}, 120),
                 DoeParam("weights", {1, 2, 4, 6, 8}, 4),
                 DoeParam("threads", {1, 2, 4, 8, 16}, 4),
                 DoeParam("iterations", {1, 2, 3, 4, 5}, 2)}};
    }
    napel::check_failed("valid scale", __FILE__, __LINE__, "");
  }

  void run(trace::Tracer& t, const WorkloadParams& p,
           std::uint64_t seed) const override {
    const auto n = static_cast<std::size_t>(p.get("nodes"));
    const auto max_weight = p.get("weights");
    const auto threads = static_cast<unsigned>(p.get("threads"));
    const auto iterations = static_cast<std::size_t>(p.get("iterations"));
    Rng rng(seed);

    // Random graph in CSR form: per-node degree uniform in [1, 2*kAvgDegree].
    std::vector<std::size_t> degree(n);
    std::size_t n_edges = 0;
    for (auto& d : degree) {
      d = 1 + rng.uniform_index(2 * kAvgDegree);
      n_edges += d;
    }

    trace::TArray<std::int64_t> row_off(t, n + 1);
    trace::TArray<std::int64_t> col_idx(t, n_edges);
    trace::TArray<std::int64_t> edge_w(t, n_edges);
    trace::TArray<std::int64_t> cost(t, n);
    trace::TArray<std::int64_t> mask(t, n);
    trace::TArray<std::int64_t> updating(t, n);
    trace::TArray<std::int64_t> visited(t, n);
    trace::TArray<std::int64_t> frontier_flag(t, 1);

    std::size_t e = 0;
    for (std::size_t v = 0; v < n; ++v) {
      row_off.raw(v) = static_cast<std::int64_t>(e);
      for (std::size_t d = 0; d < degree[v]; ++d, ++e) {
        col_idx.raw(e) = static_cast<std::int64_t>(rng.uniform_index(n));
        edge_w.raw(e) = rng.uniform_int(1, max_weight);
      }
    }
    row_off.raw(n) = static_cast<std::int64_t>(e);

    t.begin_kernel(name(), threads);
    {
      trace::Tracer::LoopScope liter(t);
      for (std::size_t it = 0; it < iterations; ++it) {
        liter.iteration();
        const std::size_t source = (it * 7919) % n;

        // Initialize traversal state (streaming writes over all nodes).
        detail::parallel_range(t, n, [&](std::size_t b, std::size_t end) {
          trace::Tracer::LoopScope li(t);
          for (std::size_t i = b; i < end; ++i) {
            li.iteration();
            mask.store(i, trace::imm<std::int64_t>(t, 0));
            updating.store(i, trace::imm<std::int64_t>(t, 0));
            visited.store(i, trace::imm<std::int64_t>(t, 0));
            cost.store(i, trace::imm<std::int64_t>(t, -1));
          }
        });
        mask.store(source, trace::imm<std::int64_t>(t, 1));
        visited.store(source, trace::imm<std::int64_t>(t, 1));
        cost.store(source, trace::imm<std::int64_t>(t, 0));

        bool frontier_nonempty = true;
        trace::Tracer::LoopScope llevel(t);
        while (frontier_nonempty) {
          llevel.iteration();
          frontier_flag.store(0, trace::imm<std::int64_t>(t, 0));

          // Expansion: relax all edges of masked nodes.
          detail::parallel_range(t, n, [&](std::size_t b, std::size_t end) {
            trace::Tracer::LoopScope li(t);
            for (std::size_t i = b; i < end; ++i) {
              li.iteration();
              auto m = mask.load(i);
              if (take(m != trace::imm<std::int64_t>(t, 0))) {
                mask.store(i, trace::imm<std::int64_t>(t, 0));
                auto ci = cost.load(i);
                auto eb = row_off.load(i);
                auto ee = row_off.load(i + 1);
                trace::Tracer::LoopScope le(t);
                for (auto k = eb.value; k < ee.value; ++k) {
                  le.iteration();
                  const auto ke = static_cast<std::size_t>(k);
                  auto j = col_idx.load(ke);
                  auto vis = visited.load_indexed(j);
                  if (take(vis != trace::imm<std::int64_t>(t, 1))) {
                    auto w = edge_w.load(ke);
                    cost.store_indexed(j, ci + w);
                    updating.store_indexed(j,
                                           trace::imm<std::int64_t>(t, 1));
                  }
                }
              }
            }
          });

          // Frontier update: promote `updating` nodes into the next frontier.
          frontier_nonempty = false;
          detail::parallel_range(t, n, [&](std::size_t b, std::size_t end) {
            trace::Tracer::LoopScope li(t);
            for (std::size_t i = b; i < end; ++i) {
              li.iteration();
              auto u = updating.load(i);
              if (take(u != trace::imm<std::int64_t>(t, 0))) {
                mask.store(i, trace::imm<std::int64_t>(t, 1));
                visited.store(i, trace::imm<std::int64_t>(t, 1));
                updating.store(i, trace::imm<std::int64_t>(t, 0));
                frontier_flag.store(0, trace::imm<std::int64_t>(t, 1));
                frontier_nonempty = true;
              }
            }
          });
        }
      }
    }
    t.end_kernel();
  }
};

}  // namespace

const Workload& bfs_workload() {
  static const BfsWorkload w;
  return w;
}

}  // namespace napel::workloads
