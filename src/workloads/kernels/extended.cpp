// Extended workload suite (not part of the paper's Table 2): three
// additional kernels with distinct behaviours — dense matrix multiply
// (compute bound, tiled reuse), a 5-point Jacobi stencil (streaming with
// neighbourhood reuse), and CSR sparse matrix-vector product (indirect
// gather) — useful for enlarging NAPEL's training diversity beyond the
// twelve evaluated applications.
//
// Their "paper" scale is defined as 16x the bench scale, since the paper
// prescribes no levels for them.
#include <cstdint>
#include <vector>

#include "workloads/kernels/kernel_utils.hpp"
#include "workloads/kernels/kernels.hpp"

namespace napel::workloads {

namespace {

DoeSpace scaled_space(std::vector<DoeParam> bench, std::int64_t factor,
                      Scale scale) {
  if (scale == Scale::kBench) return {std::move(bench)};
  DoeSpace out;
  for (auto& p : bench) {
    std::array<std::int64_t, 5> levels = p.levels;
    std::int64_t test = p.test;
    if (p.name != "threads" && p.name != "iterations" &&
        p.name != "nnz_per_row") {
      const std::int64_t f = scale == Scale::kPaper ? factor : 1;
      const std::int64_t d = scale == Scale::kTiny ? 4 : 1;
      for (auto& l : levels) l = std::max<std::int64_t>(2, l * f / d);
      test = std::max<std::int64_t>(2, test * f / d);
    } else if (scale == Scale::kTiny && p.name == "threads") {
      levels = {1, 2, 4, 8, 16};
      test = 4;
    }
    out.params.emplace_back(p.name, levels, test);
  }
  return out;
}

// --- gemm: C = alpha*A*B + beta*C ------------------------------------------

class GemmWorkload final : public Workload {
 public:
  std::string_view name() const override { return "gemm"; }
  std::string_view description() const override {
    return "Dense matrix-matrix multiplication (PolyBench gemm, extended suite)";
  }

  DoeSpace doe_space(Scale scale) const override {
    return scaled_space({DoeParam("dimension_i", {8, 12, 16, 24, 32}, 40),
                         DoeParam("dimension_j", {8, 12, 16, 24, 32}, 40),
                         DoeParam("dimension_k", {8, 12, 16, 24, 32}, 40),
                         DoeParam("threads", {4, 8, 16, 32, 64}, 32)},
                        16, scale);
  }

  void run(trace::Tracer& t, const WorkloadParams& p,
           std::uint64_t seed) const override {
    const auto ni = static_cast<std::size_t>(p.get("dimension_i"));
    const auto nj = static_cast<std::size_t>(p.get("dimension_j"));
    const auto nk = static_cast<std::size_t>(p.get("dimension_k"));
    const auto threads = static_cast<unsigned>(p.get("threads"));
    Rng rng(seed);

    trace::TArray<double> a(t, ni * nk), b(t, nk * nj), c(t, ni * nj);
    detail::fill_uniform(a, rng, 0.0, 1.0);
    detail::fill_uniform(b, rng, 0.0, 1.0);
    detail::fill_uniform(c, rng, 0.0, 1.0);
    const double alpha = 1.5, beta = 1.2;

    t.begin_kernel(name(), threads);
    detail::parallel_range(t, ni, [&](std::size_t ib, std::size_t ie) {
      trace::Tracer::LoopScope li(t);
      for (std::size_t i = ib; i < ie; ++i) {
        li.iteration();
        trace::Tracer::LoopScope lj(t);
        for (std::size_t j = 0; j < nj; ++j) {
          lj.iteration();
          auto acc = trace::imm(t, beta) * c.load(i * nj + j);
          trace::Tracer::LoopScope lk(t);
          for (std::size_t k = 0; k < nk; ++k) {
            lk.iteration();
            acc = acc + trace::imm(t, alpha) * a.load(i * nk + k) *
                            b.load(k * nj + j);
          }
          c.store(i * nj + j, acc);
        }
      }
    });
    t.end_kernel();
  }
};

// --- jacobi2d: 5-point stencil sweeps ---------------------------------------

class Jacobi2dWorkload final : public Workload {
 public:
  std::string_view name() const override { return "jacobi2d"; }
  std::string_view description() const override {
    return "5-point Jacobi stencil on a 2-D grid (PolyBench, extended suite)";
  }

  DoeSpace doe_space(Scale scale) const override {
    return scaled_space({DoeParam("dimension", {24, 32, 48, 64, 96}, 128),
                         DoeParam("threads", {4, 8, 16, 32, 64}, 32),
                         DoeParam("iterations", {1, 2, 3, 4, 5}, 3)},
                        16, scale);
  }

  void run(trace::Tracer& t, const WorkloadParams& p,
           std::uint64_t seed) const override {
    const auto n = static_cast<std::size_t>(p.get("dimension"));
    const auto threads = static_cast<unsigned>(p.get("threads"));
    const auto iterations = static_cast<std::size_t>(p.get("iterations"));
    Rng rng(seed);

    trace::TArray<double> grid(t, n * n), next(t, n * n);
    detail::fill_uniform(grid, rng, 0.0, 1.0);

    t.begin_kernel(name(), threads);
    {
      trace::Tracer::LoopScope liter(t);
      for (std::size_t it = 0; it < iterations; ++it) {
        liter.iteration();
        trace::TArray<double>& src = it % 2 ? next : grid;
        trace::TArray<double>& dst = it % 2 ? grid : next;
        detail::parallel_range(t, n - 2, [&](std::size_t b, std::size_t e) {
          trace::Tracer::LoopScope li(t);
          for (std::size_t off = b; off < e; ++off) {
            li.iteration();
            const std::size_t i = 1 + off;
            trace::Tracer::LoopScope lj(t);
            for (std::size_t j = 1; j + 1 < n; ++j) {
              lj.iteration();
              auto v = src.load(i * n + j) + src.load(i * n + j - 1) +
                       src.load(i * n + j + 1) + src.load((i - 1) * n + j) +
                       src.load((i + 1) * n + j);
              dst.store(i * n + j, trace::imm(t, 0.2) * v);
            }
          }
        });
      }
    }
    t.end_kernel();
  }
};

// --- spmv: CSR sparse matrix-vector product ---------------------------------

class SpmvWorkload final : public Workload {
 public:
  std::string_view name() const override { return "spmv"; }
  std::string_view description() const override {
    return "CSR sparse matrix-vector product (extended suite)";
  }

  DoeSpace doe_space(Scale scale) const override {
    return scaled_space({DoeParam("rows", {500, 1000, 2000, 3000, 4000}, 5000),
                         DoeParam("nnz_per_row", {2, 4, 8, 16, 32}, 8),
                         DoeParam("threads", {4, 8, 16, 32, 64}, 32),
                         DoeParam("iterations", {1, 2, 3, 4, 5}, 3)},
                        16, scale);
  }

  void run(trace::Tracer& t, const WorkloadParams& p,
           std::uint64_t seed) const override {
    const auto rows = static_cast<std::size_t>(p.get("rows"));
    const auto nnz = static_cast<std::size_t>(p.get("nnz_per_row"));
    const auto threads = static_cast<unsigned>(p.get("threads"));
    const auto iterations = static_cast<std::size_t>(p.get("iterations"));
    Rng rng(seed);

    trace::TArray<std::int64_t> row_off(t, rows + 1);
    trace::TArray<std::int64_t> col_idx(t, rows * nnz);
    trace::TArray<double> vals(t, rows * nnz);
    trace::TArray<double> x(t, rows), y(t, rows);
    for (std::size_t r = 0; r <= rows; ++r)
      row_off.raw(r) = static_cast<std::int64_t>(r * nnz);
    for (std::size_t e = 0; e < rows * nnz; ++e) {
      col_idx.raw(e) = static_cast<std::int64_t>(rng.uniform_index(rows));
      vals.raw(e) = rng.uniform();
    }
    detail::fill_uniform(x, rng, 0.0, 1.0);

    t.begin_kernel(name(), threads);
    {
      trace::Tracer::LoopScope liter(t);
      for (std::size_t it = 0; it < iterations; ++it) {
        liter.iteration();
        detail::parallel_range(t, rows, [&](std::size_t b, std::size_t e) {
          trace::Tracer::LoopScope lr(t);
          for (std::size_t r = b; r < e; ++r) {
            lr.iteration();
            auto acc = trace::imm(t, 0.0);
            auto eb = row_off.load(r);
            auto ee = row_off.load(r + 1);
            trace::Tracer::LoopScope le(t);
            for (auto k = eb.value; k < ee.value; ++k) {
              le.iteration();
              const auto ke = static_cast<std::size_t>(k);
              auto col = col_idx.load(ke);
              acc = acc + vals.load(ke) * x.load_indexed(col);
            }
            y.store(r, acc);
          }
        });
      }
    }
    t.end_kernel();
  }
};

}  // namespace

const Workload& gemm_workload() {
  static const GemmWorkload w;
  return w;
}
const Workload& jacobi2d_workload() {
  static const Jacobi2dWorkload w;
  return w;
}
const Workload& spmv_workload() {
  static const SpmvWorkload w;
  return w;
}

}  // namespace napel::workloads
