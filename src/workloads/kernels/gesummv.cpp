// gesummv (PolyBench): scalar, vector and matrix multiplication —
// y = α·A·x + β·B·x.
#include "workloads/kernels/kernel_utils.hpp"
#include "workloads/kernels/kernels.hpp"

namespace napel::workloads {

namespace {

class GesummvWorkload final : public Workload {
 public:
  std::string_view name() const override { return "gesummv"; }
  std::string_view description() const override {
    return "Scalar, vector and matrix multiplication (PolyBench gesummv)";
  }

  DoeSpace doe_space(Scale scale) const override {
    switch (scale) {
      case Scale::kPaper:
        return {{DoeParam("dimension", {500, 750, 1250, 2000, 2250}, 8000),
                 DoeParam("threads", {4, 8, 16, 32, 64}, 32),
                 DoeParam("iterations", {10, 20, 40, 50, 60}, 50)}};
      case Scale::kBench:
        return {{DoeParam("dimension", {32, 48, 64, 96, 128}, 128),
                 DoeParam("threads", {4, 8, 16, 32, 64}, 32),
                 DoeParam("iterations", {1, 2, 3, 4, 5}, 4)}};
      case Scale::kTiny:
        return {{DoeParam("dimension", {6, 8, 10, 12, 16}, 12),
                 DoeParam("threads", {1, 2, 4, 8, 16}, 4),
                 DoeParam("iterations", {1, 2, 3, 4, 5}, 2)}};
    }
    napel::check_failed("valid scale", __FILE__, __LINE__, "");
  }

  void run(trace::Tracer& t, const WorkloadParams& p,
           std::uint64_t seed) const override {
    const auto n = static_cast<std::size_t>(p.get("dimension"));
    const auto threads = static_cast<unsigned>(p.get("threads"));
    const auto iterations = static_cast<std::size_t>(p.get("iterations"));
    Rng rng(seed);

    trace::TArray<double> a(t, n * n), b(t, n * n);
    trace::TArray<double> x(t, n), y(t, n);
    detail::fill_uniform(a, rng, 0.0, 1.0);
    detail::fill_uniform(b, rng, 0.0, 1.0);
    detail::fill_uniform(x, rng, 0.0, 1.0);
    const double alpha = 1.5, beta = 1.2;

    t.begin_kernel(name(), threads);
    {
      trace::Tracer::LoopScope liter(t);
      for (std::size_t it = 0; it < iterations; ++it) {
        liter.iteration();
        detail::parallel_range(t, n, [&](std::size_t rb, std::size_t re) {
          trace::Tracer::LoopScope li(t);
          for (std::size_t i = rb; i < re; ++i) {
            li.iteration();
            auto ta = trace::imm(t, 0.0);
            auto tb = trace::imm(t, 0.0);
            trace::Tracer::LoopScope lj(t);
            for (std::size_t j = 0; j < n; ++j) {
              lj.iteration();
              auto xj = x.load(j);
              ta = ta + a.load(i * n + j) * xj;
              tb = tb + b.load(i * n + j) * xj;
            }
            y.store(i, trace::imm(t, alpha) * ta + trace::imm(t, beta) * tb);
          }
        });
      }
    }
    t.end_kernel();
  }
};

}  // namespace

const Workload& gesummv_workload() {
  static const GesummvWorkload w;
  return w;
}

}  // namespace napel::workloads
