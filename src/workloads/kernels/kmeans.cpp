// kmeans (Rodinia): Lloyd's k-means clustering of 2-dimensional points.
// Each iteration assigns every point to its nearest center (distance
// computation + data-dependent argmin) and recomputes the centers.
#include <array>
#include <cstdint>

#include "workloads/kernels/kernel_utils.hpp"
#include "workloads/kernels/kernels.hpp"

namespace napel::workloads {

namespace {

constexpr std::size_t kDim = 2;

class KmeansWorkload final : public Workload {
 public:
  std::string_view name() const override { return "kmeans"; }
  std::string_view description() const override {
    return "K-means clustering of 2-D points (Rodinia)";
  }

  DoeSpace doe_space(Scale scale) const override {
    switch (scale) {
      case Scale::kPaper:
        return {{DoeParam("data_size",
                          {100000, 300000, 700000, 900000, 1200000}, 819000),
                 DoeParam("clusters", {3, 5, 6, 7, 8}, 5),
                 // Table 2 prints threads (1, 9, 1, 32, 64); the repeated 1
                 // is an evident typo for 16 (the central level used by all
                 // other applications).
                 DoeParam("threads", {1, 9, 16, 32, 64}, 32),
                 DoeParam("iterations", {10, 20, 30, 40, 50}, 30)}};
      case Scale::kBench:
        return {{DoeParam("data_size", {500, 1000, 2000, 3000, 4000}, 25000),
                 DoeParam("clusters", {3, 5, 6, 7, 8}, 5),
                 DoeParam("threads", {1, 9, 16, 32, 64}, 32),
                 DoeParam("iterations", {1, 2, 3, 4, 5}, 3)}};
      case Scale::kTiny:
        return {{DoeParam("data_size", {40, 60, 100, 150, 200}, 120),
                 DoeParam("clusters", {2, 3, 4, 5, 6}, 3),
                 DoeParam("threads", {1, 2, 4, 8, 16}, 4),
                 DoeParam("iterations", {1, 2, 3, 4, 5}, 2)}};
    }
    napel::check_failed("valid scale", __FILE__, __LINE__, "");
  }

  void run(trace::Tracer& t, const WorkloadParams& p,
           std::uint64_t seed) const override {
    const auto n = static_cast<std::size_t>(p.get("data_size"));
    const auto k = static_cast<std::size_t>(p.get("clusters"));
    const auto threads = static_cast<unsigned>(p.get("threads"));
    const auto iterations = static_cast<std::size_t>(p.get("iterations"));
    Rng rng(seed);

    trace::TArray<double> points(t, n * kDim);
    trace::TArray<double> centers(t, k * kDim);
    // Rodinia-style per-thread partial accumulators (padded to distinct
    // cache lines per thread), reduced after the assignment phase.
    const std::size_t acc_stride = ((k * kDim + 7) / 8) * 8;
    trace::TArray<double> sums(t, threads * acc_stride);
    trace::TArray<std::int64_t> counts(t, threads * ((k + 7) / 8) * 8);
    const std::size_t cnt_stride = ((k + 7) / 8) * 8;
    trace::TArray<std::int64_t> membership(t, n);
    detail::fill_uniform(points, rng, 0.0, 100.0);
    for (std::size_t c = 0; c < k; ++c)
      for (std::size_t d = 0; d < kDim; ++d)
        centers.raw(c * kDim + d) = points.raw((c * (n / k)) * kDim + d);

    t.begin_kernel(name(), threads);
    {
      trace::Tracer::LoopScope liter(t);
      for (std::size_t it = 0; it < iterations; ++it) {
        liter.iteration();

        // Reset per-thread accumulators.
        detail::parallel_range(t, threads, [&](std::size_t tb, std::size_t te) {
          trace::Tracer::LoopScope lt(t);
          for (std::size_t th = tb; th < te; ++th) {
            lt.iteration();
            for (std::size_t c = 0; c < k; ++c) {
              counts.store(th * cnt_stride + c, trace::imm<std::int64_t>(t, 0));
              for (std::size_t d = 0; d < kDim; ++d)
                sums.store(th * acc_stride + c * kDim + d, trace::imm(t, 0.0));
            }
          }
        });

        // Assignment: nearest center per point (data-dependent argmin).
        detail::parallel_range(t, n, [&](std::size_t b, std::size_t e) {
          trace::Tracer::LoopScope li(t);
          for (std::size_t i = b; i < e; ++i) {
            li.iteration();
            // Hoist the point's coordinates into registers (as Rodinia does);
            // the cluster loop then touches only the hot center lines.
            std::array<trace::Traced<double>, kDim> coord;
            for (std::size_t d = 0; d < kDim; ++d)
              coord[d] = points.load(i * kDim + d);
            auto best = trace::imm(t, 1e300);
            std::size_t best_c = 0;
            trace::Tracer::LoopScope lc(t);
            for (std::size_t c = 0; c < k; ++c) {
              lc.iteration();
              auto dist = trace::imm(t, 0.0);
              for (std::size_t d = 0; d < kDim; ++d) {
                auto diff = coord[d] - centers.load(c * kDim + d);
                dist = dist + diff * diff;
              }
              if (take(dist < best)) {
                best = dist;
                best_c = c;
              }
            }
            membership.store(i, trace::imm(t, static_cast<std::int64_t>(
                                                  best_c)));
            // Accumulate into this thread's private partials.
            const std::size_t th = t.current_thread();
            auto cnt = counts.load(th * cnt_stride + best_c);
            counts.store(th * cnt_stride + best_c,
                         cnt + trace::imm<std::int64_t>(t, 1));
            for (std::size_t d = 0; d < kDim; ++d) {
              auto s = sums.load(th * acc_stride + best_c * kDim + d);
              sums.store(th * acc_stride + best_c * kDim + d, s + coord[d]);
            }
          }
        });

        // Reduce the per-thread partials and update the centers (thread 0,
        // as in the Rodinia host-side reduction).
        {
          trace::Tracer::LoopScope lc(t);
          for (std::size_t c = 0; c < k; ++c) {
            lc.iteration();
            auto total = trace::imm<std::int64_t>(t, 0);
            std::array<trace::Traced<double>, kDim> dim_sum;
            for (std::size_t d = 0; d < kDim; ++d) dim_sum[d] = trace::imm(t, 0.0);
            trace::Tracer::LoopScope lt(t);
            for (std::size_t th = 0; th < threads; ++th) {
              lt.iteration();
              total = total + counts.load(th * cnt_stride + c);
              for (std::size_t d = 0; d < kDim; ++d)
                dim_sum[d] = dim_sum[d] +
                             sums.load(th * acc_stride + c * kDim + d);
            }
            if (take(total != trace::imm<std::int64_t>(t, 0))) {
              for (std::size_t d = 0; d < kDim; ++d) {
                auto denom = trace::imm(t, static_cast<double>(total.value));
                centers.store(c * kDim + d, dim_sum[d] / denom);
              }
            }
          }
        }
      }
    }
    t.end_kernel();
  }
};

}  // namespace

const Workload& kmeans_workload() {
  static const KmeansWorkload w;
  return w;
}

}  // namespace napel::workloads
