// gemver (PolyBench; "gemv" in the paper's Table 2): vector multiplication
// and matrix addition — A = A + u1·v1ᵀ + u2·v2ᵀ; x = β·Aᵀ·y + z; w = α·A·x.
#include "workloads/kernels/kernel_utils.hpp"
#include "workloads/kernels/kernels.hpp"

namespace napel::workloads {

namespace {

class GemverWorkload final : public Workload {
 public:
  std::string_view name() const override { return "gemver"; }
  std::string_view description() const override {
    return "Vector multiply and matrix addition (PolyBench gemver)";
  }

  DoeSpace doe_space(Scale scale) const override {
    switch (scale) {
      case Scale::kPaper:
        return {{DoeParam("dimension", {500, 750, 1250, 2000, 2250}, 8000),
                 DoeParam("threads", {4, 8, 16, 32, 64}, 32),
                 DoeParam("iterations", {50, 60, 80, 100, 150}, 60)}};
      case Scale::kBench:
        return {{DoeParam("dimension", {32, 48, 64, 96, 128}, 128),
                 DoeParam("threads", {4, 8, 16, 32, 64}, 32),
                 DoeParam("iterations", {1, 2, 3, 4, 5}, 2)}};
      case Scale::kTiny:
        return {{DoeParam("dimension", {6, 8, 10, 12, 16}, 12),
                 DoeParam("threads", {1, 2, 4, 8, 16}, 4),
                 DoeParam("iterations", {1, 2, 3, 4, 5}, 2)}};
    }
    napel::check_failed("valid scale", __FILE__, __LINE__, "");
  }

  void run(trace::Tracer& t, const WorkloadParams& p,
           std::uint64_t seed) const override {
    const auto n = static_cast<std::size_t>(p.get("dimension"));
    const auto threads = static_cast<unsigned>(p.get("threads"));
    const auto iterations = static_cast<std::size_t>(p.get("iterations"));
    Rng rng(seed);

    trace::TArray<double> a(t, n * n);
    trace::TArray<double> u1(t, n), v1(t, n), u2(t, n), v2(t, n);
    trace::TArray<double> x(t, n), y(t, n), z(t, n), w(t, n);
    for (auto* arr : {&a}) detail::fill_uniform(*arr, rng, 0.0, 1.0);
    for (auto* arr : {&u1, &v1, &u2, &v2, &y, &z})
      detail::fill_uniform(*arr, rng, 0.0, 1.0);
    const double alpha = 1.5, beta = 1.2;

    t.begin_kernel(name(), threads);
    {
      trace::Tracer::LoopScope liter(t);
      for (std::size_t it = 0; it < iterations; ++it) {
        liter.iteration();

        // A += u1·v1ᵀ + u2·v2ᵀ
        detail::parallel_range(t, n, [&](std::size_t b, std::size_t e) {
          trace::Tracer::LoopScope li(t);
          for (std::size_t i = b; i < e; ++i) {
            li.iteration();
            auto u1i = u1.load(i);
            auto u2i = u2.load(i);
            trace::Tracer::LoopScope lj(t);
            for (std::size_t j = 0; j < n; ++j) {
              lj.iteration();
              auto v = a.load(i * n + j) + u1i * v1.load(j) + u2i * v2.load(j);
              a.store(i * n + j, v);
            }
          }
        });

        // x = β·Aᵀ·y + z  (column-major walk)
        detail::parallel_range(t, n, [&](std::size_t b, std::size_t e) {
          trace::Tracer::LoopScope lj(t);
          for (std::size_t j = b; j < e; ++j) {
            lj.iteration();
            auto acc = trace::imm(t, 0.0);
            trace::Tracer::LoopScope li(t);
            for (std::size_t i = 0; i < n; ++i) {
              li.iteration();
              acc = acc + a.load(i * n + j) * y.load(i);
            }
            x.store(j, trace::imm(t, beta) * acc + z.load(j));
          }
        });

        // w = α·A·x  (row-major walk)
        detail::parallel_range(t, n, [&](std::size_t b, std::size_t e) {
          trace::Tracer::LoopScope li(t);
          for (std::size_t i = b; i < e; ++i) {
            li.iteration();
            auto acc = trace::imm(t, 0.0);
            trace::Tracer::LoopScope lj(t);
            for (std::size_t j = 0; j < n; ++j) {
              lj.iteration();
              acc = acc + a.load(i * n + j) * x.load(j);
            }
            w.store(i, trace::imm(t, alpha) * acc);
          }
        });
      }
    }
    t.end_kernel();
  }
};

}  // namespace

const Workload& gemver_workload() {
  static const GemverWorkload w;
  return w;
}

}  // namespace napel::workloads
