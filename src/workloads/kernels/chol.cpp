// cholesky (PolyBench): in-place Cholesky factorization A = L·Lᵀ of a
// symmetric positive-definite matrix. Each DoE `iteration` re-copies the
// pristine input and re-factorizes it, as the benchmarked region does when
// run for multiple repetitions.
#include "workloads/kernels/kernel_utils.hpp"
#include "workloads/kernels/kernels.hpp"

namespace napel::workloads {

namespace {

class CholWorkload final : public Workload {
 public:
  std::string_view name() const override { return "cholesky"; }
  std::string_view description() const override {
    return "Cholesky decomposition of an SPD matrix (PolyBench)";
  }

  DoeSpace doe_space(Scale scale) const override {
    switch (scale) {
      case Scale::kPaper:
        // Table 2 prints (64, 384, 128, 320, 512); normalized ascending.
        return {{DoeParam("dimension", {64, 128, 320, 384, 512}, 2000),
                 DoeParam("threads", {4, 8, 16, 32, 64}, 32),
                 DoeParam("iterations", {10, 20, 30, 50, 80}, 60)}};
      case Scale::kBench:
        return {{DoeParam("dimension", {16, 24, 32, 48, 64}, 64),
                 DoeParam("threads", {4, 8, 16, 32, 64}, 32),
                 DoeParam("iterations", {1, 2, 3, 4, 5}, 2)}};
      case Scale::kTiny:
        return {{DoeParam("dimension", {6, 8, 10, 12, 16}, 12),
                 DoeParam("threads", {1, 2, 4, 8, 16}, 4),
                 DoeParam("iterations", {1, 2, 3, 4, 5}, 2)}};
    }
    napel::check_failed("valid scale", __FILE__, __LINE__, "");
  }

  void run(trace::Tracer& t, const WorkloadParams& p,
           std::uint64_t seed) const override {
    const auto n = static_cast<std::size_t>(p.get("dimension"));
    const auto threads = static_cast<unsigned>(p.get("threads"));
    const auto iterations = static_cast<std::size_t>(p.get("iterations"));
    Rng rng(seed);

    trace::TArray<double> a(t, n * n);    // pristine input
    trace::TArray<double> l(t, n * n);    // working copy, factored in place
    detail::fill_spd(a, n, rng);

    t.begin_kernel(name(), threads);
    {
      trace::Tracer::LoopScope liter(t);
      for (std::size_t it = 0; it < iterations; ++it) {
        liter.iteration();

        // work := A (streaming copy).
        detail::parallel_range(t, n * n, [&](std::size_t b, std::size_t e) {
          trace::Tracer::LoopScope lc(t);
          for (std::size_t i = b; i < e; ++i) {
            lc.iteration();
            l.store(i, a.load(i));
          }
        });

        // Right-looking factorization; the column update is partitioned
        // across threads.
        trace::Tracer::LoopScope lk(t);
        for (std::size_t k = 0; k < n; ++k) {
          lk.iteration();
          auto pivot = tsqrt(l.load(k * n + k));
          l.store(k * n + k, pivot);
          detail::parallel_range(t, n - k - 1, [&](std::size_t b,
                                                   std::size_t e) {
            trace::Tracer::LoopScope li(t);
            for (std::size_t off = b; off < e; ++off) {
              li.iteration();
              const std::size_t i = k + 1 + off;
              l.store(i * n + k, l.load(i * n + k) / pivot);
            }
          });
          detail::parallel_range(t, n - k - 1, [&](std::size_t b,
                                                   std::size_t e) {
            trace::Tracer::LoopScope li(t);
            for (std::size_t off = b; off < e; ++off) {
              li.iteration();
              const std::size_t i = k + 1 + off;
              auto lik = l.load(i * n + k);
              trace::Tracer::LoopScope lj(t);
              for (std::size_t j = k + 1; j <= i; ++j) {
                lj.iteration();
                auto v = l.load(i * n + j) - lik * l.load(j * n + k);
                l.store(i * n + j, v);
              }
            }
          });
        }
      }
    }
    t.end_kernel();
  }
};

}  // namespace

const Workload& chol_workload() {
  static const CholWorkload w;
  return w;
}

}  // namespace napel::workloads
