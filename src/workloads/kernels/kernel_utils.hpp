// Shared helpers for kernel implementations: SPMD thread partitioning and
// untraced input-data initialization.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "trace/traced.hpp"
#include "trace/tracer.hpp"

namespace napel::workloads::detail {

/// Splits [0, n) into `n_threads` near-equal contiguous chunks and invokes
/// fn(begin, end) for each, with the tracer's current thread set to the
/// chunk's owner. Chunks may be empty when n < n_threads. This models the
/// static OpenMP-style partitioning of the original benchmark kernels.
template <typename Fn>
void parallel_range(trace::Tracer& t, std::size_t n, Fn&& fn) {
  const unsigned nt = t.n_threads();
  NAPEL_CHECK(nt >= 1);
  const std::size_t chunk = n / nt;
  const std::size_t rem = n % nt;
  std::size_t begin = 0;
  for (unsigned tid = 0; tid < nt; ++tid) {
    const std::size_t len = chunk + (tid < rem ? 1 : 0);
    t.set_thread(tid);
    if (len > 0) fn(begin, begin + len);
    begin += len;
  }
  t.set_thread(0);
}

/// Fills a traced array with uniform values in [lo, hi) without tracing
/// (input setup is not part of the offloaded kernel).
template <typename T>
void fill_uniform(trace::TArray<T>& a, Rng& rng, double lo, double hi) {
  for (std::size_t i = 0; i < a.size(); ++i)
    a.raw(i) = static_cast<T>(rng.uniform(lo, hi));
}

/// Fills an n×n row-major matrix so it is symmetric positive definite:
/// A = (1/n)·B·Bᵀ + n·I with B uniform in [0,1).
template <typename T>
void fill_spd(trace::TArray<T>& a, std::size_t n, Rng& rng) {
  NAPEL_CHECK(a.size() == n * n);
  std::vector<double> b(n * n);
  for (auto& x : b) x = rng.uniform();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < n; ++k) s += b[i * n + k] * b[j * n + k];
      const double v = s / static_cast<double>(n);
      a.raw(i * n + j) = static_cast<T>(v);
      a.raw(j * n + i) = static_cast<T>(v);
    }
    a.raw(i * n + i) += static_cast<T>(n);
  }
}

}  // namespace napel::workloads::detail
