// syrk (PolyBench): symmetric rank-k update — C = α·A·Aᵀ + β·C, where C is
// n_i × n_i and A is n_i × n_j; only the lower triangle is computed.
#include "workloads/kernels/kernel_utils.hpp"
#include "workloads/kernels/kernels.hpp"

namespace napel::workloads {

namespace {

class SyrkWorkload final : public Workload {
 public:
  std::string_view name() const override { return "syrk"; }
  std::string_view description() const override {
    return "Symmetric rank-k update (PolyBench syrk)";
  }

  DoeSpace doe_space(Scale scale) const override {
    switch (scale) {
      case Scale::kPaper:
        return {{DoeParam("dimension_i", {64, 128, 320, 512, 640}, 2000),
                 DoeParam("dimension_j", {64, 128, 320, 512, 640}, 2000),
                 DoeParam("threads", {4, 8, 16, 32, 64}, 32)}};
      case Scale::kBench:
        return {{DoeParam("dimension_i", {16, 24, 32, 48, 64}, 64),
                 DoeParam("dimension_j", {8, 12, 16, 24, 32}, 32),
                 DoeParam("threads", {4, 8, 16, 32, 64}, 32)}};
      case Scale::kTiny:
        return {{DoeParam("dimension_i", {6, 8, 10, 12, 16}, 12),
                 DoeParam("dimension_j", {4, 6, 8, 10, 12}, 8),
                 DoeParam("threads", {1, 2, 4, 8, 16}, 4)}};
    }
    napel::check_failed("valid scale", __FILE__, __LINE__, "");
  }

  void run(trace::Tracer& t, const WorkloadParams& p,
           std::uint64_t seed) const override {
    const auto n = static_cast<std::size_t>(p.get("dimension_i"));
    const auto m = static_cast<std::size_t>(p.get("dimension_j"));
    const auto threads = static_cast<unsigned>(p.get("threads"));
    Rng rng(seed);

    trace::TArray<double> a(t, n * m);
    trace::TArray<double> c(t, n * n);
    detail::fill_uniform(a, rng, 0.0, 1.0);
    detail::fill_uniform(c, rng, 0.0, 1.0);
    const double alpha = 1.5, beta = 1.2;

    t.begin_kernel(name(), threads);

    detail::parallel_range(t, n, [&](std::size_t b, std::size_t e) {
      trace::Tracer::LoopScope li(t);
      for (std::size_t i = b; i < e; ++i) {
        li.iteration();
        trace::Tracer::LoopScope lj(t);
        for (std::size_t j = 0; j <= i; ++j) {
          lj.iteration();
          auto acc = trace::imm(t, beta) * c.load(i * n + j);
          trace::Tracer::LoopScope lk(t);
          for (std::size_t k = 0; k < m; ++k) {
            lk.iteration();
            acc = acc + trace::imm(t, alpha) * a.load(i * m + k) *
                            a.load(j * m + k);
          }
          c.store(i * n + j, acc);
        }
      }
    });

    t.end_kernel();
  }
};

}  // namespace

const Workload& syrk_workload() {
  static const SyrkWorkload w;
  return w;
}

}  // namespace napel::workloads
