// Workload input-parameter model: named integer parameters with the paper's
// five DoE levels (minimum, low, central, high, maximum) plus the held-out
// `test` input used for the suitability analysis (Table 2).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace napel::workloads {

/// Input scale for a workload's DoE level table.
///  * kPaper — the exact levels printed in Table 2 of the paper (hours of
///    simulation per configuration; retained for reference and for users
///    with that much compute).
///  * kBench — proportionally scaled-down levels used by the shipped
///    benchmarks so the full pipeline runs on one machine in minutes.
///  * kTiny  — very small levels for unit tests.
enum class Scale { kPaper, kBench, kTiny };

/// Five CCD levels of one input parameter, plus the test input.
struct DoeParam {
  std::string name;
  // levels[0..4] = minimum, low, central, high, maximum. Levels are
  // normalized (sorted ascending) on construction; the paper's Table 2
  // contains non-monotonic rows (e.g. chol) that are evident typos.
  std::array<std::int64_t, 5> levels{};
  std::int64_t test = 0;

  DoeParam() = default;
  DoeParam(std::string name_, std::array<std::int64_t, 5> levels_,
           std::int64_t test_);

  std::int64_t minimum() const { return levels[0]; }
  std::int64_t low() const { return levels[1]; }
  std::int64_t central() const { return levels[2]; }
  std::int64_t high() const { return levels[3]; }
  std::int64_t maximum() const { return levels[4]; }
};

/// The DoE parameter space of one workload: an ordered list of parameters.
struct DoeSpace {
  std::vector<DoeParam> params;

  std::size_t dimension() const { return params.size(); }
  const DoeParam& param(std::string_view name) const;
  bool has_param(std::string_view name) const;
};

/// A concrete input configuration: parameter name -> value.
class WorkloadParams {
 public:
  WorkloadParams() = default;
  explicit WorkloadParams(std::map<std::string, std::int64_t> values)
      : values_(std::move(values)) {}

  std::int64_t get(std::string_view name) const;
  /// Returns fallback when the parameter is absent.
  std::int64_t get_or(std::string_view name, std::int64_t fallback) const;
  void set(std::string_view name, std::int64_t value);
  bool has(std::string_view name) const;
  std::size_t size() const { return values_.size(); }
  const std::map<std::string, std::int64_t>& values() const { return values_; }

  /// "dim=100,threads=4" — stable, sorted-by-name rendering.
  std::string to_string() const;

  /// The test input configuration of a space (Table 2 "Test" column).
  static WorkloadParams test_input(const DoeSpace& space);
  /// The central configuration of a space.
  static WorkloadParams central(const DoeSpace& space);

  bool operator==(const WorkloadParams&) const = default;

 private:
  std::map<std::string, std::int64_t> values_;
};

}  // namespace napel::workloads
