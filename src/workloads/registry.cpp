#include "workloads/registry.hpp"

#include <array>

#include "common/check.hpp"
#include "workloads/kernels/kernels.hpp"

namespace napel::workloads {

namespace {

const std::array<const Workload*, 12>& table() {
  static const std::array<const Workload*, 12> t = {
      &atax_workload(),    &bfs_workload(),     &bp_workload(),
      &chol_workload(),    &gemver_workload(),  &gesummv_workload(),
      &gramschmidt_workload(), &kmeans_workload(), &lu_workload(),
      &mvt_workload(),     &syrk_workload(),    &trmm_workload(),
  };
  return t;
}

const std::array<const Workload*, 3>& extended_table() {
  static const std::array<const Workload*, 3> t = {
      &gemm_workload(), &jacobi2d_workload(), &spmv_workload()};
  return t;
}

}  // namespace

std::span<const Workload* const> all_workloads() { return table(); }

std::span<const Workload* const> extended_workloads() {
  return extended_table();
}

const Workload& workload(std::string_view name) {
  for (const Workload* w : table())
    if (w->name() == name) return *w;
  for (const Workload* w : extended_table())
    if (w->name() == name) return *w;
  napel::check_failed("workload exists", __FILE__, __LINE__,
                      "unknown workload: " + std::string(name));
}

bool has_workload(std::string_view name) {
  for (const Workload* w : table())
    if (w->name() == name) return true;
  for (const Workload* w : extended_table())
    if (w->name() == name) return true;
  return false;
}

}  // namespace napel::workloads
