#include "workloads/params.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"

namespace napel::workloads {

DoeParam::DoeParam(std::string name_, std::array<std::int64_t, 5> levels_,
                   std::int64_t test_)
    : name(std::move(name_)), levels(levels_), test(test_) {
  NAPEL_CHECK(!name.empty());
  std::sort(levels.begin(), levels.end());
  NAPEL_CHECK_MSG(levels[0] >= 1, "DoE levels must be positive");
  NAPEL_CHECK_MSG(std::adjacent_find(levels.begin(), levels.end()) ==
                      levels.end(),
                  "DoE levels must be distinct: " + name);
}

const DoeParam& DoeSpace::param(std::string_view name) const {
  for (const auto& p : params)
    if (p.name == name) return p;
  napel::check_failed("param exists", __FILE__, __LINE__,
                      "no DoE parameter named " + std::string(name));
}

bool DoeSpace::has_param(std::string_view name) const {
  for (const auto& p : params)
    if (p.name == name) return true;
  return false;
}

std::int64_t WorkloadParams::get(std::string_view name) const {
  const auto it = values_.find(std::string(name));
  NAPEL_CHECK_MSG(it != values_.end(),
                  "missing workload parameter: " + std::string(name));
  return it->second;
}

std::int64_t WorkloadParams::get_or(std::string_view name,
                                    std::int64_t fallback) const {
  const auto it = values_.find(std::string(name));
  return it == values_.end() ? fallback : it->second;
}

void WorkloadParams::set(std::string_view name, std::int64_t value) {
  values_[std::string(name)] = value;
}

bool WorkloadParams::has(std::string_view name) const {
  return values_.contains(std::string(name));
}

std::string WorkloadParams::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [k, v] : values_) {
    if (!first) os << ',';
    os << k << '=' << v;
    first = false;
  }
  return os.str();
}

WorkloadParams WorkloadParams::test_input(const DoeSpace& space) {
  WorkloadParams p;
  for (const auto& dp : space.params) p.set(dp.name, dp.test);
  return p;
}

WorkloadParams WorkloadParams::central(const DoeSpace& space) {
  WorkloadParams p;
  for (const auto& dp : space.params) p.set(dp.name, dp.central());
  return p;
}

}  // namespace napel::workloads
