// Tiny per-PE L1 cache: set-associative, write-back, write-allocate, true
// LRU within each set (Table 3: 2-way, 2 lines of 64 B per PE by default).
#pragma once

#include <cstdint>
#include <vector>

namespace napel::sim {

class L1Cache {
 public:
  L1Cache(unsigned total_lines, unsigned ways, unsigned line_bytes);

  struct AccessResult {
    bool hit = false;
    bool writeback = false;          ///< a dirty victim was evicted
    std::uint64_t writeback_addr = 0; ///< line-aligned byte address
  };

  /// Performs the access (allocating on miss) and reports hit/miss plus any
  /// dirty eviction caused by the fill.
  AccessResult access(std::uint64_t addr, bool is_write);

  /// Lookup without state change (for tests/introspection).
  bool contains(std::uint64_t addr) const;

  void reset();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t writebacks() const { return writebacks_; }
  unsigned line_bytes() const { return line_bytes_; }
  unsigned sets() const { return n_sets_; }
  unsigned ways() const { return ways_; }

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  // last-use stamp; larger = more recent
    bool valid = false;
    bool dirty = false;
  };

  std::uint64_t line_id(std::uint64_t addr) const;

  unsigned ways_;
  unsigned line_bytes_;
  unsigned line_shift_;
  unsigned n_sets_;
  std::vector<Line> lines_;  // n_sets_ * ways_, set-major
  std::uint64_t stamp_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t writebacks_ = 0;
};

}  // namespace napel::sim
