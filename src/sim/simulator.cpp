#include "sim/simulator.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <queue>
#include <string>

#include "common/check.hpp"
#include "common/fault_injection.hpp"
#include "sim/l1_cache.hpp"
#include "sim/vault.hpp"

namespace napel::sim {

namespace {

/// Core occupancy (issue slots) per non-memory instruction: arithmetic is
/// pipelined at one per cycle; divides occupy the (unpipelined) divider.
unsigned issue_cycles(trace::OpType op) {
  switch (op) {
    case trace::OpType::kIntDiv: return 12;
    case trace::OpType::kFpDiv: return 16;
    default: return 1;
  }
}

}  // namespace

struct NmcSimulator::State {
  struct PeOp {
    std::uint64_t addr = 0;
    std::uint32_t gap = 0;  ///< core cycles of non-memory work before this op
    bool is_write = false;
  };
  struct PeStream {
    std::vector<PeOp> ops;
    std::uint64_t pending_gap = 0;  ///< accumulates until the next memory op
    std::uint64_t tail_gap = 0;
    std::uint64_t instructions = 0;
  };

  std::vector<PeStream> pes;
  std::array<std::uint64_t, trace::kNumOpTypes> op_counts{};
  std::uint64_t total_instructions = 0;
  bool ended = false;
};

NmcSimulator::NmcSimulator(ArchConfig cfg, SimBudget budget)
    : cfg_(cfg), budget_(budget), st_(std::make_shared<State>()) {
  cfg_.validate();
}

NmcSimulator::~NmcSimulator() = default;

void NmcSimulator::begin_kernel(std::string_view, unsigned) {
  st_ = std::make_shared<State>();
  st_->pes.resize(cfg_.n_pes);
  ran_ = false;
  result_ = SimResult{};
}

void NmcSimulator::on_instr(const trace::InstrEvent& ev) { ingest(ev); }

// Stream compilation happens here (not in the timing loop), so batched
// delivery pays one virtual call per batch and then runs this tight loop.
// Events arrive in long same-thread runs (SPMD kernels switch threads
// rarely), so the thread → PE resolution — an integer division by the
// runtime n_pes — and the stream pointer are hoisted out to once per run.
void NmcSimulator::on_instr_batch(const trace::InstrEvent* evs,
                                  std::size_t n) {
  if (n == 0) return;
  State& s = *st_;
  s.total_instructions += n;
  const unsigned n_pes = cfg_.n_pes;
  State::PeStream* pe = &s.pes[evs[0].thread % n_pes];
  std::uint16_t run_thread = evs[0].thread;
  for (std::size_t i = 0; i < n; ++i) {
    const trace::InstrEvent& ev = evs[i];
    ++s.op_counts[static_cast<std::size_t>(ev.op)];
    if (ev.thread != run_thread) {
      run_thread = ev.thread;
      pe = &s.pes[run_thread % n_pes];
    }
    ++pe->instructions;
    if (trace::is_memory(ev.op)) {
      pe->ops.push_back({.addr = ev.addr,
                         .gap = static_cast<std::uint32_t>(
                             std::min<std::uint64_t>(pe->pending_gap,
                                                     UINT32_MAX)),
                         .is_write = ev.op == trace::OpType::kStore});
      pe->pending_gap = 0;
    } else {
      pe->pending_gap += issue_cycles(ev.op);
    }
  }
}

// Columnar replay: the stream compiler reads only the op, thread, and
// address columns, so it walks the SoA views directly — per-run PE
// resolution comes free from the thread RLE, and memory addresses stream
// out of the varint cursor in memory-op order (exactly the order this
// loop consumes them). State transitions match on_instr_batch exactly.
void NmcSimulator::consume_columns(const trace::TraceColumns& cols) {
  State& s = *st_;
  const unsigned n_pes = cfg_.n_pes;
  const std::uint8_t* const ops = cols.ops.data();
  trace::MemAddrCursor addr(cols.mem_addr_deltas);
  s.total_instructions += cols.ops.size();
  std::size_t i = 0;
  for (const trace::ThreadRun& run : cols.thread_runs) {
    State::PeStream& pe = s.pes[run.thread % n_pes];
    pe.instructions += run.count;
    for (const std::size_t end = i + run.count; i < end; ++i) {
      const auto op = static_cast<trace::OpType>(ops[i]);
      ++s.op_counts[static_cast<std::size_t>(op)];
      if (trace::is_memory(op)) {
        pe.ops.push_back({.addr = addr.next(),
                          .gap = static_cast<std::uint32_t>(
                              std::min<std::uint64_t>(pe.pending_gap,
                                                      UINT32_MAX)),
                          .is_write = op == trace::OpType::kStore});
        pe.pending_gap = 0;
      } else {
        pe.pending_gap += issue_cycles(op);
      }
    }
  }
}

void NmcSimulator::ingest(const trace::InstrEvent& ev) {
  State& s = *st_;
  ++s.total_instructions;
  ++s.op_counts[static_cast<std::size_t>(ev.op)];
  State::PeStream& pe = s.pes[ev.thread % cfg_.n_pes];
  ++pe.instructions;
  if (trace::is_memory(ev.op)) {
    pe.ops.push_back({.addr = ev.addr,
                      .gap = static_cast<std::uint32_t>(std::min<std::uint64_t>(
                          pe.pending_gap, UINT32_MAX)),
                      .is_write = ev.op == trace::OpType::kStore});
    pe.pending_gap = 0;
  } else {
    pe.pending_gap += issue_cycles(ev.op);
  }
}

void NmcSimulator::end_kernel() {
  for (auto& pe : st_->pes) {
    pe.tail_gap = pe.pending_gap;
    pe.pending_gap = 0;
  }
  st_->ended = true;
}

void NmcSimulator::share_stream_from(const NmcSimulator& donor) {
  NAPEL_CHECK_MSG(donor.st_->ended,
                  "share_stream_from requires a completed donor kernel");
  NAPEL_CHECK_MSG(cfg_.n_pes == donor.cfg_.n_pes,
                  "stream sharing requires matching n_pes (thread → PE "
                  "mapping must be identical)");
  st_ = donor.st_;
  ran_ = false;
  result_ = SimResult{};
}

const SimResult& NmcSimulator::result() {
  NAPEL_CHECK_MSG(st_->ended, "result() requires a completed kernel run");
  if (!ran_) {
    run();
    ran_ = true;
  }
  return result_;
}

void NmcSimulator::run() {
  const State& s = *st_;  // possibly shared across simulators: read-only
  const unsigned line_bytes = cfg_.cache_line_bytes;
  const unsigned line_shift =
      static_cast<unsigned>(std::countr_zero(line_bytes));
  const unsigned n_vaults = cfg_.n_vaults;

  std::vector<L1Cache> caches;
  caches.reserve(cfg_.n_pes);
  for (unsigned p = 0; p < cfg_.n_pes; ++p)
    caches.emplace_back(cfg_.cache_lines, cfg_.cache_ways, line_bytes);

  std::vector<Vault> vaults;
  vaults.reserve(n_vaults);
  const unsigned lines_per_row =
      std::max(1u, cfg_.row_buffer_bytes / line_bytes);
  for (unsigned v = 0; v < n_vaults; ++v)
    vaults.emplace_back(cfg_.banks_per_vault(), cfg_.timing, line_bytes,
                        cfg_.row_policy, lines_per_row);

  // Per-PE replay cursor. `pending` holds an L1 miss whose DRAM access must
  // be issued at `wake` in global cycle order.
  struct Cursor {
    std::size_t pos = 0;
    bool has_pending = false;
    std::uint64_t pending_line = 0;
    bool pending_is_write = false;
    bool pending_wb = false;
    std::uint64_t pending_wb_line = 0;
  };
  std::vector<Cursor> cur(cfg_.n_pes);

  struct HeapEntry {
    std::uint64_t cycle;
    std::uint32_t pe;
    bool operator>(const HeapEntry& o) const {
      return cycle != o.cycle ? cycle > o.cycle : pe > o.pe;
    }
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap;

  for (unsigned p = 0; p < cfg_.n_pes; ++p)
    if (s.pes[p].instructions > 0) heap.push({0, p});

  std::uint64_t makespan = 0;
  std::uint64_t miss_latency_sum = 0;
  std::uint64_t miss_count = 0;
  std::uint64_t drained = 0;
  std::uint64_t horizon = 0;  ///< highest cycle popped so far

  // Progress invariant bookkeeping: every drained event must either advance
  // the PE's replay cursor or reschedule it at a strictly later cycle. A
  // scheduling bug that violates this would otherwise spin the event loop
  // forever — we make it fail loudly instead.
  constexpr std::uint64_t kNoCycle = ~std::uint64_t{0};
  std::vector<std::uint64_t> last_cycle(cfg_.n_pes, kNoCycle);
  std::vector<std::size_t> last_pos(cfg_.n_pes, 0);

  auto vault_of = [&](std::uint64_t line_id) {
    return static_cast<std::size_t>(line_id % n_vaults);
  };
  auto bank_line = [&](std::uint64_t line_id) { return line_id / n_vaults; };

  while (!heap.empty()) {
    const auto [cycle, pe_id] = heap.top();
    heap.pop();
    ++drained;
    horizon = cycle;

    // Per-simulation watchdog: stop at the budget instead of aborting, so
    // the caller can drop this design point and keep the run alive.
    if ((budget_.max_cycles != 0 && cycle > budget_.max_cycles) ||
        (budget_.max_events != 0 && drained > budget_.max_events)) {
      result_.cycles_budget_exhausted = true;
      break;
    }

    Cursor& c = cur[pe_id];
    NAPEL_CHECK_MSG(
        last_cycle[pe_id] == kNoCycle || cycle > last_cycle[pe_id] ||
            c.pos > last_pos[pe_id],
        "simulator progress invariant violated: PE " +
            std::to_string(pe_id) + " rescheduled at cycle " +
            std::to_string(cycle) + " without advancing");
    last_cycle[pe_id] = cycle;
    last_pos[pe_id] = c.pos;

    if (faults_) {
      if (const FaultSpec* f = faults_->fire("sim/schedule", drained - 1);
          f && f->kind == FaultKind::kHang) {
        // Injected scheduling bug: re-queue the event with no progress.
        heap.push({cycle, pe_id});
        continue;
      }
    }
    const State::PeStream& pe = s.pes[pe_id];
    L1Cache& l1 = caches[pe_id];
    std::uint64_t now = cycle;

    if (c.has_pending) {
      // Issue the deferred DRAM access in global order.
      const std::uint64_t ready =
          vaults[vault_of(c.pending_line)].enqueue(
              bank_line(c.pending_line), c.pending_is_write, now);
      // Write-allocate fills are reads; the dirty-victim writeback rides
      // behind without blocking the core.
      if (c.pending_wb)
        vaults[vault_of(c.pending_wb_line)].enqueue(
            bank_line(c.pending_wb_line), true, now);
      miss_latency_sum += ready - now;
      ++miss_count;
      now = ready;
      c.has_pending = false;
      ++c.pos;
    }

    // Replay ops inline until the next L1 miss (PE-private work only).
    while (c.pos < pe.ops.size()) {
      const State::PeOp& op = pe.ops[c.pos];
      now += op.gap;   // pipelined non-memory work
      now += 1;        // L1 access
      const auto res = l1.access(op.addr, op.is_write);
      if (res.hit) {
        ++c.pos;
        continue;
      }
      // Miss: defer the DRAM enqueue so vaults observe requests in global
      // cycle order. The line fetch itself is a read even for store misses.
      c.has_pending = true;
      c.pending_line = op.addr >> line_shift;
      c.pending_is_write = false;
      c.pending_wb = res.writeback;
      c.pending_wb_line = res.writeback_addr >> line_shift;
      heap.push({now, pe_id});
      break;
    }

    if (!c.has_pending && c.pos >= pe.ops.size()) {
      makespan = std::max(makespan, now + pe.tail_gap);
    }
  }

  // --- assemble results ---
  SimResult& r = result_;
  r.instructions = s.total_instructions;
  r.sched_events = drained;
  // On budget exhaustion no PE may have finished; the popped-cycle horizon
  // is the best lower bound on the makespan of the simulated prefix.
  if (r.cycles_budget_exhausted) makespan = std::max(makespan, horizon);
  r.cycles = std::max<std::uint64_t>(makespan, 1);
  r.ipc = static_cast<double>(r.instructions) / static_cast<double>(r.cycles);
  r.time_seconds =
      static_cast<double>(r.cycles) / (cfg_.core_freq_ghz * 1e9);

  for (const auto& l1 : caches) {
    r.l1_hits += l1.hits();
    r.l1_misses += l1.misses();
    r.l1_writebacks += l1.writebacks();
  }
  for (const auto& v : vaults) {
    r.dram_reads += v.reads();
    r.dram_writes += v.writes();
    r.dram_activations += v.activations();
    r.dram_row_hits += v.row_hits();
  }
  r.avg_mem_latency_cycles =
      miss_count == 0 ? 0.0
                      : static_cast<double>(miss_latency_sum) /
                            static_cast<double>(miss_count);

  const EnergyModel& e = cfg_.energy;
  auto cnt = [&](trace::OpType op) {
    return static_cast<double>(s.op_counts[static_cast<std::size_t>(op)]);
  };
  const double int_ops = cnt(trace::OpType::kIntAlu) +
                         cnt(trace::OpType::kIntMul) +
                         cnt(trace::OpType::kIntDiv);
  const double fp_ops = cnt(trace::OpType::kFpAdd) +
                        cnt(trace::OpType::kFpMul) +
                        cnt(trace::OpType::kFpDiv);
  const double mem_ops =
      cnt(trace::OpType::kLoad) + cnt(trace::OpType::kStore);
  const double branches = cnt(trace::OpType::kBranch);

  r.core_energy_j = (int_ops * e.pj_int_op + fp_ops * e.pj_fp_op +
                     mem_ops * e.pj_mem_op + branches * e.pj_branch) *
                    1e-12;
  // Fills re-access the array after the DRAM response.
  r.cache_energy_j = (static_cast<double>(r.l1_hits + r.l1_misses) +
                      static_cast<double>(r.l1_misses)) *
                     e.pj_l1_access * 1e-12;
  r.dram_energy_j =
      (static_cast<double>(r.dram_activations) * e.pj_dram_activate +
       static_cast<double>(r.dram_reads + r.dram_writes) *
           static_cast<double>(line_bytes) * e.pj_dram_per_byte) *
      1e-12;
  r.static_energy_j = (static_cast<double>(cfg_.n_pes) *
                           e.watt_static_per_pe +
                       e.watt_static_dram) *
                      r.time_seconds;
  r.energy_joules = r.core_energy_j + r.cache_energy_j + r.dram_energy_j +
                    r.static_energy_j;
  r.edp = r.energy_joules * r.time_seconds;
}

}  // namespace napel::sim
