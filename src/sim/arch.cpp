#include "sim/arch.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <iterator>
#include <sstream>

#include "common/check.hpp"

namespace napel::sim {

void ArchConfig::validate() const {
  NAPEL_CHECK(n_pes >= 1 && n_pes <= 1024);
  NAPEL_CHECK(core_freq_ghz > 0.0 && core_freq_ghz <= 10.0);
  NAPEL_CHECK_MSG(std::has_single_bit(cache_line_bytes),
                  "cache line size must be a power of two");
  NAPEL_CHECK(cache_line_bytes >= 16 && cache_line_bytes <= 512);
  NAPEL_CHECK(cache_lines >= 1);
  NAPEL_CHECK(cache_ways >= 1 && cache_ways <= cache_lines);
  NAPEL_CHECK_MSG(cache_lines % cache_ways == 0,
                  "cache lines must divide evenly into ways");
  NAPEL_CHECK_MSG(std::has_single_bit(cache_lines / cache_ways),
                  "cache set count must be a power of two");
  NAPEL_CHECK(dram_layers >= 1 && dram_layers <= 16);
  NAPEL_CHECK_MSG(std::has_single_bit(n_vaults), "vault count power of two");
  NAPEL_CHECK(dram_bytes >= (1ULL << 20));
  NAPEL_CHECK(row_buffer_bytes >= cache_line_bytes);
  NAPEL_CHECK(timing.t_rcd >= 1 && timing.t_cl >= 1 && timing.t_rp >= 1);
}

ArchConfig ArchConfig::paper_default() { return ArchConfig{}; }

std::vector<double> ArchConfig::features() const {
  return {
      static_cast<double>(n_pes),
      core_freq_ghz,
      static_cast<double>(cache_line_bytes),
      static_cast<double>(cache_lines),
      static_cast<double>(dram_layers),
      std::log2(static_cast<double>(dram_bytes)),
      static_cast<double>(n_vaults),
      static_cast<double>(row_buffer_bytes),
  };
}

const std::vector<std::string>& ArchConfig::feature_names() {
  static const std::vector<std::string> names = {
      "arch_n_pes",        "arch_core_freq_ghz", "arch_cache_line_bytes",
      "arch_cache_lines",  "arch_dram_layers",   "arch_log_dram_bytes",
      "arch_n_vaults",     "arch_row_buffer_bytes",
  };
  return names;
}

std::string ArchConfig::to_string() const {
  std::ostringstream os;
  os << "pes=" << n_pes << ",freq=" << core_freq_ghz
     << ",line=" << cache_line_bytes << ",lines=" << cache_lines
     << ",layers=" << dram_layers << ",vaults=" << n_vaults;
  return os.str();
}

bool ArchConfig::operator==(const ArchConfig& o) const {
  return n_pes == o.n_pes && core_freq_ghz == o.core_freq_ghz &&
         cache_line_bytes == o.cache_line_bytes &&
         cache_lines == o.cache_lines && cache_ways == o.cache_ways &&
         dram_layers == o.dram_layers && n_vaults == o.n_vaults &&
         dram_bytes == o.dram_bytes && row_buffer_bytes == o.row_buffer_bytes;
}

namespace {

// The design-point sampling pool: one level table per varied parameter.
// arch_feature_ranges() derives the declared feature domain from the same
// tables, so the pool and its certificate cannot drift apart.
constexpr unsigned kPes[] = {8, 16, 32, 64};
constexpr double kFreq[] = {0.8, 1.0, 1.25, 1.6, 2.0};
constexpr unsigned kLine[] = {32, 64, 128};
constexpr unsigned kLines[] = {2, 4, 8, 16, 32};
constexpr unsigned kLayers[] = {4, 8, 16};
constexpr unsigned kVaults[] = {16, 32};

}  // namespace

std::vector<ArchConfig> sample_arch_configs(std::size_t n, Rng& rng) {
  NAPEL_CHECK(n >= 1);
  std::vector<ArchConfig> out;
  out.reserve(n);
  out.push_back(ArchConfig::paper_default());
  while (out.size() < n) {
    ArchConfig c;
    c.n_pes = kPes[rng.uniform_index(std::size(kPes))];
    c.core_freq_ghz = kFreq[rng.uniform_index(std::size(kFreq))];
    c.cache_line_bytes = kLine[rng.uniform_index(std::size(kLine))];
    c.cache_lines = kLines[rng.uniform_index(std::size(kLines))];
    c.cache_ways = c.cache_lines >= 2 ? 2 : 1;
    c.dram_layers = kLayers[rng.uniform_index(std::size(kLayers))];
    c.n_vaults = kVaults[rng.uniform_index(std::size(kVaults))];
    c.validate();
    out.push_back(c);
  }
  return out;
}

const std::vector<std::pair<double, double>>& arch_feature_ranges() {
  static const std::vector<std::pair<double, double>> ranges = [] {
    const auto span = [](const auto& levels) {
      return std::pair<double, double>(
          static_cast<double>(*std::min_element(std::begin(levels),
                                                std::end(levels))),
          static_cast<double>(*std::max_element(std::begin(levels),
                                                std::end(levels))));
    };
    const ArchConfig dflt = ArchConfig::paper_default();
    // Same order as ArchConfig::feature_names(). Parameters the pool never
    // varies collapse to the default's point value.
    std::vector<std::pair<double, double>> r = {
        span(kPes),                                  // arch_n_pes
        span(kFreq),                                 // arch_core_freq_ghz
        span(kLine),                                 // arch_cache_line_bytes
        span(kLines),                                // arch_cache_lines
        span(kLayers),                               // arch_dram_layers
        {std::log2(static_cast<double>(dflt.dram_bytes)),
         std::log2(static_cast<double>(dflt.dram_bytes))},  // arch_log_dram_bytes
        span(kVaults),                               // arch_n_vaults
        {static_cast<double>(dflt.row_buffer_bytes),
         static_cast<double>(dflt.row_buffer_bytes)},  // arch_row_buffer_bytes
    };
    NAPEL_CHECK(r.size() == ArchConfig::feature_names().size());
    return r;
  }();
  return ranges;
}

}  // namespace napel::sim
