// Off-chip serializer/deserializer link (Table 3: 16-bit full duplex SerDes
// @ 15 Gbps) and the host→NMC offload cost model built on it.
//
// The paper's evaluation charges the kernel only for its near-memory
// execution (the data already lives in the stack); the offload cost model
// is provided for studies that want to include the control transfer and
// any host-side dirty data that must be flushed across the link first.
#pragma once

#include <cstdint>

namespace napel::sim {

struct LinkConfig {
  unsigned lanes = 16;            ///< full-duplex lane pairs
  double gbps_per_lane = 15.0;    ///< per-lane signalling rate
  double protocol_efficiency = 0.8;  ///< flit/CRC overhead
  double launch_latency_us = 5.0;    ///< kernel-offload round trip
  double pj_per_bit = 2.0;           ///< SerDes energy

  /// Effective payload bandwidth in bytes/second (one direction).
  double bandwidth_bytes_per_s() const {
    return static_cast<double>(lanes) * gbps_per_lane * 1e9 / 8.0 *
           protocol_efficiency;
  }
};

struct OffloadCost {
  double seconds = 0.0;
  double energy_joules = 0.0;
};

/// Cost of shipping `bytes` across the link plus the launch round trip.
OffloadCost offload_cost(const LinkConfig& link, std::uint64_t bytes);

}  // namespace napel::sim
