#include "sim/vault.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace napel::sim {

Vault::Vault(unsigned n_banks, const DramTiming& timing, unsigned line_bytes,
             RowPolicy policy, unsigned lines_per_row)
    : banks_(n_banks),
      policy_(policy),
      lines_per_row_(lines_per_row),
      burst_(timing.burst_cycles(line_bytes)),
      t_rcd_(timing.t_rcd),
      t_cl_(timing.t_cl),
      t_rp_(timing.t_rp),
      t_rc_(timing.t_rc(line_bytes)) {
  NAPEL_CHECK(n_banks >= 1);
  NAPEL_CHECK(lines_per_row >= 1);
}

std::uint64_t Vault::enqueue(std::uint64_t line_id, bool is_write,
                             std::uint64_t now) {
  // Row-major bank interleaving: consecutive lines share a row, consecutive
  // rows rotate across banks — sequential streams get row hits under the
  // open policy and bank-level parallelism under both.
  const std::uint64_t row = line_id / lines_per_row_;
  Bank& bank = banks_[static_cast<std::size_t>(row) % banks_.size()];

  // The access starts when the request has arrived, the bank has finished
  // its previous work, and the vault bus can accept a command.
  const std::uint64_t start = std::max({now + 1, bank.free_at, bus_free_});

  // The bus carries the command and, some cycles later, the data burst;
  // model its occupancy as one contiguous slot of `burst_` cycles per
  // request, which serializes bursts without blocking bank parallelism.
  bus_free_ = start + burst_;
  bus_busy_ += burst_;

  unsigned access_latency;  // start -> data transferred
  if (policy_ == RowPolicy::kClosed) {
    access_latency = t_rcd_ + t_cl_ + burst_;
    bank.free_at = start + t_rc_;
    ++activations_;
  } else if (bank.open_row == row) {
    access_latency = t_cl_ + burst_;
    bank.free_at = start + burst_;
    ++row_hits_;
  } else {
    // Row conflict: precharge the old row (if any), activate the new one.
    const unsigned pre = bank.open_row == kNoRow ? 0 : t_rp_;
    access_latency = pre + t_rcd_ + t_cl_ + burst_;
    bank.free_at = start + pre + t_rcd_ + burst_;
    bank.open_row = row;
    ++activations_;
  }

  if (is_write) {
    ++writes_;
    return start + access_latency - t_cl_;  // command retired before CL
  }
  ++reads_;
  return start + access_latency;
}

}  // namespace napel::sim
