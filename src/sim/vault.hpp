// Vault timing model: one DRAM controller per vertical partition of the 3D
// stack (Table 3: 32 vaults × 8 layers, 256 B row buffer). Service timing is
// fully determined at enqueue time by two resources — the vault's shared
// command/data bus and the target bank — plus, under the open-row policy,
// the row latched in the bank's row buffer.
//
// Closed-row (the paper's policy): every access is ACT → RD/WR → PRE.
// Open-row: a row-buffer hit pays only the column access; a conflict pays
// precharge + activate on top.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/arch.hpp"

namespace napel::sim {

class Vault {
 public:
  Vault(unsigned n_banks, const DramTiming& timing, unsigned line_bytes,
        RowPolicy policy = RowPolicy::kClosed, unsigned lines_per_row = 4);

  /// Enqueues a line access arriving at cycle `now`; returns the cycle at
  /// which the data transfer completes (reads: data available to the
  /// requester; writes: command retired).
  std::uint64_t enqueue(std::uint64_t line_id, bool is_write,
                        std::uint64_t now);

  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }
  std::uint64_t activations() const { return activations_; }
  std::uint64_t row_hits() const { return row_hits_; }
  /// Total cycles the data bus was occupied (utilization numerator).
  std::uint64_t bus_busy_cycles() const { return bus_busy_; }
  std::uint64_t last_busy_cycle() const { return bus_free_; }

 private:
  struct Bank {
    std::uint64_t free_at = 0;
    std::uint64_t open_row = kNoRow;
  };
  static constexpr std::uint64_t kNoRow = ~0ULL;

  std::vector<Bank> banks_;
  std::uint64_t bus_free_ = 0;
  RowPolicy policy_;
  unsigned lines_per_row_;
  unsigned burst_;
  unsigned t_rcd_;
  unsigned t_cl_;
  unsigned t_rp_;
  unsigned t_rc_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t activations_ = 0;
  std::uint64_t row_hits_ = 0;
  std::uint64_t bus_busy_ = 0;
};

}  // namespace napel::sim
