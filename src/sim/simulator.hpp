// NmcSimulator: trace-driven cycle-level simulation of the NMC system
// (the reproduction's substitute for Ramulator-PIM).
//
// The simulator consumes a kernel's instruction stream as a TraceSink,
// compiles it into per-PE command streams (logical SPMD thread t executes on
// PE t mod n_pes; multiple threads per PE run back-to-back), and then plays
// the streams through an event-driven timing model:
//   * in-order single-issue PEs — arithmetic is pipelined at 1 op/cycle
//     (divides occupy the unit longer), memory operations block the core,
//   * a private write-back write-allocate L1 per PE,
//   * vault-partitioned 3D-stacked DRAM with per-vault controllers,
//     per-bank closed-row timing, and serialized vault data bursts.
// Determinism: requests are globally ordered by cycle (ties by PE id) via a
// priority queue, so results are bit-identical across runs.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/arch.hpp"
#include "trace/sink.hpp"
#include "trace/trace_buffer.hpp"

namespace napel {
class FaultPlan;
}

namespace napel::sim {

/// Hard execution budget for one simulation — the per-simulation watchdog.
/// A simulation that exceeds either bound stops and reports
/// SimResult::cycles_budget_exhausted instead of running (or hanging)
/// unboundedly. 0 = unlimited.
struct SimBudget {
  std::uint64_t max_cycles = 0;  ///< simulated-cycle ceiling
  std::uint64_t max_events = 0;  ///< drained scheduler-event ceiling
};

struct SimResult {
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;  ///< makespan across PEs
  double ipc = 0.0;          ///< chip-level: instructions / cycles
  double time_seconds = 0.0;
  double energy_joules = 0.0;
  double edp = 0.0;          ///< energy × delay

  std::uint64_t l1_hits = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l1_writebacks = 0;
  std::uint64_t dram_reads = 0;
  std::uint64_t dram_writes = 0;
  std::uint64_t dram_activations = 0;
  std::uint64_t dram_row_hits = 0;  ///< open-row policy only
  double avg_mem_latency_cycles = 0.0;

  double core_energy_j = 0.0;
  double cache_energy_j = 0.0;
  double dram_energy_j = 0.0;
  double static_energy_j = 0.0;

  /// Set when the simulation stopped at its SimBudget rather than running
  /// to completion; the statistics above cover the simulated prefix only
  /// and must not be used as training labels.
  bool cycles_budget_exhausted = false;
  std::uint64_t sched_events = 0;  ///< scheduler events drained

  double l1_hit_rate() const {
    const auto n = l1_hits + l1_misses;
    return n == 0 ? 0.0 : static_cast<double>(l1_hits) /
                              static_cast<double>(n);
  }
};

class NmcSimulator final : public trace::TraceSink,
                           public trace::TraceColumnConsumer {
 public:
  explicit NmcSimulator(ArchConfig cfg, SimBudget budget = {});
  ~NmcSimulator() override;

  void begin_kernel(std::string_view name, unsigned n_threads) override;
  void on_instr(const trace::InstrEvent& ev) override;
  void on_instr_batch(const trace::InstrEvent* evs, std::size_t n) override;
  void end_kernel() override;

  /// Columnar replay fast path: stream compilation needs only the op,
  /// thread, and address columns, so consuming a TraceBuffer's columns
  /// directly skips materializing 32-byte InstrEvents altogether. Produces
  /// bit-identical state to ingesting the same events via on_instr_batch.
  void consume_columns(const trace::TraceColumns& cols) override;

  /// Runs the timing simulation (first call) and returns the result.
  /// Requires a completed kernel bracket.
  const SimResult& result();

  const ArchConfig& config() const { return cfg_; }
  const SimBudget& budget() const { return budget_; }

  /// Arms the "sim/schedule" fault-injection site (tests only): an injected
  /// kHang re-schedules an event without progress, which the progress
  /// invariant converts into a loud failure instead of a silent hang.
  void set_fault_plan(FaultPlan* faults) { faults_ = faults; }

  /// Adopts `donor`'s compiled per-PE command streams instead of ingesting
  /// the event stream again. Stream compilation depends on the architecture
  /// only through the thread → PE mapping (thread mod n_pes), so two
  /// simulators with equal n_pes compile bit-identical streams from the
  /// same trace; sharing the donor's completed, immutable state makes the
  /// result indistinguishable from an independent ingest while skipping an
  /// entire pass over the events. Requires a completed donor kernel and
  /// matching n_pes; the timing model still runs per-simulator.
  void share_stream_from(const NmcSimulator& donor);

 private:
  void ingest(const trace::InstrEvent& ev);
  void run();

  ArchConfig cfg_;
  SimBudget budget_;
  FaultPlan* faults_ = nullptr;
  struct State;
  // Owned exclusively while ingesting; may alias a donor's completed state
  // after share_stream_from (run() never mutates a completed State).
  std::shared_ptr<State> st_;
  SimResult result_;
  bool ran_ = false;
};

}  // namespace napel::sim
