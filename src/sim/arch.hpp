// NMC architecture configuration (Table 1 architectural features, Table 3
// system parameters) plus the DRAM timing and energy constants of the
// simulated 3D-stacked memory.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace napel::sim {

/// Row-buffer management policy. The paper's system uses the closed-row
/// policy (every access pays ACT + column + PRE); the open-row policy keeps
/// the last row latched, trading row hits against row-conflict penalties —
/// provided as a design-space/ablation axis.
enum class RowPolicy : std::uint8_t { kClosed, kOpen };

/// DRAM timing, in core-clock cycles (the memory and PE domains are
/// modelled at the same 1.25 GHz clock for simplicity).
struct DramTiming {
  unsigned t_rcd = 10;        ///< ACT -> column command
  unsigned t_cl = 10;         ///< column command -> first data
  unsigned t_rp = 10;         ///< precharge
  unsigned burst_per_32b = 1; ///< data-bus cycles per 32 bytes transferred

  unsigned burst_cycles(unsigned line_bytes) const {
    return ((line_bytes + 31) / 32) * burst_per_32b;
  }
  /// Bank busy time for one closed-row access.
  unsigned t_rc(unsigned line_bytes) const {
    return t_rcd + t_cl + burst_cycles(line_bytes) + t_rp;
  }
};

/// Per-event energy constants (picojoules) and static power (watts).
/// Defaults are representative of an HMC-like stack with simple in-order
/// PEs in the logic layer.
struct EnergyModel {
  double pj_int_op = 6.0;
  double pj_fp_op = 18.0;
  double pj_mem_op = 12.0;      ///< AGU + load/store unit, excl. cache/DRAM
  double pj_branch = 4.0;
  double pj_l1_access = 6.0;
  double pj_dram_activate = 500.0;  ///< 256B row, ACT+PRE pair
  double pj_dram_per_byte = 4.0;    ///< column access + TSV transfer
  double watt_static_per_pe = 0.05;  ///< leakage + clocking per simple core
  double watt_static_dram = 5.0;     ///< 3D-stack background (refresh, I/O)
};

/// One NMC design point. The paper's model learns sensitivity to these
/// parameters (Table 1, "NMC Arch. Features").
struct ArchConfig {
  unsigned n_pes = 32;             ///< in-order single-issue cores
  double core_freq_ghz = 1.25;
  unsigned cache_line_bytes = 64;
  unsigned cache_lines = 2;        ///< total L1 lines per PE
  unsigned cache_ways = 2;
  unsigned dram_layers = 8;        ///< stacked DRAM layers
  unsigned n_vaults = 32;
  std::uint64_t dram_bytes = 4ULL << 30;
  unsigned row_buffer_bytes = 256;
  RowPolicy row_policy = RowPolicy::kClosed;  ///< Table 3: closed-row
  DramTiming timing;
  EnergyModel energy;

  /// Banks available per vault (two banks per stacked layer).
  unsigned banks_per_vault() const { return 2 * dram_layers; }

  /// Validates internal consistency; throws std::invalid_argument.
  void validate() const;

  /// The paper's Table 3 NMC system.
  static ArchConfig paper_default();

  /// Numeric encoding used as model-input features (together with the
  /// profile-derived cache/DRAM access fractions).
  std::vector<double> features() const;
  static const std::vector<std::string>& feature_names();

  std::string to_string() const;
  bool operator==(const ArchConfig&) const;
};

/// Deterministically samples `n` diverse design points around the default
/// (varying PE count, frequency, cache geometry, stack height, vaults);
/// index 0 is always paper_default(). Used to give the training set
/// architectural spread.
std::vector<ArchConfig> sample_arch_configs(std::size_t n, Rng& rng);

/// Per-feature [lo, hi] closed domain of ArchConfig::features() over the
/// sampling pool sample_arch_configs() draws from (plus paper_default()).
/// Same order as ArchConfig::feature_names(). This is the declared
/// architecture-feature domain the forest static analyzer checks split
/// thresholds against: any training row's arch features provably lie
/// inside these ranges.
const std::vector<std::pair<double, double>>& arch_feature_ranges();

}  // namespace napel::sim
