#include "sim/l1_cache.hpp"

#include <bit>

#include "common/check.hpp"

namespace napel::sim {

L1Cache::L1Cache(unsigned total_lines, unsigned ways, unsigned line_bytes)
    : ways_(ways), line_bytes_(line_bytes) {
  NAPEL_CHECK(ways >= 1);
  NAPEL_CHECK(total_lines >= ways && total_lines % ways == 0);
  NAPEL_CHECK(std::has_single_bit(line_bytes));
  n_sets_ = total_lines / ways;
  NAPEL_CHECK(std::has_single_bit(n_sets_));
  line_shift_ = static_cast<unsigned>(std::countr_zero(line_bytes));
  lines_.assign(static_cast<std::size_t>(n_sets_) * ways_, Line{});
}

std::uint64_t L1Cache::line_id(std::uint64_t addr) const {
  return addr >> line_shift_;
}

L1Cache::AccessResult L1Cache::access(std::uint64_t addr, bool is_write) {
  const std::uint64_t id = line_id(addr);
  const std::size_t set = static_cast<std::size_t>(id & (n_sets_ - 1));
  Line* base = &lines_[set * ways_];
  ++stamp_;

  // Hit path.
  for (unsigned w = 0; w < ways_; ++w) {
    Line& ln = base[w];
    if (ln.valid && ln.tag == id) {
      ln.lru = stamp_;
      ln.dirty = ln.dirty || is_write;
      ++hits_;
      return {.hit = true};
    }
  }

  // Miss: pick invalid way or LRU victim.
  ++misses_;
  Line* victim = base;
  for (unsigned w = 0; w < ways_; ++w) {
    Line& ln = base[w];
    if (!ln.valid) {
      victim = &ln;
      break;
    }
    if (ln.lru < victim->lru) victim = &ln;
  }

  AccessResult res;
  if (victim->valid && victim->dirty) {
    res.writeback = true;
    res.writeback_addr = victim->tag << line_shift_;
    ++writebacks_;
  }
  victim->valid = true;
  victim->tag = id;
  victim->lru = stamp_;
  victim->dirty = is_write;
  return res;
}

bool L1Cache::contains(std::uint64_t addr) const {
  const std::uint64_t id = line_id(addr);
  const std::size_t set = static_cast<std::size_t>(id & (n_sets_ - 1));
  const Line* base = &lines_[set * ways_];
  for (unsigned w = 0; w < ways_; ++w)
    if (base[w].valid && base[w].tag == id) return true;
  return false;
}

void L1Cache::reset() {
  for (auto& ln : lines_) ln = Line{};
  stamp_ = hits_ = misses_ = writebacks_ = 0;
}

}  // namespace napel::sim
