#include "sim/link.hpp"

#include "common/check.hpp"

namespace napel::sim {

OffloadCost offload_cost(const LinkConfig& link, std::uint64_t bytes) {
  NAPEL_CHECK(link.lanes >= 1);
  NAPEL_CHECK(link.gbps_per_lane > 0.0);
  NAPEL_CHECK(link.protocol_efficiency > 0.0 &&
              link.protocol_efficiency <= 1.0);
  OffloadCost cost;
  cost.seconds = link.launch_latency_us * 1e-6 +
                 static_cast<double>(bytes) / link.bandwidth_bytes_per_s();
  cost.energy_joules =
      static_cast<double>(bytes) * 8.0 * link.pj_per_bit * 1e-12;
  return cost;
}

}  // namespace napel::sim
