#include "trace/trace_buffer.hpp"

#include <array>

#include "common/check.hpp"

namespace napel::trace {

namespace {

// Zigzag maps small signed deltas to small unsigned varints: 0,-1,1,-2,2 ->
// 0,1,2,3,4, so both forward and backward strides encode compactly.
std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t zigzag_decode(std::uint64_t u) {
  return static_cast<std::int64_t>(u >> 1) ^
         -static_cast<std::int64_t>(u & 1);
}

void varint_append(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Raw-buffer variant for the batched capture path: no per-byte capacity
/// checks. Returns the encoded length (<= 10 bytes).
std::size_t varint_write(std::uint8_t* out, std::uint64_t v) {
  std::size_t n = 0;
  while (v >= 0x80) {
    out[n++] = static_cast<std::uint8_t>(v) | 0x80;
    v >>= 7;
  }
  out[n++] = static_cast<std::uint8_t>(v);
  return n;
}

std::uint64_t varint_read(const std::uint8_t* bytes, std::size_t& pos) {
  // Single-byte fast path: unit-stride sweeps produce one-byte deltas for
  // almost every access, so this branch is nearly always taken.
  const std::uint8_t b0 = bytes[pos];
  if ((b0 & 0x80) == 0) {
    ++pos;
    return b0;
  }
  std::uint64_t v = 0;
  unsigned shift = 0;
  for (;;) {
    const std::uint8_t b = bytes[pos++];
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

}  // namespace

void TraceBuffer::on_alloc(std::uint64_t base, std::uint64_t bytes) {
  NAPEL_CHECK_MSG(!ended_, "allocation after the recorded kernel ended");
  allocs_.push_back(Alloc{n_events_, base, bytes});
}

void TraceBuffer::begin_kernel(std::string_view name, unsigned n_threads) {
  NAPEL_CHECK_MSG(!in_kernel_ && !ended_,
                  "TraceBuffer records exactly one kernel execution");
  kernel_name_ = std::string(name);
  n_threads_ = n_threads;
  in_kernel_ = true;
}

void TraceBuffer::append(const InstrEvent& ev) {
  ops_.push_back(static_cast<std::uint8_t>(ev.op));
  pcs_.push_back(ev.pc);
  dsts_.push_back(ev.dst);
  src1s_.push_back(ev.src1);
  src2s_.push_back(ev.src2);
  if (is_memory(ev.op)) {
    mem_sizes_.push_back(ev.size);
    const std::int64_t delta = static_cast<std::int64_t>(ev.addr) -
                               static_cast<std::int64_t>(last_mem_addr_);
    varint_append(mem_addr_deltas_, zigzag_encode(delta));
    last_mem_addr_ = ev.addr;
  }
  if (!thread_runs_.empty() && thread_runs_.back().thread == ev.thread) {
    ++thread_runs_.back().count;
  } else {
    thread_runs_.push_back(ThreadRun{1, ev.thread});
  }
  ++n_events_;
}

void TraceBuffer::on_instr(const InstrEvent& ev) {
  NAPEL_CHECK_MSG(in_kernel_, "instr event outside the kernel bracket");
  append(ev);
}

void TraceBuffer::on_instr_batch(const InstrEvent* evs, std::size_t n) {
  NAPEL_CHECK_MSG(in_kernel_, "instr event outside the kernel bracket");
  if (n == 0) return;
  // Column-wise bulk append: one capacity check per column per batch and
  // tight per-column copy loops, instead of five push_backs per event.
  const std::size_t base = ops_.size();
  ops_.resize(base + n);
  pcs_.resize(base + n);
  dsts_.resize(base + n);
  src1s_.resize(base + n);
  src2s_.resize(base + n);
  for (std::size_t i = 0; i < n; ++i)
    ops_[base + i] = static_cast<std::uint8_t>(evs[i].op);
  for (std::size_t i = 0; i < n; ++i) pcs_[base + i] = evs[i].pc;
  for (std::size_t i = 0; i < n; ++i) dsts_[base + i] = evs[i].dst;
  for (std::size_t i = 0; i < n; ++i) src1s_[base + i] = evs[i].src1;
  for (std::size_t i = 0; i < n; ++i) src2s_[base + i] = evs[i].src2;

  // Run-length state hoisted out of the loop: the open run is popped into
  // locals and pushed back closed at the end, so the per-event cost is a
  // register compare instead of a load/store through the vector's tail.
  std::uint16_t run_thread = 0;
  std::uint64_t run_count = 0;
  if (!thread_runs_.empty()) {
    run_thread = thread_runs_.back().thread;
    run_count = thread_runs_.back().count;
    thread_runs_.pop_back();
  } else {
    run_thread = evs[0].thread;
  }

  // Memory columns go through fixed-size scratch first — one bulk insert
  // per chunk instead of per-event (and per-varint-byte) capacity checks.
  constexpr std::size_t kChunk = 512;
  for (std::size_t start = 0; start < n; start += kChunk) {
    const std::size_t end = std::min(n, start + kChunk);
    std::uint8_t sizes[kChunk];
    std::uint8_t deltas[kChunk * 10];  // worst-case 10B varint per mem op
    std::size_t n_sizes = 0;
    std::size_t n_deltas = 0;
    for (std::size_t i = start; i < end; ++i) {
      const InstrEvent& ev = evs[i];
      if (is_memory(ev.op)) {
        sizes[n_sizes++] = ev.size;
        const std::int64_t delta = static_cast<std::int64_t>(ev.addr) -
                                   static_cast<std::int64_t>(last_mem_addr_);
        n_deltas += varint_write(deltas + n_deltas, zigzag_encode(delta));
        last_mem_addr_ = ev.addr;
      }
      if (ev.thread == run_thread) {
        ++run_count;
      } else {
        if (run_count > 0) thread_runs_.push_back(ThreadRun{run_count, run_thread});
        run_thread = ev.thread;
        run_count = 1;
      }
    }
    mem_sizes_.insert(mem_sizes_.end(), sizes, sizes + n_sizes);
    mem_addr_deltas_.insert(mem_addr_deltas_.end(), deltas,
                            deltas + n_deltas);
  }
  thread_runs_.push_back(ThreadRun{run_count, run_thread});
  n_events_ += n;
}

void TraceBuffer::end_kernel() {
  NAPEL_CHECK_MSG(in_kernel_, "end_kernel without begin_kernel");
  in_kernel_ = false;
  ended_ = true;
  ops_.shrink_to_fit();
  pcs_.shrink_to_fit();
  dsts_.shrink_to_fit();
  src1s_.shrink_to_fit();
  src2s_.shrink_to_fit();
  mem_sizes_.shrink_to_fit();
  mem_addr_deltas_.shrink_to_fit();
  thread_runs_.shrink_to_fit();
  allocs_.shrink_to_fit();
}

std::size_t TraceBuffer::memory_bytes() const {
  return ops_.capacity() * sizeof(std::uint8_t) +
         pcs_.capacity() * sizeof(std::uint32_t) +
         dsts_.capacity() * sizeof(std::uint32_t) +
         src1s_.capacity() * sizeof(std::uint32_t) +
         src2s_.capacity() * sizeof(std::uint32_t) +
         mem_sizes_.capacity() * sizeof(std::uint8_t) +
         mem_addr_deltas_.capacity() * sizeof(std::uint8_t) +
         thread_runs_.capacity() * sizeof(ThreadRun) +
         allocs_.capacity() * sizeof(Alloc) + kernel_name_.capacity();
}

template <typename Emit>
void TraceBuffer::decode(Emit&& emit) const {
  std::array<InstrEvent, kReplayBatch> batch;
  std::size_t delta_pos = 0;      // byte cursor in mem_addr_deltas_
  std::size_t mem_i = 0;          // index of the next memory op
  std::uint64_t mem_addr = 0;     // running decoded address
  std::size_t run_i = 0;          // current thread run
  std::uint64_t run_left = thread_runs_.empty() ? 0 : thread_runs_[0].count;

  // Events are decoded directly into their batch slot (every field assigned
  // explicitly): a stack temporary copied in afterwards stalls store-to-load
  // forwarding on the overlapping reads the 32-byte copy needs. Column
  // pointers are hoisted into locals so the emit callback (an opaque sink
  // call) doesn't force reloading them every event.
  const std::uint8_t* const ops = ops_.data();
  const std::uint32_t* const pcs = pcs_.data();
  const Reg* const dsts = dsts_.data();
  const Reg* const src1s = src1s_.data();
  const Reg* const src2s = src2s_.data();
  const std::uint8_t* const mem_sizes = mem_sizes_.data();
  const std::uint8_t* const deltas = mem_addr_deltas_.data();
  const ThreadRun* const runs = thread_runs_.data();

  // The batch is filled by three fissioned passes — plain columns, thread
  // runs, memory addresses — so each loop stays branch-light: the column
  // pass is unconditional, the thread pass writes whole runs without a
  // per-event run-boundary check, and only the memory pass keeps a
  // data-dependent branch.
  std::uint64_t i = 0;
  while (i < n_events_) {
    const std::size_t m = static_cast<std::size_t>(
        std::min<std::uint64_t>(kReplayBatch, n_events_ - i));
    for (std::size_t k = 0; k < m; ++k) {
      InstrEvent& ev = batch[k];
      ev.op = static_cast<OpType>(ops[i + k]);
      ev.pc = pcs[i + k];
      ev.dst = dsts[i + k];
      ev.src1 = src1s[i + k];
      ev.src2 = src2s[i + k];
    }
    for (std::size_t k = 0; k < m;) {
      while (run_left == 0) run_left = runs[++run_i].count;
      const std::size_t take = static_cast<std::size_t>(
          std::min<std::uint64_t>(run_left, m - k));
      const std::uint16_t th = runs[run_i].thread;
      for (const std::size_t end = k + take; k < end; ++k)
        batch[k].thread = th;
      run_left -= take;
    }
    for (std::size_t k = 0; k < m; ++k) {
      InstrEvent& ev = batch[k];
      if (is_memory(ev.op)) {
        const std::int64_t delta =
            zigzag_decode(varint_read(deltas, delta_pos));
        mem_addr = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(mem_addr) + delta);
        ev.addr = mem_addr;
        ev.size = mem_sizes[mem_i++];
      } else {
        ev.addr = 0;
        ev.size = 0;
      }
    }
    emit(batch.data(), m);
    i += m;
  }
}

void TraceBuffer::replay(TraceSink& sink) const {
  TraceSink* one[] = {&sink};
  replay(std::span<TraceSink* const>(one, 1));
}

void TraceBuffer::replay(std::span<TraceSink* const> sinks) const {
  NAPEL_CHECK_MSG(ended_, "replay of an incomplete trace");

  // Column-aware sinks skip event materialization entirely: they get the
  // full bracket and every allocation (mid-kernel ones up front, per the
  // TraceColumnConsumer contract) and then consume the SoA columns in one
  // call. The remaining sinks share one batched decode pass below.
  std::vector<TraceSink*> batched;
  batched.reserve(sinks.size());
  for (TraceSink* s : sinks) {
    auto* col = dynamic_cast<TraceColumnConsumer*>(s);
    if (col == nullptr) {
      batched.push_back(s);
      continue;
    }
    std::size_t a = 0;
    while (a < allocs_.size() && allocs_[a].event_index == 0) {
      s->on_alloc(allocs_[a].base, allocs_[a].bytes);
      ++a;
    }
    s->begin_kernel(kernel_name_, n_threads_);
    for (; a < allocs_.size(); ++a)
      s->on_alloc(allocs_[a].base, allocs_[a].bytes);
    col->consume_columns(columns());
    s->end_kernel();
  }
  if (batched.empty()) return;
  sinks = std::span<TraceSink* const>(batched.data(), batched.size());

  std::size_t alloc_i = 0;
  // Allocations recorded before the first event (typically all of them:
  // arrays are created up front) precede the bracket, as they did live.
  while (alloc_i < allocs_.size() && allocs_[alloc_i].event_index == 0) {
    for (TraceSink* s : sinks)
      s->on_alloc(allocs_[alloc_i].base, allocs_[alloc_i].bytes);
    ++alloc_i;
  }
  for (TraceSink* s : sinks) s->begin_kernel(kernel_name_, n_threads_);
  std::uint64_t emitted = 0;
  decode([&](const InstrEvent* evs, std::size_t n) {
    // Mid-kernel allocations split batches so every sink sees the
    // allocation at its exact original stream position.
    std::size_t off = 0;
    while (alloc_i < allocs_.size() &&
           allocs_[alloc_i].event_index < emitted + n) {
      const std::size_t upto =
          static_cast<std::size_t>(allocs_[alloc_i].event_index - emitted);
      if (upto > off)
        for (TraceSink* s : sinks) s->on_instr_batch(evs + off, upto - off);
      for (TraceSink* s : sinks)
        s->on_alloc(allocs_[alloc_i].base, allocs_[alloc_i].bytes);
      off = upto;
      ++alloc_i;
    }
    if (n > off)
      for (TraceSink* s : sinks) s->on_instr_batch(evs + off, n - off);
    emitted += n;
  });
  while (alloc_i < allocs_.size()) {
    NAPEL_CHECK(allocs_[alloc_i].event_index == n_events_);
    for (TraceSink* s : sinks)
      s->on_alloc(allocs_[alloc_i].base, allocs_[alloc_i].bytes);
    ++alloc_i;
  }
  for (TraceSink* s : sinks) s->end_kernel();
}

void TraceBuffer::replay_per_event(TraceSink& sink) const {
  NAPEL_CHECK_MSG(ended_, "replay of an incomplete trace");
  std::size_t alloc_i = 0;
  std::uint64_t emitted = 0;
  while (alloc_i < allocs_.size() && allocs_[alloc_i].event_index == 0) {
    sink.on_alloc(allocs_[alloc_i].base, allocs_[alloc_i].bytes);
    ++alloc_i;
  }
  sink.begin_kernel(kernel_name_, n_threads_);
  decode([&](const InstrEvent* evs, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      while (alloc_i < allocs_.size() &&
             allocs_[alloc_i].event_index == emitted) {
        sink.on_alloc(allocs_[alloc_i].base, allocs_[alloc_i].bytes);
        ++alloc_i;
      }
      sink.on_instr(evs[i]);
      ++emitted;
    }
  });
  while (alloc_i < allocs_.size()) {
    sink.on_alloc(allocs_[alloc_i].base, allocs_[alloc_i].bytes);
    ++alloc_i;
  }
  sink.end_kernel();
}

}  // namespace napel::trace
