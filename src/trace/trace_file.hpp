// Trace capture and replay (§3.1 of the paper: dynamic execution traces are
// collected once — the authors use a Pin tool — and fed to the simulator).
//
// TraceWriter is a TraceSink that streams the kernel's instruction events
// into a compact binary file; replay_trace() feeds a recorded file back
// into any set of sinks, so expensive kernels can be instrumented once and
// simulated under many architecture configurations (or on another machine)
// without re-executing them.
//
// Format (little-endian, fixed-width):
//   magic "NAPELTRC"  u32 version  u32 name_len  name bytes
//   u32 n_threads     u64 event_count
//   event_count x InstrEvent (32 bytes each, as laid out in trace/isa.hpp)
#pragma once

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "trace/sink.hpp"

namespace napel::trace {

/// Thrown by the trace readers when a file ends before the header or the
/// header-declared event payload does — the signature of an interrupted
/// capture or a partial copy. Distinct from the std::invalid_argument a
/// structurally malformed file raises, so callers (and `napel lint
/// --trace`) can tell "truncated" from "not a trace at all".
class TruncatedTraceError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

class TraceWriter final : public TraceSink {
 public:
  /// Opens `path` for writing; throws std::invalid_argument on failure.
  explicit TraceWriter(const std::string& path);
  ~TraceWriter() override;

  void begin_kernel(std::string_view name, unsigned n_threads) override;
  void on_instr(const InstrEvent& ev) override;
  void end_kernel() override;

  std::uint64_t events_written() const { return count_; }

 private:
  void write_header();

  std::ofstream out_;
  std::string path_;
  std::string kernel_name_;
  unsigned n_threads_ = 1;
  std::uint64_t count_ = 0;
  bool open_bracket_ = false;
  bool finished_ = false;
};

struct TraceInfo {
  std::string kernel_name;
  unsigned n_threads = 1;
  std::uint64_t event_count = 0;
};

/// Reads only the header of a recorded trace.
TraceInfo read_trace_info(const std::string& path);

/// Replays a recorded trace through the given sinks (begin_kernel, every
/// event, end_kernel). Returns the header info. Throws on malformed files.
TraceInfo replay_trace(const std::string& path,
                       const std::vector<TraceSink*>& sinks);

}  // namespace napel::trace
