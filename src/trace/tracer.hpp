// Tracer: the instrumentation engine kernels emit through.
//
// Responsibilities:
//  * fan-out of InstrEvents to any number of attached TraceSinks,
//  * SSA virtual-register numbering (each value-producing op defines a fresh
//    register),
//  * a virtual address space: traced arrays allocate disjoint, 64-byte
//    aligned address ranges, so the emitted addresses have realistic layout,
//  * pseudo-PC assignment: static instruction identity is derived from the
//    enclosing LoopScope and the instruction's intra-iteration position,
//    which makes instruction-reuse-distance statistics meaningful (tight
//    loops re-execute the same pseudo-PCs every iteration),
//  * SPMD thread tagging for the `threads` DoE parameter.
//
// Dispatch is batched: emitted events accumulate in a small internal buffer
// and reach the attached sinks through one on_instr_batch call per
// kBatchSize events, so the hot emission path pays one virtual call per
// batch instead of one per (event x sink). The buffer is flushed before
// on_alloc fan-out and before end_kernel, preserving the stream order every
// sink observes.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "trace/isa.hpp"
#include "trace/sink.hpp"

namespace napel::trace {

class Tracer {
 public:
  Tracer() = default;

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Attach a stream consumer. Must be called before begin_kernel; the sink
  /// must outlive the tracer's kernel run.
  void attach(TraceSink& sink);

  void begin_kernel(std::string_view name, unsigned n_threads);
  void end_kernel();
  bool in_kernel() const { return in_kernel_; }

  /// Select the logical SPMD thread subsequent events belong to.
  void set_thread(unsigned t);
  unsigned current_thread() const { return thread_; }
  unsigned n_threads() const { return n_threads_; }

  /// Allocate `bytes` of virtual address space (64-byte aligned base).
  /// Valid outside kernels too, so arrays can be created up front.
  std::uint64_t allocate(std::uint64_t bytes);

  // --- event emission (kernels normally use Traced<T> wrappers instead) ---

  /// Load from addr; returns the defined register.
  Reg emit_load(std::uint64_t addr, unsigned size, Reg addr_src = kNoReg);
  void emit_store(std::uint64_t addr, unsigned size, Reg value,
                  Reg addr_src = kNoReg);
  /// Binary/unary arithmetic; returns the defined register.
  Reg emit_op(OpType op, Reg src1 = kNoReg, Reg src2 = kNoReg);
  void emit_branch(Reg cond = kNoReg);

  std::uint64_t instr_count() const { return instr_count_; }

  // --- loop scoping for pseudo-PC assignment ---

  /// RAII marker for one lexical loop. Construct it where the loop construct
  /// appears and call iteration() at the top of every trip:
  ///
  ///   LoopScope li(t);
  ///   for (std::size_t i = 0; i < n; ++i) {
  ///     li.iteration();                 // emits index-increment + branch
  ///     ... body emits through t ...
  ///   }
  ///
  /// The scope's static identity is derived from (parent scope, lexical
  /// position within the parent iteration), so a nested loop reconstructed on
  /// every outer-loop trip keeps a stable identity, and pseudo-PCs repeat
  /// across iterations exactly as instruction addresses would.
  class LoopScope {
   public:
    explicit LoopScope(Tracer& t);
    ~LoopScope();
    LoopScope(const LoopScope&) = delete;
    LoopScope& operator=(const LoopScope&) = delete;

    /// Marks the start of one trip: resets the intra-iteration instruction
    /// index and emits the loop-control overhead (induction-variable
    /// increment and conditional backward branch), as instrumented IR would.
    void iteration();

   private:
    Tracer& tracer_;
  };

  /// Events per batched dispatch to the attached sinks.
  static constexpr std::size_t kBatchSize = 256;

 private:
  struct Scope {
    std::uint32_t id = 0;          // static identity of this nesting position
    std::uint32_t intra = 0;       // instruction index within the iteration
    std::uint32_t child_seq = 0;   // lexical position of next child scope
    Reg induction = kNoReg;        // loop counter register for overhead deps
  };

  std::uint32_t next_pc();
  Reg next_reg() { return reg_counter_++; }
  /// The batch slot the next event is built into (in place; emit_* assigns
  /// every field, so no stack temporary or copy is involved).
  InstrEvent& next_slot() { return batch_[batch_n_]; }
  /// Publishes the event built in next_slot().
  void commit() {
    ++instr_count_;
    if (++batch_n_ == kBatchSize) flush_batch();
  }
  void flush_batch();

  void push_scope();
  void pop_scope();
  void scope_iteration();

  std::vector<TraceSink*> sinks_;
  std::array<InstrEvent, kBatchSize> batch_;
  std::size_t batch_n_ = 0;
  std::vector<Scope> scope_stack_;
  // (parent scope id, lexical child index) -> stable scope id
  std::unordered_map<std::uint64_t, std::uint32_t> scope_ids_;
  std::uint32_t scope_id_counter_ = 1;
  Reg reg_counter_ = 1;  // 0 is kNoReg
  std::uint64_t instr_count_ = 0;
  std::uint64_t alloc_cursor_ = 0x0001'0000'0000ULL;
  unsigned thread_ = 0;
  unsigned n_threads_ = 1;
  bool in_kernel_ = false;
};

}  // namespace napel::trace
