// Virtual ISA for hardware-independent workload instrumentation.
//
// This is the reproduction's substitute for the paper's LLVM-IR + PISA
// instrumentation: workload kernels execute real computation and, alongside,
// emit a dynamic stream of InstrEvent records in SSA form (every
// value-producing instruction defines a fresh virtual register). Profiler and
// simulator both consume this stream through the TraceSink interface.
#pragma once

#include <cstdint>
#include <string_view>

namespace napel::trace {

/// Virtual register id. 0 is the "no register" sentinel (immediates,
/// stores, branches without a destination).
using Reg = std::uint32_t;
inline constexpr Reg kNoReg = 0;

enum class OpType : std::uint8_t {
  kIntAlu,   // integer add/sub/logic/compare
  kIntMul,
  kIntDiv,
  kFpAdd,    // fp add/sub
  kFpMul,
  kFpDiv,    // fp div/sqrt
  kLoad,
  kStore,
  kBranch,
  kCount,    // number of op types (not a real op)
};

inline constexpr std::size_t kNumOpTypes =
    static_cast<std::size_t>(OpType::kCount);

constexpr std::string_view op_name(OpType op) {
  switch (op) {
    case OpType::kIntAlu: return "int_alu";
    case OpType::kIntMul: return "int_mul";
    case OpType::kIntDiv: return "int_div";
    case OpType::kFpAdd: return "fp_add";
    case OpType::kFpMul: return "fp_mul";
    case OpType::kFpDiv: return "fp_div";
    case OpType::kLoad: return "load";
    case OpType::kStore: return "store";
    case OpType::kBranch: return "branch";
    case OpType::kCount: break;
  }
  return "invalid";
}

constexpr bool is_memory(OpType op) {
  return op == OpType::kLoad || op == OpType::kStore;
}

constexpr bool is_fp(OpType op) {
  return op == OpType::kFpAdd || op == OpType::kFpMul || op == OpType::kFpDiv;
}

constexpr bool is_int_arith(OpType op) {
  return op == OpType::kIntAlu || op == OpType::kIntMul ||
         op == OpType::kIntDiv;
}

/// One dynamic instruction. 32 bytes; the stream is never stored by the
/// framework itself — sinks decide what to keep.
struct InstrEvent {
  std::uint64_t addr = 0;   ///< byte address (memory ops only)
  std::uint32_t pc = 0;     ///< pseudo-PC: static instruction identity
  Reg dst = kNoReg;         ///< defined register (SSA)
  Reg src1 = kNoReg;        ///< first source register
  Reg src2 = kNoReg;        ///< second source register
  OpType op = OpType::kIntAlu;
  std::uint8_t size = 0;    ///< access size in bytes (memory ops only)
  std::uint16_t thread = 0; ///< logical (SPMD) thread id
};

static_assert(sizeof(InstrEvent) == 32);

}  // namespace napel::trace
