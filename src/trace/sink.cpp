#include "trace/sink.hpp"

#include "common/check.hpp"

namespace napel::trace {

void CountingSink::begin_kernel(std::string_view name, unsigned n_threads) {
  kernel_name_ = std::string(name);
  n_threads_ = n_threads;
  by_thread_.assign(n_threads, 0);
}

void CountingSink::on_instr(const InstrEvent& ev) {
  ++total_;
  ++by_op_[static_cast<std::size_t>(ev.op)];
  if (ev.thread < by_thread_.size()) ++by_thread_[ev.thread];
}

std::uint64_t CountingSink::count_for_thread(unsigned t) const {
  NAPEL_CHECK(t < by_thread_.size());
  return by_thread_[t];
}

void VectorSink::begin_kernel(std::string_view name, unsigned n_threads) {
  kernel_name_ = std::string(name);
  n_threads_ = n_threads;
  events_.clear();
  ended_ = false;
}

void VectorSink::on_instr(const InstrEvent& ev) { events_.push_back(ev); }

}  // namespace napel::trace
