#include "trace/sink.hpp"

#include "common/check.hpp"

namespace napel::trace {

void CountingSink::begin_kernel(std::string_view name, unsigned n_threads) {
  kernel_name_ = std::string(name);
  n_threads_ = n_threads;
  by_thread_.assign(n_threads, 0);
  in_kernel_ = true;
}

void CountingSink::count(const InstrEvent& ev) {
  ++total_;
  ++by_op_[static_cast<std::size_t>(ev.op)];
  if (ev.thread < by_thread_.size()) ++by_thread_[ev.thread];
}

void CountingSink::on_instr(const InstrEvent& ev) {
  NAPEL_CHECK_MSG(in_kernel_,
                  "instr event outside a begin_kernel/end_kernel bracket");
  count(ev);
}

void CountingSink::on_instr_batch(const InstrEvent* evs, std::size_t n) {
  NAPEL_CHECK_MSG(in_kernel_,
                  "instr event outside a begin_kernel/end_kernel bracket");
  for (std::size_t i = 0; i < n; ++i) count(evs[i]);
}

std::uint64_t CountingSink::count_for_thread(unsigned t) const {
  NAPEL_CHECK(t < by_thread_.size());
  return by_thread_[t];
}

void VectorSink::begin_kernel(std::string_view name, unsigned n_threads) {
  kernel_name_ = std::string(name);
  n_threads_ = n_threads;
  events_.clear();
  ended_ = false;
  in_kernel_ = true;
}

void VectorSink::on_instr(const InstrEvent& ev) {
  NAPEL_CHECK_MSG(in_kernel_,
                  "instr event outside a begin_kernel/end_kernel bracket");
  events_.push_back(ev);
}

void VectorSink::on_instr_batch(const InstrEvent* evs, std::size_t n) {
  NAPEL_CHECK_MSG(in_kernel_,
                  "instr event outside a begin_kernel/end_kernel bracket");
  events_.insert(events_.end(), evs, evs + n);
}

void VectorSink::end_kernel() {
  ended_ = true;
  in_kernel_ = false;
}

}  // namespace napel::trace
