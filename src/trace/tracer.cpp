#include "trace/tracer.hpp"

#include <algorithm>

namespace napel::trace {

namespace {
// pc layout: [ scope id : 20 bits | intra-iteration index : 12 bits ].
// Loop bodies longer than 4095 instructions saturate the intra field; such
// instructions share the final pseudo-PC of the body, which only coarsens
// the instruction-reuse statistics slightly.
constexpr std::uint32_t kIntraBits = 12;
constexpr std::uint32_t kIntraMax = (1u << kIntraBits) - 1;
}  // namespace

void Tracer::attach(TraceSink& sink) {
  NAPEL_CHECK_MSG(!in_kernel_, "cannot attach sinks while a kernel runs");
  sinks_.push_back(&sink);
}

void Tracer::begin_kernel(std::string_view name, unsigned n_threads) {
  NAPEL_CHECK_MSG(!in_kernel_, "begin_kernel while a kernel is active");
  NAPEL_CHECK(n_threads >= 1);
  in_kernel_ = true;
  n_threads_ = n_threads;
  thread_ = 0;
  batch_n_ = 0;
  scope_stack_.clear();
  scope_stack_.push_back(Scope{.id = 0});
  for (auto* s : sinks_) s->begin_kernel(name, n_threads);
}

void Tracer::end_kernel() {
  NAPEL_CHECK_MSG(in_kernel_, "end_kernel without begin_kernel");
  NAPEL_CHECK_MSG(scope_stack_.size() == 1,
                  "end_kernel with open loop scopes");
  flush_batch();
  in_kernel_ = false;
  for (auto* s : sinks_) s->end_kernel();
}

void Tracer::set_thread(unsigned t) {
  NAPEL_CHECK(t < n_threads_);
  thread_ = t;
}

std::uint64_t Tracer::allocate(std::uint64_t bytes) {
  NAPEL_CHECK(bytes > 0);
  const std::uint64_t base = alloc_cursor_;
  alloc_cursor_ += (bytes + 63) & ~63ULL;
  // Footprint notification, so verifying sinks can bound address checks.
  // Flush first: sinks must see the allocation in true stream position
  // (an access to the new range must never precede its on_alloc).
  flush_batch();
  for (auto* s : sinks_) s->on_alloc(base, bytes);
  return base;
}

std::uint32_t Tracer::next_pc() {
  Scope& top = scope_stack_.back();
  const std::uint32_t intra = std::min(top.intra, kIntraMax);
  if (top.intra <= kIntraMax) ++top.intra;
  return (top.id << kIntraBits) | intra;
}

// The emit_* functions build each event directly in its batch slot (see
// next_slot/commit): constructing on the stack and copying 32 bytes into the
// batch stalls store-to-load forwarding on the overlapping reads the copy
// needs, which costs more than the rest of the emission path combined.

void Tracer::flush_batch() {
  if (batch_n_ == 0) return;
  for (auto* s : sinks_) s->on_instr_batch(batch_.data(), batch_n_);
  batch_n_ = 0;
}

Reg Tracer::emit_load(std::uint64_t addr, unsigned size, Reg addr_src) {
  NAPEL_CHECK_MSG(in_kernel_, "emit outside kernel");
  InstrEvent& ev = next_slot();
  ev.op = OpType::kLoad;
  ev.addr = addr;
  ev.size = static_cast<std::uint8_t>(size);
  ev.pc = next_pc();
  ev.dst = next_reg();
  ev.src1 = addr_src;
  ev.src2 = kNoReg;
  ev.thread = static_cast<std::uint16_t>(thread_);
  const Reg dst = ev.dst;
  commit();
  return dst;
}

void Tracer::emit_store(std::uint64_t addr, unsigned size, Reg value,
                        Reg addr_src) {
  NAPEL_CHECK_MSG(in_kernel_, "emit outside kernel");
  InstrEvent& ev = next_slot();
  ev.op = OpType::kStore;
  ev.addr = addr;
  ev.size = static_cast<std::uint8_t>(size);
  ev.pc = next_pc();
  ev.dst = kNoReg;
  ev.src1 = value;
  ev.src2 = addr_src;
  ev.thread = static_cast<std::uint16_t>(thread_);
  commit();
}

Reg Tracer::emit_op(OpType op, Reg src1, Reg src2) {
  NAPEL_CHECK_MSG(in_kernel_, "emit outside kernel");
  NAPEL_CHECK_MSG(!is_memory(op) && op != OpType::kBranch,
                  "emit_op is for arithmetic ops");
  InstrEvent& ev = next_slot();
  ev.op = op;
  ev.addr = 0;
  ev.size = 0;
  ev.pc = next_pc();
  ev.dst = next_reg();
  ev.src1 = src1;
  ev.src2 = src2;
  ev.thread = static_cast<std::uint16_t>(thread_);
  const Reg dst = ev.dst;
  commit();
  return dst;
}

void Tracer::emit_branch(Reg cond) {
  NAPEL_CHECK_MSG(in_kernel_, "emit outside kernel");
  InstrEvent& ev = next_slot();
  ev.op = OpType::kBranch;
  ev.addr = 0;
  ev.size = 0;
  ev.pc = next_pc();
  ev.dst = kNoReg;
  ev.src1 = cond;
  ev.src2 = kNoReg;
  ev.thread = static_cast<std::uint16_t>(thread_);
  commit();
}

void Tracer::push_scope() {
  NAPEL_CHECK_MSG(in_kernel_, "LoopScope outside kernel");
  Scope& parent = scope_stack_.back();
  const std::uint64_t key =
      (static_cast<std::uint64_t>(parent.id) << 32) | parent.child_seq++;
  auto [it, inserted] = scope_ids_.try_emplace(key, scope_id_counter_);
  if (inserted) ++scope_id_counter_;
  scope_stack_.push_back(Scope{.id = it->second});
}

void Tracer::pop_scope() {
  NAPEL_CHECK(scope_stack_.size() > 1);
  scope_stack_.pop_back();
}

void Tracer::scope_iteration() {
  Scope& top = scope_stack_.back();
  top.intra = 0;
  top.child_seq = 0;
  // Loop-control overhead: induction increment (depends on its previous
  // value) and the conditional backward branch testing it.
  top.induction = emit_op(OpType::kIntAlu, top.induction);
  emit_branch(top.induction);
  // The overhead itself consumed two intra slots; keep them reserved so the
  // body's first instruction gets a stable index.
}

Tracer::LoopScope::LoopScope(Tracer& t) : tracer_(t) { t.push_scope(); }

Tracer::LoopScope::~LoopScope() { tracer_.pop_scope(); }

void Tracer::LoopScope::iteration() { tracer_.scope_iteration(); }

}  // namespace napel::trace
