// TraceSink: consumer interface for the dynamic instruction stream, plus two
// utility sinks (counting, buffering) used by tests and tools.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "trace/isa.hpp"

namespace napel::trace {

/// Stream consumer. A kernel run produces exactly one
/// begin_kernel ... instr* ... end_kernel bracket; instr events outside a
/// bracket are a contract violation (the utility sinks below enforce it,
/// and verify::VerifyingSink reports it as a diagnostic).
///
/// Delivery granularity: producers (Tracer, TraceBuffer::replay,
/// replay_trace) hand events over in batches via on_instr_batch, so the
/// per-instruction virtual-call cost is paid once per batch, not once per
/// event. The two entry points are equivalent — a batch of n events means
/// exactly the same stream as n consecutive on_instr calls — and events are
/// always delivered in emission order. Producers flush pending batches
/// before on_alloc and end_kernel, so those remain precise sequence points;
/// between them a sink may observe events slightly later than they were
/// emitted.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Footprint notification: the tracer allocated [base, base+bytes) of
  /// virtual address space. May arrive outside kernel brackets (arrays are
  /// created up front). Default: ignored.
  virtual void on_alloc(std::uint64_t base, std::uint64_t bytes) {
    (void)base;
    (void)bytes;
  }
  virtual void begin_kernel(std::string_view name, unsigned n_threads) {
    (void)name;
    (void)n_threads;
  }
  virtual void on_instr(const InstrEvent& ev) = 0;
  /// Batched delivery of `n` consecutive events. Semantically identical to
  /// calling on_instr for each event in order; hot sinks override it to
  /// amortize the virtual dispatch. The default falls back per event, so a
  /// sink only implementing on_instr stays correct.
  virtual void on_instr_batch(const InstrEvent* evs, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) on_instr(evs[i]);
  }
  virtual void end_kernel() {}
};

/// Counts instructions by type and thread; O(1) memory.
class CountingSink final : public TraceSink {
 public:
  void begin_kernel(std::string_view name, unsigned n_threads) override;
  void on_instr(const InstrEvent& ev) override;
  void on_instr_batch(const InstrEvent* evs, std::size_t n) override;
  void end_kernel() override { in_kernel_ = false; }

  std::uint64_t total() const { return total_; }
  std::uint64_t count(OpType op) const {
    return by_op_[static_cast<std::size_t>(op)];
  }
  std::uint64_t memory_ops() const {
    return count(OpType::kLoad) + count(OpType::kStore);
  }
  std::uint64_t count_for_thread(unsigned t) const;
  unsigned n_threads() const { return n_threads_; }
  const std::string& kernel_name() const { return kernel_name_; }

 private:
  void count(const InstrEvent& ev);

  std::array<std::uint64_t, kNumOpTypes> by_op_{};
  std::vector<std::uint64_t> by_thread_;
  std::uint64_t total_ = 0;
  unsigned n_threads_ = 0;
  std::string kernel_name_;
  bool in_kernel_ = false;
};

/// Buffers the full event stream in memory. Intended for tests and small
/// inspection tools only — real pipelines stream.
class VectorSink final : public TraceSink {
 public:
  void begin_kernel(std::string_view name, unsigned n_threads) override;
  void on_instr(const InstrEvent& ev) override;
  void on_instr_batch(const InstrEvent* evs, std::size_t n) override;
  void end_kernel() override;

  const std::vector<InstrEvent>& events() const { return events_; }
  bool ended() const { return ended_; }
  const std::string& kernel_name() const { return kernel_name_; }
  unsigned n_threads() const { return n_threads_; }

 private:
  std::vector<InstrEvent> events_;
  std::string kernel_name_;
  unsigned n_threads_ = 0;
  bool ended_ = false;
  bool in_kernel_ = false;
};

}  // namespace napel::trace
