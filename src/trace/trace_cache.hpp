// TraceCache: bounded LRU cache of captured kernel traces.
//
// Collection runs the same (app, params, data_seed) kernel for several
// architecture configurations; the cache lets later tasks replay the trace
// captured by the first one instead of re-executing the kernel. Entries are
// immutable shared_ptr<const TraceBuffer>, so a hit can be replayed while
// the cache concurrently evicts it. Hits and misses only affect timing —
// a replayed trace is bit-identical to live execution — so eviction order
// never influences results.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/flat_map.hpp"
#include "trace/trace_buffer.hpp"

namespace napel::trace {

class TraceCache {
 public:
  /// `max_bytes` bounds the summed TraceBuffer::memory_bytes() of resident
  /// entries; least-recently-used entries are evicted past the bound. A
  /// single trace larger than the bound is never admitted.
  explicit TraceCache(std::size_t max_bytes) : max_bytes_(max_bytes) {}

  TraceCache(const TraceCache&) = delete;
  TraceCache& operator=(const TraceCache&) = delete;

  /// Returns the cached trace for `key` (marking it most recently used), or
  /// nullptr on a miss.
  std::shared_ptr<const TraceBuffer> get(const std::string& key);

  /// Inserts a complete trace under `key`, evicting LRU entries to respect
  /// the byte bound. Re-insertion under an existing key keeps the resident
  /// entry (first capture wins; both are bit-identical by construction).
  void put(const std::string& key, std::shared_ptr<const TraceBuffer> buf);

  /// Capture admission control: records that `key` was requested and
  /// missed, and returns true when it had already missed before (ghost
  /// hit). Capturing a trace costs real time on the execution path, and a
  /// cold DoE collect requests every key exactly once — so first-touch
  /// misses are not worth capturing. A trace is admitted only once its key
  /// provably recurs (bounded-retry re-attempts, repeated collections in
  /// one process). Ghost entries are key hashes: a collision merely
  /// captures one trace a round early, never changes results.
  bool note_miss(const std::string& key);

  std::size_t max_bytes() const { return max_bytes_; }

  // --- statistics (monotonic over the cache lifetime) ---
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;
  std::size_t resident_bytes() const;
  std::size_t resident_entries() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const TraceBuffer> buf;
    std::size_t bytes;
  };

  void evict_to_fit_locked(std::size_t incoming_bytes);

  mutable std::mutex mu_;
  std::size_t max_bytes_;
  std::size_t resident_bytes_ = 0;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;

  // Ghost keys for note_miss (hashes of keys that have missed). Cleared
  // wholesale past the bound; losing ghosts only delays an admission.
  static constexpr std::size_t kMaxGhostEntries = 1u << 16;
  FlatSet ghost_;
};

}  // namespace napel::trace
