// TraceBuffer: capture-once / replay-many recording of one kernel execution.
//
// Trace-driven simulation pays for kernel execution once and replays the
// recorded stream into any number of consumers (profiler, one simulator per
// architecture configuration). The buffer is a TraceSink, so capturing is
// just attaching it to a Tracer; replay() reconstructs the exact event
// stream — bit-identical InstrEvents, allocations at their original stream
// positions, one begin/end bracket — into any other TraceSink, using
// batched dispatch (TraceSink::on_instr_batch) on the hot path.
//
// Storage is structure-of-arrays rather than a vector<InstrEvent>:
//   * per-event columns: op (u8), pc (u32), dst/src1/src2 (u32);
//   * thread ids are run-length encoded (SPMD kernels switch threads per
//     block, not per instruction);
//   * memory operands live in side arrays indexed by memory-op order: the
//     access size (u8) and the address as a zigzag-varint delta from the
//     previous memory address (loop strides are small, so most deltas fit
//     in 1-2 bytes);
//   * kernel/alloc metadata (name, n_threads, allocation ranges) is
//     interned once in the header, not repeated per event.
// This shrinks a 32-byte InstrEvent to ~18-19 bytes for typical kernels
// while keeping decode a branch-light linear scan.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "trace/sink.hpp"

namespace napel::trace {

/// One run of consecutive events sharing a thread id (the RLE unit of the
/// thread column).
struct ThreadRun {
  std::uint64_t count;  ///< consecutive events with this thread id
  std::uint16_t thread;
};

/// Streaming decoder for the zigzag-varint memory-address column: next()
/// yields the absolute address of each successive memory op. Single-byte
/// deltas (unit-stride sweeps) take the early-return fast path.
class MemAddrCursor {
 public:
  explicit MemAddrCursor(std::span<const std::uint8_t> bytes)
      : p_(bytes.data()) {}

  std::uint64_t next() {
    std::uint64_t u;
    const std::uint8_t b0 = *p_;
    if ((b0 & 0x80) == 0) {
      u = b0;
      ++p_;
    } else {
      u = 0;
      unsigned shift = 0;
      for (;;) {
        const std::uint8_t b = *p_++;
        u |= static_cast<std::uint64_t>(b & 0x7F) << shift;
        if ((b & 0x80) == 0) break;
        shift += 7;
      }
    }
    const std::int64_t delta =
        static_cast<std::int64_t>(u >> 1) ^ -static_cast<std::int64_t>(u & 1);
    addr_ = static_cast<std::uint64_t>(static_cast<std::int64_t>(addr_) +
                                       delta);
    return addr_;
  }

 private:
  const std::uint8_t* p_;
  std::uint64_t addr_ = 0;
};

/// Read-only view of a TraceBuffer's encoded columns, for sinks that can
/// consume the stream without materialized InstrEvents.
struct TraceColumns {
  std::span<const std::uint8_t> ops;   ///< OpType per event
  std::span<const std::uint32_t> pcs;
  std::span<const std::uint32_t> dsts;
  std::span<const std::uint32_t> src1s;
  std::span<const std::uint32_t> src2s;
  std::span<const std::uint8_t> mem_sizes;        ///< per memory op
  std::span<const std::uint8_t> mem_addr_deltas;  ///< decode via MemAddrCursor
  std::span<const ThreadRun> thread_runs;
};

/// Opt-in fast path for replay: a TraceSink that also implements this
/// interface receives the raw SoA columns instead of materialized event
/// batches — no 32-byte InstrEvent is ever built, and the consumer reads
/// only the columns it needs (a simulator compiles streams from op, thread,
/// and address alone). Consuming the columns must be observably equivalent
/// to ingesting the same events through on_instr_batch. Column consumers
/// must not correlate on_alloc calls with event positions: replay delivers
/// mid-kernel allocations up front on this path.
class TraceColumnConsumer {
 public:
  virtual ~TraceColumnConsumer() = default;
  virtual void consume_columns(const TraceColumns& cols) = 0;
};

class TraceBuffer final : public TraceSink {
 public:
  /// Events per on_instr_batch call during replay.
  static constexpr std::size_t kReplayBatch = 512;

  // --- capture (TraceSink interface; records exactly one kernel) ---

  void on_alloc(std::uint64_t base, std::uint64_t bytes) override;
  void begin_kernel(std::string_view name, unsigned n_threads) override;
  void on_instr(const InstrEvent& ev) override;
  void on_instr_batch(const InstrEvent* evs, std::size_t n) override;
  void end_kernel() override;

  // --- recorded stream ---

  /// True once one full begin/end bracket has been captured.
  bool complete() const { return ended_; }
  std::uint64_t event_count() const { return n_events_; }
  const std::string& kernel_name() const { return kernel_name_; }
  unsigned n_threads() const { return n_threads_; }
  /// Heap bytes held by the encoded stream (cache accounting).
  std::size_t memory_bytes() const;

  /// Replays the recorded execution into `sink`: pre-kernel allocations,
  /// the kernel bracket, every event (batched, bit-identical to capture),
  /// mid-kernel allocations at their original stream positions. Requires a
  /// complete() buffer. The buffer is immutable during replay, so any
  /// number of threads may replay the same buffer concurrently.
  void replay(TraceSink& sink) const;

  /// Replays into several sinks in one pass: the stream is decoded once and
  /// every batch/alloc/bracket call fans out to each sink in order, so each
  /// sink observes exactly the stream the single-sink overload delivers.
  /// Preferred when the sinks cannot usefully run on separate threads
  /// (serial collection) — it pays the decode cost once instead of once
  /// per sink.
  void replay(std::span<TraceSink* const> sinks) const;

  /// Replay via one on_instr virtual call per event instead of batches.
  /// Reference path for equivalence tests and dispatch-cost benchmarks.
  void replay_per_event(TraceSink& sink) const;

  /// View of the encoded columns (requires a complete() buffer).
  TraceColumns columns() const {
    return TraceColumns{.ops = ops_,
                        .pcs = pcs_,
                        .dsts = dsts_,
                        .src1s = src1s_,
                        .src2s = src2s_,
                        .mem_sizes = mem_sizes_,
                        .mem_addr_deltas = mem_addr_deltas_,
                        .thread_runs = thread_runs_};
  }

 private:
  struct Alloc {
    std::uint64_t event_index;  ///< events emitted before this allocation
    std::uint64_t base;
    std::uint64_t bytes;
  };

  void append(const InstrEvent& ev);
  template <typename Emit>
  void decode(Emit&& emit) const;  // emit(const InstrEvent*, size_t)

  // SoA columns, one entry per event.
  std::vector<std::uint8_t> ops_;
  std::vector<std::uint32_t> pcs_;
  std::vector<std::uint32_t> dsts_;
  std::vector<std::uint32_t> src1s_;
  std::vector<std::uint32_t> src2s_;
  // Memory operands, one entry per memory op (in memory-op order).
  std::vector<std::uint8_t> mem_sizes_;
  std::vector<std::uint8_t> mem_addr_deltas_;  ///< zigzag varint stream
  // Run-length-encoded thread ids.
  std::vector<ThreadRun> thread_runs_;
  // Interned metadata.
  std::vector<Alloc> allocs_;
  std::string kernel_name_;
  unsigned n_threads_ = 1;

  std::uint64_t n_events_ = 0;
  std::uint64_t last_mem_addr_ = 0;  ///< capture-side delta base
  bool in_kernel_ = false;
  bool ended_ = false;
};

}  // namespace napel::trace
