// Traced value and array wrappers.
//
// Kernels operate on Traced<T> values and TArray<T> arrays; every arithmetic
// operator, load, store, and comparison both performs the real computation
// and emits the corresponding virtual-ISA instruction through the Tracer.
// Because the real values flow through, data-dependent control (bfs frontier
// growth, k-means assignment) behaves exactly like a native execution.
#pragma once

#include <cmath>
#include <concepts>
#include <cstdint>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/check.hpp"
#include "trace/tracer.hpp"

namespace napel::trace {

template <typename T>
concept TraceableScalar = std::integral<T> || std::floating_point<T>;

template <TraceableScalar T>
struct Traced {
  T value{};
  Reg reg = kNoReg;
  Tracer* tracer = nullptr;

  Traced() = default;
  Traced(T v, Reg r, Tracer* t) : value(v), reg(r), tracer(t) {}
};

/// An immediate/constant: participates in computation without an event
/// (constants live in the instruction encoding, not the register file).
template <TraceableScalar T>
Traced<T> imm(Tracer& t, T v) {
  return Traced<T>{v, kNoReg, &t};
}

namespace detail {

template <TraceableScalar T>
constexpr OpType add_op() {
  return std::is_floating_point_v<T> ? OpType::kFpAdd : OpType::kIntAlu;
}
template <TraceableScalar T>
constexpr OpType mul_op() {
  return std::is_floating_point_v<T> ? OpType::kFpMul : OpType::kIntMul;
}
template <TraceableScalar T>
constexpr OpType div_op() {
  return std::is_floating_point_v<T> ? OpType::kFpDiv : OpType::kIntDiv;
}

template <TraceableScalar T>
Tracer& tracer_of(const Traced<T>& a, const Traced<T>& b) {
  Tracer* t = a.tracer ? a.tracer : b.tracer;
  NAPEL_CHECK_MSG(t != nullptr, "traced operation without a tracer");
  return *t;
}

}  // namespace detail

template <TraceableScalar T>
Traced<T> operator+(const Traced<T>& a, const Traced<T>& b) {
  Tracer& t = detail::tracer_of(a, b);
  return {static_cast<T>(a.value + b.value),
          t.emit_op(detail::add_op<T>(), a.reg, b.reg), &t};
}

template <TraceableScalar T>
Traced<T> operator-(const Traced<T>& a, const Traced<T>& b) {
  Tracer& t = detail::tracer_of(a, b);
  return {static_cast<T>(a.value - b.value),
          t.emit_op(detail::add_op<T>(), a.reg, b.reg), &t};
}

template <TraceableScalar T>
Traced<T> operator*(const Traced<T>& a, const Traced<T>& b) {
  Tracer& t = detail::tracer_of(a, b);
  return {static_cast<T>(a.value * b.value),
          t.emit_op(detail::mul_op<T>(), a.reg, b.reg), &t};
}

template <TraceableScalar T>
Traced<T> operator/(const Traced<T>& a, const Traced<T>& b) {
  Tracer& t = detail::tracer_of(a, b);
  NAPEL_CHECK_MSG(b.value != T{}, "traced division by zero");
  return {static_cast<T>(a.value / b.value),
          t.emit_op(detail::div_op<T>(), a.reg, b.reg), &t};
}

template <std::floating_point T>
Traced<T> tsqrt(const Traced<T>& a) {
  NAPEL_CHECK(a.tracer != nullptr);
  NAPEL_CHECK_MSG(a.value >= T{}, "traced sqrt of negative value");
  // sqrt shares the long-latency divider in the modelled cores.
  return {std::sqrt(a.value), a.tracer->emit_op(OpType::kFpDiv, a.reg),
          a.tracer};
}

template <TraceableScalar T>
Traced<T> tabs(const Traced<T>& a) {
  NAPEL_CHECK(a.tracer != nullptr);
  return {static_cast<T>(a.value < T{} ? -a.value : a.value),
          a.tracer->emit_op(detail::add_op<T>(), a.reg), a.tracer};
}

/// Comparison: emits the compare instruction; result carries the condition.
template <TraceableScalar T>
Traced<bool> operator<(const Traced<T>& a, const Traced<T>& b) {
  Tracer& t = detail::tracer_of(a, b);
  return {a.value < b.value, t.emit_op(OpType::kIntAlu, a.reg, b.reg), &t};
}

template <TraceableScalar T>
Traced<bool> operator>(const Traced<T>& a, const Traced<T>& b) {
  Tracer& t = detail::tracer_of(a, b);
  return {a.value > b.value, t.emit_op(OpType::kIntAlu, a.reg, b.reg), &t};
}

template <TraceableScalar T>
Traced<bool> operator!=(const Traced<T>& a, const Traced<T>& b) {
  Tracer& t = detail::tracer_of(a, b);
  return {a.value != b.value, t.emit_op(OpType::kIntAlu, a.reg, b.reg), &t};
}

/// Emits the conditional branch on `cond` and returns its truth value, so
/// kernels write data-dependent control as: `if (take(x < y)) { ... }`.
inline bool take(const Traced<bool>& cond) {
  NAPEL_CHECK(cond.tracer != nullptr);
  cond.tracer->emit_branch(cond.reg);
  return cond.value;
}

/// Traced array: owns real storage plus a virtual address range, so loads
/// and stores carry realistic addresses and genuine values.
template <TraceableScalar T>
class TArray {
 public:
  TArray(Tracer& t, std::size_t n)
      : tracer_(&t), data_(n), base_(t.allocate(n * sizeof(T))) {
    NAPEL_CHECK(n > 0);
  }

  std::size_t size() const { return data_.size(); }
  std::uint64_t base_addr() const { return base_; }
  std::uint64_t addr_of(std::size_t i) const { return base_ + i * sizeof(T); }

  /// Untraced access for initialization / verification outside the kernel.
  T& raw(std::size_t i) {
    NAPEL_CHECK(i < data_.size());
    return data_[i];
  }
  const T& raw(std::size_t i) const {
    NAPEL_CHECK(i < data_.size());
    return data_[i];
  }

  /// Traced load.
  Traced<T> load(std::size_t i) const {
    NAPEL_CHECK(i < data_.size());
    const Reg r = tracer_->emit_load(addr_of(i), sizeof(T));
    return {data_[i], r, tracer_};
  }

  /// Traced indirect load: the index itself was produced by a traced
  /// computation (pointer-chasing / gather); the address generation depends
  /// on the index register.
  Traced<T> load_indexed(const Traced<std::int64_t>& idx) const {
    const auto i = static_cast<std::size_t>(idx.value);
    NAPEL_CHECK(i < data_.size());
    const Reg r = tracer_->emit_load(addr_of(i), sizeof(T), idx.reg);
    return {data_[i], r, tracer_};
  }

  /// Traced store.
  void store(std::size_t i, const Traced<T>& v) {
    NAPEL_CHECK(i < data_.size());
    data_[i] = v.value;
    tracer_->emit_store(addr_of(i), sizeof(T), v.reg);
  }

  void store_indexed(const Traced<std::int64_t>& idx, const Traced<T>& v) {
    const auto i = static_cast<std::size_t>(idx.value);
    NAPEL_CHECK(i < data_.size());
    data_[i] = v.value;
    tracer_->emit_store(addr_of(i), sizeof(T), v.reg, idx.reg);
  }

 private:
  Tracer* tracer_;
  std::vector<T> data_;
  std::uint64_t base_;
};

}  // namespace napel::trace
