#include "trace/trace_cache.hpp"

#include <functional>
#include <string_view>

#include "common/check.hpp"

namespace napel::trace {

std::shared_ptr<const TraceBuffer> TraceCache::get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->buf;
}

void TraceCache::put(const std::string& key,
                     std::shared_ptr<const TraceBuffer> buf) {
  NAPEL_CHECK(buf != nullptr);
  NAPEL_CHECK_MSG(buf->complete(), "caching an incomplete trace");
  const std::size_t bytes = buf->memory_bytes();
  std::lock_guard<std::mutex> lock(mu_);
  if (index_.count(key) > 0) return;  // first capture wins
  if (bytes > max_bytes_) return;     // never admit an oversized trace
  evict_to_fit_locked(bytes);
  lru_.push_front(Entry{key, std::move(buf), bytes});
  index_.emplace(key, lru_.begin());
  resident_bytes_ += bytes;
}

bool TraceCache::note_miss(const std::string& key) {
  std::uint64_t h = std::hash<std::string_view>{}(key);
  if (h == ~0ULL) h = 0;  // FlatSet reserves the all-ones key
  std::lock_guard<std::mutex> lock(mu_);
  if (ghost_.size() >= kMaxGhostEntries) ghost_.clear();
  return !ghost_.insert(h);
}

void TraceCache::evict_to_fit_locked(std::size_t incoming_bytes) {
  while (!lru_.empty() && resident_bytes_ + incoming_bytes > max_bytes_) {
    const Entry& victim = lru_.back();
    resident_bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

std::uint64_t TraceCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t TraceCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::uint64_t TraceCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

std::size_t TraceCache::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_bytes_;
}

std::size_t TraceCache::resident_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace napel::trace
