#include "trace/trace_file.hpp"

#include <algorithm>
#include <cstring>

#include "common/check.hpp"

namespace napel::trace {

namespace {

constexpr char kMagic[8] = {'N', 'A', 'P', 'E', 'L', 'T', 'R', 'C'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ofstream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
void read_pod(std::ifstream& is, T& v) {
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is.good())
    throw TruncatedTraceError("trace file ends inside the header");
}

std::ifstream open_and_check(const std::string& path, TraceInfo& info,
                             std::streampos& payload_start) {
  std::ifstream is(path, std::ios::binary);
  NAPEL_CHECK_MSG(is.good(), "cannot open trace file: " + path);
  char magic[8];
  is.read(magic, sizeof(magic));
  if (is.eof())
    throw TruncatedTraceError("trace file ends inside the magic bytes");
  NAPEL_CHECK_MSG(is.good() && std::memcmp(magic, kMagic, 8) == 0,
                  "not a NAPEL trace file: " + path);
  std::uint32_t version = 0;
  read_pod(is, version);
  NAPEL_CHECK_MSG(version == kVersion, "unsupported trace version");
  std::uint32_t name_len = 0;
  read_pod(is, name_len);
  NAPEL_CHECK_MSG(name_len <= 4096, "implausible kernel name length");
  info.kernel_name.resize(name_len);
  is.read(info.kernel_name.data(), name_len);
  if (!is.good())
    throw TruncatedTraceError("trace file ends inside the kernel name");
  std::uint32_t n_threads = 0;
  read_pod(is, n_threads);
  NAPEL_CHECK_MSG(n_threads >= 1, "malformed trace header");
  info.n_threads = n_threads;
  read_pod(is, info.event_count);
  NAPEL_CHECK_MSG(is.good(), "truncated trace header");
  payload_start = is.tellg();
  return is;
}

}  // namespace

TraceWriter::TraceWriter(const std::string& path)
    : out_(path, std::ios::binary), path_(path) {
  NAPEL_CHECK_MSG(out_.good(), "cannot open trace file for writing: " + path);
}

TraceWriter::~TraceWriter() {
  // Destruction with an open bracket leaves the placeholder count; the
  // reader rejects the mismatch rather than silently truncating.
}

void TraceWriter::write_header() {
  out_.seekp(0);
  out_.write(kMagic, sizeof(kMagic));
  write_pod(out_, kVersion);
  const auto name_len = static_cast<std::uint32_t>(kernel_name_.size());
  write_pod(out_, name_len);
  out_.write(kernel_name_.data(), name_len);
  write_pod(out_, static_cast<std::uint32_t>(n_threads_));
  write_pod(out_, count_);
}

void TraceWriter::begin_kernel(std::string_view name, unsigned n_threads) {
  NAPEL_CHECK_MSG(!open_bracket_ && !finished_,
                  "TraceWriter records a single kernel");
  kernel_name_ = std::string(name);
  n_threads_ = n_threads;
  count_ = 0;
  open_bracket_ = true;
  write_header();  // placeholder count, patched at end_kernel
}

void TraceWriter::on_instr(const InstrEvent& ev) {
  NAPEL_CHECK_MSG(open_bracket_, "event outside kernel bracket");
  out_.write(reinterpret_cast<const char*>(&ev), sizeof(InstrEvent));
  ++count_;
}

void TraceWriter::end_kernel() {
  NAPEL_CHECK(open_bracket_);
  open_bracket_ = false;
  finished_ = true;
  const auto end = out_.tellp();
  write_header();  // patch the real event count
  out_.seekp(end);
  out_.flush();
  NAPEL_CHECK_MSG(out_.good(), "trace write failed: " + path_);
}

TraceInfo read_trace_info(const std::string& path) {
  TraceInfo info;
  std::streampos payload;
  open_and_check(path, info, payload);
  return info;
}

TraceInfo replay_trace(const std::string& path,
                       const std::vector<TraceSink*>& sinks) {
  TraceInfo info;
  std::streampos payload;
  std::ifstream is = open_and_check(path, info, payload);

  for (TraceSink* s : sinks) s->begin_kernel(info.kernel_name, info.n_threads);
  // Buffered replay keeps syscall overhead off the per-event path.
  constexpr std::size_t kBatch = 4096;
  std::vector<InstrEvent> buffer(kBatch);
  std::uint64_t remaining = info.event_count;
  while (remaining > 0) {
    const std::size_t chunk =
        static_cast<std::size_t>(std::min<std::uint64_t>(kBatch, remaining));
    is.read(reinterpret_cast<char*>(buffer.data()),
            static_cast<std::streamsize>(chunk * sizeof(InstrEvent)));
    if (!is.good())
      throw TruncatedTraceError("trace payload shorter than header count");
    for (TraceSink* s : sinks) s->on_instr_batch(buffer.data(), chunk);
    remaining -= chunk;
  }
  for (TraceSink* s : sinks) s->end_kernel();
  return info;
}

}  // namespace napel::trace
