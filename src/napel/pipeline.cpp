#include "napel/pipeline.hpp"

#include <algorithm>
#include <chrono>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "trace/tracer.hpp"

namespace napel::core {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// L1 capacity expressed in the profiler's 64B reuse-distance blocks.
std::uint64_t l1_capacity_blocks(const sim::ArchConfig& arch) {
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(arch.cache_lines) * arch.cache_line_bytes;
  return std::max<std::uint64_t>(1, bytes / 64);
}

}  // namespace

std::vector<double> model_features(const profiler::Profile& profile,
                                   const sim::ArchConfig& arch) {
  std::vector<double> f = profile.features;
  const std::vector<double> af = arch.features();
  f.insert(f.end(), af.begin(), af.end());
  const double dram_frac =
      profile.data_all_rd.miss_fraction(l1_capacity_blocks(arch));
  f.push_back(1.0 - dram_frac);  // cache access fraction
  f.push_back(dram_frac);        // DRAM access fraction

  // Analytic profile x architecture interaction features: a first-order
  // in-order-core model whose residual the forest learns. This extends the
  // paper's Table 1 interaction features (cache/DRAM access fraction) with
  // latency- and parallelism-weighted versions.
  const double instr = std::max<double>(1.0, static_cast<double>(
                                                 profile.total_instructions));
  const double mem_frac =
      static_cast<double>(profile.memory_ops()) / instr;
  const double t_miss =
      static_cast<double>(arch.timing.t_rcd + arch.timing.t_cl +
                          arch.timing.burst_cycles(arch.cache_line_bytes));
  const double active_pes =
      std::min<double>(profile.n_threads, arch.n_pes);
  const double cpi_pe = 1.0 + mem_frac * dram_frac * t_miss;
  const double chip_ipc = active_pes / cpi_pe;
  f.push_back(t_miss);                                  // arch_t_miss_cycles
  f.push_back(active_pes);                              // analytic_active_pes
  f.push_back(cpi_pe);                                  // analytic_cpi_pe
  f.push_back(chip_ipc);                                // analytic_chip_ipc
  f.push_back(mem_frac * dram_frac * t_miss / cpi_pe);  // mem-stall share
  NAPEL_CHECK(f.size() == model_feature_names().size());
  return f;
}

const std::vector<std::string>& model_feature_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> n = profiler::Profile::feature_names();
    const auto& an = sim::ArchConfig::feature_names();
    n.insert(n.end(), an.begin(), an.end());
    n.push_back("arch_cache_access_fraction");
    n.push_back("arch_dram_access_fraction");
    n.push_back("arch_t_miss_cycles");
    n.push_back("analytic_active_pes");
    n.push_back("analytic_cpi_pe");
    n.push_back("analytic_chip_ipc");
    n.push_back("analytic_mem_stall_frac");
    return n;
  }();
  return names;
}

profiler::Profile profile_workload(const workloads::Workload& w,
                                   const workloads::WorkloadParams& params,
                                   std::uint64_t seed) {
  trace::Tracer tracer;
  profiler::ProfileBuilder builder;
  tracer.attach(builder);
  w.run(tracer, params, seed);
  return builder.build();
}

sim::SimResult simulate_workload(const workloads::Workload& w,
                                 const workloads::WorkloadParams& params,
                                 const sim::ArchConfig& arch,
                                 std::uint64_t seed) {
  trace::Tracer tracer;
  sim::NmcSimulator simulator(arch);
  tracer.attach(simulator);
  w.run(tracer, params, seed);
  return simulator.result();
}

CollectStats collect_training_data(const workloads::Workload& w,
                                   const CollectOptions& opts,
                                   std::vector<TrainingRow>& out) {
  NAPEL_CHECK(opts.archs_per_config >= 1);
  NAPEL_CHECK(opts.arch_pool_size >= opts.archs_per_config);

  const workloads::DoeSpace space = w.doe_space(opts.scale);
  Rng rng(opts.seed);

  std::vector<workloads::WorkloadParams> configs;
  switch (opts.design) {
    case DesignKind::kCcd:
      configs = doe::central_composite(space);
      break;
    case DesignKind::kRandom:
      configs = doe::random_design(space, opts.design_points, rng);
      break;
    case DesignKind::kLatinHypercube:
      configs = doe::latin_hypercube(space, opts.design_points, rng);
      break;
    case DesignKind::kFullFactorial:
      configs = doe::full_factorial(space);
      break;
  }

  // Architecture pool is derived from the same seed for every workload, so
  // leave-one-application-out folds see a consistent design space.
  Rng arch_rng(opts.seed ^ 0xa5c3f00dULL);
  const std::vector<sim::ArchConfig> pool =
      sim::sample_arch_configs(opts.arch_pool_size, arch_rng);

  CollectStats stats;
  stats.n_input_configs = configs.size();

  // Every (input config x architecture) item is independent: each claims a
  // pre-sized output slot and owns a private Tracer/profiler/simulator
  // stack, so the appended rows are byte-identical to the sequential loop
  // at any thread count. Per-item wall-clock is reduced in config order
  // after the parallel region.
  const std::size_t per_config = opts.archs_per_config;
  const std::size_t base = out.size();
  out.resize(base + configs.size() * per_config);
  std::vector<double> profile_seconds(configs.size(), 0.0);
  std::vector<double> simulate_seconds(configs.size(), 0.0);

  parallel_for(configs.size(), opts.n_threads, [&](std::size_t ci) {
    const auto& params = configs[ci];
    const std::uint64_t data_seed = opts.seed + ci;

    // One kernel execution feeds the profiler and all simulators.
    trace::Tracer tracer;
    profiler::ProfileBuilder builder;
    tracer.attach(builder);
    std::vector<std::unique_ptr<sim::NmcSimulator>> sims;
    for (std::size_t a = 0; a < per_config; ++a) {
      // Slot 0 is always the reference design point (pool[0], the paper's
      // Table 3 system): the model's primary prediction target. Remaining
      // slots rotate through the rest of the pool for architectural spread.
      const sim::ArchConfig& arch =
          a == 0 ? pool[0]
                 : pool[1 + (ci * (per_config - 1) + a - 1) %
                                (pool.size() - 1)];
      sims.push_back(std::make_unique<sim::NmcSimulator>(arch));
      tracer.attach(*sims.back());
    }

    const auto t0 = Clock::now();
    w.run(tracer, params, data_seed);
    const profiler::Profile profile = builder.build();
    profile_seconds[ci] = seconds_since(t0);

    const auto t1 = Clock::now();
    for (std::size_t a = 0; a < sims.size(); ++a) {
      sim::NmcSimulator& simulator = *sims[a];
      const sim::SimResult& res = simulator.result();
      TrainingRow row;
      row.app = std::string(w.name());
      row.params = params;
      row.arch = simulator.config();
      row.features = model_features(profile, simulator.config());
      row.ipc = res.ipc;
      row.instructions = res.instructions;
      row.energy_pj_per_instr =
          res.instructions == 0
              ? 0.0
              : res.energy_joules * 1e12 /
                    static_cast<double>(res.instructions);
      row.power_watts = res.time_seconds == 0.0
                            ? 0.0
                            : res.energy_joules / res.time_seconds;
      row.sim_time_seconds = res.time_seconds;
      row.sim_energy_joules = res.energy_joules;
      out[base + ci * per_config + a] = std::move(row);
    }
    simulate_seconds[ci] = seconds_since(t1);
  });

  stats.n_rows = configs.size() * per_config;
  for (std::size_t ci = 0; ci < configs.size(); ++ci) {
    stats.kernel_and_profile_seconds += profile_seconds[ci];
    stats.simulation_seconds += simulate_seconds[ci];
  }
  return stats;
}

}  // namespace napel::core
