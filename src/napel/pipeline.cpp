#include "napel/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <span>
#include <thread>

#include "common/check.hpp"
#include "common/fault_injection.hpp"
#include "common/parallel.hpp"
#include "common/retry.hpp"
#include "common/rng.hpp"
#include "napel/journal.hpp"
#include "trace/trace_buffer.hpp"
#include "trace/trace_cache.hpp"
#include "trace/tracer.hpp"

namespace napel::core {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// L1 capacity expressed in the profiler's 64B reuse-distance blocks.
std::uint64_t l1_capacity_blocks(const sim::ArchConfig& arch) {
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(arch.cache_lines) * arch.cache_line_bytes;
  return std::max<std::uint64_t>(1, bytes / 64);
}

/// The architecture simulated in slot `a` of config `ci`. Slot 0 is always
/// the reference design point (pool[0], the paper's Table 3 system): the
/// model's primary prediction target. Remaining slots rotate through the
/// rest of the pool for architectural spread. Pure function of (ci, a) so
/// journal resume re-derives the same pairing.
const sim::ArchConfig& arch_for_slot(const std::vector<sim::ArchConfig>& pool,
                                     std::size_t ci, std::size_t a,
                                     std::size_t per_config) {
  if (a == 0) return pool[0];
  return pool[1 + (ci * (per_config - 1) + a - 1) % (pool.size() - 1)];
}

/// The responses of one completed DoE task: `per_config` rows plus the
/// task's wall-clock accounting.
struct TaskOutput {
  std::vector<TrainingRow> rows;
  double capture_seconds = 0.0;  ///< kernel execution into the trace buffer
  double replay_seconds = 0.0;   ///< profiler + simulator replay fan-out
  std::uint64_t replay_events = 0;  ///< events delivered across all replays
  bool cache_hit = false;        ///< trace came from CollectOptions::trace_cache
};

/// Trace-cache key of one DoE task. data_seed is part of the key: CCD
/// center replicates share params but draw different input data on purpose
/// (pure-error estimation), so they must not be deduplicated.
std::string trace_cache_key(std::string_view app,
                            const workloads::WorkloadParams& params,
                            std::uint64_t data_seed) {
  std::string key(app);
  key += '|';
  key += params.to_string();
  key += '|';
  key += std::to_string(data_seed);
  return key;
}

/// One attempt at one DoE task. Runtime failures come back as errors;
/// InjectedCrash (simulated process death) and NAPEL_CHECK contract
/// violations propagate.
Result<TaskOutput> attempt_task(const workloads::Workload& w,
                                const CollectOptions& opts,
                                const workloads::WorkloadParams& params,
                                std::size_t ci,
                                const std::vector<sim::ArchConfig>& pool,
                                bool parallel_replay) {
  const std::string key = collect_record_key(w.name(), ci);
  try {
    // Retries reuse the same data seed, so a retried success is
    // bit-identical to a first-attempt success.
    const std::uint64_t data_seed = opts.seed + ci;
    const Watchdog watchdog{
        std::chrono::milliseconds(opts.task_deadline_ms)};

    if (opts.faults) {
      if (const FaultSpec* f = opts.faults->fire("collect/task", ci)) {
        switch (f->kind) {
          case FaultKind::kThrow:
            throw InjectedFault("injected failure in " + key);
          case FaultKind::kCrash:
            throw InjectedCrash("injected crash in " + key);
          case FaultKind::kHang:
            // A real hang cannot be preempted; the injected one spins on
            // the same watchdog a hung phase would eventually hit.
            NAPEL_CHECK_MSG(watchdog.armed(),
                            "kHang at collect/task requires task_deadline_ms");
            while (!watchdog.expired()) std::this_thread::yield();
            break;
          case FaultKind::kCorruptWrite:
            break;  // no bytes written at this site
        }
      }
    }

    TaskOutput task;

    const std::size_t per_config = opts.archs_per_config;
    profiler::ProfileBuilder builder;
    std::vector<std::unique_ptr<sim::NmcSimulator>> sims;
    for (std::size_t a = 0; a < per_config; ++a) {
      sims.push_back(std::make_unique<sim::NmcSimulator>(
          arch_for_slot(pool, ci, a, per_config), opts.sim_budget));
      sims.back()->set_fault_plan(opts.faults);
    }

    // Stream compilation depends on the architecture only through n_pes
    // (thread → PE mapping), so simulators sharing n_pes compile identical
    // command streams. Only one representative per n_pes group consumes
    // the event stream; the rest adopt its compiled state afterwards and
    // run just their own timing model. The arch pool draws n_pes from four
    // levels, so with several archs per config this regularly removes
    // whole ingest passes.
    std::vector<std::size_t> stream_rep(per_config);
    for (std::size_t a = 0; a < per_config; ++a) {
      stream_rep[a] = a;
      for (std::size_t b = 0; b < a; ++b)
        if (sims[b]->config().n_pes == sims[a]->config().n_pes) {
          stream_rep[a] = b;
          break;
        }
    }

    std::vector<trace::TraceSink*> sinks;
    sinks.reserve(1 + per_config);
    sinks.push_back(&builder);
    for (std::size_t a = 0; a < per_config; ++a)
      if (stream_rep[a] == a) sinks.push_back(sims[a].get());

    // Capture phase: skipped entirely when the shared cache already holds
    // this (app, params, data_seed) trace. Replays of a cached trace are
    // bit-identical to replays of a fresh capture, so a hit only changes
    // wall-clock time.
    //
    // On a miss, recording the stream into a TraceBuffer is only worth its
    // append cost when the buffer will actually be consumed: either the
    // replay fan-out below needs it (idle workers), or the cache's
    // admission policy says this key recurs (note_miss ghost hit). A cold
    // serial DoE collect touches every key exactly once, so it runs fused
    // capture-free — live execution straight into the batched consumers,
    // exactly the stream a replay would deliver.
    std::shared_ptr<const trace::TraceBuffer> buf;
    bool admit = false;
    if (opts.trace_cache != nullptr) {
      const std::string ckey = trace_cache_key(w.name(), params, data_seed);
      buf = opts.trace_cache->get(ckey);
      if (buf == nullptr) admit = opts.trace_cache->note_miss(ckey);
    }
    task.cache_hit = buf != nullptr;
    const bool capture = buf == nullptr && (parallel_replay || admit);
    bool consumed_during_capture = false;
    std::uint64_t live_events = 0;
    if (buf == nullptr) {
      const auto t0 = Clock::now();
      std::shared_ptr<trace::TraceBuffer> captured;
      trace::Tracer tracer;
      if (capture) {
        captured = std::make_shared<trace::TraceBuffer>();
        tracer.attach(*captured);
      }
      if (!parallel_replay) {
        // Fused execute+consume: with no idle workers to fan out to, the
        // single kernel execution feeds every consumer (and the buffer,
        // when capturing) in one batched pass — no decode step at all on
        // the cold path. The consumers see exactly the stream a replay
        // would deliver (batch boundaries differ; batch semantics do
        // not), so rows stay bit-identical to the replay paths below.
        for (trace::TraceSink* s : sinks) tracer.attach(*s);
        consumed_during_capture = true;
      }
      w.run(tracer, params, data_seed);
      live_events = tracer.instr_count();
      if (capture) {
        task.capture_seconds = seconds_since(t0);
        buf = std::move(captured);
        if (opts.trace_cache != nullptr)
          opts.trace_cache->put(trace_cache_key(w.name(), params, data_seed),
                                buf);
      } else {
        // No buffer was recorded: the execution itself was the delivery
        // pass, so its time is replay (consume) time, not capture time.
        task.replay_seconds = seconds_since(t0);
      }
    }
    watchdog.check(key + " (capture phase)");

    // Replay fan-out for the streams not already consumed during capture
    // (cache hits, and fresh captures when workers are idle), then the
    // timing models. In the parallel path the profiler pass and each
    // per-architecture simulation are independent thread-pool tasks
    // replaying the same immutable buffer; each item owns its consumer and
    // writes only its own slot, so the fan-out preserves the bit-identical-
    // at-any-thread-count contract (nested parallel_for is deadlock-free:
    // waiting workers help execute pending tasks).
    const auto t1 = Clock::now();
    if (consumed_during_capture || !parallel_replay) {
      // Work-optimal path: decode the stream once (if not consumed live)
      // and fan every batch out to all consumers in one pass, then run
      // the timing models serially.
      if (!consumed_during_capture) {
        buf->replay(std::span<trace::TraceSink* const>(sinks));
        watchdog.check(key + " (profile replay)");
      }
      // Non-representative simulators adopt their group's compiled stream
      // (bit-identical to an independent ingest) before timing.
      for (std::size_t a = 0; a < per_config; ++a)
        if (stream_rep[a] != a)
          sims[a]->share_stream_from(*sims[stream_rep[a]]);
      for (std::size_t a = 0; a < per_config; ++a) {
        sims[a]->result();
        watchdog.check(key + " (simulation " + std::to_string(a) + ")");
      }
    } else {
      // Latency-optimal path (fewer DoE tasks than workers): the profiler
      // pass and each simulation replay the buffer as independent pool
      // tasks, trading one extra stream decode per consumer for idle
      // workers actually having work.
      parallel_for(1 + per_config, opts.n_threads, [&](std::size_t item) {
        if (item == 0) {
          buf->replay(builder);
          watchdog.check(key + " (profile replay)");
        } else {
          const std::size_t a = item - 1;
          buf->replay(*sims[a]);
          sims[a]->result();  // run the timing model inside the pool task
          watchdog.check(key + " (simulation " + std::to_string(a) + ")");
        }
      });
    }
    task.replay_seconds += seconds_since(t1);
    // Events actually delivered: the serial paths feed one representative
    // per n_pes group (plus the profiler), the parallel path every
    // consumer independently.
    const std::uint64_t n_consumers =
        parallel_replay && !consumed_during_capture
            ? 1 + per_config
            : sinks.size();
    task.replay_events =
        (buf != nullptr ? buf->event_count() : live_events) * n_consumers;
    const profiler::Profile profile = builder.build();

    task.rows.reserve(per_config);
    for (std::size_t a = 0; a < sims.size(); ++a) {
      sim::NmcSimulator& simulator = *sims[a];
      const sim::SimResult& res = simulator.result();
      if (res.cycles_budget_exhausted)
        return PipelineError{
            .kind = ErrorKind::kSimBudgetExhausted,
            .context = key,
            .message = "simulation " + std::to_string(a) +
                       " stopped at its cycle/event budget after " +
                       std::to_string(res.sched_events) + " events"};
      TrainingRow row;
      row.app = std::string(w.name());
      row.params = params;
      row.arch = simulator.config();
      row.features = model_features(profile, simulator.config());
      row.ipc = res.ipc;
      row.instructions = res.instructions;
      row.energy_pj_per_instr =
          res.instructions == 0
              ? 0.0
              : res.energy_joules * 1e12 /
                    static_cast<double>(res.instructions);
      row.power_watts = res.time_seconds == 0.0
                            ? 0.0
                            : res.energy_joules / res.time_seconds;
      row.sim_time_seconds = res.time_seconds;
      row.sim_energy_joules = res.energy_joules;
      task.rows.push_back(std::move(row));
    }
    return task;
  } catch (const InjectedCrash&) {
    throw;  // simulated process death — nothing below main() handles it
  } catch (const WatchdogTimeout& e) {
    return PipelineError{.kind = ErrorKind::kWatchdogTimeout,
                         .context = key,
                         .message = e.what()};
  } catch (const InjectedFault& e) {
    return PipelineError{.kind = ErrorKind::kInjectedFault,
                         .context = key,
                         .message = e.what()};
  } catch (const PipelineException& e) {
    PipelineError err = e.error();
    if (err.context.empty()) err.context = key;
    return err;
  } catch (const std::invalid_argument&) {
    throw;  // contract violation — a caller bug, not a runtime fault
  } catch (const std::exception& e) {
    return PipelineError{.kind = ErrorKind::kTaskFailed,
                         .context = key,
                         .message = e.what()};
  }
}

/// attempt_task under the shared bounded-retry policy (common/retry.hpp —
/// the same backoff the serving runtime's reload path uses). Only retryable
/// failures (thrown exceptions, I/O) are re-attempted; deterministic
/// outcomes (watchdog timeout, exhausted budget) fail immediately.
Result<TaskOutput> run_task(const workloads::Workload& w,
                            const CollectOptions& opts,
                            const workloads::WorkloadParams& params,
                            std::size_t ci,
                            const std::vector<sim::ArchConfig>& pool,
                            bool parallel_replay, std::size_t& n_retries) {
  const RetryPolicy policy{.max_attempts = 1 + opts.max_retries,
                           .base_backoff_ms = opts.retry_backoff_ms,
                           .seed = opts.seed};
  return with_retries(
      policy, /*key=*/ci,
      [&] { return attempt_task(w, opts, params, ci, pool, parallel_replay); },
      &n_retries);
}

enum class TaskState : std::uint8_t { kPending, kDone, kFailed };

}  // namespace

std::vector<double> model_features(const profiler::Profile& profile,
                                   const sim::ArchConfig& arch) {
  std::vector<double> f = profile.features;
  const std::vector<double> af = arch.features();
  f.insert(f.end(), af.begin(), af.end());
  const double dram_frac =
      profile.data_all_rd.miss_fraction(l1_capacity_blocks(arch));
  f.push_back(1.0 - dram_frac);  // cache access fraction
  f.push_back(dram_frac);        // DRAM access fraction

  // Analytic profile x architecture interaction features: a first-order
  // in-order-core model whose residual the forest learns. This extends the
  // paper's Table 1 interaction features (cache/DRAM access fraction) with
  // latency- and parallelism-weighted versions.
  const double instr = std::max<double>(1.0, static_cast<double>(
                                                 profile.total_instructions));
  const double mem_frac =
      static_cast<double>(profile.memory_ops()) / instr;
  const double t_miss =
      static_cast<double>(arch.timing.t_rcd + arch.timing.t_cl +
                          arch.timing.burst_cycles(arch.cache_line_bytes));
  const double active_pes =
      std::min<double>(profile.n_threads, arch.n_pes);
  const double cpi_pe = 1.0 + mem_frac * dram_frac * t_miss;
  const double chip_ipc = active_pes / cpi_pe;
  f.push_back(t_miss);                                  // arch_t_miss_cycles
  f.push_back(active_pes);                              // analytic_active_pes
  f.push_back(cpi_pe);                                  // analytic_cpi_pe
  f.push_back(chip_ipc);                                // analytic_chip_ipc
  f.push_back(mem_frac * dram_frac * t_miss / cpi_pe);  // mem-stall share
  NAPEL_CHECK(f.size() == model_feature_names().size());
  return f;
}

const std::vector<std::string>& model_feature_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> n = profiler::Profile::feature_names();
    const auto& an = sim::ArchConfig::feature_names();
    n.insert(n.end(), an.begin(), an.end());
    n.push_back("arch_cache_access_fraction");
    n.push_back("arch_dram_access_fraction");
    n.push_back("arch_t_miss_cycles");
    n.push_back("analytic_active_pes");
    n.push_back("analytic_cpi_pe");
    n.push_back("analytic_chip_ipc");
    n.push_back("analytic_mem_stall_frac");
    return n;
  }();
  return names;
}

profiler::Profile profile_workload(const workloads::Workload& w,
                                   const workloads::WorkloadParams& params,
                                   std::uint64_t seed) {
  trace::Tracer tracer;
  profiler::ProfileBuilder builder;
  tracer.attach(builder);
  w.run(tracer, params, seed);
  return builder.build();
}

sim::SimResult simulate_workload(const workloads::Workload& w,
                                 const workloads::WorkloadParams& params,
                                 const sim::ArchConfig& arch,
                                 std::uint64_t seed) {
  trace::Tracer tracer;
  sim::NmcSimulator simulator(arch);
  tracer.attach(simulator);
  w.run(tracer, params, seed);
  return simulator.result();
}

Result<CollectStats> try_collect_training_data(const workloads::Workload& w,
                                               const CollectOptions& opts,
                                               std::vector<TrainingRow>& out) {
  NAPEL_CHECK(opts.archs_per_config >= 1);
  NAPEL_CHECK(opts.arch_pool_size >= opts.archs_per_config);

  const workloads::DoeSpace space = w.doe_space(opts.scale);
  Rng rng(opts.seed);

  std::vector<workloads::WorkloadParams> configs;
  // Which points a degraded run may drop: CCD center/axial points carry the
  // design's curvature and pure-error information and are never droppable;
  // every point of the unstructured designs is.
  std::vector<bool> critical;
  switch (opts.design) {
    case DesignKind::kCcd:
      configs = doe::central_composite(space);
      critical = doe::ccd_critical_mask(space);
      break;
    case DesignKind::kRandom:
      configs = doe::random_design(space, opts.design_points, rng);
      break;
    case DesignKind::kLatinHypercube:
      configs = doe::latin_hypercube(space, opts.design_points, rng);
      break;
    case DesignKind::kFullFactorial:
      configs = doe::full_factorial(space);
      break;
  }
  critical.resize(configs.size(), false);

  // Architecture pool is derived from the same seed for every workload, so
  // leave-one-application-out folds see a consistent design space.
  Rng arch_rng(opts.seed ^ 0xa5c3f00dULL);
  const std::vector<sim::ArchConfig> pool =
      sim::sample_arch_configs(opts.arch_pool_size, arch_rng);

  CollectStats stats;
  stats.n_input_configs = configs.size();

  // Every DoE task is independent: each claims a pre-sized output slot and
  // owns a private trace buffer / profiler / simulator stack (capture once,
  // replay per consumer), so the appended rows are byte-identical to the
  // sequential loop at any thread count. Per-task wall-clock is reduced in
  // config order after the parallel region.
  const std::size_t n = configs.size();
  const std::size_t per_config = opts.archs_per_config;
  const std::size_t base = out.size();
  out.resize(base + n * per_config);
  std::vector<double> capture_seconds(n, 0.0);
  std::vector<double> replay_seconds(n, 0.0);
  std::vector<std::uint64_t> replay_events(n, 0);
  std::vector<char> cache_hit(n, 0);
  std::vector<char> executed(n, 0);  // ran this call (not journal-resumed)
  std::vector<TaskState> state(n, TaskState::kPending);
  std::vector<PipelineError> task_error(n);
  std::vector<std::size_t> task_retries(n, 0);

  // Journal resume: restore completed tasks before the parallel region.
  // Only the simulator responses are stored; params and architectures are
  // re-derived above, so a resumed row is bit-identical to a recomputed one.
  if (opts.journal) {
    for (std::size_t ci = 0; ci < n; ++ci) {
      const std::string key = collect_record_key(w.name(), ci);
      const std::string* payload = opts.journal->find(key);
      if (payload == nullptr) continue;
      const std::span<TrainingRow> rows{out.data() + base + ci * per_config,
                                        per_config};
      for (std::size_t a = 0; a < per_config; ++a) {
        rows[a].app = std::string(w.name());
        rows[a].params = configs[ci];
        rows[a].arch = arch_for_slot(pool, ci, a, per_config);
      }
      Status s = decode_collect_record(*payload, rows, capture_seconds[ci],
                                       replay_seconds[ci]);
      if (!s.ok()) {
        PipelineError err = s.error();
        err.context = opts.journal->path() + ": " + key;
        return err;
      }
      state[ci] = TaskState::kDone;
      ++stats.n_resumed;
    }
  }

  std::vector<std::size_t> pending;
  pending.reserve(n);
  for (std::size_t ci = 0; ci < n; ++ci)
    if (state[ci] == TaskState::kPending) pending.push_back(ci);

  // In-order journal flush: tasks complete out of order, but records are
  // buffered and appended in config order, so the journal always holds a
  // contiguous, deterministic prefix of the run (failed tasks are skipped —
  // a resumed run re-attempts them).
  std::mutex flush_mu;
  std::size_t next_flush = 0;
  std::vector<char> resolved(n, 0);
  std::vector<std::string> buffered(n);
  std::optional<PipelineError> journal_error;
  for (std::size_t ci = 0; ci < n; ++ci)
    if (state[ci] == TaskState::kDone) resolved[ci] = 1;

  const auto flush = [&](std::size_t ci, std::string payload) {
    const std::lock_guard<std::mutex> lock(flush_mu);
    resolved[ci] = 1;
    buffered[ci] = std::move(payload);
    if (journal_error) return;
    while (next_flush < n && resolved[next_flush]) {
      if (!buffered[next_flush].empty()) {
        Status s = opts.journal->append(
            collect_record_key(w.name(), next_flush), buffered[next_flush]);
        if (!s.ok()) {
          journal_error = s.error();
          return;
        }
        buffered[next_flush].clear();
      }
      ++next_flush;
    }
  };

  // Replay fan-out policy: when the DoE fan-out alone keeps every worker
  // busy, nested per-consumer replay tasks only add decode work (the
  // stream is decoded once per consumer instead of once per task), so
  // each task replays serially through the single-decode multi-sink path.
  // Only when there are fewer tasks than workers does splitting a task's
  // replays across the idle workers pay. The choice depends solely on
  // task/worker counts — never on timing — and both paths produce
  // identical bytes, so determinism at any thread count is preserved.
  const bool parallel_replay =
      effective_threads(opts.n_threads) > 1 &&
      pending.size() < effective_threads(opts.n_threads);

  const auto cancelled = [&opts] {
    return opts.cancel != nullptr &&
           opts.cancel->load(std::memory_order_relaxed);
  };

  parallel_for(pending.size(), opts.n_threads, [&](std::size_t pi) {
    const std::size_t ci = pending[pi];
    if (cancelled()) {
      // Graceful drain: skip tasks not yet started, but resolve their
      // journal slot (empty payload, like a failed task) so completed
      // later tasks still flush — a resumed run re-attempts exactly the
      // skipped configs.
      if (opts.journal) flush(ci, std::string());
      return;
    }
    Result<TaskOutput> r = run_task(w, opts, configs[ci], ci, pool,
                                    parallel_replay, task_retries[ci]);
    std::string payload;
    if (r.ok()) {
      TaskOutput task = std::move(r).take();
      for (std::size_t a = 0; a < per_config; ++a)
        out[base + ci * per_config + a] = std::move(task.rows[a]);
      capture_seconds[ci] = task.capture_seconds;
      replay_seconds[ci] = task.replay_seconds;
      replay_events[ci] = task.replay_events;
      cache_hit[ci] = task.cache_hit ? 1 : 0;
      executed[ci] = 1;
      state[ci] = TaskState::kDone;
      if (opts.journal)
        payload = encode_collect_record(
            {out.data() + base + ci * per_config, per_config},
            task.capture_seconds, task.replay_seconds);
    } else {
      state[ci] = TaskState::kFailed;
      task_error[ci] = r.error();
    }
    if (opts.journal) flush(ci, std::move(payload));
  });

  // Sequential reductions, in config order.
  for (std::size_t ci = 0; ci < n; ++ci) {
    stats.capture_seconds += capture_seconds[ci];
    stats.replay_seconds += replay_seconds[ci];
    stats.n_replay_events += replay_events[ci];
    stats.n_retries += task_retries[ci];
    if (executed[ci] != 0 && state[ci] == TaskState::kDone) {
      if (cache_hit[ci] != 0)
        ++stats.n_cache_hits;
      else
        ++stats.n_cache_misses;
    }
  }

  if (journal_error) return *journal_error;

  if (cancelled()) {
    std::size_t skipped = 0;
    for (std::size_t ci = 0; ci < n; ++ci)
      if (state[ci] == TaskState::kPending) ++skipped;
    if (skipped > 0) {
      return PipelineError{
          .kind = ErrorKind::kInterrupted,
          .context = std::string(w.name()),
          .message = "collection interrupted: " + std::to_string(skipped) +
                     " of " + std::to_string(n) +
                     " DoE tasks skipped (completed tasks are journaled; "
                     "a resumed run re-attempts the rest)"};
    }
  }

  // Quorum policy: a bounded number of non-critical points may be dropped;
  // losing a critical point or exceeding max_failures fails the run.
  std::optional<std::size_t> lost_critical;
  for (std::size_t ci = 0; ci < n; ++ci) {
    if (state[ci] != TaskState::kFailed) continue;
    ++stats.n_failed;
    stats.failures.push_back(task_error[ci]);
    if (critical[ci] && !lost_critical) lost_critical = ci;
  }
  if (lost_critical) {
    return PipelineError{
        .kind = ErrorKind::kQuorumFailed,
        .context = collect_record_key(w.name(), *lost_critical),
        .message = "critical CCD (center/axial) point lost: " +
                   task_error[*lost_critical].to_string()};
  }
  if (stats.n_failed > opts.max_failures) {
    return PipelineError{
        .kind = ErrorKind::kQuorumFailed,
        .context = std::string(w.name()),
        .message = std::to_string(stats.n_failed) + " of " +
                   std::to_string(n) + " DoE points failed (max_failures=" +
                   std::to_string(opts.max_failures) +
                   "); first: " + stats.failures.front().to_string()};
  }

  // Compact out the slots of dropped points, preserving config order.
  if (stats.n_failed > 0) {
    std::size_t write = base;
    for (std::size_t ci = 0; ci < n; ++ci) {
      if (state[ci] != TaskState::kDone) continue;
      for (std::size_t a = 0; a < per_config; ++a) {
        const std::size_t read = base + ci * per_config + a;
        if (write != read) out[write] = std::move(out[read]);
        ++write;
      }
    }
    out.resize(write);
  }
  stats.n_rows = (n - stats.n_failed) * per_config;
  return stats;
}

CollectStats collect_training_data(const workloads::Workload& w,
                                   const CollectOptions& opts,
                                   std::vector<TrainingRow>& out) {
  return try_collect_training_data(w, opts, out).value_or_throw();
}

}  // namespace napel::core
