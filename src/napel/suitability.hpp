// NMC-suitability analysis (Section 3.4 / Figure 7): compares the
// energy-delay product of running a workload's held-out *test* input on the
// host CPU against (a) NAPEL's predicted NMC EDP and (b) the simulator's
// "Actual" NMC EDP. EDP reduction > 1 marks the workload NMC-suitable.
#pragma once

#include <string>
#include <vector>

#include "hostmodel/host_model.hpp"
#include "napel/napel_model.hpp"
#include "sim/link.hpp"

namespace napel::core {

struct SuitabilityRow {
  std::string app;

  double host_time_s = 0.0;
  double host_energy_j = 0.0;
  double host_edp = 0.0;

  double pred_time_s = 0.0;
  double pred_energy_j = 0.0;
  double pred_edp = 0.0;

  double sim_time_s = 0.0;
  double sim_energy_j = 0.0;
  double sim_edp = 0.0;

  double edp_reduction_pred() const {
    return pred_edp == 0.0 ? 0.0 : host_edp / pred_edp;
  }
  double edp_reduction_actual() const {
    return sim_edp == 0.0 ? 0.0 : host_edp / sim_edp;
  }
  /// Relative error of NAPEL's EDP-reduction estimate vs the simulator's.
  double edp_relative_error() const {
    const double a = edp_reduction_actual();
    return a == 0.0 ? 0.0 : std::abs(edp_reduction_pred() - a) / a;
  }
  bool nmc_suitable_pred() const { return edp_reduction_pred() > 1.0; }
  bool nmc_suitable_actual() const { return edp_reduction_actual() > 1.0; }
};

struct SuitabilityOptions {
  workloads::Scale scale = workloads::Scale::kBench;
  std::uint64_t seed = 404;
  /// When true, both the predicted and the simulated NMC sides are charged
  /// for shipping the kernel's write-back footprint across the off-chip
  /// link plus the launch round trip (the paper charges neither side).
  bool include_offload_cost = false;
  sim::LinkConfig link;
};

/// Analyzes one workload's test input with a trained model. Runs the kernel
/// once: profile (host model + NAPEL input) and simulator share the trace.
SuitabilityRow analyze_suitability(const workloads::Workload& w,
                                   const NapelModel& model,
                                   const hostmodel::HostModel& host,
                                   const sim::ArchConfig& arch,
                                   const SuitabilityOptions& opts = {});

}  // namespace napel::core
