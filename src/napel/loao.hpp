// Leave-one-application-out cross-validation (Section 3.3): when predicting
// application X, no row of X — under any input or architecture — appears in
// the training set, so the test set differs from the training set "as much
// as applications differ from each other". Produces the per-application
// performance and energy MREs of Figure 5, for NAPEL's tuned random forest
// and for the two baselines (ANN of Ipek et al., linear decision tree of
// Guo et al.).
#pragma once

#include <string>
#include <vector>

#include "napel/napel_model.hpp"

namespace napel::core {

enum class ModelKind { kNapelRf, kAnn, kLinearDecisionTree };

std::string_view model_kind_name(ModelKind kind);

struct LoaoAppResult {
  std::string app;
  double perf_mre = 0.0;    ///< IPC prediction MRE on the held-out app
  double energy_mre = 0.0;  ///< energy prediction MRE on the held-out app
  std::size_t test_rows = 0;
};

struct LoaoOptions {
  /// Hyper-parameter tuning for the RF (the paper tunes; baselines use
  /// their fixed reference configurations).
  bool tune_rf = true;
  ml::RfTuningGrid grid;
  std::size_t k_folds = 4;
  std::uint64_t seed = 77;
  /// Worker threads for running held-out-application folds concurrently:
  /// 0 = process-wide pool, 1 = serial. Every fold trains from the same
  /// seed, so per-app MREs are identical at any thread count.
  unsigned n_threads = 0;
  /// Split-finding engine for the RF folds (ignored by the baselines).
  /// Hist-mode runs fingerprint their journal meta with the mode, so an
  /// exact-mode journal cannot resume a hist run or vice versa.
  ml::SplitMode split_mode = ml::SplitMode::kExact;
  /// When non-empty, each completed fold is checkpointed to this journal
  /// (keyed by the held-out application); with `resume`, folds already
  /// present are restored bit-identically instead of retrained.
  std::string journal_path;
  bool resume = false;
};

/// Runs the LOAO protocol over all applications present in `rows`.
/// Results are ordered by first appearance of the app in `rows`.
std::vector<LoaoAppResult> leave_one_app_out(
    const std::vector<TrainingRow>& rows, ModelKind kind,
    const LoaoOptions& opts = {});

}  // namespace napel::core
