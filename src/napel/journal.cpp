#include "napel/journal.hpp"

#include <cinttypes>
#include <sstream>

#include "common/check.hpp"

namespace napel::core {

namespace {

PipelineError decode_error(const std::string& what) {
  return PipelineError{.kind = ErrorKind::kCorruptArtifact,
                       .context = "collect record",
                       .message = what};
}

}  // namespace

std::string collect_journal_meta(const CollectOptions& opts) {
  std::ostringstream os;
  os << "collect scale=" << static_cast<int>(opts.scale)
     << " design=" << static_cast<int>(opts.design)
     << " points=" << opts.design_points
     << " archs=" << opts.archs_per_config
     << " pool=" << opts.arch_pool_size
     << " seed=" << opts.seed
     << " nfeat=" << model_feature_names().size();
  return os.str();
}

std::string collect_record_key(std::string_view app,
                               std::size_t config_index) {
  std::string key(app);
  key += '/';
  key += std::to_string(config_index);
  return key;
}

std::string encode_collect_record(std::span<const TrainingRow> rows,
                                  double capture_seconds,
                                  double replay_seconds) {
  std::ostringstream os;
  os << "t " << double_bits_to_hex(capture_seconds) << ' '
     << double_bits_to_hex(replay_seconds) << ' ' << rows.size() << '\n';
  for (const TrainingRow& r : rows) {
    os << "r " << double_bits_to_hex(r.ipc) << ' '
       << double_bits_to_hex(r.energy_pj_per_instr) << ' '
       << double_bits_to_hex(r.power_watts) << ' ' << r.instructions << ' '
       << double_bits_to_hex(r.sim_time_seconds) << ' '
       << double_bits_to_hex(r.sim_energy_joules) << ' ' << r.features.size();
    for (const double f : r.features) os << ' ' << double_bits_to_hex(f);
    os << '\n';
  }
  return os.str();
}

Status decode_collect_record(std::string_view payload,
                             std::span<TrainingRow> rows,
                             double& capture_seconds,
                             double& replay_seconds) {
  std::istringstream is{std::string(payload)};
  std::string tag, a, b;
  std::size_t n_rows = 0;
  is >> tag >> a >> b >> n_rows;
  if (is.fail() || tag != "t")
    return decode_error("malformed record header");
  if (n_rows != rows.size())
    return decode_error("record holds " + std::to_string(n_rows) +
                        " rows, task expects " + std::to_string(rows.size()));

  auto bits = [](const std::string& hex, double& out) {
    Result<double> r = double_bits_from_hex(hex);
    if (!r.ok()) return false;
    out = r.value();
    return true;
  };
  if (!bits(a, capture_seconds) || !bits(b, replay_seconds))
    return decode_error("malformed timing bits");

  for (TrainingRow& row : rows) {
    std::string ipc, epj, pw, time_s, energy_j;
    std::size_t n_features = 0;
    is >> tag >> ipc >> epj >> pw >> row.instructions >> time_s >> energy_j >>
        n_features;
    if (is.fail() || tag != "r") return decode_error("malformed row record");
    if (!bits(ipc, row.ipc) || !bits(epj, row.energy_pj_per_instr) ||
        !bits(pw, row.power_watts) || !bits(time_s, row.sim_time_seconds) ||
        !bits(energy_j, row.sim_energy_joules))
      return decode_error("malformed row label bits");
    row.features.resize(n_features);
    std::string fbits;
    for (double& f : row.features) {
      is >> fbits;
      if (is.fail() || !bits(fbits, f))
        return decode_error("malformed feature bits");
    }
  }
  return ok_status();
}

Result<std::unique_ptr<RunJournal>> RunJournal::open(const std::string& path,
                                                     std::string_view meta,
                                                     bool resume,
                                                     FaultPlan* faults) {
  if (!resume) {
    Result<JournalWriter> w = JournalWriter::create(path, meta, faults);
    if (!w.ok()) return w.error();
    return std::unique_ptr<RunJournal>(
        new RunJournal(std::move(w).take()));
  }
  std::vector<JournalRecord> records;
  Result<JournalWriter> w = JournalWriter::open_append(path, meta, records, faults);
  if (!w.ok()) return w.error();
  auto journal = std::unique_ptr<RunJournal>(new RunJournal(std::move(w).take()));
  for (JournalRecord& r : records)
    journal->loaded_[std::move(r.key)] = std::move(r.payload);
  return journal;
}

const std::string* RunJournal::find(const std::string& key) const {
  const auto it = loaded_.find(key);
  return it == loaded_.end() ? nullptr : &it->second;
}

Status RunJournal::append(const std::string& key, std::string_view payload) {
  std::lock_guard<std::mutex> lock(mu_);
  return writer_.append(key, payload);
}

}  // namespace napel::core
