// Umbrella header: the NAPEL framework public API.
//
// Typical use:
//
//   #include "napel/napel.hpp"
//
//   // 1. Collect training data for a set of applications (DoE + simulate).
//   std::vector<napel::core::TrainingRow> rows;
//   for (const auto* w : napel::workloads::all_workloads())
//     napel::core::collect_training_data(*w, {}, rows);
//
//   // 2. Train the tuned ensemble model.
//   napel::core::NapelModel model;
//   model.train(rows);
//
//   // 3. Predict a previously-unseen application on any NMC design point.
//   auto profile = napel::core::profile_workload(w, input, seed);
//   auto pred = model.predict(profile, napel::sim::ArchConfig::paper_default());
#pragma once

#include "doe/doe.hpp"                 // IWYU pragma: export
#include "hostmodel/host_model.hpp"    // IWYU pragma: export
#include "ml/gbm.hpp"                  // IWYU pragma: export
#include "ml/metrics.hpp"              // IWYU pragma: export
#include "ml/mlp.hpp"                  // IWYU pragma: export
#include "ml/model_tree.hpp"           // IWYU pragma: export
#include "ml/random_forest.hpp"        // IWYU pragma: export
#include "ml/ridge.hpp"                // IWYU pragma: export
#include "ml/tuning.hpp"               // IWYU pragma: export
#include "napel/dse.hpp"               // IWYU pragma: export
#include "napel/loao.hpp"              // IWYU pragma: export
#include "napel/model_io.hpp"          // IWYU pragma: export
#include "napel/napel_model.hpp"       // IWYU pragma: export
#include "napel/pipeline.hpp"          // IWYU pragma: export
#include "napel/suitability.hpp"       // IWYU pragma: export
#include "profiler/profile.hpp"        // IWYU pragma: export
#include "sim/simulator.hpp"           // IWYU pragma: export
#include "workloads/registry.hpp"      // IWYU pragma: export
