#include "napel/dse.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/check.hpp"
#include "common/parallel.hpp"

namespace napel::core {

std::vector<sim::ArchConfig> enumerate_grid(const DseGrid& grid) {
  NAPEL_CHECK(grid.combinations() >= 1);
  std::vector<sim::ArchConfig> out;
  out.reserve(grid.combinations());
  for (unsigned pes : grid.n_pes) {
    for (double freq : grid.core_freq_ghz) {
      for (unsigned lines : grid.cache_lines) {
        for (unsigned line_bytes : grid.cache_line_bytes) {
          for (unsigned layers : grid.dram_layers) {
            sim::ArchConfig c = sim::ArchConfig::paper_default();
            c.n_pes = pes;
            c.core_freq_ghz = freq;
            c.cache_lines = lines;
            c.cache_line_bytes = line_bytes;
            c.dram_layers = layers;
            c.cache_ways = lines >= 2 ? 2 : 1;
            try {
              c.validate();
            } catch (const std::invalid_argument&) {
              continue;  // skip inconsistent combinations
            }
            out.push_back(c);
          }
        }
      }
    }
  }
  NAPEL_CHECK_MSG(!out.empty(), "DSE grid produced no valid configuration");
  return out;
}

std::vector<DsePoint> explore(const NapelModel& model,
                              const profiler::Profile& profile,
                              const std::vector<sim::ArchConfig>& candidates,
                              unsigned n_threads) {
  NAPEL_CHECK_MSG(model.is_trained(), "explore requires a trained model");
  NAPEL_CHECK(!candidates.empty());
  const std::size_t n = candidates.size();
  const std::size_t p = model_feature_names().size();
  const auto instr = static_cast<double>(profile.total_instructions);

  // Assemble the feature matrix once, up front: one row per candidate
  // (the historical loop rebuilt every row twice — once for the mean,
  // once for the interval).
  std::vector<double> X(n * p);
  for (std::size_t i = 0; i < n; ++i) {
    const std::vector<double> f = model_features(profile, candidates[i]);
    std::copy(f.begin(), f.end(), X.begin() + static_cast<std::ptrdiff_t>(i * p));
  }

  // One sharded batch traversal of the IPC forest produces every
  // candidate's per-tree votes (predict_votes_batch fans row blocks out
  // over the pool and picks the SIMD kernel via runtime dispatch); the
  // ensemble mean and the percentile band then come from each row's vote
  // slice without touching the arena again. Votes land at (row, tree)
  // addresses and the interval sorts each row's slice independently, so
  // the output is bit-identical at any thread count and SIMD level.
  std::vector<DsePoint> out(n);
  const ml::FlatForest& ipc = model.ipc_flat();
  const std::size_t nt = ipc.tree_count();
  std::vector<double> votes(n * nt);
  ipc.predict_votes_batch(X, n, votes, n_threads);
  constexpr std::size_t kBlock = 16;
  const std::size_t n_blocks = (n + kBlock - 1) / kBlock;
  parallel_for(n_blocks, n_threads, [&](std::size_t blk) {
    const std::size_t lo = blk * kBlock;
    const std::size_t hi = std::min(lo + kBlock, n);
    for (std::size_t i = lo; i < hi; ++i) {
      const std::span<const double> f{X.data() + i * p, p};
      DsePoint& pt = out[i];
      pt.arch = candidates[i];
      pt.ipc_interval = ml::FlatForest::interval_from_trees(
          std::span<double>{votes.data() + i * nt, nt});
      pt.pred = model.predict_from_features(f, pt.ipc_interval.mean, instr);
    }
  });
  return out;
}

std::vector<std::size_t> pareto_front(const std::vector<DsePoint>& points) {
  std::vector<std::size_t> order(points.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (points[a].pred.time_seconds != points[b].pred.time_seconds)
      return points[a].pred.time_seconds < points[b].pred.time_seconds;
    return points[a].pred.energy_joules < points[b].pred.energy_joules;
  });
  // Sweep by increasing time; keep points that strictly improve energy.
  std::vector<std::size_t> front;
  double best_energy = std::numeric_limits<double>::infinity();
  for (std::size_t i : order) {
    if (points[i].pred.energy_joules < best_energy) {
      front.push_back(i);
      best_energy = points[i].pred.energy_joules;
    }
  }
  return front;
}

std::size_t best_edp_point(const std::vector<DsePoint>& points) {
  NAPEL_CHECK_MSG(!points.empty(), "no DSE points");
  std::size_t best = 0;
  for (std::size_t i = 1; i < points.size(); ++i)
    if (points[i].pred.edp < points[best].pred.edp) best = i;
  return best;
}

}  // namespace napel::core
