// NapelModel: the trained predictor (Figure 1, phases 3-5).
//
// Two tuned random forests — one for chip-level IPC, one for average power
// — map (profile, architecture) feature vectors to responses. Execution
// time follows the paper's formula T = I_offload / (IPC · f_core); energy
// is reconstructed exactly as E = P · T, and EDP is E · T. (The paper
// labels its second model with raw energy; average power is a
// better-conditioned, bijective re-parameterization of the same response —
// its dynamic range across applications is a few watts rather than four
// orders of magnitude of joules.)
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "ml/flat_forest.hpp"
#include "ml/random_forest.hpp"
#include "ml/tuning.hpp"
#include "napel/pipeline.hpp"

namespace napel::core {

/// Thrown by NapelModel::predict_from_features when a model output escapes
/// the certified ensemble bounds derived from its compiled forests — the
/// serve-time symptom of a corrupted or swapped arena (a healthy forest
/// provably cannot produce it; see ml::FlatForest::value_bounds()).
class PredictionOutOfBoundsError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct Prediction {
  double ipc = 0.0;
  double power_watts = 0.0;
  double energy_pj_per_instr = 0.0;  ///< derived: P / (IPC · f)
  double time_seconds = 0.0;
  double energy_joules = 0.0;
  double edp = 0.0;
};

class NapelModel {
 public:
  struct Options {
    bool tune = true;             ///< hyper-parameter grid search (§2.5)
    ml::RfTuningGrid grid;
    std::size_t k_folds = 4;
    ml::RandomForestParams untuned_params;  ///< used when tune == false
    std::uint64_t seed = 77;
    /// Worker threads for tuning and forest fitting: 0 = process-wide
    /// pool, 1 = serial. The trained model is identical either way.
    unsigned n_threads = 0;
    /// Split-finding engine for every forest this model trains (tuned
    /// combinations included). kExact reproduces the historical forests
    /// byte-for-byte; kHist trains on the quantile-binned matrix and
    /// persists as napel-forest-v2.
    ml::SplitMode split_mode = ml::SplitMode::kExact;
    /// When non-empty, the grid searches checkpoint their per-combination
    /// scores to "<tune_checkpoint>.ipc" / "<tune_checkpoint>.power"; with
    /// tune_resume, already-scored combinations are skipped.
    std::string tune_checkpoint;
    bool tune_resume = false;
  };

  /// Trains the IPC and energy forests on collected rows.
  void train(const std::vector<TrainingRow>& rows, const Options& opts);
  void train(const std::vector<TrainingRow>& rows) { train(rows, Options{}); }
  bool is_trained() const { return trained_; }

  /// Full prediction for a profiled kernel on an architecture (phase 4-5:
  /// one profile, then model inference per design point).
  Prediction predict(const profiler::Profile& profile,
                     const sim::ArchConfig& arch) const;

  /// Full prediction from a pre-assembled feature row, reusing an
  /// already-computed IPC-forest ensemble mean (the DSE hot path: the mean
  /// falls out of the same traversal that produced the uncertainty band,
  /// so the IPC forest is walked exactly once per design point). The core
  /// frequency is read from the feature row; `total_instructions` is the
  /// profiled kernel's instruction count.
  Prediction predict_from_features(std::span<const double> features,
                                   double ipc_forest_mean,
                                   double total_instructions) const;

  /// Raw model outputs for a pre-assembled feature vector.
  double predict_ipc(std::span<const double> features) const;
  double predict_power_watts(std::span<const double> features) const;
  /// Derived energy per instruction (pJ): P / (IPC · f), with both model
  /// outputs and the core frequency read from the feature vector.
  double predict_energy_pj(std::span<const double> features) const;

  const ml::RandomForest& ipc_forest() const;
  const ml::RandomForest& energy_forest() const;  ///< the power model
  /// Compiled flat-arena twins of the two forests: every prediction this
  /// model serves runs on these (bit-identical to the pointer forests).
  const ml::FlatForest& ipc_flat() const;
  const ml::FlatForest& energy_flat() const;

  /// Certified ensemble output ranges, computed when the forests are
  /// compiled (train / from_forests) and persisted with the model. Every
  /// genuine forest output provably lies inside; predict_from_features
  /// asserts them on the serve path and throws PredictionOutOfBoundsError
  /// on escape.
  ml::FlatForest::ValueBounds ipc_bounds() const;
  ml::FlatForest::ValueBounds power_bounds() const;

  /// Corruption hooks for verification tests: mutable access to the
  /// compiled arenas (FlatForest::mutable_arena()), so a test can damage a
  /// served forest in place and prove the bounds assertion / certify()
  /// rejects it. Never use outside tests.
  ml::FlatForest& ipc_flat_for_test() { return ipc_flat_; }
  ml::FlatForest& energy_flat_for_test() { return energy_flat_; }

  /// Reconstructs a trained model from two fitted forests (used by the
  /// persistence layer in napel/model_io.hpp).
  static NapelModel from_forests(ml::RandomForest ipc_rf,
                                 ml::RandomForest energy_rf);
  const ml::RfTuningResult& ipc_tuning() const { return ipc_tuning_; }
  const ml::RfTuningResult& energy_tuning() const { return energy_tuning_; }

 private:
  std::unique_ptr<ml::RandomForest> ipc_rf_;
  std::unique_ptr<ml::RandomForest> energy_rf_;
  /// Certifies both freshly compiled arenas and derives the serve-time
  /// prediction bounds (shared tail of train() and from_forests()).
  void seal_compiled_forests();

  ml::FlatForest ipc_flat_;     // compiled from ipc_rf_ at train/load time
  ml::FlatForest energy_flat_;  // compiled from energy_rf_
  ml::FlatForest::ValueBounds ipc_bounds_;
  ml::FlatForest::ValueBounds power_bounds_;
  ml::RfTuningResult ipc_tuning_;
  ml::RfTuningResult energy_tuning_;
  bool trained_ = false;
};

/// Builds the ml::Dataset for one target from training rows.
enum class Target { kIpc, kEnergyPerInstr, kPowerWatts };
ml::Dataset assemble_dataset(const std::vector<TrainingRow>& rows,
                             Target target);

}  // namespace napel::core
