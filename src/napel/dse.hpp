// Design-space exploration on top of a trained NAPEL model: enumerate
// candidate NMC design points, predict each in microseconds, and extract
// the time/energy Pareto frontier plus the EDP-optimal point — the
// "fast early-stage design space exploration" workflow the paper motivates.
#pragma once

#include <cstddef>
#include <vector>

#include "ml/random_forest.hpp"
#include "napel/napel_model.hpp"

namespace napel::core {

struct DsePoint {
  sim::ArchConfig arch;
  Prediction pred;
  ml::RandomForest::Interval ipc_interval;  ///< model-uncertainty band
};

/// Axes of the enumeration grid; every combination that passes
/// ArchConfig::validate() becomes a candidate.
struct DseGrid {
  std::vector<unsigned> n_pes = {8, 16, 32, 64};
  std::vector<double> core_freq_ghz = {0.8, 1.0, 1.25, 1.6, 2.0};
  std::vector<unsigned> cache_lines = {2, 8, 32};
  std::vector<unsigned> cache_line_bytes = {64};
  std::vector<unsigned> dram_layers = {8};

  std::size_t combinations() const {
    return n_pes.size() * core_freq_ghz.size() * cache_lines.size() *
           cache_line_bytes.size() * dram_layers.size();
  }
};

/// Materializes the grid into validated configurations (invalid
/// combinations are skipped).
std::vector<sim::ArchConfig> enumerate_grid(const DseGrid& grid);

/// Predicts every candidate for the profiled kernel. The feature matrix is
/// assembled once, candidates fan out over `n_threads` workers (0 = the
/// process-wide pool, 1 = serial), and each design point costs exactly one
/// traversal of the IPC forest (mean + uncertainty band from the same
/// per-tree votes) plus one of the power forest. Results are bit-identical
/// at any thread count.
std::vector<DsePoint> explore(const NapelModel& model,
                              const profiler::Profile& profile,
                              const std::vector<sim::ArchConfig>& candidates,
                              unsigned n_threads = 0);

/// Indices of the (time, energy)-minimizing Pareto frontier, sorted by
/// predicted time.
std::vector<std::size_t> pareto_front(const std::vector<DsePoint>& points);

/// Index of the predicted-EDP-optimal point. Throws on empty input.
std::size_t best_edp_point(const std::vector<DsePoint>& points);

}  // namespace napel::core
