#include "napel/model_io.hpp"

#include <fstream>
#include <sstream>

#include "common/atomic_file.hpp"
#include "common/check.hpp"
#include "ml/serialize.hpp"

namespace napel::core {

void save_model(const NapelModel& model, std::ostream& os) {
  NAPEL_CHECK_MSG(model.is_trained(), "cannot save an untrained model");
  os << "napel-model-v1 " << model_feature_names().size() << '\n';
  ml::save_forest(model.ipc_forest(), os);
  ml::save_forest(model.energy_forest(), os);
}

void save_model_file(const NapelModel& model, const std::string& path) {
  // Serialize to memory, then publish atomically (temp + fsync + rename):
  // a crash mid-save can never leave a torn model file behind, and the
  // stream state is actually checked before anything hits the disk.
  std::ostringstream os;
  save_model(model, os);
  NAPEL_CHECK_MSG(os.good(), "model serialization failed: " + path);
  atomic_write_file(path, os.str()).value_or_throw();
}

NapelModel load_model(std::istream& is) {
  std::string tag;
  std::size_t n_features = 0;
  is >> tag >> n_features;
  NAPEL_CHECK_MSG(is.good() && tag == "napel-model-v1",
                  "malformed model header");
  NAPEL_CHECK_MSG(n_features == model_feature_names().size(),
                  "model feature schema does not match this build");
  ml::RandomForest ipc = ml::load_forest(is);
  ml::RandomForest energy = ml::load_forest(is);
  return NapelModel::from_forests(std::move(ipc), std::move(energy));
}

NapelModel load_model_file(const std::string& path) {
  std::ifstream f(path);
  NAPEL_CHECK_MSG(f.good(), "cannot open model file: " + path);
  return load_model(f);
}

}  // namespace napel::core
