#include "napel/model_io.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/atomic_file.hpp"
#include "common/check.hpp"
#include "ml/serialize.hpp"

namespace napel::core {

namespace {

/// Round-trippable rendering: operator<< at max_digits10 followed by
/// operator>> reproduces every finite double bit-exactly, so the stored
/// bounds can be compared to recomputed ones with plain ==.
void write_bounds(std::ostream& os, const NapelModel& model) {
  const auto old_precision =
      os.precision(std::numeric_limits<double>::max_digits10);
  os << "bounds " << model.ipc_bounds().lo << ' ' << model.ipc_bounds().hi
     << ' ' << model.power_bounds().lo << ' ' << model.power_bounds().hi
     << '\n';
  os.precision(old_precision);
}

}  // namespace

std::uint64_t feature_schema_fingerprint() {
  // FNV-1a over the ordered names with a separator, so permutations and
  // boundary shifts fingerprint differently even at equal total length.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](char c) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  };
  for (const std::string& name : model_feature_names()) {
    for (const char c : name) mix(c);
    mix('\n');
  }
  return h;
}

void save_model(const NapelModel& model, std::ostream& os) {
  NAPEL_CHECK_MSG(model.is_trained(), "cannot save an untrained model");
  os << "napel-model-v2 " << model_feature_names().size() << ' ' << std::hex
     << feature_schema_fingerprint() << std::dec << '\n';
  write_bounds(os, model);
  ml::save_forest(model.ipc_forest(), os);
  ml::save_forest(model.energy_forest(), os);
}

void save_model_file(const NapelModel& model, const std::string& path) {
  // Serialize to memory, then publish atomically (temp + fsync + rename):
  // a crash mid-save can never leave a torn model file behind, and the
  // stream state is actually checked before anything hits the disk.
  std::ostringstream os;
  save_model(model, os);
  NAPEL_CHECK_MSG(os.good(), "model serialization failed: " + path);
  atomic_write_file(path, os.str()).value_or_throw();
}

NapelModel load_model(std::istream& is) {
  std::string tag;
  std::size_t n_features = 0;
  is >> tag >> n_features;
  NAPEL_CHECK_MSG(is.good() &&
                      (tag == "napel-model-v1" || tag == "napel-model-v2"),
                  "malformed model header");
  if (n_features != model_feature_names().size())
    throw ModelSchemaError(
        "model feature schema does not match this build: file has " +
        std::to_string(n_features) + " features, this build expects " +
        std::to_string(model_feature_names().size()));

  bool have_bounds = false;
  ml::FlatForest::ValueBounds ipc_bounds, power_bounds;
  if (tag == "napel-model-v2") {
    std::uint64_t fingerprint = 0;
    is >> std::hex >> fingerprint >> std::dec;
    NAPEL_CHECK_MSG(is.good(), "malformed model header");
    if (fingerprint != feature_schema_fingerprint())
      throw ModelSchemaError(
          "model feature-schema fingerprint does not match this build "
          "(same count, different names or order)");
    std::string bounds_tag;
    is >> bounds_tag >> ipc_bounds.lo >> ipc_bounds.hi >> power_bounds.lo >>
        power_bounds.hi;
    NAPEL_CHECK_MSG(is.good() && bounds_tag == "bounds",
                    "malformed model bounds line");
    have_bounds = true;
  }

  ml::RandomForest ipc = ml::load_forest(is);
  ml::RandomForest energy = ml::load_forest(is);
  NapelModel model =
      NapelModel::from_forests(std::move(ipc), std::move(energy));
  if (have_bounds) {
    // Cross-check the stored certificate against the bounds recomputed from
    // the forests that actually arrived. Text round-trip is bit-exact, so
    // any difference is real drift, not formatting noise.
    const auto recomputed_ipc = model.ipc_bounds();
    const auto recomputed_power = model.power_bounds();
    if (ipc_bounds.lo != recomputed_ipc.lo ||
        ipc_bounds.hi != recomputed_ipc.hi ||
        power_bounds.lo != recomputed_power.lo ||
        power_bounds.hi != recomputed_power.hi)
      throw ModelBoundsError(
          "stored prediction bounds disagree with the model's forests — "
          "the file's certificate and its trees drifted apart");
  }
  return model;
}

NapelModel load_model_file(const std::string& path) {
  std::ifstream f(path);
  NAPEL_CHECK_MSG(f.good(), "cannot open model file: " + path);
  return load_model(f);
}

}  // namespace napel::core
