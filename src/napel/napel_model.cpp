#include "napel/napel_model.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace napel::core {

namespace {

/// Index of the core-frequency architecture feature in the model schema.
std::size_t freq_feature_index() {
  static const std::size_t idx = [] {
    const auto& names = model_feature_names();
    const auto it =
        std::find(names.begin(), names.end(), "arch_core_freq_ghz");
    NAPEL_CHECK_MSG(it != names.end(), "schema lost arch_core_freq_ghz");
    return static_cast<std::size_t>(it - names.begin());
  }();
  return idx;
}

}  // namespace

ml::Dataset assemble_dataset(const std::vector<TrainingRow>& rows,
                             Target target) {
  NAPEL_CHECK_MSG(!rows.empty(), "no training rows");
  ml::Dataset data(model_feature_names().size(), model_feature_names());
  for (const auto& row : rows) {
    double y = 0.0;
    switch (target) {
      case Target::kIpc: y = row.ipc; break;
      case Target::kEnergyPerInstr: y = row.energy_pj_per_instr; break;
      case Target::kPowerWatts: y = row.power_watts; break;
    }
    data.add_row(row.features, y);
  }
  return data;
}

void NapelModel::train(const std::vector<TrainingRow>& rows,
                       const Options& opts) {
  const ml::Dataset ipc_data = assemble_dataset(rows, Target::kIpc);
  const ml::Dataset power_data = assemble_dataset(rows, Target::kPowerWatts);

  auto fit_one = [&](const ml::Dataset& data, ml::RfTuningResult& tuning,
                     const char* ckpt_suffix) {
    ml::RandomForestParams params = opts.untuned_params;
    params.seed = opts.seed;
    params.n_threads = opts.n_threads;
    params.split_mode = opts.split_mode;
    if (opts.tune && data.size() >= opts.k_folds) {
      ml::TuningCheckpoint ckpt;
      const bool use_ckpt = !opts.tune_checkpoint.empty();
      if (use_ckpt) {
        ckpt.journal_path = opts.tune_checkpoint + ckpt_suffix;
        ckpt.resume = opts.tune_resume;
      }
      tuning = ml::tune_random_forest(data, opts.grid, opts.k_folds,
                                      opts.seed, opts.n_threads,
                                      use_ckpt ? &ckpt : nullptr,
                                      opts.split_mode);
      params = tuning.best_params;
    }
    auto rf = std::make_unique<ml::RandomForest>(params);
    rf->fit(data);
    return rf;
  };

  ipc_rf_ = fit_one(ipc_data, ipc_tuning_, ".ipc");
  energy_rf_ = fit_one(power_data, energy_tuning_, ".power");
  // Compile both forests into flat SoA arenas once; all serving goes
  // through them (bit-identical to the pointer forests, much faster).
  ipc_flat_ = ml::FlatForest(*ipc_rf_);
  energy_flat_ = ml::FlatForest(*energy_rf_);
  seal_compiled_forests();
  trained_ = true;
}

void NapelModel::seal_compiled_forests() {
  // Static safety gate: predict_batch and the lockstep kernel assume the
  // structural invariants certify() proves. A forest that fails here can
  // never be served.
  ipc_flat_.certify();
  energy_flat_.certify();
  ipc_bounds_ = ipc_flat_.value_bounds();
  power_bounds_ = energy_flat_.value_bounds();
}

ml::FlatForest::ValueBounds NapelModel::ipc_bounds() const {
  NAPEL_CHECK_MSG(trained_, "model not trained");
  return ipc_bounds_;
}

ml::FlatForest::ValueBounds NapelModel::power_bounds() const {
  NAPEL_CHECK_MSG(trained_, "model not trained");
  return power_bounds_;
}

double NapelModel::predict_ipc(std::span<const double> features) const {
  NAPEL_CHECK_MSG(trained_, "predict before train");
  return ipc_flat_.predict(features);
}

double NapelModel::predict_power_watts(
    std::span<const double> features) const {
  NAPEL_CHECK_MSG(trained_, "predict before train");
  return energy_flat_.predict(features);
}

double NapelModel::predict_energy_pj(std::span<const double> features) const {
  NAPEL_CHECK_MSG(trained_, "predict before train");
  const double ipc = std::max(1e-6, ipc_flat_.predict(features));
  const double freq_hz = features[freq_feature_index()] * 1e9;
  const double watts = std::max(0.0, energy_flat_.predict(features));
  // Per-instruction time is 1/(IPC·f); energy = P · time.
  return watts / (ipc * freq_hz) * 1e12;
}

Prediction NapelModel::predict_from_features(
    std::span<const double> features, double ipc_forest_mean,
    double total_instructions) const {
  NAPEL_CHECK_MSG(trained_, "predict before train");
  // Serve-time bounds assertion: two comparisons per output against the
  // certified ensemble ranges. A healthy arena provably cannot escape them
  // (value_bounds() is a bit-exact envelope of every traversal), so a
  // violation means the compiled forest no longer matches its certificate.
  if (!ipc_bounds_.contains(ipc_forest_mean))
    throw PredictionOutOfBoundsError(
        "IPC prediction escapes the certified forest bounds — the served "
        "arena is corrupt or mismatched");
  const double power_raw = energy_flat_.predict(features);
  if (!power_bounds_.contains(power_raw))
    throw PredictionOutOfBoundsError(
        "power prediction escapes the certified forest bounds — the served "
        "arena is corrupt or mismatched");
  Prediction p;
  p.ipc = std::max(1e-6, ipc_forest_mean);
  p.power_watts = std::max(0.0, power_raw);
  // T = I_offload / (IPC · f_core)   (Section 2.5). The schema stores the
  // core frequency verbatim, so reading it back is exact.
  const double freq_ghz = features[freq_feature_index()];
  p.time_seconds = total_instructions / (p.ipc * freq_ghz * 1e9);
  p.energy_joules = p.power_watts * p.time_seconds;
  p.energy_pj_per_instr = total_instructions == 0.0
                              ? 0.0
                              : p.energy_joules * 1e12 / total_instructions;
  p.edp = p.energy_joules * p.time_seconds;
  return p;
}

Prediction NapelModel::predict(const profiler::Profile& profile,
                               const sim::ArchConfig& arch) const {
  NAPEL_CHECK_MSG(trained_, "predict before train");
  const std::vector<double> f = model_features(profile, arch);
  return predict_from_features(
      f, ipc_flat_.predict(f),
      static_cast<double>(profile.total_instructions));
}

const ml::RandomForest& NapelModel::ipc_forest() const {
  NAPEL_CHECK_MSG(trained_, "model not trained");
  return *ipc_rf_;
}

const ml::RandomForest& NapelModel::energy_forest() const {
  NAPEL_CHECK_MSG(trained_, "model not trained");
  return *energy_rf_;
}

const ml::FlatForest& NapelModel::ipc_flat() const {
  NAPEL_CHECK_MSG(trained_, "model not trained");
  return ipc_flat_;
}

const ml::FlatForest& NapelModel::energy_flat() const {
  NAPEL_CHECK_MSG(trained_, "model not trained");
  return energy_flat_;
}

NapelModel NapelModel::from_forests(ml::RandomForest ipc_rf,
                                    ml::RandomForest energy_rf) {
  NAPEL_CHECK_MSG(ipc_rf.is_fitted() && energy_rf.is_fitted(),
                  "from_forests requires fitted forests");
  NapelModel model;
  model.ipc_rf_ = std::make_unique<ml::RandomForest>(std::move(ipc_rf));
  model.energy_rf_ = std::make_unique<ml::RandomForest>(std::move(energy_rf));
  model.ipc_flat_ = ml::FlatForest(*model.ipc_rf_);
  model.energy_flat_ = ml::FlatForest(*model.energy_rf_);
  model.seal_compiled_forests();
  model.trained_ = true;
  return model;
}

}  // namespace napel::core
