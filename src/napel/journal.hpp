// NAPEL run journal: the pipeline-facing wrapper over the generic
// checksummed journal (common/journal.hpp), plus the bit-exact codec for
// collection checkpoints.
//
// One RunJournal file checkpoints an entire `napel collect`/`train`
// invocation: each completed (input-config × architecture-set) DoE task is
// one record keyed "<app>/<config-index>", and the header meta fingerprints
// every option that affects the computed rows (scale, design, seeds, pool
// geometry, feature schema). Resuming with different options is refused
// (ErrorKind::kIncompatibleJournal) rather than silently mixing data.
//
// Only the simulator *responses* and wall-clock accounting are stored;
// params and architectures are re-derived deterministically from the run
// options on resume, so a resumed row is bit-identical to a recomputed one.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>

#include "common/journal.hpp"
#include "common/result.hpp"
#include "napel/pipeline.hpp"

namespace napel::core {

/// The header meta string a journal for `opts` must carry.
std::string collect_journal_meta(const CollectOptions& opts);

/// Key of one collection task record.
std::string collect_record_key(std::string_view app, std::size_t config_index);

/// Encodes the responses of one completed task: per-row labels + features
/// (doubles as IEEE-754 bit patterns) and the task's wall-clock accounting
/// (trace-capture and replay seconds; the on-disk layout predates the
/// capture/replay split and is unchanged, so old journals stay readable).
std::string encode_collect_record(std::span<const TrainingRow> rows,
                                  double capture_seconds,
                                  double replay_seconds);

/// Decodes into `rows`, whose app/params/arch fields the caller has already
/// re-derived from the run options. Row count must match.
Status decode_collect_record(std::string_view payload,
                             std::span<TrainingRow> rows,
                             double& capture_seconds,
                             double& replay_seconds);

/// Thread-safe journal handle shared by all collect calls of one run.
class RunJournal {
 public:
  /// resume == false: creates a fresh journal (truncates). resume == true:
  /// re-opens, validates `meta`, truncates a torn tail, and indexes the
  /// surviving records for lookup.
  static Result<std::unique_ptr<RunJournal>> open(const std::string& path,
                                                  std::string_view meta,
                                                  bool resume,
                                                  FaultPlan* faults = nullptr);

  /// Payload of a previously-completed record, or nullptr.
  const std::string* find(const std::string& key) const;

  Status append(const std::string& key, std::string_view payload);

  std::size_t n_loaded() const { return loaded_.size(); }
  const std::string& path() const { return writer_.path(); }

 private:
  explicit RunJournal(JournalWriter writer) : writer_(std::move(writer)) {}

  JournalWriter writer_;
  std::map<std::string, std::string> loaded_;
  std::mutex mu_;
};

}  // namespace napel::core
