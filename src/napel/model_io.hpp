// NapelModel persistence: save a trained model (both forests plus the
// feature-schema fingerprint and the certified prediction bounds) so
// design-space exploration sessions can reuse a model without re-running
// the DoE simulations.
//
// Format (text, one artifact per file):
//   napel-model-v2 <n_features> <schema-fingerprint-hex>
//   bounds <ipc_lo> <ipc_hi> <power_lo> <power_hi>
//   <ipc forest>      (ml/serialize.hpp)
//   <power forest>
// The fingerprint hashes the ordered feature names, so a model trained
// against a different schema *ordering* is rejected even when the count
// happens to match. The bounds line is the certified ensemble output range
// of each forest (ml::FlatForest::value_bounds()); the loader recomputes
// both from the deserialized forests and rejects any disagreement — a
// mismatch means the file's forests and its certificate drifted apart.
// Legacy "napel-model-v1" files (count only, no bounds) still load; their
// bounds are recomputed from the forests.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "napel/napel_model.hpp"

namespace napel::core {

/// Thrown by load_model when the file's feature schema (count or ordered-
/// name fingerprint) does not match this build's. Surfaced by `napel lint`
/// as the `contract-schema` rule.
class ModelSchemaError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Thrown by load_model when the stored certified prediction bounds do not
/// match the bounds recomputed from the deserialized forests. Surfaced by
/// `napel lint` as the `forest-bounds` rule.
class ModelBoundsError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// FNV-1a hash over this build's ordered model feature names — the schema
/// identity stored in every saved model.
std::uint64_t feature_schema_fingerprint();

/// Writes a trained model. Throws std::invalid_argument when untrained.
void save_model(const NapelModel& model, std::ostream& os);
void save_model_file(const NapelModel& model, const std::string& path);

/// Reads a model written by save_model. Rejects models whose feature
/// schema does not match this build's (the schema is part of the format)
/// and models whose stored bounds disagree with their forests.
NapelModel load_model(std::istream& is);
NapelModel load_model_file(const std::string& path);

}  // namespace napel::core
