// NapelModel persistence: save a trained model (both forests plus the
// feature-schema fingerprint) so design-space exploration sessions can
// reuse a model without re-running the DoE simulations.
#pragma once

#include <iosfwd>
#include <string>

#include "napel/napel_model.hpp"

namespace napel::core {

/// Writes a trained model. Throws std::invalid_argument when untrained.
void save_model(const NapelModel& model, std::ostream& os);
void save_model_file(const NapelModel& model, const std::string& path);

/// Reads a model written by save_model. Rejects models whose feature
/// schema does not match this build's (the schema is part of the format).
NapelModel load_model(std::istream& is);
NapelModel load_model_file(const std::string& path);

}  // namespace napel::core
