#include "napel/loao.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>

#include "common/check.hpp"
#include "common/journal.hpp"
#include "common/parallel.hpp"
#include "ml/metrics.hpp"
#include "ml/mlp.hpp"
#include "ml/model_tree.hpp"

namespace napel::core {

std::string_view model_kind_name(ModelKind kind) {
  switch (kind) {
    case ModelKind::kNapelRf: return "NAPEL (random forest)";
    case ModelKind::kAnn: return "ANN (Ipek et al.)";
    case ModelKind::kLinearDecisionTree: return "Linear decision tree (Guo et al.)";
  }
  return "invalid";
}

namespace {

std::unique_ptr<ml::Regressor> make_baseline(ModelKind kind,
                                             std::uint64_t seed) {
  switch (kind) {
    case ModelKind::kAnn: {
      ml::MlpParams p;
      p.seed = seed;
      return std::make_unique<ml::Mlp>(p);
    }
    case ModelKind::kLinearDecisionTree: {
      ml::ModelTreeParams p;
      p.seed = seed;
      return std::make_unique<ml::ModelTree>(p);
    }
    case ModelKind::kNapelRf:
      break;
  }
  napel::check_failed("baseline kind", __FILE__, __LINE__, "");
}

std::size_t freq_feature_index() {
  const auto& names = model_feature_names();
  const auto it = std::find(names.begin(), names.end(), "arch_core_freq_ghz");
  NAPEL_CHECK(it != names.end());
  return static_cast<std::size_t>(it - names.begin());
}

/// Energy MRE via the reconstruction every model kind uses:
/// e_pj = P / (IPC · f). Model outputs are clamped to physically possible
/// ranges first (chip IPC cannot exceed the PE count or go non-positive;
/// power cannot fall below the stack's static floor) — without the clamp an
/// extrapolating baseline predicting IPC ≈ 0 would blow the reconstruction
/// up arbitrarily. Rows with a zero energy label are skipped.
double energy_mre_from_predictions(std::span<const double> ipc_pred,
                                   std::span<const double> power_pred,
                                   const std::vector<TrainingRow>& test) {
  const std::size_t freq_idx = freq_feature_index();
  double s = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const auto& r = test[i];
    if (r.energy_pj_per_instr == 0.0) continue;
    const double max_ipc = static_cast<double>(r.arch.n_pes);
    const double ipc = std::clamp(ipc_pred[i], 0.01, max_ipc);
    const double watts = std::clamp(power_pred[i], 0.1, 10000.0);
    const double freq_hz = r.features[freq_idx] * 1e9;
    const double e_pj = watts / (ipc * freq_hz) * 1e12;
    s += std::abs(e_pj - r.energy_pj_per_instr) / r.energy_pj_per_instr;
    ++n;
  }
  return n ? s / static_cast<double>(n) : 0.0;
}

double energy_mre(const ml::Regressor& ipc_model,
                  const ml::Regressor& power_model,
                  const std::vector<TrainingRow>& test) {
  std::vector<double> ipc_pred, power_pred;
  ipc_pred.reserve(test.size());
  power_pred.reserve(test.size());
  for (const auto& r : test) {
    ipc_pred.push_back(ipc_model.predict(r.features));
    power_pred.push_back(power_model.predict(r.features));
  }
  return energy_mre_from_predictions(ipc_pred, power_pred, test);
}

/// Flat-forest energy MRE: both forests batch-traverse the fold's feature
/// matrix once, then the same clamped reconstruction scores the rows.
double energy_mre(const ml::FlatForest& ipc_model,
                  const ml::FlatForest& power_model,
                  const std::vector<TrainingRow>& test,
                  std::span<const double> X, unsigned n_threads = 1) {
  std::vector<double> ipc_pred(test.size()), power_pred(test.size());
  ipc_model.predict_batch(X, test.size(), ipc_pred, n_threads);
  power_model.predict_batch(X, test.size(), power_pred, n_threads);
  return energy_mre_from_predictions(ipc_pred, power_pred, test);
}

std::string loao_meta(const std::vector<TrainingRow>& rows, ModelKind kind,
                      const LoaoOptions& opts, std::size_t n_apps) {
  std::ostringstream os;
  os << "loao kind=" << static_cast<int>(kind) << " tune=" << opts.tune_rf
     << " k=" << opts.k_folds << " seed=" << opts.seed
     << " rows=" << rows.size() << " apps=" << n_apps;
  // Appended only for hist runs so pre-existing exact-mode journals keep
  // resuming unchanged.
  if (opts.split_mode != ml::SplitMode::kExact)
    os << " mode=" << ml::split_mode_name(opts.split_mode);
  return os.str();
}

std::string fold_payload(const LoaoAppResult& r) {
  return double_bits_to_hex(r.perf_mre) + ' ' +
         double_bits_to_hex(r.energy_mre) + ' ' + std::to_string(r.test_rows);
}

bool parse_fold_payload(const std::string& payload, LoaoAppResult& r) {
  std::istringstream is(payload);
  std::string perf, energy;
  is >> perf >> energy >> r.test_rows;
  if (is.fail()) return false;
  const Result<double> p = double_bits_from_hex(perf);
  const Result<double> e = double_bits_from_hex(energy);
  if (!p.ok() || !e.ok()) return false;
  r.perf_mre = p.value();
  r.energy_mre = e.value();
  return true;
}

}  // namespace

std::vector<LoaoAppResult> leave_one_app_out(
    const std::vector<TrainingRow>& rows, ModelKind kind,
    const LoaoOptions& opts) {
  NAPEL_CHECK_MSG(!rows.empty(), "no rows for LOAO");

  std::vector<std::string> apps;
  for (const auto& r : rows)
    if (std::find(apps.begin(), apps.end(), r.app) == apps.end())
      apps.push_back(r.app);
  NAPEL_CHECK_MSG(apps.size() >= 2, "LOAO requires at least two applications");

  // Fold checkpoint journal: completed folds are restored on resume and
  // skipped; new folds are appended in app order (buffered in-order flush)
  // so the journal is always a valid contiguous prefix.
  const std::size_t n = apps.size();
  std::vector<char> done(n, 0);
  std::vector<LoaoAppResult> results(n);
  std::unique_ptr<JournalWriter> writer;
  if (!opts.journal_path.empty()) {
    const std::string meta = loao_meta(rows, kind, opts, n);
    if (opts.resume) {
      std::vector<JournalRecord> resumed;
      writer = std::make_unique<JournalWriter>(
          JournalWriter::open_append(opts.journal_path, meta, resumed)
              .value_or_throw());
      for (const JournalRecord& rec : resumed) {
        const auto it = std::find(apps.begin(), apps.end(), rec.key);
        LoaoAppResult r;
        if (it == apps.end() || !parse_fold_payload(rec.payload, r))
          throw PipelineException(
              {.kind = ErrorKind::kCorruptArtifact,
               .context = opts.journal_path + ": " + rec.key,
               .message = "unparseable LOAO checkpoint record"});
        r.app = rec.key;
        const auto ai = static_cast<std::size_t>(it - apps.begin());
        results[ai] = std::move(r);
        done[ai] = 1;
      }
    } else {
      writer = std::make_unique<JournalWriter>(
          JournalWriter::create(opts.journal_path, meta).value_or_throw());
    }
  }

  std::vector<std::size_t> pending;
  pending.reserve(n);
  for (std::size_t ai = 0; ai < n; ++ai)
    if (!done[ai]) pending.push_back(ai);

  std::mutex flush_mu;
  std::size_t next_flush = 0;
  std::vector<char> resolved(done.begin(), done.end());
  std::optional<PipelineError> journal_error;
  const auto flush = [&](std::size_t ai) {
    const std::lock_guard<std::mutex> lock(flush_mu);
    resolved[ai] = 1;
    if (journal_error) return;
    while (next_flush < n && resolved[next_flush]) {
      if (!done[next_flush]) {
        Status s =
            writer->append(apps[next_flush], fold_payload(results[next_flush]));
        if (!s.ok()) {
          journal_error = s.error();
          return;
        }
      }
      ++next_flush;
    }
  };

  // Each held-out application is an independent fold: it builds its own
  // train/test split, trains from the same seed the sequential loop used,
  // and writes its result into its own slot, so results are ordered by
  // first appearance and identical at any thread count.
  parallel_for(pending.size(), opts.n_threads, [&](std::size_t pi) {
    const std::size_t ai = pending[pi];
    const auto& app = apps[ai];
    std::vector<TrainingRow> train, test;
    for (const auto& r : rows) (r.app == app ? test : train).push_back(r);

    LoaoAppResult res;
    res.app = app;
    res.test_rows = test.size();

    const ml::Dataset test_ipc = assemble_dataset(test, Target::kIpc);

    if (kind == ModelKind::kNapelRf) {
      NapelModel model;
      NapelModel::Options mo;
      mo.tune = opts.tune_rf;
      mo.grid = opts.grid;
      mo.k_folds = opts.k_folds;
      mo.seed = opts.seed;
      mo.n_threads = opts.n_threads;
      mo.split_mode = opts.split_mode;
      model.train(train, mo);
      // Held-out scoring runs on the compiled flat forests: the fold's
      // feature matrix is traversed in batches instead of row-by-row
      // pointer chasing, with bit-identical MREs.
      // Fold scoring shares the pool with the fold fan-out itself: when
      // few folds are pending (the common LOAO tail), the batched
      // traversal's shards keep the idle workers busy; nested waits
      // help-execute, so this cannot deadlock.
      res.perf_mre =
          ml::evaluate(model.ipc_flat(), test_ipc, opts.n_threads).mre;
      res.energy_mre =
          energy_mre(model.ipc_flat(), model.energy_flat(), test,
                     test_ipc.features(), opts.n_threads);
    } else {
      const ml::Dataset train_ipc = assemble_dataset(train, Target::kIpc);
      const ml::Dataset train_power =
          assemble_dataset(train, Target::kPowerWatts);
      auto ipc_model = make_baseline(kind, opts.seed);
      ipc_model->fit(train_ipc);
      res.perf_mre = ml::evaluate(*ipc_model, test_ipc).mre;
      auto power_model = make_baseline(kind, opts.seed + 1);
      power_model->fit(train_power);
      res.energy_mre = energy_mre(*ipc_model, *power_model, test);
    }
    results[ai] = std::move(res);
    if (writer) flush(ai);
  });
  if (journal_error) throw PipelineException(std::move(*journal_error));
  return results;
}

}  // namespace napel::core
