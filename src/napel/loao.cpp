#include "napel/loao.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "ml/metrics.hpp"
#include "ml/mlp.hpp"
#include "ml/model_tree.hpp"

namespace napel::core {

std::string_view model_kind_name(ModelKind kind) {
  switch (kind) {
    case ModelKind::kNapelRf: return "NAPEL (random forest)";
    case ModelKind::kAnn: return "ANN (Ipek et al.)";
    case ModelKind::kLinearDecisionTree: return "Linear decision tree (Guo et al.)";
  }
  return "invalid";
}

namespace {

std::unique_ptr<ml::Regressor> make_baseline(ModelKind kind,
                                             std::uint64_t seed) {
  switch (kind) {
    case ModelKind::kAnn: {
      ml::MlpParams p;
      p.seed = seed;
      return std::make_unique<ml::Mlp>(p);
    }
    case ModelKind::kLinearDecisionTree: {
      ml::ModelTreeParams p;
      p.seed = seed;
      return std::make_unique<ml::ModelTree>(p);
    }
    case ModelKind::kNapelRf:
      break;
  }
  napel::check_failed("baseline kind", __FILE__, __LINE__, "");
}

std::size_t freq_feature_index() {
  const auto& names = model_feature_names();
  const auto it = std::find(names.begin(), names.end(), "arch_core_freq_ghz");
  NAPEL_CHECK(it != names.end());
  return static_cast<std::size_t>(it - names.begin());
}

/// Energy MRE via the reconstruction every model kind uses:
/// e_pj = P / (IPC · f). Model outputs are clamped to physically possible
/// ranges first (chip IPC cannot exceed the PE count or go non-positive;
/// power cannot fall below the stack's static floor) — without the clamp an
/// extrapolating baseline predicting IPC ≈ 0 would blow the reconstruction
/// up arbitrarily. Rows with a zero energy label are skipped.
double energy_mre(const ml::Regressor& ipc_model,
                  const ml::Regressor& power_model,
                  const std::vector<TrainingRow>& test) {
  const std::size_t freq_idx = freq_feature_index();
  double s = 0.0;
  std::size_t n = 0;
  for (const auto& r : test) {
    if (r.energy_pj_per_instr == 0.0) continue;
    const double max_ipc = static_cast<double>(r.arch.n_pes);
    const double ipc =
        std::clamp(ipc_model.predict(r.features), 0.01, max_ipc);
    const double watts =
        std::clamp(power_model.predict(r.features), 0.1, 10000.0);
    const double freq_hz = r.features[freq_idx] * 1e9;
    const double e_pj = watts / (ipc * freq_hz) * 1e12;
    s += std::abs(e_pj - r.energy_pj_per_instr) / r.energy_pj_per_instr;
    ++n;
  }
  return n ? s / static_cast<double>(n) : 0.0;
}

}  // namespace

std::vector<LoaoAppResult> leave_one_app_out(
    const std::vector<TrainingRow>& rows, ModelKind kind,
    const LoaoOptions& opts) {
  NAPEL_CHECK_MSG(!rows.empty(), "no rows for LOAO");

  std::vector<std::string> apps;
  for (const auto& r : rows)
    if (std::find(apps.begin(), apps.end(), r.app) == apps.end())
      apps.push_back(r.app);
  NAPEL_CHECK_MSG(apps.size() >= 2, "LOAO requires at least two applications");

  // Each held-out application is an independent fold: it builds its own
  // train/test split, trains from the same seed the sequential loop used,
  // and writes its result into its own slot, so results are ordered by
  // first appearance and identical at any thread count.
  std::vector<LoaoAppResult> results(apps.size());
  parallel_for(apps.size(), opts.n_threads, [&](std::size_t ai) {
    const auto& app = apps[ai];
    std::vector<TrainingRow> train, test;
    for (const auto& r : rows) (r.app == app ? test : train).push_back(r);

    LoaoAppResult res;
    res.app = app;
    res.test_rows = test.size();

    const ml::Dataset test_ipc = assemble_dataset(test, Target::kIpc);

    if (kind == ModelKind::kNapelRf) {
      NapelModel model;
      NapelModel::Options mo;
      mo.tune = opts.tune_rf;
      mo.grid = opts.grid;
      mo.k_folds = opts.k_folds;
      mo.seed = opts.seed;
      mo.n_threads = opts.n_threads;
      model.train(train, mo);
      res.perf_mre = ml::evaluate(model.ipc_forest(), test_ipc).mre;
      res.energy_mre =
          energy_mre(model.ipc_forest(), model.energy_forest(), test);
    } else {
      const ml::Dataset train_ipc = assemble_dataset(train, Target::kIpc);
      const ml::Dataset train_power =
          assemble_dataset(train, Target::kPowerWatts);
      auto ipc_model = make_baseline(kind, opts.seed);
      ipc_model->fit(train_ipc);
      res.perf_mre = ml::evaluate(*ipc_model, test_ipc).mre;
      auto power_model = make_baseline(kind, opts.seed + 1);
      power_model->fit(train_power);
      res.energy_mre = energy_mre(*ipc_model, *power_model, test);
    }
    results[ai] = std::move(res);
  });
  return results;
}

}  // namespace napel::core
