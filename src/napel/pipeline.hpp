// NAPEL training-data pipeline (Figure 1 of the paper, phases 1-2):
// DoE-selected input configurations are executed once through the
// instrumentation layer, producing (a) the hardware-independent profile and
// (b) simulator responses for one or more architecture configurations —
// both from the same kernel execution, since profiler and simulators are
// all TraceSinks on the same Tracer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "doe/doe.hpp"
#include "profiler/profile.hpp"
#include "sim/arch.hpp"
#include "sim/simulator.hpp"
#include "workloads/workload.hpp"

namespace napel::core {

/// Model input assembly: profile features ++ architecture features ++ the
/// two profile×architecture interaction features of Table 1 (cache access
/// fraction / DRAM access fraction, estimated from the reuse-distance
/// histogram at the configuration's L1 capacity).
std::vector<double> model_features(const profiler::Profile& profile,
                                   const sim::ArchConfig& arch);
const std::vector<std::string>& model_feature_names();

/// One training example: an (application input, architecture) pair with its
/// simulator responses.
struct TrainingRow {
  std::string app;
  workloads::WorkloadParams params;
  sim::ArchConfig arch;
  std::vector<double> features;

  // Labels (simulator responses).
  double ipc = 0.0;                ///< chip-level IPC
  double energy_pj_per_instr = 0.0;
  double power_watts = 0.0;        ///< average power over the kernel
  // Raw responses kept for analysis/benches.
  std::uint64_t instructions = 0;
  double sim_time_seconds = 0.0;   ///< simulated kernel time
  double sim_energy_joules = 0.0;
};

enum class DesignKind { kCcd, kRandom, kLatinHypercube, kFullFactorial };

struct CollectOptions {
  workloads::Scale scale = workloads::Scale::kBench;
  DesignKind design = DesignKind::kCcd;
  /// Number of design points for the random/LHS designs (ignored for CCD
  /// and full factorial, whose sizes are structural).
  std::size_t design_points = 16;
  /// Simulated architecture configurations paired with each input
  /// configuration (round-robin from a deterministic pool).
  std::size_t archs_per_config = 3;
  std::size_t arch_pool_size = 8;
  std::uint64_t seed = 2019;
  /// Worker threads for the (input config x architecture) fan-out:
  /// 0 = process-wide pool (NAPEL_THREADS / hardware concurrency),
  /// 1 = serial on the calling thread. Output is identical either way.
  unsigned n_threads = 0;
};

struct CollectStats {
  std::size_t n_input_configs = 0;
  std::size_t n_rows = 0;
  double kernel_and_profile_seconds = 0.0;  ///< trace generation + analysis
  double simulation_seconds = 0.0;          ///< timing-model replay
};

/// Runs the phase-1/phase-2 pipeline for one workload and appends the
/// resulting rows. Returns wall-clock accounting for Table 4.
CollectStats collect_training_data(const workloads::Workload& w,
                                   const CollectOptions& opts,
                                   std::vector<TrainingRow>& out);

/// Profiles a single (workload, input) pair — phase 1 only (also the first
/// phase of prediction).
profiler::Profile profile_workload(const workloads::Workload& w,
                                   const workloads::WorkloadParams& params,
                                   std::uint64_t seed);

/// Simulates a single (workload, input, architecture) triple — the
/// reference the paper calls "Actual".
sim::SimResult simulate_workload(const workloads::Workload& w,
                                 const workloads::WorkloadParams& params,
                                 const sim::ArchConfig& arch,
                                 std::uint64_t seed);

}  // namespace napel::core
