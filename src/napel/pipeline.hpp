// NAPEL training-data pipeline (Figure 1 of the paper, phases 1-2):
// DoE-selected input configurations are executed once through the
// instrumentation layer, producing (a) the hardware-independent profile and
// (b) simulator responses for one or more architecture configurations —
// both from the same kernel execution, since profiler and simulators are
// all TraceSinks on the same Tracer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "doe/doe.hpp"
#include "profiler/profile.hpp"
#include "sim/arch.hpp"
#include "sim/simulator.hpp"
#include "workloads/workload.hpp"

namespace napel {
class FaultPlan;
}

namespace napel::core {

class RunJournal;

/// Model input assembly: profile features ++ architecture features ++ the
/// two profile×architecture interaction features of Table 1 (cache access
/// fraction / DRAM access fraction, estimated from the reuse-distance
/// histogram at the configuration's L1 capacity).
std::vector<double> model_features(const profiler::Profile& profile,
                                   const sim::ArchConfig& arch);
const std::vector<std::string>& model_feature_names();

/// One training example: an (application input, architecture) pair with its
/// simulator responses.
struct TrainingRow {
  std::string app;
  workloads::WorkloadParams params;
  sim::ArchConfig arch;
  std::vector<double> features;

  // Labels (simulator responses).
  double ipc = 0.0;                ///< chip-level IPC
  double energy_pj_per_instr = 0.0;
  double power_watts = 0.0;        ///< average power over the kernel
  // Raw responses kept for analysis/benches.
  std::uint64_t instructions = 0;
  double sim_time_seconds = 0.0;   ///< simulated kernel time
  double sim_energy_joules = 0.0;
};

enum class DesignKind { kCcd, kRandom, kLatinHypercube, kFullFactorial };

struct CollectOptions {
  workloads::Scale scale = workloads::Scale::kBench;
  DesignKind design = DesignKind::kCcd;
  /// Number of design points for the random/LHS designs (ignored for CCD
  /// and full factorial, whose sizes are structural).
  std::size_t design_points = 16;
  /// Simulated architecture configurations paired with each input
  /// configuration (round-robin from a deterministic pool).
  std::size_t archs_per_config = 3;
  std::size_t arch_pool_size = 8;
  std::uint64_t seed = 2019;
  /// Worker threads for the (input config x architecture) fan-out:
  /// 0 = process-wide pool (NAPEL_THREADS / hardware concurrency),
  /// 1 = serial on the calling thread. Output is identical either way.
  unsigned n_threads = 0;

  // --- fault tolerance (defaults: strict, no journal, no deadlines) ---

  /// Extra attempts per failed task. Only retryable failures (thrown
  /// exceptions, I/O errors) are retried; deterministic outcomes such as a
  /// watchdog timeout or an exhausted simulation budget are not. Retries
  /// re-run the task with the same data seed, so a retried success is
  /// bit-identical to a first-attempt success.
  std::size_t max_retries = 2;
  /// Base backoff before a retry, doubled per attempt with deterministic
  /// seed-derived jitter. 0 disables sleeping (tests).
  std::uint32_t retry_backoff_ms = 0;
  /// Quorum: how many DoE points may be dropped (after retries) before the
  /// whole run fails with a diagnostic report. CCD center/axial points are
  /// never droppable regardless of this knob. 0 = strict (any loss fails).
  std::size_t max_failures = 0;
  /// Per-attempt wall-clock watchdog, checked at task phase boundaries.
  /// 0 = no deadline.
  std::uint32_t task_deadline_ms = 0;
  /// Per-simulation cycle/event budget (the in-simulator watchdog).
  sim::SimBudget sim_budget;
  /// Checkpoint journal: completed tasks are appended (crash-safe) and,
  /// on a resumed run, skipped with bit-identical rows. Optional.
  RunJournal* journal = nullptr;
  /// Deterministic fault injection (tests / CI drills only).
  FaultPlan* faults = nullptr;
};

struct CollectStats {
  std::size_t n_input_configs = 0;
  std::size_t n_rows = 0;
  double kernel_and_profile_seconds = 0.0;  ///< trace generation + analysis
  double simulation_seconds = 0.0;          ///< timing-model replay

  // Fault-tolerance accounting.
  std::size_t n_failed = 0;   ///< DoE points dropped under the quorum
  std::size_t n_retries = 0;  ///< task attempts beyond the first
  std::size_t n_resumed = 0;  ///< tasks restored from the journal
  std::vector<PipelineError> failures;  ///< one per dropped point

  bool degraded() const { return n_failed > 0; }
};

/// Runs the phase-1/phase-2 pipeline for one workload and appends the
/// resulting rows. Per-task failures are retried, then dropped under the
/// quorum policy (CollectOptions::max_failures) — a single failing DoE
/// point degrades the run instead of aborting it. Returns an error when
/// the quorum is missed, a CCD center/axial point is lost, or the journal
/// cannot be written. Option-contract violations still throw
/// std::invalid_argument.
Result<CollectStats> try_collect_training_data(const workloads::Workload& w,
                                               const CollectOptions& opts,
                                               std::vector<TrainingRow>& out);

/// Throwing wrapper around try_collect_training_data (PipelineException on
/// runtime failure). Returns wall-clock accounting for Table 4.
CollectStats collect_training_data(const workloads::Workload& w,
                                   const CollectOptions& opts,
                                   std::vector<TrainingRow>& out);

/// Profiles a single (workload, input) pair — phase 1 only (also the first
/// phase of prediction).
profiler::Profile profile_workload(const workloads::Workload& w,
                                   const workloads::WorkloadParams& params,
                                   std::uint64_t seed);

/// Simulates a single (workload, input, architecture) triple — the
/// reference the paper calls "Actual".
sim::SimResult simulate_workload(const workloads::Workload& w,
                                 const workloads::WorkloadParams& params,
                                 const sim::ArchConfig& arch,
                                 std::uint64_t seed);

}  // namespace napel::core
