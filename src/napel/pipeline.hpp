// NAPEL training-data pipeline (Figure 1 of the paper, phases 1-2):
// DoE-selected input configurations are executed once through the
// instrumentation layer, producing (a) the hardware-independent profile and
// (b) simulator responses for one or more architecture configurations.
//
// Each DoE task runs capture-once/replay-many: the kernel executes a single
// time into a trace::TraceBuffer, and the recorded stream is then replayed
// — bit-identically, in batches — into the profiler and into one simulator
// per paired architecture as independent thread-pool tasks. An optional
// bounded trace cache (CollectOptions::trace_cache) keyed by
// (app, params, data_seed) lets retries and repeated collections skip the
// kernel execution entirely; cache hits affect only wall-clock time, never
// results.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "doe/doe.hpp"
#include "profiler/profile.hpp"
#include "sim/arch.hpp"
#include "sim/simulator.hpp"
#include "workloads/workload.hpp"

namespace napel {
class FaultPlan;
}

namespace napel::trace {
class TraceCache;
}

namespace napel::core {

class RunJournal;

/// Model input assembly: profile features ++ architecture features ++ the
/// two profile×architecture interaction features of Table 1 (cache access
/// fraction / DRAM access fraction, estimated from the reuse-distance
/// histogram at the configuration's L1 capacity).
std::vector<double> model_features(const profiler::Profile& profile,
                                   const sim::ArchConfig& arch);
const std::vector<std::string>& model_feature_names();

/// One training example: an (application input, architecture) pair with its
/// simulator responses.
struct TrainingRow {
  std::string app;
  workloads::WorkloadParams params;
  sim::ArchConfig arch;
  std::vector<double> features;

  // Labels (simulator responses).
  double ipc = 0.0;                ///< chip-level IPC
  double energy_pj_per_instr = 0.0;
  double power_watts = 0.0;        ///< average power over the kernel
  // Raw responses kept for analysis/benches.
  std::uint64_t instructions = 0;
  double sim_time_seconds = 0.0;   ///< simulated kernel time
  double sim_energy_joules = 0.0;
};

enum class DesignKind { kCcd, kRandom, kLatinHypercube, kFullFactorial };

struct CollectOptions {
  workloads::Scale scale = workloads::Scale::kBench;
  DesignKind design = DesignKind::kCcd;
  /// Number of design points for the random/LHS designs (ignored for CCD
  /// and full factorial, whose sizes are structural).
  std::size_t design_points = 16;
  /// Simulated architecture configurations paired with each input
  /// configuration (round-robin from a deterministic pool).
  std::size_t archs_per_config = 3;
  std::size_t arch_pool_size = 8;
  std::uint64_t seed = 2019;
  /// Worker threads for the (input config x architecture) fan-out:
  /// 0 = process-wide pool (NAPEL_THREADS / hardware concurrency),
  /// 1 = serial on the calling thread. Output is identical either way.
  unsigned n_threads = 0;

  // --- fault tolerance (defaults: strict, no journal, no deadlines) ---

  /// Extra attempts per failed task. Only retryable failures (thrown
  /// exceptions, I/O errors) are retried; deterministic outcomes such as a
  /// watchdog timeout or an exhausted simulation budget are not. Retries
  /// re-run the task with the same data seed, so a retried success is
  /// bit-identical to a first-attempt success.
  std::size_t max_retries = 2;
  /// Base backoff before a retry, doubled per attempt with deterministic
  /// seed-derived jitter. 0 disables sleeping (tests).
  std::uint32_t retry_backoff_ms = 0;
  /// Quorum: how many DoE points may be dropped (after retries) before the
  /// whole run fails with a diagnostic report. CCD center/axial points are
  /// never droppable regardless of this knob. 0 = strict (any loss fails).
  std::size_t max_failures = 0;
  /// Per-attempt wall-clock watchdog, checked at task phase boundaries.
  /// 0 = no deadline.
  std::uint32_t task_deadline_ms = 0;
  /// Per-simulation cycle/event budget (the in-simulator watchdog).
  sim::SimBudget sim_budget;
  /// Checkpoint journal: completed tasks are appended (crash-safe) and,
  /// on a resumed run, skipped with bit-identical rows. Optional.
  RunJournal* journal = nullptr;
  /// Deterministic fault injection (tests / CI drills only).
  FaultPlan* faults = nullptr;
  /// Cooperative cancellation (graceful SIGTERM/SIGINT): when non-null and
  /// set, tasks not yet started are skipped, in-flight tasks finish and
  /// flush to the journal, and the run returns ErrorKind::kInterrupted.
  /// A resumed run re-attempts exactly the skipped tasks.
  const std::atomic<bool>* cancel = nullptr;
  /// Optional shared trace cache: captured kernel traces are published
  /// under (app, params, data_seed) and reused by retries and by later
  /// collect calls in the same process. Hits skip the kernel execution;
  /// the replayed rows are bit-identical either way.
  trace::TraceCache* trace_cache = nullptr;
};

struct CollectStats {
  std::size_t n_input_configs = 0;
  std::size_t n_rows = 0;
  /// Wall-clock executing kernels into trace buffers (zero for tasks whose
  /// trace came from the cache or the journal). When the pool is saturated
  /// the capture pass also feeds the consumers (fused capture+consume), so
  /// their ingestion cost lands here rather than in replay_seconds.
  double capture_seconds = 0.0;
  /// Wall-clock of the per-task consumption fan-out: trace replays (cache
  /// hits and idle-worker fan-out) plus the per-architecture timing models.
  double replay_seconds = 0.0;
  /// Events delivered to consumers (profiler + simulators), whether via
  /// fused capture or trace replay.
  std::uint64_t n_replay_events = 0;

  // Trace-cache accounting (executed tasks only; resumed tasks excluded).
  std::size_t n_cache_hits = 0;    ///< tasks served from the trace cache
  std::size_t n_cache_misses = 0;  ///< tasks that captured a fresh trace

  /// Replay throughput in events/second (0 when nothing replayed).
  double replay_events_per_second() const {
    return replay_seconds > 0.0
               ? static_cast<double>(n_replay_events) / replay_seconds
               : 0.0;
  }
  /// Trace-cache hit rate over executed tasks (0 when none executed).
  double cache_hit_rate() const {
    const std::size_t n = n_cache_hits + n_cache_misses;
    return n == 0 ? 0.0
                  : static_cast<double>(n_cache_hits) / static_cast<double>(n);
  }

  // Fault-tolerance accounting.
  std::size_t n_failed = 0;   ///< DoE points dropped under the quorum
  std::size_t n_retries = 0;  ///< task attempts beyond the first
  std::size_t n_resumed = 0;  ///< tasks restored from the journal
  std::vector<PipelineError> failures;  ///< one per dropped point

  bool degraded() const { return n_failed > 0; }
};

/// Runs the phase-1/phase-2 pipeline for one workload and appends the
/// resulting rows. Per-task failures are retried, then dropped under the
/// quorum policy (CollectOptions::max_failures) — a single failing DoE
/// point degrades the run instead of aborting it. Returns an error when
/// the quorum is missed, a CCD center/axial point is lost, or the journal
/// cannot be written. Option-contract violations still throw
/// std::invalid_argument.
Result<CollectStats> try_collect_training_data(const workloads::Workload& w,
                                               const CollectOptions& opts,
                                               std::vector<TrainingRow>& out);

/// Throwing wrapper around try_collect_training_data (PipelineException on
/// runtime failure). Returns wall-clock accounting for Table 4.
CollectStats collect_training_data(const workloads::Workload& w,
                                   const CollectOptions& opts,
                                   std::vector<TrainingRow>& out);

/// Profiles a single (workload, input) pair — phase 1 only (also the first
/// phase of prediction).
profiler::Profile profile_workload(const workloads::Workload& w,
                                   const workloads::WorkloadParams& params,
                                   std::uint64_t seed);

/// Simulates a single (workload, input, architecture) triple — the
/// reference the paper calls "Actual".
sim::SimResult simulate_workload(const workloads::Workload& w,
                                 const workloads::WorkloadParams& params,
                                 const sim::ArchConfig& arch,
                                 std::uint64_t seed);

}  // namespace napel::core
