#include "napel/suitability.hpp"

#include "common/check.hpp"
#include "trace/tracer.hpp"

namespace napel::core {

SuitabilityRow analyze_suitability(const workloads::Workload& w,
                                   const NapelModel& model,
                                   const hostmodel::HostModel& host,
                                   const sim::ArchConfig& arch,
                                   const SuitabilityOptions& opts) {
  NAPEL_CHECK_MSG(model.is_trained(), "suitability needs a trained model");
  const workloads::WorkloadParams test_input =
      workloads::WorkloadParams::test_input(w.doe_space(opts.scale));

  // Single kernel execution feeding both the profiler and the simulator.
  trace::Tracer tracer;
  profiler::ProfileBuilder builder;
  sim::NmcSimulator simulator(arch);
  tracer.attach(builder);
  tracer.attach(simulator);
  w.run(tracer, test_input, opts.seed);

  const profiler::Profile profile = builder.build();
  const sim::SimResult& sim_res = simulator.result();
  const hostmodel::HostResult host_res = host.evaluate(profile);
  // Model inference runs on the compiled flat forests (one feature row,
  // one traversal per forest) — the same engine the DSE loop batches over.
  const Prediction pred = model.predict(profile, arch);

  SuitabilityRow row;
  row.app = std::string(w.name());
  row.host_time_s = host_res.time_seconds;
  row.host_energy_j = host_res.energy_joules;
  row.host_edp = host_res.edp;
  row.pred_time_s = pred.time_seconds;
  row.pred_energy_j = pred.energy_joules;
  row.sim_time_s = sim_res.time_seconds;
  row.sim_energy_j = sim_res.energy_joules;

  if (opts.include_offload_cost) {
    // Worst case: the host's dirty copy of the kernel's write footprint
    // crosses the link before launch.
    const std::uint64_t bytes = profile.unique_write_lines * 64;
    const sim::OffloadCost cost = sim::offload_cost(opts.link, bytes);
    row.pred_time_s += cost.seconds;
    row.pred_energy_j += cost.energy_joules;
    row.sim_time_s += cost.seconds;
    row.sim_energy_j += cost.energy_joules;
  }
  row.pred_edp = row.pred_energy_j * row.pred_time_s;
  row.sim_edp = row.sim_energy_j * row.sim_time_s;
  return row;
}

}  // namespace napel::core
