#include "common/journal.hpp"

#include <bit>
#include <cerrno>
#include <cinttypes>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/atomic_file.hpp"
#include "common/fault_injection.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define NAPEL_HAVE_FSYNC 1
#endif

namespace napel {

namespace {

constexpr std::string_view kHeaderTag = "napel-journal-v1 ";

PipelineError journal_error(ErrorKind kind, const std::string& path,
                            const std::string& what) {
  return PipelineError{.kind = kind, .context = path, .message = what};
}

std::uint64_t record_checksum(std::uint64_t seq, std::string_view key,
                              std::string_view payload) {
  std::uint64_t h = kFnvOffset;
  char seq_bytes[8];
  for (int i = 0; i < 8; ++i)
    seq_bytes[i] = static_cast<char>((seq >> (8 * i)) & 0xff);
  h = fnv1a64(std::string_view(seq_bytes, 8), h);
  h = fnv1a64(key, h);
  h = fnv1a64(payload, h);
  return h;
}

std::string format_record(std::uint64_t seq, std::string_view key,
                          std::string_view payload) {
  char head[96];
  std::snprintf(head, sizeof(head), "R %" PRIu64 " %zu %zu %016" PRIx64 "\n",
                seq, key.size(), payload.size(),
                record_checksum(seq, key, payload));
  std::string rec(head);
  rec.append(key);
  rec.append(payload);
  rec.push_back('\n');
  return rec;
}

}  // namespace

std::string double_bits_to_hex(double v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, std::bit_cast<std::uint64_t>(v));
  return buf;
}

Result<double> double_bits_from_hex(std::string_view hex) {
  if (hex.size() != 16)
    return journal_error(ErrorKind::kCorruptArtifact, "",
                         "malformed double bit pattern: " + std::string(hex));
  std::uint64_t bits = 0;
  for (const char c : hex) {
    bits <<= 4;
    if (c >= '0' && c <= '9') bits |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') bits |= static_cast<std::uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') bits |= static_cast<std::uint64_t>(c - 'A' + 10);
    else
      return journal_error(ErrorKind::kCorruptArtifact, "",
                           "malformed double bit pattern: " + std::string(hex));
  }
  return std::bit_cast<double>(bits);
}

Result<JournalContents> read_journal(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good())
    return journal_error(ErrorKind::kIoError, path, "cannot open journal");
  std::ostringstream buf;
  buf << f.rdbuf();
  const std::string bytes = buf.str();

  JournalContents out;
  std::size_t pos = bytes.find('\n');
  if (pos == std::string::npos ||
      bytes.compare(0, kHeaderTag.size(), kHeaderTag) != 0)
    return journal_error(ErrorKind::kCorruptArtifact, path,
                         "missing or malformed journal header");
  out.meta = bytes.substr(kHeaderTag.size(), pos - kHeaderTag.size());
  pos += 1;
  out.valid_bytes = pos;

  std::uint64_t expected_seq = 0;
  while (pos < bytes.size()) {
    const std::size_t record_start = pos;
    auto torn = [&](const std::string& why) -> Result<JournalContents> {
      out.torn_tail = true;
      out.torn_detail = why;
      out.valid_bytes = record_start;
      return std::move(out);
    };

    const std::size_t eol = bytes.find('\n', pos);
    if (eol == std::string::npos)
      return torn("record header truncated at EOF");
    const std::string head = bytes.substr(pos, eol - pos);
    std::uint64_t seq = 0, hash = 0;
    std::size_t klen = 0, plen = 0;
    char tag = 0;
    std::istringstream hs(head);
    hs >> tag >> seq >> klen >> plen >> std::hex >> hash;
    if (tag != 'R' || hs.fail()) {
      // Unparseable framing: torn only if nothing valid could follow.
      return torn("malformed record framing: '" + head + "'");
    }
    const std::size_t body_start = eol + 1;
    const std::size_t body_end = body_start + klen + plen;
    if (body_end + 1 > bytes.size())
      return torn("record body truncated at EOF");
    if (bytes[body_end] != '\n') {
      if (body_end + 1 >= bytes.size()) return torn("record terminator missing");
      return journal_error(ErrorKind::kCorruptArtifact, path,
                           "record " + std::to_string(seq) +
                               " missing terminator mid-file");
    }
    const std::string_view key(&bytes[body_start], klen);
    const std::string_view payload(&bytes[body_start + klen], plen);
    if (record_checksum(seq, key, payload) != hash) {
      if (body_end + 1 >= bytes.size())
        return torn("checksum mismatch on final record");
      return journal_error(ErrorKind::kCorruptArtifact, path,
                           "checksum mismatch on record " +
                               std::to_string(seq) + " (mid-file corruption)");
    }
    if (seq != expected_seq)
      return journal_error(
          ErrorKind::kCorruptArtifact, path,
          "non-monotone record sequence: expected " +
              std::to_string(expected_seq) + ", found " + std::to_string(seq));
    ++expected_seq;
    out.records.push_back(
        {seq, std::string(key), std::string(payload)});
    pos = body_end + 1;
    out.valid_bytes = pos;
  }
  return out;
}

Result<JournalWriter> JournalWriter::create(const std::string& path,
                                            std::string_view meta,
                                            FaultPlan* faults) {
  NAPEL_CHECK_MSG(meta.find('\n') == std::string_view::npos,
                  "journal meta must be a single line");
  std::string header(kHeaderTag);
  header.append(meta);
  header.push_back('\n');
  const Status st = atomic_write_file(path, header, faults);
  if (!st.ok()) return st.error();
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (!f)
    return journal_error(ErrorKind::kIoError, path,
                         std::string("cannot open journal for append: ") +
                             std::strerror(errno));
  return JournalWriter(path, f, 0, faults);
}

Result<JournalWriter> JournalWriter::open_append(
    const std::string& path, std::string_view meta,
    std::vector<JournalRecord>& resumed, FaultPlan* faults) {
  Result<JournalContents> contents = read_journal(path);
  if (!contents.ok()) return contents.error();
  JournalContents& c = contents.value();
  if (c.meta != meta)
    return journal_error(ErrorKind::kIncompatibleJournal, path,
                         "journal was written for different run options "
                         "(meta '" + c.meta + "' vs '" + std::string(meta) +
                             "')");
#ifdef NAPEL_HAVE_FSYNC
  if (c.torn_tail) {
    if (truncate(path.c_str(), static_cast<off_t>(c.valid_bytes)) != 0)
      return journal_error(ErrorKind::kIoError, path,
                           std::string("cannot truncate torn tail: ") +
                               std::strerror(errno));
  }
#endif
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (!f)
    return journal_error(ErrorKind::kIoError, path,
                         std::string("cannot open journal for append: ") +
                             std::strerror(errno));
  const std::uint64_t next_seq = c.records.size();
  resumed = std::move(c.records);
  return JournalWriter(path, f, next_seq, faults);
}

JournalWriter::JournalWriter(JournalWriter&& o) noexcept
    : path_(std::move(o.path_)),
      f_(o.f_),
      next_seq_(o.next_seq_),
      faults_(o.faults_),
      dead_(o.dead_) {
  o.f_ = nullptr;
}

JournalWriter& JournalWriter::operator=(JournalWriter&& o) noexcept {
  if (this != &o) {
    if (f_) std::fclose(f_);
    path_ = std::move(o.path_);
    f_ = o.f_;
    next_seq_ = o.next_seq_;
    faults_ = o.faults_;
    dead_ = o.dead_;
    o.f_ = nullptr;
  }
  return *this;
}

JournalWriter::~JournalWriter() {
  if (f_) std::fclose(f_);
}

Status JournalWriter::append(std::string_view key, std::string_view payload) {
  NAPEL_CHECK_MSG(f_ != nullptr, "append on a moved-from JournalWriter");
  if (dead_)
    return journal_error(ErrorKind::kIoError, path_,
                         "journal writer lost to a simulated crash");
  const std::uint64_t seq = next_seq_;
  std::string rec = format_record(seq, key, payload);

  if (faults_) {
    if (const FaultSpec* spec = faults_->fire("journal/append", seq)) {
      switch (spec->kind) {
        case FaultKind::kCrash: {
          // Commit a torn prefix, exactly as a mid-write kill would, and
          // poison the writer: a dead process cannot write anything more,
          // so concurrent producers must not be able to either.
          dead_ = true;
          const std::size_t half = rec.size() / 2;
          (void)std::fwrite(rec.data(), 1, half, f_);
          (void)std::fflush(f_);
#ifdef NAPEL_HAVE_FSYNC
          (void)fsync(fileno(f_));
#endif
          throw InjectedCrash("injected crash mid-append of record " +
                              std::to_string(seq));
        }
        case FaultKind::kCorruptWrite:
          rec[rec.size() - payload.size() / 2 - 2] ^= 0x40;
          break;
        case FaultKind::kThrow:
          throw InjectedFault("injected journal append failure");
        case FaultKind::kHang:
          break;
      }
    }
  }

  if (std::fwrite(rec.data(), 1, rec.size(), f_) != rec.size())
    return journal_error(ErrorKind::kIoError, path_,
                         std::string("short journal append: ") +
                             std::strerror(errno));
  if (std::fflush(f_) != 0)
    return journal_error(ErrorKind::kIoError, path_,
                         std::string("journal flush: ") + std::strerror(errno));
#ifdef NAPEL_HAVE_FSYNC
  if (fsync(fileno(f_)) != 0)
    return journal_error(ErrorKind::kIoError, path_,
                         std::string("journal fsync: ") + std::strerror(errno));
#endif
  ++next_seq_;
  return ok_status();
}

}  // namespace napel
