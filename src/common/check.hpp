// Lightweight precondition / invariant checking.
//
// NAPEL_CHECK is always on (library-level contract enforcement); it throws
// std::invalid_argument so callers can test failure paths. NAPEL_DCHECK is
// compiled out in NDEBUG builds and is meant for hot inner loops.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace napel {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

}  // namespace napel

#define NAPEL_CHECK(expr)                                            \
  do {                                                               \
    if (!(expr)) ::napel::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define NAPEL_CHECK_MSG(expr, msg)                                      \
  do {                                                                  \
    if (!(expr)) ::napel::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define NAPEL_DCHECK(expr) ((void)0)
#else
#define NAPEL_DCHECK(expr) NAPEL_CHECK(expr)
#endif
