// Descriptive statistics and regression-error metrics used across the library
// (profiler feature summaries, ML evaluation, benchmark reporting).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace napel {

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  // population variance
double stddev(std::span<const double> xs);
double median(std::span<const double> xs);
/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::span<const double> xs, double p);
/// Percentile over an already-ascending-sorted span: the value `percentile`
/// would return, with no copy, sort, or allocation. Hot inference paths
/// (ensemble prediction intervals) sort a caller-owned scratch buffer once
/// and read several percentiles from it.
double percentile_sorted(std::span<const double> sorted_xs, double p);
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);
/// Geometric mean; requires all xs > 0.
double geomean(std::span<const double> xs);

/// Mean relative error (Equation 1 of the paper): (1/N) Σ |y'_i − y_i| / y_i.
/// Requires y_i != 0 for all i.
double mean_relative_error(std::span<const double> predicted,
                           std::span<const double> actual);

/// Coefficient of determination R².
double r_squared(std::span<const double> predicted,
                 std::span<const double> actual);

/// Root-mean-square error.
double rmse(std::span<const double> predicted, std::span<const double> actual);

/// Pearson correlation coefficient.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Numerically stable streaming mean/variance accumulator (Welford).
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace napel
