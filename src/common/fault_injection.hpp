// Deterministic fault-injection harness.
//
// A FaultPlan is a list of (site, occurrence, kind) triples armed by tests
// or the CLI's --inject-* flags. Instrumented code asks the plan whether the
// k-th occurrence of a named site should misbehave, and — when it should —
// simulates the failure itself: throw an exception, spin until the task
// watchdog expires, corrupt the bytes about to be written, or "crash"
// (commit a torn prefix of the write, then unwind the whole process the way
// a SIGKILL would). Every path the fault-tolerance layer claims to survive
// is proven by a test that injects exactly that fault.
//
// Instrumented sites:
//   collect/task    — the ci-th DoE task of a collection run (per attempt)
//   journal/append  — the seq-th record append of a run journal
//   io/atomic_write — the n-th atomic_write_file call on this plan
//   sim/schedule    — the n-th drained scheduler event in NmcSimulator
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace napel {

enum class FaultKind : std::uint8_t {
  kThrow,         ///< throw InjectedFault (a transient task failure)
  kHang,          ///< spin until the watchdog deadline, then time out
  kCrash,         ///< tear the in-flight write, then throw InjectedCrash
  kCorruptWrite,  ///< flip a byte in the bytes being written
};

/// One armed fault: fires at the `at`-th occurrence (0-based) of `site`,
/// for the first `times` matching occurrences (-1 = every one). With
/// retries, successive attempts of the same task re-present the same
/// occurrence number, so `times` bounds how many attempts fail.
struct FaultSpec {
  std::string site;
  std::uint64_t at = 0;
  FaultKind kind = FaultKind::kThrow;
  int times = 1;
};

/// Thrown by kThrow sites: a transient, retryable task failure.
class InjectedFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown by kCrash sites *after* they tore their write: simulates the
/// process dying mid-I/O. Nothing catches it below main()/the test harness.
class InjectedCrash : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class FaultPlan {
 public:
  FaultPlan() = default;
  FaultPlan(std::initializer_list<FaultSpec> specs) {
    for (const auto& s : specs) add(s);
  }
  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  void add(FaultSpec spec);

  /// Returns the spec firing for this occurrence of `site` (consuming one
  /// of its `times` charges), or nullptr. Thread-safe.
  const FaultSpec* fire(std::string_view site, std::uint64_t occurrence);

  /// fire() with a plan-internal per-site call counter as the occurrence —
  /// for sites without a natural index (atomic_write_file calls).
  const FaultSpec* fire_next(std::string_view site);

  bool empty() const { return specs_.empty(); }

 private:
  struct Armed {
    FaultSpec spec;
    std::atomic<int> fired{0};
  };
  std::vector<std::unique_ptr<Armed>> specs_;
  std::mutex counter_mu_;
  std::vector<std::pair<std::string, std::uint64_t>> site_counters_;
};

/// Thrown when a per-task wall-clock deadline expires.
class WatchdogTimeout : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Per-task wall-clock deadline. Tasks cannot be preempted mid-kernel, so
/// the watchdog is checked at phase boundaries (after the kernel run, after
/// each simulation) — a hung phase is bounded by the simulator's cycle/event
/// budget instead.
class Watchdog {
 public:
  Watchdog() = default;  ///< disarmed: never expires
  explicit Watchdog(std::chrono::milliseconds deadline)
      : armed_(deadline.count() > 0),
        deadline_(std::chrono::steady_clock::now() + deadline) {}

  bool armed() const { return armed_; }
  bool expired() const {
    return armed_ && std::chrono::steady_clock::now() >= deadline_;
  }

  /// Throws WatchdogTimeout when the deadline has passed.
  void check(const std::string& context) const {
    if (expired())
      throw WatchdogTimeout("task wall-clock deadline expired: " + context);
  }

 private:
  bool armed_ = false;
  std::chrono::steady_clock::time_point deadline_{};
};

}  // namespace napel
