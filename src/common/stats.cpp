#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace napel {

double mean(std::span<const double> xs) {
  NAPEL_CHECK(!xs.empty());
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  NAPEL_CHECK(!xs.empty());
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double percentile(std::span<const double> xs, double p) {
  NAPEL_CHECK(!xs.empty());
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, p);
}

double percentile_sorted(std::span<const double> sorted_xs, double p) {
  NAPEL_CHECK(!sorted_xs.empty());
  NAPEL_CHECK(p >= 0.0 && p <= 100.0);
  if (sorted_xs.size() == 1) return sorted_xs.front();
  const double rank = p / 100.0 * static_cast<double>(sorted_xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_xs[lo] + frac * (sorted_xs[hi] - sorted_xs[lo]);
}

double min_of(std::span<const double> xs) {
  NAPEL_CHECK(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  NAPEL_CHECK(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double geomean(std::span<const double> xs) {
  NAPEL_CHECK(!xs.empty());
  double log_sum = 0.0;
  for (double x : xs) {
    NAPEL_CHECK_MSG(x > 0.0, "geomean requires positive values");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double mean_relative_error(std::span<const double> predicted,
                           std::span<const double> actual) {
  NAPEL_CHECK(predicted.size() == actual.size());
  NAPEL_CHECK(!actual.empty());
  double s = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    NAPEL_CHECK_MSG(actual[i] != 0.0, "MRE undefined for zero actual value");
    s += std::abs(predicted[i] - actual[i]) / std::abs(actual[i]);
  }
  return s / static_cast<double>(actual.size());
}

double r_squared(std::span<const double> predicted,
                 std::span<const double> actual) {
  NAPEL_CHECK(predicted.size() == actual.size());
  NAPEL_CHECK(!actual.empty());
  const double m = mean(actual);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    ss_res += (actual[i] - predicted[i]) * (actual[i] - predicted[i]);
    ss_tot += (actual[i] - m) * (actual[i] - m);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double rmse(std::span<const double> predicted, std::span<const double> actual) {
  NAPEL_CHECK(predicted.size() == actual.size());
  NAPEL_CHECK(!actual.empty());
  double s = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double d = predicted[i] - actual[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(actual.size()));
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  NAPEL_CHECK(xs.size() == ys.size());
  NAPEL_CHECK(xs.size() >= 2);
  const double mx = mean(xs), my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

}  // namespace napel
