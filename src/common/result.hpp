// Typed error model for the fault-tolerant pipeline runtime.
//
// Library contracts (precondition violations, malformed arguments) keep
// throwing through NAPEL_CHECK — those are caller bugs. Everything that can
// fail at *runtime* on the long-lived DoE collection path — a crashed task,
// an exhausted simulation budget, a torn artifact, an expired watchdog —
// is reported as a PipelineError carried in a Result<T>, so one failing
// DoE point degrades the run instead of aborting it.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

#include "common/check.hpp"

namespace napel {

enum class ErrorKind : std::uint8_t {
  kIoError,              ///< open/write/rename/fsync failure
  kCorruptArtifact,      ///< checksum mismatch, bad header, torn record
  kIncompatibleJournal,  ///< journal metadata does not match this run
  kWatchdogTimeout,      ///< per-task wall-clock deadline expired
  kSimBudgetExhausted,   ///< simulator hit its cycle/event budget
  kTaskFailed,           ///< a task threw (kernel / profiler / simulator)
  kQuorumFailed,         ///< too many DoE points lost, or a critical one
  kInjectedFault,        ///< fault-injection harness (tests only)
  kInterrupted,          ///< graceful shutdown drained the run early

  // Serving-runtime taxonomy (src/serve): online failures of the
  // prediction server, rendered as structured JSON error responses.
  kOverload,              ///< admission queue full — request shed
  kDeadlineExceeded,      ///< deadline expired and degradation disallowed
  kBadRequest,            ///< malformed request line or schema mismatch
  kModelReloadRejected,   ///< hot-reload candidate failed validation
};

constexpr std::string_view error_kind_name(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kIoError: return "io-error";
    case ErrorKind::kCorruptArtifact: return "corrupt-artifact";
    case ErrorKind::kIncompatibleJournal: return "incompatible-journal";
    case ErrorKind::kWatchdogTimeout: return "watchdog-timeout";
    case ErrorKind::kSimBudgetExhausted: return "sim-budget-exhausted";
    case ErrorKind::kTaskFailed: return "task-failed";
    case ErrorKind::kQuorumFailed: return "quorum-failed";
    case ErrorKind::kInjectedFault: return "injected-fault";
    case ErrorKind::kInterrupted: return "interrupted";
    case ErrorKind::kOverload: return "overload";
    case ErrorKind::kDeadlineExceeded: return "deadline-exceeded";
    case ErrorKind::kBadRequest: return "bad-request";
    case ErrorKind::kModelReloadRejected: return "model-reload-rejected";
  }
  return "unknown";
}

/// Whether a bounded retry of the same task can plausibly succeed.
/// Deterministic outcomes (budget exhaustion, timeouts of a deterministic
/// simulation, corrupt inputs) are not retried; thrown exceptions and I/O
/// errors may be transient.
constexpr bool error_kind_retryable(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kIoError:
    case ErrorKind::kTaskFailed:
    case ErrorKind::kInjectedFault:
      return true;
    // A shed request is retryable by the *client* after its retry_after
    // hint — and re-running the same request can succeed once load drops.
    case ErrorKind::kOverload:
      return true;
    case ErrorKind::kCorruptArtifact:
    case ErrorKind::kIncompatibleJournal:
    case ErrorKind::kWatchdogTimeout:
    case ErrorKind::kSimBudgetExhausted:
    case ErrorKind::kQuorumFailed:
    case ErrorKind::kInterrupted:
    case ErrorKind::kDeadlineExceeded:
    case ErrorKind::kBadRequest:
    case ErrorKind::kModelReloadRejected:
      return false;
  }
  return false;
}

/// One runtime failure: what failed (kind), where (context — a task key,
/// file path, or journal position) and how (message). `attempts` counts
/// executions of the failing task including retries.
struct PipelineError {
  ErrorKind kind = ErrorKind::kTaskFailed;
  std::string context;
  std::string message;
  int attempts = 0;

  bool retryable() const { return error_kind_retryable(kind); }

  std::string to_string() const {
    std::string s = "[";
    s += error_kind_name(kind);
    s += "] ";
    if (!context.empty()) {
      s += context;
      s += ": ";
    }
    s += message;
    if (attempts > 1) {
      s += " (after ";
      s += std::to_string(attempts);
      s += " attempts)";
    }
    return s;
  }
};

/// Thrown by the legacy throwing wrappers around Result-returning entry
/// points, carrying the structured error.
class PipelineException : public std::runtime_error {
 public:
  explicit PipelineException(PipelineError err)
      : std::runtime_error(err.to_string()), error_(std::move(err)) {}

  const PipelineError& error() const { return error_; }

 private:
  PipelineError error_;
};

/// Minimal result type: either a value or a PipelineError. Accessing the
/// wrong alternative is a contract violation (NAPEL_CHECK).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT
  Result(PipelineError err) : error_(std::move(err)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }

  const T& value() const& {
    NAPEL_CHECK_MSG(ok(), "Result::value() on error: " + error_.to_string());
    return *value_;
  }
  T& value() & {
    NAPEL_CHECK_MSG(ok(), "Result::value() on error: " + error_.to_string());
    return *value_;
  }
  T&& take() && {
    NAPEL_CHECK_MSG(ok(), "Result::take() on error: " + error_.to_string());
    return std::move(*value_);
  }

  const PipelineError& error() const {
    NAPEL_CHECK_MSG(!ok(), "Result::error() on success");
    return error_;
  }

  /// Returns the value, or throws PipelineException — the bridge from
  /// Result-based internals to exception-based public APIs.
  T&& value_or_throw() && {
    if (!ok()) throw PipelineException(std::move(error_));
    return std::move(*value_);
  }

 private:
  PipelineError error_;
  std::optional<T> value_;
};

/// Result<void>: success carries nothing.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(PipelineError err) : has_error_(true), error_(std::move(err)) {}  // NOLINT

  bool ok() const { return !has_error_; }

  const PipelineError& error() const {
    NAPEL_CHECK_MSG(has_error_, "Result::error() on success");
    return error_;
  }

  void value_or_throw() const {
    if (has_error_) throw PipelineException(error_);
  }

 private:
  bool has_error_ = false;
  PipelineError error_;
};

using Status = Result<void>;

inline Status ok_status() { return Status{}; }

}  // namespace napel
