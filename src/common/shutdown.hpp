// Cooperative graceful-shutdown flag.
//
// Long-running commands (`napel serve`, `napel collect`) must not die
// mid-write when the operator sends SIGTERM/SIGINT: they drain in-flight
// work, flush their journal, and exit with a distinct status code. The
// mechanism is one process-wide atomic flag: install_shutdown_handlers()
// routes both signals to it (without SA_RESTART, so a blocking stdin read
// returns and the serve loop observes the flag), and drain points poll
// shutdown_requested() between units of work. Nothing here is
// signal-unsafe: the handler only stores into the atomic.
#pragma once

#include <atomic>

namespace napel {

/// The process-wide shutdown flag. Exposed directly so cancellation-aware
/// APIs (CollectOptions::cancel) can take a pointer to it — or to any other
/// atomic a test owns.
std::atomic<bool>& shutdown_flag();

inline bool shutdown_requested() {
  return shutdown_flag().load(std::memory_order_relaxed);
}

/// Arms SIGTERM and SIGINT to set the flag. Idempotent. Installed without
/// SA_RESTART so blocking reads are interrupted and drain loops wake up.
void install_shutdown_handlers();

/// Clears the flag (tests re-arming between cases).
void reset_shutdown_flag();

/// Process exit code for a signal-initiated graceful drain, distinct from
/// success (0), usage errors (1), runtime failures (2) and lint findings
/// (3) so supervisors can tell "asked to stop, stopped cleanly" apart.
inline constexpr int kShutdownExitCode = 4;

}  // namespace napel
