// Crash-safe file writes.
//
// atomic_write_file() is the single way any artifact (model file, CSV
// table, journal header) reaches disk: the contents are written to a
// sibling temporary file, flushed and fsync'd, and renamed over the target.
// A crash at any instant leaves either the old file or the new file —
// never a truncated or torn artifact. Write/flush/rename failures are
// reported (Result), not silently swallowed.
#pragma once

#include <string>
#include <string_view>

#include "common/result.hpp"

namespace napel {

class FaultPlan;

/// Atomically replaces `path` with `contents`. `faults` arms the
/// "io/atomic_write" injection site (tests only).
Status atomic_write_file(const std::string& path, std::string_view contents,
                         FaultPlan* faults = nullptr);

}  // namespace napel
