#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace napel {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  NAPEL_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  NAPEL_CHECK_MSG(cells.size() == headers_.size(),
                  "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::fmt_int(long long v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_sep = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c)
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c] << " |";
    os << '\n';
  };

  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace napel
