#include "common/csv.hpp"

#include <sstream>

#include "common/atomic_file.hpp"
#include "common/check.hpp"

namespace napel {

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  NAPEL_CHECK(!headers_.empty());
}

void CsvWriter::add_row(std::vector<std::string> cells) {
  NAPEL_CHECK_MSG(cells.size() == headers_.size(),
                  "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

std::string CsvWriter::to_string() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << escape(row[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void CsvWriter::write_file(const std::string& path) const {
  // Crash-safe: a kill mid-write can never leave a truncated CSV.
  atomic_write_file(path, to_string()).value_or_throw();
}

}  // namespace napel
