// Minimal CSV writer for exporting benchmark series (figure data) to files
// a plotting script can consume.
#pragma once

#include <string>
#include <vector>

namespace napel {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// RFC-4180-style escaping (quotes fields containing comma/quote/newline).
  static std::string escape(const std::string& field);

  std::string to_string() const;
  void write_file(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace napel
