#include "common/atomic_file.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/fault_injection.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define NAPEL_HAVE_FSYNC 1
#endif

namespace napel {

namespace {

PipelineError io_error(const std::string& path, const std::string& what) {
  return PipelineError{.kind = ErrorKind::kIoError,
                       .context = path,
                       .message = what + ": " + std::strerror(errno)};
}

/// Flushes libc and kernel buffers for an open stream. Returns false on
/// failure (errno set).
bool flush_and_sync(std::FILE* f) {
  if (std::fflush(f) != 0) return false;
#ifdef NAPEL_HAVE_FSYNC
  if (fsync(fileno(f)) != 0) return false;
#endif
  return true;
}

/// Best-effort fsync of the directory containing `path`, so the rename
/// itself is durable. Failure is ignored: the data file is already synced
/// and some filesystems reject directory fsync.
void sync_parent_dir(const std::string& path) {
#ifdef NAPEL_HAVE_FSYNC
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    (void)fsync(fd);
    (void)close(fd);
  }
#else
  (void)path;
#endif
}

}  // namespace

Status atomic_write_file(const std::string& path, std::string_view contents,
                         FaultPlan* faults) {
  std::string data(contents);
  const FaultSpec* injected =
      faults ? faults->fire_next("io/atomic_write") : nullptr;
  if (injected) {
    switch (injected->kind) {
      case FaultKind::kThrow:
        throw InjectedFault("injected write failure: " + path);
      case FaultKind::kCorruptWrite:
        if (!data.empty()) data[data.size() / 2] ^= 0x40;
        break;
      case FaultKind::kCrash:
      case FaultKind::kHang:
        break;  // kCrash fires after the temp file is written
    }
  }

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return io_error(path, "cannot open temp file " + tmp);
  const std::size_t written = data.empty() ? 0 : std::fwrite(data.data(), 1, data.size(), f);
  if (written != data.size()) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return io_error(path, "short write to " + tmp);
  }
  if (!flush_and_sync(f)) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return io_error(path, "flush/fsync of " + tmp);
  }
  if (std::fclose(f) != 0) {
    std::remove(tmp.c_str());
    return io_error(path, "close of " + tmp);
  }

  // A crash here must leave the previous `path` intact: the temp file is
  // fully written but never renamed into place.
  if (injected && injected->kind == FaultKind::kCrash)
    throw InjectedCrash("injected crash before rename: " + path);

  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return io_error(path, "rename " + tmp + " -> " + path);
  }
  sync_parent_dir(path);
  return ok_status();
}

}  // namespace napel
