// ASCII table rendering for benchmark output: every bench binary prints the
// same rows/columns as the paper's corresponding table or figure series.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace napel {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_int(long long v);

  std::size_t row_count() const { return rows_.size(); }

  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace napel
