#include "common/cpuid.hpp"

#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <string>

namespace napel {

namespace {

bool detect_avx2() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  // __builtin_cpu_supports covers both the CPUID feature bit and the
  // OS XSAVE state check, so a positive answer means AVX2 code can run.
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

std::optional<SimdLevel>& override_slot() {
  static std::optional<SimdLevel> slot;
  return slot;
}

std::mutex& override_mu() {
  static std::mutex mu;
  return mu;
}

}  // namespace

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kPortable: return "portable";
    case SimdLevel::kAvx2: return "avx2";
  }
  return "invalid";
}

SimdLevel parse_simd_level(std::string_view name) {
  if (name == "scalar") return SimdLevel::kScalar;
  if (name == "portable") return SimdLevel::kPortable;
  if (name == "avx2") return SimdLevel::kAvx2;
  throw std::invalid_argument("unknown SIMD level \"" + std::string(name) +
                              "\" (expected scalar, portable, or avx2)");
}

bool cpu_supports(SimdLevel level) {
  if (level != SimdLevel::kAvx2) return true;
  static const bool has_avx2 = detect_avx2();
  return has_avx2;
}

SimdLevel max_cpu_simd_level() {
  return cpu_supports(SimdLevel::kAvx2) ? SimdLevel::kAvx2
                                        : SimdLevel::kPortable;
}

SimdLevel clamp_to_cpu(SimdLevel requested) {
  return cpu_supports(requested) ? requested : max_cpu_simd_level();
}

SimdLevel resolved_simd_level() {
  {
    const std::lock_guard<std::mutex> lock(override_mu());
    if (override_slot()) return clamp_to_cpu(*override_slot());
  }
  // The environment is parsed once: the resolution must be stable for the
  // whole process, and a bad value must surface on the first prediction,
  // not rotate silently between kernels.
  static const SimdLevel from_env = [] {
    const char* env = std::getenv("NAPEL_SIMD");
    if (env != nullptr && *env != '\0')
      return clamp_to_cpu(parse_simd_level(env));
    return max_cpu_simd_level();
  }();
  return from_env;
}

void set_simd_level_override(std::optional<SimdLevel> level) {
  const std::lock_guard<std::mutex> lock(override_mu());
  override_slot() = level;
}

}  // namespace napel
