// Open-addressing hash map/set for uint64 keys — the profiler's hot paths
// (last-access tracking, store-forwarding, footprint sets) are dominated by
// hash-table traffic, and linear probing over a flat array is several times
// faster than std::unordered_map there.
//
// Key restriction: the all-ones key (2^64−1) is reserved as the empty
// sentinel. Callers in this library store line ids, pseudo-PCs, and byte
// addresses, all far below the sentinel.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace napel {

template <typename V>
class FlatMap {
 public:
  static constexpr std::uint64_t kEmpty = ~0ULL;

  explicit FlatMap(std::size_t initial_capacity_log2 = 10)
      : mask_((std::size_t{1} << initial_capacity_log2) - 1),
        keys_(mask_ + 1, kEmpty),
        values_(mask_ + 1) {}

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Returns a pointer to the value for `key`, or nullptr when absent.
  V* find(std::uint64_t key) {
    NAPEL_DCHECK(key != kEmpty);
    std::size_t i = index_of(key);
    while (keys_[i] != kEmpty) {
      if (keys_[i] == key) return &values_[i];
      i = (i + 1) & mask_;
    }
    return nullptr;
  }
  const V* find(std::uint64_t key) const {
    return const_cast<FlatMap*>(this)->find(key);
  }

  /// Inserts or returns the existing slot; `inserted` reports which.
  V& insert_or_get(std::uint64_t key, bool& inserted) {
    NAPEL_DCHECK(key != kEmpty);
    if ((size_ + 1) * 10 >= (mask_ + 1) * 7) grow();
    std::size_t i = index_of(key);
    while (keys_[i] != kEmpty) {
      if (keys_[i] == key) {
        inserted = false;
        return values_[i];
      }
      i = (i + 1) & mask_;
    }
    keys_[i] = key;
    values_[i] = V{};
    ++size_;
    inserted = true;
    return values_[i];
  }

  V& operator[](std::uint64_t key) {
    bool inserted;
    return insert_or_get(key, inserted);
  }

  bool contains(std::uint64_t key) const { return find(key) != nullptr; }

  void clear() {
    std::fill(keys_.begin(), keys_.end(), kEmpty);
    size_ = 0;
  }

  /// Visits every (key, value) pair.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i <= mask_; ++i)
      if (keys_[i] != kEmpty) fn(keys_[i], values_[i]);
  }

 private:
  std::size_t index_of(std::uint64_t key) const {
    // Fibonacci hashing spreads sequential keys (line ids) well.
    return static_cast<std::size_t>((key * 0x9e3779b97f4a7c15ULL) >> 32) &
           mask_;
  }

  void grow() {
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<V> old_values = std::move(values_);
    mask_ = mask_ * 2 + 1;
    keys_.assign(mask_ + 1, kEmpty);
    values_.assign(mask_ + 1, V{});
    size_ = 0;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == kEmpty) continue;
      bool inserted;
      insert_or_get(old_keys[i], inserted) = std::move(old_values[i]);
    }
  }

  std::size_t mask_;
  std::vector<std::uint64_t> keys_;
  std::vector<V> values_;
  std::size_t size_ = 0;
};

/// Set of uint64 keys over the same open-addressing core.
class FlatSet {
 public:
  explicit FlatSet(std::size_t initial_capacity_log2 = 10)
      : map_(initial_capacity_log2) {}

  /// Returns true when the key was newly inserted.
  bool insert(std::uint64_t key) {
    bool inserted;
    map_.insert_or_get(key, inserted);
    return inserted;
  }
  bool contains(std::uint64_t key) const { return map_.contains(key); }
  std::size_t size() const { return map_.size(); }
  void clear() { map_.clear(); }

 private:
  struct Unit {};
  FlatMap<Unit> map_;
};

}  // namespace napel
