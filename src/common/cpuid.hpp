// Runtime SIMD capability detection and dispatch-level resolution.
//
// The batched forest-inference kernels (src/ml/forest_kernels.hpp) exist at
// three dispatch levels that all produce bit-identical doubles:
//
//   scalar    — the reference lockstep kernel, one row-slot at a time;
//   portable  — fixed 8-lane kernel written in plain C++ (no intrinsics),
//               compilable on any target;
//   avx2      — explicit 8-lane AVX2 intrinsics (gathered node columns,
//               masked child selection), built into its own translation
//               unit with -mavx2 and selected only when the CPU has it.
//
// This header is the single place that decides which level runs:
//
//   resolved_simd_level() = programmatic override (set_simd_level_override,
//                           the CLI --simd path)
//                         > NAPEL_SIMD environment variable
//                         > highest level the CPU supports.
//
// A request for a level the hardware cannot execute is clamped down (never
// up), so NAPEL_SIMD=avx2 is always safe to export — on a non-AVX2 machine
// it degrades to portable. An unrecognized level name throws: a typo in a
// determinism-critical knob must fail loudly, not silently pick a default.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace napel {

enum class SimdLevel : std::uint8_t {
  kScalar = 0,
  kPortable = 1,
  kAvx2 = 2,
};

/// Stable lower-case name ("scalar" / "portable" / "avx2").
const char* simd_level_name(SimdLevel level);

/// Parses a level name (the NAPEL_SIMD / --simd vocabulary). Throws
/// std::invalid_argument on anything else, naming the valid spellings.
SimdLevel parse_simd_level(std::string_view name);

/// True when the executing CPU can run `level` (kScalar and kPortable are
/// always executable; kAvx2 requires CPU + OS support, detected once).
bool cpu_supports(SimdLevel level);

/// Highest level cpu_supports() accepts on this machine.
SimdLevel max_cpu_simd_level();

/// `requested` if the CPU supports it, otherwise the highest level it does
/// — requests clamp down, never up.
SimdLevel clamp_to_cpu(SimdLevel requested);

/// Process-wide resolution: override > NAPEL_SIMD > CPU maximum, clamped
/// to the CPU. The environment variable is read once and cached; an
/// invalid NAPEL_SIMD value throws on first resolution.
SimdLevel resolved_simd_level();

/// Installs (or clears, with nullopt) the programmatic override — the CLI
/// --simd flag. Takes precedence over NAPEL_SIMD.
void set_simd_level_override(std::optional<SimdLevel> level);

}  // namespace napel
