#include "common/shutdown.hpp"

#include <csignal>

namespace napel {

std::atomic<bool>& shutdown_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

namespace {

void on_shutdown_signal(int /*signum*/) {
  shutdown_flag().store(true, std::memory_order_relaxed);
}

}  // namespace

void install_shutdown_handlers() {
  struct sigaction sa = {};
  sa.sa_handler = on_shutdown_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: interrupt blocking reads so loops drain
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
}

void reset_shutdown_flag() {
  shutdown_flag().store(false, std::memory_order_relaxed);
}

}  // namespace napel
