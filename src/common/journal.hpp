// Crash-safe run journal: an append-only file of checksummed records.
//
// Long-running phases (DoE collection, LOAO folds, grid-search tuning)
// checkpoint each completed unit of work as one record, so an interrupted
// run resumes by skipping keys already present instead of recomputing them.
//
// Format (text framing, binary-exact payloads):
//
//   napel-journal-v1 <meta>\n          -- meta fingerprints the run options
//   R <seq> <keylen> <paylen> <fnv64>\n<key><payload>\n   -- repeated
//
// `seq` is assigned by the writer and strictly monotone (0, 1, 2, ...);
// producers buffer out-of-order completions and flush in index order, so a
// journal always holds a contiguous, deterministic prefix of the run. The
// checksum (FNV-1a 64 over seq, key and payload) makes torn or corrupted
// records detectable: a torn *tail* is the expected signature of a crash
// and is dropped (and truncated away on append-reopen); corruption
// anywhere else is an error.
//
// Durability: each append is a single buffered write followed by
// fflush+fsync, so a completed DoE point survives any later crash. The
// header is written through atomic_write_file.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"

namespace napel {

class FaultPlan;

/// FNV-1a 64-bit, the journal's record checksum.
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

inline std::uint64_t fnv1a64(std::string_view bytes,
                             std::uint64_t h = kFnvOffset) {
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

struct JournalRecord {
  std::uint64_t seq = 0;
  std::string key;
  std::string payload;
};

struct JournalContents {
  std::string meta;
  std::vector<JournalRecord> records;
  /// A trailing record that failed to parse or checksum — the expected
  /// debris of a crash mid-append. Dropped from `records`.
  bool torn_tail = false;
  std::string torn_detail;
  /// Byte offset of the end of the last valid record (start of the torn
  /// tail, when present) — the truncation point for append-reopen.
  std::uint64_t valid_bytes = 0;
};

/// Reads and validates a journal. Mid-file corruption (bad framing, failed
/// checksum, or non-monotone seq with valid records after it) is an error;
/// a torn tail is reported via JournalContents::torn_tail.
Result<JournalContents> read_journal(const std::string& path);

/// Append-side handle. Move-only; owns the FILE*.
class JournalWriter {
 public:
  /// Creates a fresh journal (truncating any existing file) whose header
  /// carries `meta` (single line, no '\n').
  static Result<JournalWriter> create(const std::string& path,
                                      std::string_view meta,
                                      FaultPlan* faults = nullptr);

  /// Re-opens an existing journal for append. Validates that its meta
  /// equals `meta` (ErrorKind::kIncompatibleJournal otherwise) and
  /// truncates a torn tail so subsequent appends form a valid file.
  /// `resumed` receives the surviving records.
  static Result<JournalWriter> open_append(const std::string& path,
                                           std::string_view meta,
                                           std::vector<JournalRecord>& resumed,
                                           FaultPlan* faults = nullptr);

  JournalWriter(JournalWriter&& o) noexcept;
  JournalWriter& operator=(JournalWriter&& o) noexcept;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;
  ~JournalWriter();

  /// Appends one record (assigning the next seq) and fsyncs. Not
  /// thread-safe — callers serialize (and order) appends themselves.
  Status append(std::string_view key, std::string_view payload);

  std::uint64_t next_seq() const { return next_seq_; }
  const std::string& path() const { return path_; }

 private:
  JournalWriter(std::string path, std::FILE* f, std::uint64_t next_seq,
                FaultPlan* faults)
      : path_(std::move(path)), f_(f), next_seq_(next_seq), faults_(faults) {}

  std::string path_;
  std::FILE* f_ = nullptr;
  std::uint64_t next_seq_ = 0;
  FaultPlan* faults_ = nullptr;
  /// Set when a kCrash fault fired: the "process" is dead, so every later
  /// append fails without touching the file (a SIGKILLed producer cannot
  /// keep writing just because another thread retries).
  bool dead_ = false;
};

/// Bit-exact double <-> text codec used by journal payloads: a double is
/// its IEEE-754 bit pattern in fixed-width hex, so resumed values compare
/// equal to recomputed ones down to the last bit.
std::string double_bits_to_hex(double v);
Result<double> double_bits_from_hex(std::string_view hex);

}  // namespace napel
