// Log2-bucketed histogram, the backbone of PISA-style reuse-distance and
// ILP-window features: bucket b counts values v with 2^b <= v+1 < 2^(b+1)
// (so value 0 lands in bucket 0, values 1..2 in bucket 1, ...).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace napel {

class Log2Histogram {
 public:
  /// max_buckets caps the number of buckets; larger values saturate into the
  /// final bucket. 64 covers the full uint64 range.
  explicit Log2Histogram(std::size_t max_buckets = 64);

  /// Defined inline: recorded once or more per traced instruction by the
  /// profiler's reuse-distance and stride features.
  void add(std::uint64_t value, std::uint64_t count = 1) {
    buckets_[bucket_index(value)] += count;
    total_ += count;
  }

  std::size_t bucket_count() const { return buckets_.size(); }
  std::uint64_t bucket(std::size_t b) const;
  std::uint64_t total() const { return total_; }

  /// Index of the bucket a value falls into.
  std::size_t bucket_index(std::uint64_t value) const {
    // value+1 in [2^b, 2^(b+1)) → b = floor(log2(value+1)). value==UINT64_MAX
    // would overflow value+1; saturate it.
    const std::uint64_t v =
        value == std::numeric_limits<std::uint64_t>::max() ? value : value + 1;
    const std::size_t b = static_cast<std::size_t>(std::bit_width(v)) - 1;
    return b >= buckets_.size() ? buckets_.size() - 1 : b;
  }

  /// Lower bound of values mapped to bucket b (inclusive): 2^b − 1.
  static std::uint64_t bucket_lower_bound(std::size_t b);

  /// Fraction of mass in buckets [0, b] — i.e. P(value < bound of b+1).
  double cumulative_fraction(std::size_t b) const;

  /// Fraction of total mass whose value is strictly less than `threshold`.
  /// Approximated bucket-wise: buckets entirely below count fully, the bucket
  /// straddling the threshold contributes proportionally (uniform-in-bucket).
  double fraction_below(std::uint64_t threshold) const;

  /// Normalized per-bucket fractions (empty histogram → all zeros).
  std::vector<double> fractions() const;

  /// Mean of bucket lower-bound representatives, weighted by counts.
  double approximate_mean() const;

  /// Approximate p-th percentile (p in [0,100]): the lower bound of the
  /// first bucket at which the cumulative fraction reaches p. Returns 0 for
  /// an empty histogram.
  double approximate_percentile(double p) const;

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

}  // namespace napel
