#include "common/histogram.hpp"

#include <bit>
#include <limits>

#include "common/check.hpp"

namespace napel {

Log2Histogram::Log2Histogram(std::size_t max_buckets)
    : buckets_(max_buckets, 0) {
  NAPEL_CHECK(max_buckets >= 1 && max_buckets <= 65);
}

std::uint64_t Log2Histogram::bucket(std::size_t b) const {
  NAPEL_CHECK(b < buckets_.size());
  return buckets_[b];
}

std::uint64_t Log2Histogram::bucket_lower_bound(std::size_t b) {
  NAPEL_CHECK(b < 64);
  return (1ULL << b) - 1;
}

double Log2Histogram::cumulative_fraction(std::size_t b) const {
  NAPEL_CHECK(b < buckets_.size());
  if (total_ == 0) return 0.0;
  std::uint64_t s = 0;
  for (std::size_t i = 0; i <= b; ++i) s += buckets_[i];
  return static_cast<double>(s) / static_cast<double>(total_);
}

double Log2Histogram::fraction_below(std::uint64_t threshold) const {
  if (total_ == 0) return 0.0;
  double s = 0.0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b] == 0) continue;
    const std::uint64_t lo = bucket_lower_bound(b);
    const std::uint64_t hi =
        b + 1 < 64 ? bucket_lower_bound(b + 1)
                   : std::numeric_limits<std::uint64_t>::max();
    if (hi <= threshold) {
      s += static_cast<double>(buckets_[b]);
    } else if (lo < threshold) {
      const double span = static_cast<double>(hi - lo);
      const double covered = static_cast<double>(threshold - lo);
      s += static_cast<double>(buckets_[b]) * covered / span;
    }
  }
  return s / static_cast<double>(total_);
}

std::vector<double> Log2Histogram::fractions() const {
  std::vector<double> out(buckets_.size(), 0.0);
  if (total_ == 0) return out;
  for (std::size_t b = 0; b < buckets_.size(); ++b)
    out[b] = static_cast<double>(buckets_[b]) / static_cast<double>(total_);
  return out;
}

double Log2Histogram::approximate_percentile(double p) const {
  NAPEL_CHECK(p >= 0.0 && p <= 100.0);
  if (total_ == 0) return 0.0;
  const double target = p / 100.0 * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    cum += static_cast<double>(buckets_[b]);
    if (cum >= target)
      return static_cast<double>(bucket_lower_bound(std::min<std::size_t>(b, 63)));
  }
  return static_cast<double>(bucket_lower_bound(
      std::min<std::size_t>(buckets_.size() - 1, 63)));
}

double Log2Histogram::approximate_mean() const {
  if (total_ == 0) return 0.0;
  double s = 0.0;
  for (std::size_t b = 0; b < buckets_.size() && b < 64; ++b)
    s += static_cast<double>(buckets_[b]) *
         static_cast<double>(bucket_lower_bound(b));
  return s / static_cast<double>(total_);
}

}  // namespace napel
