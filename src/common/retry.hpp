// Reusable bounded-retry policy with deterministic backoff.
//
// Extracted from the pipeline runtime so every retry loop in the tree —
// the DoE collection tasks and the serving runtime's model-reload path —
// shares one policy: a fixed attempt budget, capped exponential backoff,
// and seed-derived jitter that is a pure function of (seed, key, attempt).
// No ambient entropy, no wall-clock reads: two runs with the same seed
// sleep the same milliseconds and make the same number of attempts.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>
#include <type_traits>

#include "common/result.hpp"
#include "common/rng.hpp"

namespace napel {

struct RetryPolicy {
  /// Total executions including the first (1 = no retries).
  std::size_t max_attempts = 3;
  /// Base backoff before the first retry, doubled per further attempt.
  /// 0 disables sleeping entirely (tests, latency-critical callers).
  std::uint32_t base_backoff_ms = 0;
  /// Ceiling on the doubled base, so long retry chains cannot sleep
  /// unboundedly. The jitter is added on top of the capped base.
  std::uint32_t max_backoff_ms = 30'000;
  /// Root of the jitter stream; combined with the caller's key so distinct
  /// tasks of one run draw independent delays.
  std::uint64_t seed = 0;
};

/// Backoff before retry `attempt` (1-based: attempt 1 precedes the second
/// execution) of the task identified by `key`. Deterministic: capped
/// exponential base plus SplitMix64 jitter in [0, base], seeded from
/// (seed, key, attempt) exactly like the pipeline runtime always has.
inline std::chrono::milliseconds retry_backoff(const RetryPolicy& policy,
                                               std::uint64_t key,
                                               std::size_t attempt) {
  NAPEL_CHECK(attempt >= 1);
  if (policy.base_backoff_ms == 0) return std::chrono::milliseconds{0};
  SplitMix64 sm(policy.seed ^ (key * 0x9e3779b97f4a7c15ULL) ^ attempt);
  std::uint64_t base = std::uint64_t{policy.base_backoff_ms}
                       << (attempt - 1);
  base = std::min<std::uint64_t>(base, policy.max_backoff_ms);
  return std::chrono::milliseconds(base + sm.next() % (base + 1));
}

/// Runs `fn` (returning Result<T>) under the bounded-retry policy: only
/// retryable errors (see error_kind_retryable) are re-attempted, each retry
/// sleeps its deterministic backoff first, and the returned error carries
/// the attempt count. `n_retries`, when given, accumulates attempts beyond
/// the first (the pipeline's accounting counter).
template <typename Fn>
std::invoke_result_t<Fn> with_retries(const RetryPolicy& policy,
                                      std::uint64_t key, Fn&& fn,
                                      std::size_t* n_retries = nullptr) {
  NAPEL_CHECK(policy.max_attempts >= 1);
  PipelineError last;
  for (std::size_t attempt = 0; attempt < policy.max_attempts; ++attempt) {
    if (attempt > 0) {
      if (n_retries != nullptr) ++*n_retries;
      const auto delay = retry_backoff(policy, key, attempt);
      if (delay.count() > 0) std::this_thread::sleep_for(delay);
    }
    std::invoke_result_t<Fn> r = fn();
    if (r.ok()) return r;
    last = r.error();
    last.attempts = static_cast<int>(attempt + 1);
    if (!last.retryable()) break;
  }
  return last;
}

}  // namespace napel
