#include "common/fault_injection.hpp"

#include <algorithm>

namespace napel {

void FaultPlan::add(FaultSpec spec) {
  auto armed = std::make_unique<Armed>();
  armed->spec = std::move(spec);
  specs_.push_back(std::move(armed));
}

const FaultSpec* FaultPlan::fire(std::string_view site,
                                 std::uint64_t occurrence) {
  for (auto& a : specs_) {
    if (a->spec.site != site || a->spec.at != occurrence) continue;
    if (a->spec.times >= 0 &&
        a->fired.fetch_add(1, std::memory_order_relaxed) >= a->spec.times)
      continue;
    return &a->spec;
  }
  return nullptr;
}

const FaultSpec* FaultPlan::fire_next(std::string_view site) {
  std::uint64_t occurrence = 0;
  {
    std::lock_guard<std::mutex> lock(counter_mu_);
    auto it = std::find_if(site_counters_.begin(), site_counters_.end(),
                           [&](const auto& p) { return p.first == site; });
    if (it == site_counters_.end()) {
      site_counters_.emplace_back(std::string(site), 1);
    } else {
      occurrence = it->second++;
    }
  }
  return fire(site, occurrence);
}

}  // namespace napel
