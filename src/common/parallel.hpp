// Deterministic multi-threaded execution engine.
//
// A work-stealing thread pool shared by every parallel phase of the
// framework (DoE training-data collection, random-forest fitting,
// hyper-parameter grid search, LOAO cross-validation). The design goal is
// *determinism*: parallelism never changes results, only wall-clock time.
// The contract that makes this hold everywhere in the codebase:
//
//   * work items are independent — each owns its private RNG (pre-derived
//     before the parallel region so the root generator's stream is
//     identical to the sequential implementation) and its private
//     simulator/profiler/tree state;
//   * each item writes only to its own pre-allocated output slot, so the
//     assembled output is byte-identical to the sequential loop regardless
//     of execution interleaving;
//   * floating-point reductions over item results run sequentially, in
//     item order, after the parallel region.
//
// Threading controls: every parallel entry point takes an `n_threads`
// knob where 0 means "use the process-wide pool" (sized from the
// NAPEL_THREADS environment variable when set, hardware concurrency
// otherwise) and 1 means "run inline on the calling thread, touching no
// pool at all".
//
// Nested parallelism is safe: a worker that waits on a TaskGroup helps
// execute pending pool tasks instead of blocking, so inner parallel_for
// calls (e.g. forest fits inside grid-search points inside LOAO folds)
// cannot deadlock even on a single-worker pool.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace napel {

class ThreadPool {
 public:
  /// n_threads == 0 selects default_threads().
  explicit ThreadPool(unsigned n_threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(queues_.size()); }

  /// NAPEL_THREADS environment override (decimal, >= 1) when set and
  /// valid; otherwise std::thread::hardware_concurrency() (>= 1).
  static unsigned default_threads();

  /// The lazily-created process-wide pool, sized by default_threads().
  static ThreadPool& global();

  /// Enqueue a task. A pool worker pushes to its own deque (LIFO side,
  /// for nested-task locality); external threads distribute round-robin.
  void submit(std::function<void()> fn);

  /// Pop and execute one pending task on the calling thread. Returns
  /// false when every deque is empty. This is the "help" primitive that
  /// keeps nested waits deadlock-free.
  bool try_run_one();

  /// Block until `done()` holds or a task may be available to help with.
  void wait_for_work(const std::function<bool()>& done);

  /// Wake every sleeping worker/waiter (used on task-group completion).
  void notify_waiters();

 private:
  struct Queue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(unsigned me);
  bool pop_any(unsigned start, std::function<void()>& out);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex wake_mu_;
  std::condition_variable wake_;
  std::atomic<std::size_t> pending_{0};
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> rr_{0};
};

/// Fork-join scope over a pool: run() enqueues tasks, wait() blocks until
/// all of them finished, helping with pending pool tasks meanwhile, and
/// rethrows the first exception any task threw.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
  TaskGroup() : TaskGroup(ThreadPool::global()) {}
  ~TaskGroup() { wait_no_throw(); }
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void run(std::function<void()> fn);
  void wait();

 private:
  void wait_no_throw();

  ThreadPool& pool_;
  std::atomic<std::size_t> outstanding_{0};
  std::mutex err_mu_;
  std::exception_ptr error_;
};

/// Resolves an n_threads knob: 0 -> default_threads(), otherwise as given.
inline unsigned effective_threads(unsigned n_threads) {
  return n_threads ? n_threads : ThreadPool::default_threads();
}

/// Calls body(i) for every i in [0, n), fanning iterations out to at most
/// `n_threads` concurrent executors (0 = pool default, 1 = inline serial,
/// touching no pool). Iterations are claimed dynamically, so the body must
/// write only to i-indexed state for deterministic output. The first
/// exception thrown by any iteration is rethrown on the caller after
/// remaining iterations are cancelled.
template <typename Body>
void parallel_for(std::size_t n, unsigned n_threads, Body&& body,
                  ThreadPool* pool_ptr = nullptr) {
  if (n == 0) return;
  const unsigned workers =
      pool_ptr && n_threads == 0 ? pool_ptr->size() : effective_threads(n_threads);
  if (workers <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  ThreadPool& pool = pool_ptr ? *pool_ptr : ThreadPool::global();

  std::atomic<std::size_t> next{0};
  std::atomic<bool> cancelled{false};
  const std::size_t n_tasks = std::min<std::size_t>(workers, n);
  TaskGroup group(pool);
  for (std::size_t t = 0; t < n_tasks; ++t) {
    group.run([&next, &cancelled, n, &body] {
      for (;;) {
        if (cancelled.load(std::memory_order_relaxed)) return;
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          body(i);
        } catch (...) {
          cancelled.store(true, std::memory_order_relaxed);
          throw;
        }
      }
    });
  }
  group.wait();
}

/// Executor count parallel_for_slotted(n, n_threads, ...) uses: the number
/// of distinct `slot` values its body can observe, i.e. the size of a
/// per-slot scratch array. Mirrors parallel_for's fan-out decision exactly.
inline std::size_t parallel_slot_count(std::size_t n, unsigned n_threads) {
  if (n == 0) return 0;
  const unsigned workers = effective_threads(n_threads);
  if (workers <= 1 || n == 1) return 1;
  return std::min<std::size_t>(workers, n);
}

/// parallel_for variant whose body receives (slot, i): `slot` identifies
/// the claiming executor, in [0, parallel_slot_count(n, n_threads)), and
/// is stable for that executor across every iteration it claims — so the
/// body can reuse slot-indexed scratch buffers (bootstrap samples, fit
/// workspaces) without per-iteration allocation. Iterations are still
/// claimed dynamically, so determinism requires the same discipline as
/// parallel_for (write only to i-indexed output state); slot-indexed state
/// is scratch, never output. The serial path always passes slot 0.
template <typename Body>
void parallel_for_slotted(std::size_t n, unsigned n_threads, Body&& body,
                          ThreadPool* pool_ptr = nullptr) {
  if (n == 0) return;
  const unsigned workers =
      pool_ptr && n_threads == 0 ? pool_ptr->size() : effective_threads(n_threads);
  if (workers <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(std::size_t{0}, i);
    return;
  }
  ThreadPool& pool = pool_ptr ? *pool_ptr : ThreadPool::global();

  std::atomic<std::size_t> next{0};
  std::atomic<bool> cancelled{false};
  const std::size_t n_tasks = std::min<std::size_t>(workers, n);
  TaskGroup group(pool);
  for (std::size_t t = 0; t < n_tasks; ++t) {
    group.run([&next, &cancelled, n, &body, t] {
      for (;;) {
        if (cancelled.load(std::memory_order_relaxed)) return;
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          body(t, i);
        } catch (...) {
          cancelled.store(true, std::memory_order_relaxed);
          throw;
        }
      }
    });
  }
  group.wait();
}

}  // namespace napel
