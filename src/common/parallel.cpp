#include "common/parallel.hpp"

#include <cstdlib>

#include "common/check.hpp"

namespace napel {

namespace {

/// Identity of the pool (and worker slot) the current thread belongs to,
/// used to route nested submits to the worker's own deque and to pick the
/// starting deque for steals.
thread_local const ThreadPool* tl_pool = nullptr;
thread_local unsigned tl_index = 0;

}  // namespace

ThreadPool::ThreadPool(unsigned n_threads) {
  const unsigned n = n_threads ? n_threads : default_threads();
  queues_.reserve(n);
  for (unsigned i = 0; i < n; ++i) queues_.push_back(std::make_unique<Queue>());
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  stopping_.store(true, std::memory_order_release);
  notify_waiters();
  for (auto& w : workers_) w.join();
  // Safety net: any task enqueued after the workers drained their queues
  // (all TaskGroups should have been waited on before destruction).
  std::function<void()> task;
  while (pop_any(0, task)) {
    task();
    task = nullptr;
  }
}

unsigned ThreadPool::default_threads() {
  if (const char* env = std::getenv("NAPEL_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 4096)
      return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(default_threads());
  return pool;
}

void ThreadPool::submit(std::function<void()> fn) {
  NAPEL_CHECK_MSG(!stopping_.load(std::memory_order_acquire),
                  "submit on a stopping pool");
  const unsigned q =
      tl_pool == this
          ? tl_index
          : static_cast<unsigned>(rr_.fetch_add(1, std::memory_order_relaxed) %
                                  queues_.size());
  {
    std::lock_guard<std::mutex> lk(queues_[q]->mu);
    queues_[q]->tasks.push_back(std::move(fn));
  }
  pending_.fetch_add(1, std::memory_order_release);
  notify_waiters();
}

bool ThreadPool::pop_any(unsigned start, std::function<void()>& out) {
  const std::size_t k = queues_.size();
  for (std::size_t off = 0; off < k; ++off) {
    Queue& q = *queues_[(start + off) % k];
    std::lock_guard<std::mutex> lk(q.mu);
    if (q.tasks.empty()) continue;
    if (off == 0) {
      // Own deque: newest first, so nested subtasks run before unrelated
      // sibling work and fork-join scopes unwind quickly.
      out = std::move(q.tasks.back());
      q.tasks.pop_back();
    } else {
      // Steal the oldest task — the one its owner would reach last.
      out = std::move(q.tasks.front());
      q.tasks.pop_front();
    }
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    return true;
  }
  return false;
}

bool ThreadPool::try_run_one() {
  std::function<void()> task;
  const unsigned start = tl_pool == this ? tl_index : 0;
  if (!pop_any(start, task)) return false;
  task();
  return true;
}

void ThreadPool::wait_for_work(const std::function<bool()>& done) {
  std::unique_lock<std::mutex> lk(wake_mu_);
  wake_.wait(lk, [&] {
    return done() || pending_.load(std::memory_order_acquire) > 0 ||
           stopping_.load(std::memory_order_acquire);
  });
}

void ThreadPool::notify_waiters() {
  // Empty critical section: pairs the notification with the predicate
  // check under wake_mu_ so a waiter cannot sleep through a state change.
  { std::lock_guard<std::mutex> lk(wake_mu_); }
  wake_.notify_all();
}

void ThreadPool::worker_loop(unsigned me) {
  tl_pool = this;
  tl_index = me;
  std::function<void()> task;
  for (;;) {
    if (pop_any(me, task)) {
      task();
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lk(wake_mu_);
    wake_.wait(lk, [this] {
      return stopping_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stopping_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0)
      return;
  }
}

void TaskGroup::run(std::function<void()> fn) {
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  pool_.submit([this, fn = std::move(fn)] {
    try {
      fn();
    } catch (...) {
      std::lock_guard<std::mutex> lk(err_mu_);
      if (!error_) error_ = std::current_exception();
    }
    // The decrement that reaches zero releases the waiter, which may
    // destroy the group immediately — nothing may touch `this` after it.
    ThreadPool* pool = &pool_;
    if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1)
      pool->notify_waiters();
  });
}

void TaskGroup::wait_no_throw() {
  while (outstanding_.load(std::memory_order_acquire) > 0) {
    if (pool_.try_run_one()) continue;
    pool_.wait_for_work([this] {
      return outstanding_.load(std::memory_order_acquire) == 0;
    });
  }
}

void TaskGroup::wait() {
  wait_no_throw();
  std::lock_guard<std::mutex> lk(err_mu_);
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

}  // namespace napel
