// Deterministic, seedable pseudo-random number generation.
//
// All stochastic components of the library (random forest bagging, ANN weight
// init, workload data generation, random DoE sampling) draw from Xoshiro256**
// seeded through SplitMix64, so every experiment is reproducible from a single
// 64-bit seed. No component may read wall-clock entropy.
#pragma once

#include <cstdint>
#include <cmath>
#include <limits>
#include <numbers>

#include "common/check.hpp"

namespace napel {

/// SplitMix64: used to expand a single seed into a full generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** — fast, high-quality 64-bit PRNG (Blackman & Vigna).
/// Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9a3ce1f07bd2e551ULL) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Uses rejection to avoid modulo bias.
  std::uint64_t uniform_index(std::uint64_t n) {
    NAPEL_CHECK(n > 0);
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    NAPEL_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    uniform_index(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Standard normal via Box–Muller (no cached spare; keeps state simple).
  double normal() {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Fisher–Yates shuffle of an index-addressable container.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      const std::size_t j = uniform_index(i);
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

  /// Derive an independent child generator (for per-tree / per-thread RNG).
  Rng split() { return Rng((*this)()); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace napel
