#include "doe/doe.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"

namespace napel::doe {

using workloads::DoeSpace;
using workloads::WorkloadParams;

std::size_t ccd_size(std::size_t k, int center_replicates) {
  NAPEL_CHECK(k >= 1);
  const std::size_t c = center_replicates < 0
                            ? 2 * k - 1
                            : static_cast<std::size_t>(center_replicates);
  return (std::size_t{1} << k) + 2 * k + c;
}

std::vector<WorkloadParams> central_composite(const DoeSpace& space,
                                              CcdOptions opts) {
  const std::size_t k = space.dimension();
  NAPEL_CHECK_MSG(k >= 1, "CCD requires at least one parameter");
  NAPEL_CHECK_MSG(k <= 16, "CCD corner count would explode");

  std::vector<WorkloadParams> points;
  points.reserve(ccd_size(k, opts.center_replicates));

  // Factorial corners: every (low, high) combination.
  for (std::size_t mask = 0; mask < (std::size_t{1} << k); ++mask) {
    WorkloadParams p;
    for (std::size_t i = 0; i < k; ++i) {
      const auto& dp = space.params[i];
      p.set(dp.name, (mask >> i) & 1 ? dp.high() : dp.low());
    }
    points.push_back(std::move(p));
  }

  // Axial points: one parameter at (minimum | maximum), others central.
  for (std::size_t i = 0; i < k; ++i) {
    for (const bool at_max : {false, true}) {
      WorkloadParams p = WorkloadParams::central(space);
      const auto& dp = space.params[i];
      p.set(dp.name, at_max ? dp.maximum() : dp.minimum());
      points.push_back(std::move(p));
    }
  }

  // Central replicates.
  const std::size_t c = opts.center_replicates < 0
                            ? 2 * k - 1
                            : static_cast<std::size_t>(opts.center_replicates);
  for (std::size_t r = 0; r < c; ++r)
    points.push_back(WorkloadParams::central(space));

  return points;
}

std::vector<bool> ccd_critical_mask(const DoeSpace& space, CcdOptions opts) {
  const std::size_t k = space.dimension();
  NAPEL_CHECK(k >= 1);
  // central_composite() emits factorial corners first, then the 2k axial
  // points, then the center replicates — everything past the corners is
  // critical.
  std::vector<bool> mask(ccd_size(k, opts.center_replicates), true);
  for (std::size_t i = 0; i < (std::size_t{1} << k); ++i) mask[i] = false;
  return mask;
}

std::vector<WorkloadParams> full_factorial(const DoeSpace& space) {
  const std::size_t k = space.dimension();
  NAPEL_CHECK(k >= 1);
  std::size_t total = 1;
  for (std::size_t i = 0; i < k; ++i) {
    NAPEL_CHECK_MSG(total <= 1'000'000 / 5, "full factorial too large");
    total *= 5;
  }

  std::vector<WorkloadParams> points;
  points.reserve(total);
  std::vector<std::size_t> idx(k, 0);
  for (std::size_t n = 0; n < total; ++n) {
    WorkloadParams p;
    std::size_t rem = n;
    for (std::size_t i = 0; i < k; ++i) {
      const auto& dp = space.params[i];
      p.set(dp.name, dp.levels[rem % 5]);
      rem /= 5;
    }
    points.push_back(std::move(p));
  }
  return points;
}

std::vector<WorkloadParams> random_design(const DoeSpace& space,
                                          std::size_t n, Rng& rng) {
  NAPEL_CHECK(n >= 1);
  std::vector<WorkloadParams> points;
  points.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    WorkloadParams p;
    for (const auto& dp : space.params)
      p.set(dp.name, rng.uniform_int(dp.minimum(), dp.maximum()));
    points.push_back(std::move(p));
  }
  return points;
}

std::vector<WorkloadParams> latin_hypercube(const DoeSpace& space,
                                            std::size_t n, Rng& rng) {
  NAPEL_CHECK(n >= 1);
  const std::size_t k = space.dimension();

  // One stratum permutation per parameter.
  std::vector<std::vector<std::size_t>> perms(k);
  for (auto& perm : perms) {
    perm.resize(n);
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    rng.shuffle(perm);
  }

  std::vector<WorkloadParams> points;
  points.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    WorkloadParams p;
    for (std::size_t i = 0; i < k; ++i) {
      const auto& dp = space.params[i];
      const double span =
          static_cast<double>(dp.maximum() - dp.minimum());
      const double u =
          (static_cast<double>(perms[i][s]) + rng.uniform()) /
          static_cast<double>(n);
      p.set(dp.name,
            dp.minimum() + static_cast<std::int64_t>(u * span));
    }
    points.push_back(std::move(p));
  }
  return points;
}

}  // namespace napel::doe
