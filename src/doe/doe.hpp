// Design-of-experiments point selection (Section 2.4 of the paper).
//
// The paper uses Box–Wilson central composite design (CCD) to pick a small
// set of application-input configurations that represents the whole input
// space: the 2^k factorial corners at (low, high), 2k axial points pairing
// one parameter's (minimum, maximum) with the central level of the others,
// and replicated central points. With 2k−1 center replicates the totals
// match Table 4 exactly: k=2 → 11, k=3 → 19, k=4 → 31.
//
// Full-factorial, uniform-random, and Latin-hypercube designs are provided
// as baselines for the DoE ablation study.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "workloads/params.hpp"

namespace napel::doe {

struct CcdOptions {
  /// Number of central-configuration replicates; -1 selects the paper's
  /// 2k−1 rule.
  int center_replicates = -1;
};

/// Expected CCD design size for a k-parameter space.
std::size_t ccd_size(std::size_t k, int center_replicates = -1);

/// Box–Wilson central composite design over the space's five levels.
std::vector<workloads::WorkloadParams> central_composite(
    const workloads::DoeSpace& space, CcdOptions opts = {});

/// Per-point mask over central_composite() order marking the axial and
/// center points. These are the design's information-critical points: a
/// degraded collection run may drop a factorial corner (widening
/// confidence intervals) but must never drop a center or axial point, or
/// the response-surface fit loses curvature/pure-error information.
std::vector<bool> ccd_critical_mask(const workloads::DoeSpace& space,
                                    CcdOptions opts = {});

/// Every combination of the five levels of every parameter (5^k points) —
/// the brute-force baseline CCD avoids.
std::vector<workloads::WorkloadParams> full_factorial(
    const workloads::DoeSpace& space);

/// n points drawn uniformly at random from [minimum, maximum] per parameter.
std::vector<workloads::WorkloadParams> random_design(
    const workloads::DoeSpace& space, std::size_t n, Rng& rng);

/// n-point Latin hypercube: each parameter's [minimum, maximum] range is
/// split into n strata, sampled once each, with strata permuted
/// independently per parameter (McKay et al.; used by SemiBoost in Table 5).
std::vector<workloads::WorkloadParams> latin_hypercube(
    const workloads::DoeSpace& space, std::size_t n, Rng& rng);

}  // namespace napel::doe
