// RCU-style holder for the served model, plus validated hot reload.
//
// The serving hot path must never block on a reload and must never observe
// a half-swapped model: workers take an immutable shared_ptr snapshot at
// request start and finish the whole request on it, while reload validates
// a candidate entirely off the serving path (file load + the PR 6 static
// forest analyzer via verify::validate_reload_candidate) and only then
// publishes it with one pointer swap. A rejected candidate leaves the old
// model serving without a gap; the structured rejection names the first
// failed check. Each accepted reload bumps a generation counter that is
// echoed in every response, so clients can tell which model answered.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/result.hpp"
#include "common/retry.hpp"
#include "ml/flat_forest.hpp"
#include "napel/napel_model.hpp"

namespace napel {
class FaultPlan;
}

namespace napel::serve {

/// One immutable, fully-validated model snapshot: the trained model plus
/// everything the degraded path needs precomputed (per-tree bounds for
/// certified prefix intervals). Built once per load/reload, never mutated
/// — requests in flight keep the generation they started with alive
/// through their shared_ptr.
struct ServedModel {
  core::NapelModel model;
  ml::FlatForest::PrefixBounds ipc_prefix;
  ml::FlatForest::PrefixBounds power_prefix;
  std::uint64_t generation = 1;
  std::string source_path;

  static std::shared_ptr<const ServedModel> make(core::NapelModel model,
                                                 std::uint64_t generation,
                                                 std::string source_path);
};

class ModelSlot {
 public:
  explicit ModelSlot(std::shared_ptr<const ServedModel> initial);

  /// The current model; lock-held pointer copy, wait-free for readers in
  /// practice (the lock is only contended for the nanoseconds of a swap).
  std::shared_ptr<const ServedModel> snapshot() const;

  std::uint64_t generation() const { return snapshot()->generation; }

  /// Validated hot reload: reads + statically validates the candidate at
  /// `path` off the serving path (transient I/O failures retried under
  /// `retry`), then atomically publishes it. On success returns the new
  /// generation and, when `state_path` is non-empty, stages a one-line
  /// active-model record there via the crash-safe atomic writer. On
  /// failure returns the structured kModelReloadRejected (or kIoError)
  /// diagnostic and keeps the old model serving.
  Result<std::uint64_t> reload(const std::string& path,
                               const RetryPolicy& retry,
                               const std::string& state_path = "",
                               FaultPlan* faults = nullptr);

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const ServedModel> current_;
};

}  // namespace napel::serve
