#include "serve/server.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault_injection.hpp"
#include "common/shutdown.hpp"
#include "serve/admission_queue.hpp"

namespace napel::serve {

namespace {

/// Trees walked between deadline checks. Small enough that one chunk of a
/// NAPEL-sized forest is microseconds — the overshoot past an expired
/// deadline is bounded by one chunk, not one forest.
constexpr std::size_t kDeadlineChunkTrees = 8;

std::string request_id(const JsonValue& request) {
  if (!request.is_object()) return {};
  const JsonValue* id = request.find("id");
  if (id != nullptr && id->is_string()) return id->as_string();
  return {};
}

JsonValue interval_json(const ml::FlatForest::ValueBounds& b) {
  JsonValue v = JsonValue::object();
  v.set("lo", JsonValue::number(b.lo));
  v.set("hi", JsonValue::number(b.hi));
  return v;
}

}  // namespace

bool IoStreamTransport::read_line(std::string& line) {
  return static_cast<bool>(std::getline(in_, line));
}

void IoStreamTransport::write_line(std::string_view line) {
  out_ << line << '\n';
  out_.flush();
}

Server::Server(ServerOptions opts, std::shared_ptr<const ServedModel> model)
    : opts_(std::move(opts)), slot_(std::move(model)) {}

ServeStats Server::stats_snapshot() const {
  const std::lock_guard<std::mutex> lock(state_mu_);
  return stats_;
}

JsonValue Server::bad_request(const std::string& id, std::string message) {
  {
    const std::lock_guard<std::mutex> lock(state_mu_);
    ++stats_.bad_requests;
  }
  return render_error(
      id, ServeError{ErrorKind::kBadRequest, std::move(message), 0});
}

bool Server::breaker_admit() {
  const std::lock_guard<std::mutex> lock(state_mu_);
  if (breaker_ != Breaker::kOpen) return true;
  // Every open-state response burns one unit of cooldown; when the budget
  // is spent the breaker half-opens so the *next* request probes the arena.
  if (--breaker_budget_ <= 0) breaker_ = Breaker::kHalfOpen;
  return false;
}

void Server::breaker_success() {
  const std::lock_guard<std::mutex> lock(state_mu_);
  consecutive_faults_ = 0;
  if (breaker_ == Breaker::kHalfOpen) breaker_ = Breaker::kClosed;
}

void Server::breaker_fault() {
  const std::lock_guard<std::mutex> lock(state_mu_);
  ++stats_.inference_faults;
  ++consecutive_faults_;
  const bool failed_probe = breaker_ == Breaker::kHalfOpen;
  if (failed_probe ||
      (breaker_ == Breaker::kClosed &&
       consecutive_faults_ >= std::max(1, opts_.breaker_threshold))) {
    breaker_ = Breaker::kOpen;
    breaker_budget_ = std::max(1, opts_.breaker_cooldown);
    ++stats_.breaker_opens;
  }
}

Server::ForestEval Server::eval_forest(
    const ml::FlatForest& forest, const ml::FlatForest::PrefixBounds& prefix,
    std::span<const double> x, const Deadline& deadline,
    std::size_t max_trees) {
  const std::size_t total = forest.tree_count();
  const std::size_t cap = std::min(max_trees, total);
  double sum = 0.0;
  std::size_t k = 0;
  while (k < cap) {
    if (deadline.expired()) break;
    const std::size_t end = std::min(k + kDeadlineChunkTrees, cap);
    sum = forest.accumulate_votes(x, k, end, sum);
    k = end;
  }
  ForestEval eval;
  eval.trees_used = k;
  if (k == total) {
    // Same summation order and final division as FlatForest::predict, so
    // the full-mode value is bit-identical to offline inference.
    eval.value = sum / static_cast<double>(total);
    eval.interval = {eval.value, eval.value};
    eval.full = true;
  } else {
    eval.interval = prefix.interval(sum, k);
    eval.value = (eval.interval.lo + eval.interval.hi) / 2.0;
    eval.full = false;
  }
  return eval;
}

JsonValue Server::do_predict(const JsonValue& request, const std::string& id,
                             Clock::time_point admitted,
                             std::size_t queue_depth) {
  // The whole request runs on one snapshot: a concurrent reload cannot
  // change the model (or the certified bounds) under our feet.
  const std::shared_ptr<const ServedModel> served = slot_.snapshot();
  const core::NapelModel& model = served->model;

  const JsonValue* feats = request.find("features");
  if (feats == nullptr || !feats->is_array())
    return bad_request(id, "predict needs a \"features\" array");
  const std::size_t n_features = model.ipc_flat().n_features();
  if (feats->items().size() != n_features)
    return bad_request(id, "expected " + std::to_string(n_features) +
                               " features, got " +
                               std::to_string(feats->items().size()));
  std::vector<double> x;
  x.reserve(n_features);
  for (const JsonValue& item : feats->items()) {
    if (!item.is_number())
      return bad_request(id, "features must all be numbers");
    x.push_back(item.as_number());
  }

  bool allow_degraded = true;
  if (const JsonValue* ad = request.find("allow_degraded")) {
    if (!ad->is_bool())
      return bad_request(id, "\"allow_degraded\" must be a boolean");
    allow_degraded = ad->as_bool();
  }

  // A request-level "deadline_ms" arms the budget from admission time (0 =
  // already expired: the client wants whatever certified answer is free);
  // absent, the server default applies (0 = no deadline).
  Deadline deadline;
  if (const JsonValue* dm = request.find("deadline_ms")) {
    if (!dm->is_number() || dm->as_number() < 0.0)
      return bad_request(id, "\"deadline_ms\" must be a non-negative number");
    deadline.armed = true;
    deadline.at = admitted + std::chrono::milliseconds(
                                 static_cast<std::int64_t>(dm->as_number()));
  } else if (opts_.default_deadline_ms > 0) {
    deadline.armed = true;
    deadline.at =
        admitted + std::chrono::milliseconds(opts_.default_deadline_ms);
  }

  const bool breaker_open = !breaker_admit();
  const std::size_t ipc_total = model.ipc_flat().tree_count();
  const std::size_t power_total = model.energy_flat().tree_count();
  std::size_t ipc_cap = ipc_total;
  std::size_t power_cap = power_total;
  if (breaker_open) {
    ipc_cap = power_cap = 0;
  } else if (opts_.degrade_queue_depth > 0 &&
             queue_depth >= opts_.degrade_queue_depth) {
    ipc_cap = std::min(opts_.degrade_trees, ipc_total);
    power_cap = std::min(opts_.degrade_trees, power_total);
  }

  ForestEval ipc;
  ForestEval power;
  bool corrupt = false;
  try {
    if (opts_.faults != nullptr && !breaker_open) {
      if (const FaultSpec* spec = opts_.faults->fire(
              "serve/infer", predict_seq_.fetch_add(1))) {
        switch (spec->kind) {
          case FaultKind::kHang: {
            // Simulated stuck inference: spin until the deadline budget is
            // gone (bounded for undeadlined requests so a drill cannot
            // wedge the worker).
            const auto stop =
                Clock::now() + std::chrono::milliseconds(50);
            while (!deadline.expired() && Clock::now() < stop) {
            }
            break;
          }
          case FaultKind::kCorruptWrite:
            corrupt = true;
            break;
          default:
            // kThrow; kCrash too — this site writes nothing, so there is
            // no torn state to simulate beyond the thrown fault.
            throw InjectedFault("injected inference fault at serve/infer");
        }
      }
    }

    ipc = eval_forest(model.ipc_flat(), served->ipc_prefix, x, deadline,
                      ipc_cap);
    power = eval_forest(model.energy_flat(), served->power_prefix, x,
                        deadline, power_cap);

    if (corrupt && ipc.full) {
      // Simulated arena corruption: an impossible model output, which the
      // certified-bounds assertion below must catch.
      ipc.value = model.ipc_bounds().hi + 1.0e6;
    }
    if (ipc.full && !model.ipc_bounds().contains(ipc.value))
      throw core::PredictionOutOfBoundsError(
          "IPC prediction escaped certified ensemble bounds");
    if (power.full && !model.power_bounds().contains(power.value))
      throw core::PredictionOutOfBoundsError(
          "power prediction escaped certified ensemble bounds");
  } catch (const std::exception& e) {
    breaker_fault();
    return render_error(
        id, ServeError{ErrorKind::kTaskFailed, std::string(e.what()), 0});
  }

  const bool deadline_hit =
      ipc.trees_used < ipc_cap || power.trees_used < power_cap;
  const bool full = ipc.full && power.full;
  if (deadline_hit && !allow_degraded) {
    // Not an inference fault: the arena is healthy, the client just asked
    // for full-or-nothing. Leaves the breaker state untouched.
    const std::lock_guard<std::mutex> lock(state_mu_);
    ++stats_.deadline_rejected;
    return render_error(
        id, ServeError{ErrorKind::kDeadlineExceeded,
                       "deadline budget exhausted after " +
                           std::to_string(ipc.trees_used + power.trees_used) +
                           " of " +
                           std::to_string(ipc_total + power_total) + " trees",
                       0});
  }

  breaker_success();
  {
    const std::lock_guard<std::mutex> lock(state_mu_);
    full ? ++stats_.served_full : ++stats_.served_degraded;
  }

  JsonValue resp = JsonValue::object();
  if (!id.empty()) resp.set("id", JsonValue::string(id));
  resp.set("ok", JsonValue::boolean(true));
  resp.set("mode", JsonValue::string(full ? "full" : "degraded"));
  if (!full) {
    const char* reason = breaker_open   ? "circuit-open"
                         : deadline_hit ? "deadline"
                                        : "load";
    resp.set("degrade_reason", JsonValue::string(reason));
  }
  resp.set("ipc", JsonValue::number(ipc.value));
  resp.set("ipc_interval", interval_json(ipc.interval));
  resp.set("power_watts", JsonValue::number(power.value));
  resp.set("power_interval", interval_json(power.interval));
  resp.set("ipc_trees",
           JsonValue::number(static_cast<double>(ipc.trees_used)));
  resp.set("power_trees",
           JsonValue::number(static_cast<double>(power.trees_used)));
  resp.set("model_generation",
           JsonValue::number(static_cast<double>(served->generation)));
  return resp;
}

std::vector<JsonValue> Server::do_predict_batch(std::vector<Pending>& batch,
                                                std::size_t queue_depth) {
  std::vector<JsonValue> out(batch.size());
  if (batch.empty()) return out;
  if (batch.size() >= 2) {
    const std::lock_guard<std::mutex> lock(state_mu_);
    ++stats_.micro_batches;
  }

  // Every fast row runs on this one snapshot (slow rows re-snapshot
  // inside do_predict, just as they would when served individually): a
  // concurrent reload cannot change a model under a traversal.
  const std::shared_ptr<const ServedModel> served = slot_.snapshot();
  const core::NapelModel& model = served->model;
  const std::size_t n_features = model.ipc_flat().n_features();

  const bool degrade_load = opts_.degrade_queue_depth > 0 &&
                            queue_depth >= opts_.degrade_queue_depth;
  bool breaker_closed;
  {
    const std::lock_guard<std::mutex> lock(state_mu_);
    breaker_closed = breaker_ == Breaker::kClosed;
  }
  // Rows the batched kernel may serve: the server is in plain full-
  // ensemble operation (breaker closed, no load degradation, no fault
  // plan armed) and the request carries no deadline and validates
  // cleanly. Everything else — including rows that will be *rejected* —
  // flows through do_predict so policies and error rendering live in
  // exactly one place.
  const bool batchable_state =
      breaker_closed && !degrade_load && opts_.faults == nullptr &&
      opts_.default_deadline_ms == 0;
  std::vector<std::size_t> fast;
  std::vector<double> X;
  if (batchable_state && batch.size() >= 2) {
    fast.reserve(batch.size());
    X.reserve(batch.size() * n_features);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const JsonValue& request = batch[i].request;
      if (request.find("deadline_ms") != nullptr) continue;
      if (const JsonValue* ad = request.find("allow_degraded"))
        if (!ad->is_bool()) continue;  // do_predict renders the error
      const JsonValue* feats = request.find("features");
      if (feats == nullptr || !feats->is_array() ||
          feats->items().size() != n_features)
        continue;
      bool numeric = true;
      for (const JsonValue& item : feats->items())
        if (!item.is_number()) {
          numeric = false;
          break;
        }
      if (!numeric) continue;
      for (const JsonValue& item : feats->items())
        X.push_back(item.as_number());
      fast.push_back(i);
    }
  }

  if (fast.size() >= 2) {
    // One sharded batched traversal per forest answers every fast row —
    // the same bits as per-request inference: predict_batch's row means
    // match FlatForest::predict, which matches the chunked
    // accumulate_votes sum do_predict performs.
    const std::size_t n = fast.size();
    std::vector<double> ipc_pred(n), power_pred(n);
    model.ipc_flat().predict_batch(X, n, ipc_pred);
    model.energy_flat().predict_batch(X, n, power_pred);
    const std::size_t ipc_total = model.ipc_flat().tree_count();
    const std::size_t power_total = model.energy_flat().tree_count();
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t i = fast[k];
      const std::string& id = batch[i].id;
      if (!model.ipc_bounds().contains(ipc_pred[k])) {
        breaker_fault();
        out[i] = render_error(
            id, ServeError{ErrorKind::kTaskFailed,
                           "IPC prediction escaped certified ensemble bounds",
                           0});
        continue;
      }
      if (!model.power_bounds().contains(power_pred[k])) {
        breaker_fault();
        out[i] = render_error(
            id,
            ServeError{ErrorKind::kTaskFailed,
                       "power prediction escaped certified ensemble bounds",
                       0});
        continue;
      }
      breaker_success();
      {
        const std::lock_guard<std::mutex> lock(state_mu_);
        ++stats_.served_full;
        ++stats_.batched_predicts;
      }
      // Field-for-field the full-mode response do_predict renders.
      JsonValue resp = JsonValue::object();
      if (!id.empty()) resp.set("id", JsonValue::string(id));
      resp.set("ok", JsonValue::boolean(true));
      resp.set("mode", JsonValue::string("full"));
      resp.set("ipc", JsonValue::number(ipc_pred[k]));
      resp.set("ipc_interval",
               interval_json({ipc_pred[k], ipc_pred[k]}));
      resp.set("power_watts", JsonValue::number(power_pred[k]));
      resp.set("power_interval",
               interval_json({power_pred[k], power_pred[k]}));
      resp.set("ipc_trees",
               JsonValue::number(static_cast<double>(ipc_total)));
      resp.set("power_trees",
               JsonValue::number(static_cast<double>(power_total)));
      resp.set("model_generation",
               JsonValue::number(static_cast<double>(served->generation)));
      out[i] = std::move(resp);
    }
  } else {
    fast.clear();  // a lone fast row gains nothing from the batch kernel
  }

  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (!out[i].is_null()) continue;
    out[i] =
        do_predict(batch[i].request, batch[i].id, batch[i].admitted,
                   queue_depth);
  }
  return out;
}

JsonValue Server::do_reload(const JsonValue& request, const std::string& id) {
  const JsonValue* path = request.find("model");
  if (path == nullptr || !path->is_string())
    return bad_request(id, "reload needs a \"model\" path");
  Result<std::uint64_t> r = slot_.reload(path->as_string(),
                                         opts_.reload_retry, opts_.state_path,
                                         opts_.faults);
  {
    const std::lock_guard<std::mutex> lock(state_mu_);
    r.ok() ? ++stats_.reloads_ok : ++stats_.reloads_rejected;
  }
  if (!r.ok()) {
    const PipelineError& err = r.error();
    std::string message = err.context.empty()
                              ? err.message
                              : err.context + ": " + err.message;
    return render_error(id,
                        ServeError{err.kind, std::move(message), 0});
  }
  JsonValue resp = JsonValue::object();
  if (!id.empty()) resp.set("id", JsonValue::string(id));
  resp.set("ok", JsonValue::boolean(true));
  resp.set("op", JsonValue::string("reload"));
  resp.set("model_generation",
           JsonValue::number(static_cast<double>(r.value())));
  resp.set("model", JsonValue::string(path->as_string()));
  return resp;
}

JsonValue Server::do_stats(std::size_t queue_depth) {
  ServeStats s;
  const char* breaker = "closed";
  {
    const std::lock_guard<std::mutex> lock(state_mu_);
    s = stats_;
    breaker = breaker_ == Breaker::kOpen       ? "open"
              : breaker_ == Breaker::kHalfOpen ? "half-open"
                                               : "closed";
  }
  const std::shared_ptr<const ServedModel> served = slot_.snapshot();
  JsonValue resp = JsonValue::object();
  resp.set("ok", JsonValue::boolean(true));
  resp.set("op", JsonValue::string("stats"));
  resp.set("model_generation",
           JsonValue::number(static_cast<double>(served->generation)));
  resp.set("model", JsonValue::string(served->source_path));
  resp.set("queue_depth",
           JsonValue::number(static_cast<double>(queue_depth)));
  resp.set("breaker_state", JsonValue::string(breaker));
  const auto num = [](std::uint64_t v) {
    return JsonValue::number(static_cast<double>(v));
  };
  resp.set("admitted", num(s.admitted));
  resp.set("served_full", num(s.served_full));
  resp.set("served_degraded", num(s.served_degraded));
  resp.set("shed", num(s.shed));
  resp.set("bad_requests", num(s.bad_requests));
  resp.set("deadline_rejected", num(s.deadline_rejected));
  resp.set("inference_faults", num(s.inference_faults));
  resp.set("reloads_ok", num(s.reloads_ok));
  resp.set("reloads_rejected", num(s.reloads_rejected));
  resp.set("breaker_opens", num(s.breaker_opens));
  resp.set("micro_batches", num(s.micro_batches));
  resp.set("batched_predicts", num(s.batched_predicts));
  return resp;
}

JsonValue Server::dispatch(const JsonValue& request, const std::string& id,
                           Clock::time_point admitted,
                           std::size_t queue_depth) {
  if (!request.is_object())
    return bad_request(id, "request must be a JSON object");
  const JsonValue* op = request.find("op");
  if (op == nullptr || !op->is_string())
    return bad_request(id, "request needs a string \"op\"");
  const std::string& name = op->as_string();
  if (name == "predict") return do_predict(request, id, admitted, queue_depth);
  if (name == "reload") return do_reload(request, id);
  if (name == "stats") return do_stats(queue_depth);
  if (name == "shutdown") {
    JsonValue resp = JsonValue::object();
    if (!id.empty()) resp.set("id", JsonValue::string(id));
    resp.set("ok", JsonValue::boolean(true));
    resp.set("op", JsonValue::string("shutdown"));
    return resp;
  }
  return bad_request(id, "unknown op \"" + name + "\"");
}

std::string Server::handle_line(const std::string& line,
                                std::size_t queue_depth) {
  JsonValue request;
  try {
    request = JsonValue::parse(line);
  } catch (const JsonParseError& e) {
    {
      const std::lock_guard<std::mutex> lock(state_mu_);
      ++stats_.bad_requests;
    }
    return render_error(
               "", ServeError{ErrorKind::kBadRequest, std::string(e.what()), 0})
        .dump();
  }
  const std::string id = request_id(request);
  return dispatch(request, id, Clock::now(), queue_depth).dump();
}

std::vector<std::string> Server::handle_lines(
    const std::vector<std::string>& lines, std::size_t queue_depth) {
  const Clock::time_point now = Clock::now();
  std::vector<std::string> out(lines.size());
  std::vector<Pending> batch;
  std::vector<std::size_t> slots;  // out[] position of each batched row
  for (std::size_t i = 0; i < lines.size(); ++i) {
    JsonValue request;
    try {
      request = JsonValue::parse(lines[i]);
    } catch (const JsonParseError& e) {
      {
        const std::lock_guard<std::mutex> lock(state_mu_);
        ++stats_.bad_requests;
      }
      out[i] = render_error("", ServeError{ErrorKind::kBadRequest,
                                           std::string(e.what()), 0})
                   .dump();
      continue;
    }
    const std::string id = request_id(request);
    const JsonValue* op = request.is_object() ? request.find("op") : nullptr;
    if (op != nullptr && op->is_string() && op->as_string() == "predict") {
      batch.push_back(Pending{std::move(request), id, now});
      slots.push_back(i);
    } else {
      out[i] = dispatch(request, id, now, queue_depth).dump();
    }
  }
  std::vector<JsonValue> responses = do_predict_batch(batch, queue_depth);
  for (std::size_t k = 0; k < slots.size(); ++k)
    out[slots[k]] = responses[k].dump();
  return out;
}

int Server::run(Transport& transport) {
  AdmissionQueue<Pending> queue(opts_.queue_capacity, opts_.cost_hint_ms);
  std::mutex write_mu;
  const auto emit = [&](const std::string& s) {
    const std::lock_guard<std::mutex> lock(write_mu);
    transport.write_line(s);
  };

  const unsigned n_workers = std::max(1u, opts_.n_workers);
  std::vector<std::thread> workers;
  workers.reserve(n_workers);
  const std::size_t batch_max = std::max<std::size_t>(1, opts_.batch_max);
  const std::chrono::milliseconds linger{opts_.batch_linger_ms};
  for (unsigned w = 0; w < n_workers; ++w) {
    workers.emplace_back([&] {
      std::vector<Pending> slice;
      std::size_t depth = 0;
      // Each wakeup drains an admission-order slice of the backlog: a
      // singleton under light load (identical to the per-request loop),
      // up to batch_max coalesced requests under pressure, which
      // do_predict_batch serves through one sharded traversal per
      // forest. Responses go out in slice order under one writer hold,
      // so with one worker the stream stays a deterministic function of
      // the request stream.
      while (queue.pop_batch(slice, batch_max, linger, depth)) {
        std::vector<std::string> resps(slice.size());
        try {
          std::vector<JsonValue> rendered = do_predict_batch(slice, depth);
          for (std::size_t i = 0; i < rendered.size(); ++i)
            resps[i] = rendered[i].dump();
        } catch (const std::exception& e) {
          // do_predict_batch handles inference faults itself; this guards
          // the worker against anything else so the drain loop never dies.
          for (std::size_t i = 0; i < slice.size(); ++i)
            resps[i] = render_error(slice[i].id,
                                    ServeError{ErrorKind::kTaskFailed,
                                               std::string(e.what()), 0})
                           .dump();
        }
        const std::lock_guard<std::mutex> lock(write_mu);
        for (const std::string& r : resps) transport.write_line(r);
      }
    });
  }

  bool signalled = false;
  std::string shutdown_ack;  // emitted last, after the queue drains
  std::string line;
  while (true) {
    if (shutdown_requested()) {
      signalled = true;
      break;
    }
    if (!transport.read_line(line)) {
      // EOF, or a read interrupted by SIGTERM/SIGINT (the handlers are
      // installed without SA_RESTART precisely so this read returns).
      signalled = shutdown_requested();
      break;
    }
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    JsonValue request;
    try {
      request = JsonValue::parse(line);
    } catch (const JsonParseError& e) {
      {
        const std::lock_guard<std::mutex> lock(state_mu_);
        ++stats_.bad_requests;
      }
      emit(render_error("", ServeError{ErrorKind::kBadRequest,
                                       std::string(e.what()), 0})
               .dump());
      continue;
    }
    const std::string id = request_id(request);
    const JsonValue* op = request.is_object() ? request.find("op") : nullptr;
    const std::string op_name =
        (op != nullptr && op->is_string()) ? op->as_string() : "";

    if (op_name == "predict") {
      // Admission control happens here, at arrival: the shed decision is a
      // pure function of the backlog, before any inference work is spent.
      Pending p{std::move(request), id, Clock::now()};
      if (const auto shed = queue.try_push(std::move(p))) {
        {
          const std::lock_guard<std::mutex> lock(state_mu_);
          ++stats_.shed;
        }
        emit(render_error(
                 id, ServeError{ErrorKind::kOverload,
                                "admission queue full at depth " +
                                    std::to_string(shed->depth),
                                shed->retry_after_ms})
                 .dump());
      } else {
        const std::lock_guard<std::mutex> lock(state_mu_);
        ++stats_.admitted;
      }
    } else if (op_name == "shutdown") {
      shutdown_ack =
          dispatch(request, id, Clock::now(), queue.depth()).dump();
      break;
    } else {
      // Control-plane ops (reload/stats) run on the reader thread: reload
      // validation is off the serving path by construction — workers keep
      // draining predictions against the old model meanwhile.
      emit(dispatch(request, id, Clock::now(), queue.depth()).dump());
    }
  }

  // Graceful drain: stop admitting, answer everything already accepted.
  queue.close();
  for (std::thread& w : workers) w.join();
  if (!shutdown_ack.empty()) emit(shutdown_ack);
  return signalled ? kShutdownExitCode : 0;
}

}  // namespace napel::serve
