#include "serve/server.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault_injection.hpp"
#include "common/shutdown.hpp"
#include "serve/admission_queue.hpp"

namespace napel::serve {

namespace {

/// Trees walked between deadline checks. Small enough that one chunk of a
/// NAPEL-sized forest is microseconds — the overshoot past an expired
/// deadline is bounded by one chunk, not one forest.
constexpr std::size_t kDeadlineChunkTrees = 8;

std::string request_id(const JsonValue& request) {
  if (!request.is_object()) return {};
  const JsonValue* id = request.find("id");
  if (id != nullptr && id->is_string()) return id->as_string();
  return {};
}

JsonValue interval_json(const ml::FlatForest::ValueBounds& b) {
  JsonValue v = JsonValue::object();
  v.set("lo", JsonValue::number(b.lo));
  v.set("hi", JsonValue::number(b.hi));
  return v;
}

}  // namespace

bool IoStreamTransport::read_line(std::string& line) {
  return static_cast<bool>(std::getline(in_, line));
}

void IoStreamTransport::write_line(std::string_view line) {
  out_ << line << '\n';
  out_.flush();
}

Server::Server(ServerOptions opts, std::shared_ptr<const ServedModel> model)
    : opts_(std::move(opts)), slot_(std::move(model)) {}

ServeStats Server::stats_snapshot() const {
  const std::lock_guard<std::mutex> lock(state_mu_);
  return stats_;
}

JsonValue Server::bad_request(const std::string& id, std::string message) {
  {
    const std::lock_guard<std::mutex> lock(state_mu_);
    ++stats_.bad_requests;
  }
  return render_error(
      id, ServeError{ErrorKind::kBadRequest, std::move(message), 0});
}

bool Server::breaker_admit() {
  const std::lock_guard<std::mutex> lock(state_mu_);
  if (breaker_ != Breaker::kOpen) return true;
  // Every open-state response burns one unit of cooldown; when the budget
  // is spent the breaker half-opens so the *next* request probes the arena.
  if (--breaker_budget_ <= 0) breaker_ = Breaker::kHalfOpen;
  return false;
}

void Server::breaker_success() {
  const std::lock_guard<std::mutex> lock(state_mu_);
  consecutive_faults_ = 0;
  if (breaker_ == Breaker::kHalfOpen) breaker_ = Breaker::kClosed;
}

void Server::breaker_fault() {
  const std::lock_guard<std::mutex> lock(state_mu_);
  ++stats_.inference_faults;
  ++consecutive_faults_;
  const bool failed_probe = breaker_ == Breaker::kHalfOpen;
  if (failed_probe ||
      (breaker_ == Breaker::kClosed &&
       consecutive_faults_ >= std::max(1, opts_.breaker_threshold))) {
    breaker_ = Breaker::kOpen;
    breaker_budget_ = std::max(1, opts_.breaker_cooldown);
    ++stats_.breaker_opens;
  }
}

Server::ForestEval Server::eval_forest(
    const ml::FlatForest& forest, const ml::FlatForest::PrefixBounds& prefix,
    std::span<const double> x, const Deadline& deadline,
    std::size_t max_trees) {
  const std::size_t total = forest.tree_count();
  const std::size_t cap = std::min(max_trees, total);
  double sum = 0.0;
  std::size_t k = 0;
  while (k < cap) {
    if (deadline.expired()) break;
    const std::size_t end = std::min(k + kDeadlineChunkTrees, cap);
    sum = forest.accumulate_votes(x, k, end, sum);
    k = end;
  }
  ForestEval eval;
  eval.trees_used = k;
  if (k == total) {
    // Same summation order and final division as FlatForest::predict, so
    // the full-mode value is bit-identical to offline inference.
    eval.value = sum / static_cast<double>(total);
    eval.interval = {eval.value, eval.value};
    eval.full = true;
  } else {
    eval.interval = prefix.interval(sum, k);
    eval.value = (eval.interval.lo + eval.interval.hi) / 2.0;
    eval.full = false;
  }
  return eval;
}

JsonValue Server::do_predict(const JsonValue& request, const std::string& id,
                             Clock::time_point admitted,
                             std::size_t queue_depth) {
  // The whole request runs on one snapshot: a concurrent reload cannot
  // change the model (or the certified bounds) under our feet.
  const std::shared_ptr<const ServedModel> served = slot_.snapshot();
  const core::NapelModel& model = served->model;

  const JsonValue* feats = request.find("features");
  if (feats == nullptr || !feats->is_array())
    return bad_request(id, "predict needs a \"features\" array");
  const std::size_t n_features = model.ipc_flat().n_features();
  if (feats->items().size() != n_features)
    return bad_request(id, "expected " + std::to_string(n_features) +
                               " features, got " +
                               std::to_string(feats->items().size()));
  std::vector<double> x;
  x.reserve(n_features);
  for (const JsonValue& item : feats->items()) {
    if (!item.is_number())
      return bad_request(id, "features must all be numbers");
    x.push_back(item.as_number());
  }

  bool allow_degraded = true;
  if (const JsonValue* ad = request.find("allow_degraded")) {
    if (!ad->is_bool())
      return bad_request(id, "\"allow_degraded\" must be a boolean");
    allow_degraded = ad->as_bool();
  }

  // A request-level "deadline_ms" arms the budget from admission time (0 =
  // already expired: the client wants whatever certified answer is free);
  // absent, the server default applies (0 = no deadline).
  Deadline deadline;
  if (const JsonValue* dm = request.find("deadline_ms")) {
    if (!dm->is_number() || dm->as_number() < 0.0)
      return bad_request(id, "\"deadline_ms\" must be a non-negative number");
    deadline.armed = true;
    deadline.at = admitted + std::chrono::milliseconds(
                                 static_cast<std::int64_t>(dm->as_number()));
  } else if (opts_.default_deadline_ms > 0) {
    deadline.armed = true;
    deadline.at =
        admitted + std::chrono::milliseconds(opts_.default_deadline_ms);
  }

  const bool breaker_open = !breaker_admit();
  const std::size_t ipc_total = model.ipc_flat().tree_count();
  const std::size_t power_total = model.energy_flat().tree_count();
  std::size_t ipc_cap = ipc_total;
  std::size_t power_cap = power_total;
  if (breaker_open) {
    ipc_cap = power_cap = 0;
  } else if (opts_.degrade_queue_depth > 0 &&
             queue_depth >= opts_.degrade_queue_depth) {
    ipc_cap = std::min(opts_.degrade_trees, ipc_total);
    power_cap = std::min(opts_.degrade_trees, power_total);
  }

  ForestEval ipc;
  ForestEval power;
  bool corrupt = false;
  try {
    if (opts_.faults != nullptr && !breaker_open) {
      if (const FaultSpec* spec = opts_.faults->fire(
              "serve/infer", predict_seq_.fetch_add(1))) {
        switch (spec->kind) {
          case FaultKind::kHang: {
            // Simulated stuck inference: spin until the deadline budget is
            // gone (bounded for undeadlined requests so a drill cannot
            // wedge the worker).
            const auto stop =
                Clock::now() + std::chrono::milliseconds(50);
            while (!deadline.expired() && Clock::now() < stop) {
            }
            break;
          }
          case FaultKind::kCorruptWrite:
            corrupt = true;
            break;
          default:
            // kThrow; kCrash too — this site writes nothing, so there is
            // no torn state to simulate beyond the thrown fault.
            throw InjectedFault("injected inference fault at serve/infer");
        }
      }
    }

    ipc = eval_forest(model.ipc_flat(), served->ipc_prefix, x, deadline,
                      ipc_cap);
    power = eval_forest(model.energy_flat(), served->power_prefix, x,
                        deadline, power_cap);

    if (corrupt && ipc.full) {
      // Simulated arena corruption: an impossible model output, which the
      // certified-bounds assertion below must catch.
      ipc.value = model.ipc_bounds().hi + 1.0e6;
    }
    if (ipc.full && !model.ipc_bounds().contains(ipc.value))
      throw core::PredictionOutOfBoundsError(
          "IPC prediction escaped certified ensemble bounds");
    if (power.full && !model.power_bounds().contains(power.value))
      throw core::PredictionOutOfBoundsError(
          "power prediction escaped certified ensemble bounds");
  } catch (const std::exception& e) {
    breaker_fault();
    return render_error(
        id, ServeError{ErrorKind::kTaskFailed, std::string(e.what()), 0});
  }

  const bool deadline_hit =
      ipc.trees_used < ipc_cap || power.trees_used < power_cap;
  const bool full = ipc.full && power.full;
  if (deadline_hit && !allow_degraded) {
    // Not an inference fault: the arena is healthy, the client just asked
    // for full-or-nothing. Leaves the breaker state untouched.
    const std::lock_guard<std::mutex> lock(state_mu_);
    ++stats_.deadline_rejected;
    return render_error(
        id, ServeError{ErrorKind::kDeadlineExceeded,
                       "deadline budget exhausted after " +
                           std::to_string(ipc.trees_used + power.trees_used) +
                           " of " +
                           std::to_string(ipc_total + power_total) + " trees",
                       0});
  }

  breaker_success();
  {
    const std::lock_guard<std::mutex> lock(state_mu_);
    full ? ++stats_.served_full : ++stats_.served_degraded;
  }

  JsonValue resp = JsonValue::object();
  if (!id.empty()) resp.set("id", JsonValue::string(id));
  resp.set("ok", JsonValue::boolean(true));
  resp.set("mode", JsonValue::string(full ? "full" : "degraded"));
  if (!full) {
    const char* reason = breaker_open   ? "circuit-open"
                         : deadline_hit ? "deadline"
                                        : "load";
    resp.set("degrade_reason", JsonValue::string(reason));
  }
  resp.set("ipc", JsonValue::number(ipc.value));
  resp.set("ipc_interval", interval_json(ipc.interval));
  resp.set("power_watts", JsonValue::number(power.value));
  resp.set("power_interval", interval_json(power.interval));
  resp.set("ipc_trees",
           JsonValue::number(static_cast<double>(ipc.trees_used)));
  resp.set("power_trees",
           JsonValue::number(static_cast<double>(power.trees_used)));
  resp.set("model_generation",
           JsonValue::number(static_cast<double>(served->generation)));
  return resp;
}

JsonValue Server::do_reload(const JsonValue& request, const std::string& id) {
  const JsonValue* path = request.find("model");
  if (path == nullptr || !path->is_string())
    return bad_request(id, "reload needs a \"model\" path");
  Result<std::uint64_t> r = slot_.reload(path->as_string(),
                                         opts_.reload_retry, opts_.state_path,
                                         opts_.faults);
  {
    const std::lock_guard<std::mutex> lock(state_mu_);
    r.ok() ? ++stats_.reloads_ok : ++stats_.reloads_rejected;
  }
  if (!r.ok()) {
    const PipelineError& err = r.error();
    std::string message = err.context.empty()
                              ? err.message
                              : err.context + ": " + err.message;
    return render_error(id,
                        ServeError{err.kind, std::move(message), 0});
  }
  JsonValue resp = JsonValue::object();
  if (!id.empty()) resp.set("id", JsonValue::string(id));
  resp.set("ok", JsonValue::boolean(true));
  resp.set("op", JsonValue::string("reload"));
  resp.set("model_generation",
           JsonValue::number(static_cast<double>(r.value())));
  resp.set("model", JsonValue::string(path->as_string()));
  return resp;
}

JsonValue Server::do_stats(std::size_t queue_depth) {
  ServeStats s;
  const char* breaker = "closed";
  {
    const std::lock_guard<std::mutex> lock(state_mu_);
    s = stats_;
    breaker = breaker_ == Breaker::kOpen       ? "open"
              : breaker_ == Breaker::kHalfOpen ? "half-open"
                                               : "closed";
  }
  const std::shared_ptr<const ServedModel> served = slot_.snapshot();
  JsonValue resp = JsonValue::object();
  resp.set("ok", JsonValue::boolean(true));
  resp.set("op", JsonValue::string("stats"));
  resp.set("model_generation",
           JsonValue::number(static_cast<double>(served->generation)));
  resp.set("model", JsonValue::string(served->source_path));
  resp.set("queue_depth",
           JsonValue::number(static_cast<double>(queue_depth)));
  resp.set("breaker_state", JsonValue::string(breaker));
  const auto num = [](std::uint64_t v) {
    return JsonValue::number(static_cast<double>(v));
  };
  resp.set("admitted", num(s.admitted));
  resp.set("served_full", num(s.served_full));
  resp.set("served_degraded", num(s.served_degraded));
  resp.set("shed", num(s.shed));
  resp.set("bad_requests", num(s.bad_requests));
  resp.set("deadline_rejected", num(s.deadline_rejected));
  resp.set("inference_faults", num(s.inference_faults));
  resp.set("reloads_ok", num(s.reloads_ok));
  resp.set("reloads_rejected", num(s.reloads_rejected));
  resp.set("breaker_opens", num(s.breaker_opens));
  return resp;
}

JsonValue Server::dispatch(const JsonValue& request, const std::string& id,
                           Clock::time_point admitted,
                           std::size_t queue_depth) {
  if (!request.is_object())
    return bad_request(id, "request must be a JSON object");
  const JsonValue* op = request.find("op");
  if (op == nullptr || !op->is_string())
    return bad_request(id, "request needs a string \"op\"");
  const std::string& name = op->as_string();
  if (name == "predict") return do_predict(request, id, admitted, queue_depth);
  if (name == "reload") return do_reload(request, id);
  if (name == "stats") return do_stats(queue_depth);
  if (name == "shutdown") {
    JsonValue resp = JsonValue::object();
    if (!id.empty()) resp.set("id", JsonValue::string(id));
    resp.set("ok", JsonValue::boolean(true));
    resp.set("op", JsonValue::string("shutdown"));
    return resp;
  }
  return bad_request(id, "unknown op \"" + name + "\"");
}

std::string Server::handle_line(const std::string& line,
                                std::size_t queue_depth) {
  JsonValue request;
  try {
    request = JsonValue::parse(line);
  } catch (const JsonParseError& e) {
    {
      const std::lock_guard<std::mutex> lock(state_mu_);
      ++stats_.bad_requests;
    }
    return render_error(
               "", ServeError{ErrorKind::kBadRequest, std::string(e.what()), 0})
        .dump();
  }
  const std::string id = request_id(request);
  return dispatch(request, id, Clock::now(), queue_depth).dump();
}

int Server::run(Transport& transport) {
  AdmissionQueue<Pending> queue(opts_.queue_capacity, opts_.cost_hint_ms);
  std::mutex write_mu;
  const auto emit = [&](const std::string& s) {
    const std::lock_guard<std::mutex> lock(write_mu);
    transport.write_line(s);
  };

  const unsigned n_workers = std::max(1u, opts_.n_workers);
  std::vector<std::thread> workers;
  workers.reserve(n_workers);
  for (unsigned w = 0; w < n_workers; ++w) {
    workers.emplace_back([&] {
      Pending p;
      std::size_t depth = 0;
      while (queue.pop(p, depth)) {
        std::string resp;
        try {
          resp = do_predict(p.request, p.id, p.admitted, depth).dump();
        } catch (const std::exception& e) {
          // do_predict handles inference faults itself; this guards the
          // worker against anything else so the drain loop never dies.
          resp = render_error(p.id, ServeError{ErrorKind::kTaskFailed,
                                               std::string(e.what()), 0})
                     .dump();
        }
        emit(resp);
      }
    });
  }

  bool signalled = false;
  std::string shutdown_ack;  // emitted last, after the queue drains
  std::string line;
  while (true) {
    if (shutdown_requested()) {
      signalled = true;
      break;
    }
    if (!transport.read_line(line)) {
      // EOF, or a read interrupted by SIGTERM/SIGINT (the handlers are
      // installed without SA_RESTART precisely so this read returns).
      signalled = shutdown_requested();
      break;
    }
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    JsonValue request;
    try {
      request = JsonValue::parse(line);
    } catch (const JsonParseError& e) {
      {
        const std::lock_guard<std::mutex> lock(state_mu_);
        ++stats_.bad_requests;
      }
      emit(render_error("", ServeError{ErrorKind::kBadRequest,
                                       std::string(e.what()), 0})
               .dump());
      continue;
    }
    const std::string id = request_id(request);
    const JsonValue* op = request.is_object() ? request.find("op") : nullptr;
    const std::string op_name =
        (op != nullptr && op->is_string()) ? op->as_string() : "";

    if (op_name == "predict") {
      // Admission control happens here, at arrival: the shed decision is a
      // pure function of the backlog, before any inference work is spent.
      Pending p{std::move(request), id, Clock::now()};
      if (const auto shed = queue.try_push(std::move(p))) {
        {
          const std::lock_guard<std::mutex> lock(state_mu_);
          ++stats_.shed;
        }
        emit(render_error(
                 id, ServeError{ErrorKind::kOverload,
                                "admission queue full at depth " +
                                    std::to_string(shed->depth),
                                shed->retry_after_ms})
                 .dump());
      } else {
        const std::lock_guard<std::mutex> lock(state_mu_);
        ++stats_.admitted;
      }
    } else if (op_name == "shutdown") {
      shutdown_ack =
          dispatch(request, id, Clock::now(), queue.depth()).dump();
      break;
    } else {
      // Control-plane ops (reload/stats) run on the reader thread: reload
      // validation is off the serving path by construction — workers keep
      // draining predictions against the old model meanwhile.
      emit(dispatch(request, id, Clock::now(), queue.depth()).dump());
    }
  }

  // Graceful drain: stop admitting, answer everything already accepted.
  queue.close();
  for (std::thread& w : workers) w.join();
  if (!shutdown_ack.empty()) emit(shutdown_ack);
  return signalled ? kShutdownExitCode : 0;
}

}  // namespace napel::serve
