// Resilient prediction-serving runtime (`napel serve`).
//
// A long-running server that answers line-delimited JSON prediction
// requests over any line transport (stdin/stdout in the CLI; tests drive
// string streams) and stays correct and responsive under overload and
// faults:
//
//   * a bounded admission queue sheds excess load at the door with a
//     deterministic retry_after hint (ErrorKind::kOverload) instead of
//     growing an unbounded backlog;
//   * per-request deadline budgets are enforced *mid-inference*: the flat
//     forest is evaluated in tree chunks, and when the budget expires the
//     evaluated prefix is returned as a `degraded` prediction with a
//     certified interval (FlatForest::PrefixBounds) that provably contains
//     the full-ensemble prediction — a degraded answer is never a guess;
//   * validated hot model reload (ModelSlot): candidates are statically
//     analyzed off the serving path and swapped in atomically; in-flight
//     requests always finish on the model they started with;
//   * a circuit breaker trips after N consecutive inference faults and
//     serves certified-bounds midpoints while open, probing one request
//     after a cooldown before closing again.
//
// Wire format (one JSON object per line):
//   {"op":"predict","id":"r1","features":[...],"deadline_ms":5,
//    "allow_degraded":true}
//   {"op":"reload","model":"path/to/model.txt"}
//   {"op":"stats"}   {"op":"shutdown"}
// Responses echo the id and carry ok:true with the prediction (mode
// "full"/"degraded", certified intervals, model_generation) or ok:false
// with a ServeError. With one worker the response stream is a
// deterministic function of the request stream.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "serve/json.hpp"
#include "serve/model_slot.hpp"
#include "serve/serve_error.hpp"

namespace napel {
class FaultPlan;
}

namespace napel::serve {

/// Socket-agnostic line transport: the server only ever reads whole lines
/// and writes whole lines, so any stream-like carrier (stdio, a pipe, a
/// future TCP acceptor) plugs in here.
class Transport {
 public:
  virtual ~Transport() = default;
  /// Next request line; false on end-of-stream or interrupted read.
  virtual bool read_line(std::string& line) = 0;
  /// Emits one response line (the server serializes calls).
  virtual void write_line(std::string_view line) = 0;
};

/// Transport over iostreams — stdin/stdout in the CLI, stringstreams in
/// tests. Flushes after every line so a piped client never deadlocks
/// waiting for a buffered response.
class IoStreamTransport : public Transport {
 public:
  IoStreamTransport(std::istream& in, std::ostream& out) : in_(in), out_(out) {}
  bool read_line(std::string& line) override;
  void write_line(std::string_view line) override;

 private:
  std::istream& in_;
  std::ostream& out_;
};

struct ServerOptions {
  /// Bounded admission queue: requests beyond this backlog are shed.
  std::size_t queue_capacity = 64;
  /// Inference worker threads draining the queue. 1 (the default) makes
  /// the response stream deterministic and in request order.
  unsigned n_workers = 1;
  /// Per-request service-time estimate feeding the shed retry_after hint.
  std::uint32_t cost_hint_ms = 1;
  /// Deadline budget for requests that do not carry their own
  /// "deadline_ms"; 0 = no deadline. Measured from admission.
  std::uint32_t default_deadline_ms = 0;
  /// Queue depth at dequeue that switches to prefix (degraded) inference;
  /// 0 disables load-based degradation.
  std::size_t degrade_queue_depth = 0;
  /// Trees evaluated per forest when load-degraded.
  std::size_t degrade_trees = 16;
  /// Max predict requests a worker coalesces into one micro-batch at
  /// dequeue. Coalesced full-ensemble rows share one sharded batched
  /// traversal per forest (FlatForest::predict_batch) instead of
  /// per-request tree chunking; responses are identical either way.
  /// 1 = per-request dispatch.
  std::size_t batch_max = 16;
  /// How long a worker lingers for more arrivals when the backlog alone
  /// did not fill a micro-batch, in milliseconds. 0 (the default) batches
  /// only what is already queued, adding no latency; small values trade
  /// first-request latency for larger batches under a trickle load.
  std::uint32_t batch_linger_ms = 0;
  /// Consecutive inference faults that trip the circuit breaker.
  int breaker_threshold = 5;
  /// Open-state responses served (as certified-bounds midpoints) before
  /// the breaker half-opens and probes a real inference.
  int breaker_cooldown = 16;
  /// Retry policy for the reload path's transient I/O failures.
  RetryPolicy reload_retry;
  /// When non-empty, every accepted reload stages an active-model record
  /// here via the crash-safe atomic writer.
  std::string state_path;
  /// Deterministic fault injection (tests / chaos drills). Site
  /// "serve/infer" fires per predict request: kThrow = inference fault,
  /// kHang = spin until the deadline budget expires, kCorruptWrite =
  /// distort the prediction so the certified-bounds assertion trips.
  FaultPlan* faults = nullptr;
};

/// Monotonic counters; snapshot via Server::stats_snapshot().
struct ServeStats {
  std::uint64_t admitted = 0;          ///< predict requests accepted
  std::uint64_t served_full = 0;       ///< full-ensemble responses
  std::uint64_t served_degraded = 0;   ///< prefix / midpoint responses
  std::uint64_t shed = 0;              ///< overload rejections
  std::uint64_t bad_requests = 0;
  std::uint64_t deadline_rejected = 0; ///< expired + allow_degraded=false
  std::uint64_t inference_faults = 0;
  std::uint64_t reloads_ok = 0;
  std::uint64_t reloads_rejected = 0;
  std::uint64_t breaker_opens = 0;
  std::uint64_t micro_batches = 0;    ///< coalesced batches (>= 2 requests)
  std::uint64_t batched_predicts = 0; ///< rows served via the batched kernel
};

class Server {
 public:
  Server(ServerOptions opts, std::shared_ptr<const ServedModel> model);

  /// Serves until end-of-stream, a {"op":"shutdown"} request, or a
  /// shutdown signal (common/shutdown.hpp). Always drains: every admitted
  /// request gets a response before run() returns. Returns 0 for EOF or a
  /// shutdown op, kShutdownExitCode for a signal-initiated drain.
  int run(Transport& transport);

  /// Synchronous single-request entry point: parse, dispatch, render.
  /// `queue_depth` is the load signal for the degradation policy (run()
  /// passes the depth observed at dequeue; direct callers pass their own).
  /// Exactly the function run()'s workers execute, so unit tests and the
  /// bench exercise the real serving path without threads.
  std::string handle_line(const std::string& line, std::size_t queue_depth = 0);

  /// Batch entry point: handles `lines` as one admission slice — predict
  /// requests coalesce into a single micro-batch (see do_predict_batch),
  /// other ops dispatch in place — and returns one response per line, in
  /// order. Every response is byte-identical to handle_line on the same
  /// line; this is the function run()'s workers execute on a pop_batch
  /// slice, exposed so tests and the bench drive the real batch path
  /// without threads.
  std::vector<std::string> handle_lines(const std::vector<std::string>& lines,
                                        std::size_t queue_depth = 0);

  ServeStats stats_snapshot() const;
  std::shared_ptr<const ServedModel> model_snapshot() const {
    return slot_.snapshot();
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct Deadline {
    bool armed = false;
    Clock::time_point at{};
    bool expired() const { return armed && Clock::now() >= at; }
  };

  struct Pending {
    JsonValue request;
    std::string id;
    Clock::time_point admitted{};
  };

  enum class Breaker : std::uint8_t { kClosed, kOpen, kHalfOpen };

  JsonValue dispatch(const JsonValue& request, const std::string& id,
                     Clock::time_point admitted, std::size_t queue_depth);
  JsonValue do_predict(const JsonValue& request, const std::string& id,
                       Clock::time_point admitted, std::size_t queue_depth);

  /// Serves a coalesced micro-batch, one response per request, in
  /// admission order. Rows eligible for full-ensemble inference (no
  /// deadline armed, no load/breaker degradation, no fault plan, valid
  /// features) share one sharded predict_batch traversal per forest;
  /// every other row — degraded, deadlined, invalid — takes the exact
  /// per-request do_predict path, so batching never changes a response,
  /// only the work layout.
  std::vector<JsonValue> do_predict_batch(std::vector<Pending>& batch,
                                          std::size_t queue_depth);
  JsonValue do_reload(const JsonValue& request, const std::string& id);
  JsonValue do_stats(std::size_t queue_depth);
  JsonValue bad_request(const std::string& id, std::string message);

  /// True when this request may run real inference; false = breaker open,
  /// serve the certified-bounds midpoint without touching the arena.
  bool breaker_admit();
  void breaker_success();
  void breaker_fault();

  /// Evaluates one forest under the deadline, up to `max_trees`; fills the
  /// certified interval when stopping early.
  struct ForestEval {
    double value = 0.0;
    ml::FlatForest::ValueBounds interval{};
    std::size_t trees_used = 0;
    bool full = false;
  };
  static ForestEval eval_forest(const ml::FlatForest& forest,
                                const ml::FlatForest::PrefixBounds& prefix,
                                std::span<const double> x,
                                const Deadline& deadline,
                                std::size_t max_trees);

  ServerOptions opts_;
  ModelSlot slot_;

  mutable std::mutex state_mu_;  // stats + breaker
  ServeStats stats_;
  Breaker breaker_ = Breaker::kClosed;
  int consecutive_faults_ = 0;
  int breaker_budget_ = 0;  ///< open-state responses until half-open

  std::atomic<std::uint64_t> predict_seq_{0};  // fault-site occurrence index
};

}  // namespace napel::serve
