// Bounded admission queue with backpressure.
//
// The first line of defense of the serving runtime: requests that arrive
// faster than the workers drain them are *shed at the door* with a
// deterministic retry_after hint, instead of growing an unbounded backlog
// whose tail would blow every deadline anyway. try_push never blocks and
// never allocates beyond the queued items; pop blocks until an item, close
// or shutdown. The shed decision is a pure function of the queue depth at
// arrival, so a scripted request stream sheds the same requests every run.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace napel::serve {

template <typename T>
class AdmissionQueue {
 public:
  /// `cost_hint_ms` is the server's per-request service-time estimate used
  /// to turn a depth into a retry_after hint: a shed client should wait
  /// roughly one full queue drain before retrying.
  explicit AdmissionQueue(std::size_t capacity,
                          std::uint32_t cost_hint_ms = 1)
      : capacity_(capacity == 0 ? 1 : capacity),
        cost_hint_ms_(cost_hint_ms == 0 ? 1 : cost_hint_ms) {}

  struct Shed {
    std::uint32_t retry_after_ms;
    std::size_t depth;  ///< depth observed at the shed decision
  };

  /// Admits `item` or sheds it: nullopt = admitted, otherwise the shed
  /// record with the deterministic backpressure hint.
  std::optional<Shed> try_push(T item) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (!closed_ && items_.size() < capacity_) {
        items_.push_back(std::move(item));
        ready_.notify_one();
        return std::nullopt;
      }
      ++shed_;
    }
    return Shed{static_cast<std::uint32_t>(capacity_ * cost_hint_ms_),
                capacity_};
  }

  /// Blocks for the next item. Returns false when the queue is closed and
  /// drained. `depth_at_pop` reports how many items remained *behind* this
  /// one — the load signal the degradation policy keys on.
  bool pop(T& out, std::size_t& depth_at_pop) {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    depth_at_pop = items_.size();
    return true;
  }

  /// Blocks for at least one item, then drains up to `max_items` of the
  /// backlog into `out` (admission order preserved) — the micro-batching
  /// primitive. The batch size adapts to load by construction: an idle
  /// server pops singletons with zero added latency, a loaded one hands
  /// the worker the whole backlog slice in one wakeup. When `linger` is
  /// positive and the backlog alone did not fill the batch, waits up to
  /// that long for more arrivals (bounded latency budget; the first
  /// request never waits longer than `linger` past its pop). Returns
  /// false when the queue is closed and drained. `depth_at_pop` reports
  /// the backlog left *behind* the batch — the same load signal pop()
  /// reports, observed once for the whole batch.
  bool pop_batch(std::vector<T>& out, std::size_t max_items,
                 std::chrono::milliseconds linger,
                 std::size_t& depth_at_pop) {
    out.clear();
    if (max_items == 0) max_items = 1;
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    const auto take = [&] {
      while (out.size() < max_items && !items_.empty()) {
        out.push_back(std::move(items_.front()));
        items_.pop_front();
      }
    };
    take();
    if (linger.count() > 0 && out.size() < max_items && !closed_) {
      const auto until = std::chrono::steady_clock::now() + linger;
      while (out.size() < max_items && !closed_) {
        if (!ready_.wait_until(lock, until, [this] {
              return closed_ || !items_.empty();
            }))
          break;  // linger budget spent with nothing new queued
        take();
      }
    }
    depth_at_pop = items_.size();
    return true;
  }

  /// Stops admission; queued items still drain through pop().
  void close() {
    const std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    ready_.notify_all();
  }

  std::size_t depth() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  std::uint64_t shed_count() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return shed_;
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  const std::uint32_t cost_hint_ms_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
  std::uint64_t shed_ = 0;
};

}  // namespace napel::serve
