// Minimal deterministic JSON for the serving runtime's wire format.
//
// The server speaks line-delimited JSON (one request / one response per
// line). This is a small, dependency-free value type with a recursive-
// descent parser and a renderer whose output is deterministic: objects
// keep insertion order, numbers print as %.17g (the shortest form that
// round-trips a double, integral values render without a decimal point),
// strings escape exactly the mandatory set. Two servers fed the same
// request stream emit byte-identical responses.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace napel::serve {

/// Thrown by JsonValue::parse on malformed input; the message carries the
/// byte offset of the first offending character.
class JsonParseError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null
  static JsonValue boolean(bool b);
  static JsonValue number(double v);
  static JsonValue string(std::string s);
  static JsonValue array();
  static JsonValue object();

  /// Parses one complete JSON document; trailing non-space bytes are an
  /// error (a line holds exactly one value).
  static JsonValue parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;

  /// Object member by key, or nullptr. Lookup is linear — request objects
  /// have a handful of keys.
  const JsonValue* find(std::string_view key) const;

  /// Object append (replaces an existing key in place, order preserved).
  JsonValue& set(std::string key, JsonValue v);
  /// Array append.
  void push_back(JsonValue v);

  /// Renders the value on one line, deterministically.
  std::string dump() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;

  void dump_to(std::string& out) const;
};

}  // namespace napel::serve
