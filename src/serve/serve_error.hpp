// Typed error taxonomy for the prediction-serving runtime.
//
// ServeError extends the pipeline's PipelineError model (common/result.hpp
// — the serving kinds kOverload / kDeadlineExceeded / kBadRequest /
// kModelReloadRejected live in the same ErrorKind enum) with the wire-side
// details a client needs: a retry_after hint for shed requests and
// deterministic text/JSON rendering. Every error response the server emits
// goes through render_error(), so the wire format has exactly one shape.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "common/result.hpp"
#include "serve/json.hpp"

namespace napel::serve {

struct ServeError {
  ErrorKind kind = ErrorKind::kBadRequest;
  std::string message;
  /// Backoff hint for kOverload, milliseconds; 0 everywhere else.
  std::uint32_t retry_after_ms = 0;

  /// Bridge into the pipeline's structured error model (context = the
  /// request id), so serving failures can flow through Result<T> plumbing.
  PipelineError to_pipeline_error(std::string context) const {
    return PipelineError{.kind = kind,
                         .context = std::move(context),
                         .message = message,
                         .attempts = 0};
  }

  /// "[kind] message (retry after Nms)" — deterministic.
  std::string to_string() const;

  /// {"kind":"...","message":"...","retry_after_ms":N} — the retry hint is
  /// present only when non-zero, so non-overload errors stay compact.
  JsonValue to_json() const;
};

/// The complete error response line for a request: {"id":...,"ok":false,
/// "error":{...}}. `id` is omitted when the request had none (e.g. an
/// unparseable line).
JsonValue render_error(const std::string& id, const ServeError& err);

}  // namespace napel::serve
