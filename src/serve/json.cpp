#include "serve/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/check.hpp"

namespace napel::serve {

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.num_ = d;
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

bool JsonValue::as_bool() const {
  NAPEL_CHECK_MSG(is_bool(), "JSON value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  NAPEL_CHECK_MSG(is_number(), "JSON value is not a number");
  return num_;
}

const std::string& JsonValue::as_string() const {
  NAPEL_CHECK_MSG(is_string(), "JSON value is not a string");
  return str_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  NAPEL_CHECK_MSG(is_array(), "JSON value is not an array");
  return arr_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  NAPEL_CHECK_MSG(is_object(), "JSON value is not an object");
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

JsonValue& JsonValue::set(std::string key, JsonValue v) {
  NAPEL_CHECK_MSG(is_object(), "JSON value is not an object");
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  obj_.emplace_back(std::move(key), std::move(v));
  return *this;
}

void JsonValue::push_back(JsonValue v) {
  NAPEL_CHECK_MSG(is_array(), "JSON value is not an array");
  arr_.push_back(std::move(v));
}

namespace {

void dump_escaped(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(double v, std::string& out) {
  // Non-finite doubles have no JSON spelling; the serving layer clamps
  // them out before rendering, so reaching here is a caller bug.
  NAPEL_CHECK_MSG(std::isfinite(v), "non-finite number in JSON output");
  char buf[40];
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  out += buf;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue run() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing bytes after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonParseError(what + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::string(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue::boolean(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue::boolean(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue{};
        fail("invalid literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.set(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}'");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape digit");
          }
          // BMP-only UTF-8 encoding; surrogate pairs are not needed by the
          // serving wire format (ids and paths are ASCII in practice).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
          }
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("invalid number");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      fail("invalid number");
    }
    if (!std::isfinite(v)) {
      pos_ = start;
      fail("number out of range");
    }
    return JsonValue::number(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).run();
}

void JsonValue::dump_to(std::string& out) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; return;
    case Kind::kBool: out += bool_ ? "true" : "false"; return;
    case Kind::kNumber: dump_number(num_, out); return;
    case Kind::kString: dump_escaped(str_, out); return;
    case Kind::kArray: {
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out += ',';
        arr_[i].dump_to(out);
      }
      out += ']';
      return;
    }
    case Kind::kObject: {
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) out += ',';
        dump_escaped(obj_[i].first, out);
        out += ':';
        obj_[i].second.dump_to(out);
      }
      out += '}';
      return;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

}  // namespace napel::serve
