#include "serve/model_slot.hpp"

#include <utility>

#include "common/atomic_file.hpp"
#include "common/check.hpp"
#include "napel/model_io.hpp"
#include "verify/forest_analyzer.hpp"

namespace napel::serve {

std::shared_ptr<const ServedModel> ServedModel::make(
    core::NapelModel model, std::uint64_t generation,
    std::string source_path) {
  NAPEL_CHECK_MSG(model.is_trained(), "cannot serve an untrained model");
  auto served = std::make_shared<ServedModel>();
  served->ipc_prefix = model.ipc_flat().prefix_bounds();
  served->power_prefix = model.energy_flat().prefix_bounds();
  served->model = std::move(model);
  served->generation = generation;
  served->source_path = std::move(source_path);
  return served;
}

ModelSlot::ModelSlot(std::shared_ptr<const ServedModel> initial)
    : current_(std::move(initial)) {
  NAPEL_CHECK_MSG(current_ != nullptr, "ModelSlot needs an initial model");
}

std::shared_ptr<const ServedModel> ModelSlot::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

Result<std::uint64_t> ModelSlot::reload(const std::string& path,
                                        const RetryPolicy& retry,
                                        const std::string& state_path,
                                        FaultPlan* faults) {
  // Validation runs entirely outside the slot lock: the old model keeps
  // serving while the candidate is loaded and abstract-interpreted. Only
  // transient outcomes (I/O) are retried; a structurally rejected model
  // stays rejected no matter how often it is re-read.
  Result<std::unique_ptr<core::NapelModel>> candidate = with_retries(
      retry, /*key=*/0x5e77e10adULL,  // "serve-load": the reload retry key
      [&] { return verify::validate_reload_candidate(path, nullptr); });
  if (!candidate.ok()) return candidate.error();

  const std::uint64_t next_gen = snapshot()->generation + 1;
  std::shared_ptr<const ServedModel> served =
      ServedModel::make(std::move(*candidate.value()), next_gen, path);

  // Stage the active-model record before the swap: if the write fails the
  // reload is refused as a whole, so the record can never name a model
  // that was not published (and a crash between write and swap re-loads
  // the validated candidate, which is the intended end state anyway).
  if (!state_path.empty()) {
    const std::string record =
        "napel-serve-active generation=" + std::to_string(next_gen) +
        " model=" + path + "\n";
    Status s = atomic_write_file(state_path, record, faults);
    if (!s.ok()) return s.error();
  }

  {
    const std::lock_guard<std::mutex> lock(mu_);
    current_ = std::move(served);
  }
  return next_gen;
}

}  // namespace napel::serve
