#include "serve/serve_error.hpp"

namespace napel::serve {

std::string ServeError::to_string() const {
  std::string s = "[";
  s += error_kind_name(kind);
  s += "] ";
  s += message;
  if (retry_after_ms > 0) {
    s += " (retry after ";
    s += std::to_string(retry_after_ms);
    s += "ms)";
  }
  return s;
}

JsonValue ServeError::to_json() const {
  JsonValue v = JsonValue::object();
  v.set("kind", JsonValue::string(std::string(error_kind_name(kind))));
  v.set("message", JsonValue::string(message));
  if (retry_after_ms > 0)
    v.set("retry_after_ms", JsonValue::number(retry_after_ms));
  return v;
}

JsonValue render_error(const std::string& id, const ServeError& err) {
  JsonValue v = JsonValue::object();
  if (!id.empty()) v.set("id", JsonValue::string(id));
  v.set("ok", JsonValue::boolean(false));
  v.set("error", err.to_json());
  return v;
}

}  // namespace napel::serve
