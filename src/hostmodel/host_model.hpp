// Analytic host-CPU performance/energy model — the reproduction's substitute
// for the measured IBM POWER9 AC922 + AMESTER power telemetry used in the
// paper's Figures 6 and 7.
//
// The model consumes the same microarchitecture-independent profile the
// NAPEL pipeline produces and estimates execution time and energy on an
// out-of-order multicore with a three-level cache hierarchy (Table 3 host
// parameters). Per-level hit ratios come from the profile's reuse-distance
// histogram (stack-distance cache model), so workloads with good locality
// (trmm, syrk, gesummv) run disproportionately faster on the host than
// memory-bound irregular ones (bfs, kmeans) — the separation that drives
// the paper's NMC-suitability conclusions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "profiler/profile.hpp"

namespace napel::hostmodel {

struct HostConfig {
  // Table 3: IBM POWER9 AC922 @ 2.3 GHz, 16 cores, 4-way SMT.
  double freq_ghz = 2.3;
  unsigned cores = 16;
  unsigned smt = 4;
  unsigned issue_width = 4;

  unsigned line_bytes = 128;
  std::uint64_t l1_bytes = 32 * 1024;
  std::uint64_t l2_bytes = 256 * 1024;
  std::uint64_t l3_bytes = 10 * 1024 * 1024;

  double lat_l2_cycles = 12.0;
  double lat_l3_cycles = 40.0;
  double lat_dram_cycles = 220.0;

  /// Fraction of memory-stall latency the OoO window fails to hide.
  double stall_exposure = 0.35;
  /// Fraction of stride-predictable misses the hardware prefetchers hide
  /// (applied on top of OoO latency hiding). NMC PEs have no prefetchers —
  /// this asymmetry is why dense kernels "leverage the host cache
  /// hierarchy" (§3.4) while irregular ones do not.
  double prefetch_efficiency = 0.85;
  /// Throughput gain per extra SMT thread sharing a core.
  double smt_gain = 0.30;

  double dram_bw_gbs = 60.0;       ///< DDR4-2666, 2 channels effective

  // Power model (AMESTER-style wall numbers).
  double idle_watts = 60.0;
  double active_watts_per_core = 6.0;
  double dram_pj_per_byte = 20.0;

  static HostConfig paper_default() { return HostConfig{}; }

  /// Cache hierarchy scaled down by the same ~32x factor as the bench-scale
  /// workload inputs (Scale::kBench), preserving the working-set-to-cache
  /// ratios that drive the paper's host-vs-NMC separation. Frequencies,
  /// latencies, bandwidth, and power are unchanged — only capacities shrink.
  static HostConfig bench_scaled() {
    HostConfig c;
    c.l1_bytes /= 32;   // 1 KiB
    c.l2_bytes /= 32;   // 8 KiB
    c.l3_bytes /= 32;   // 320 KiB
    return c;
  }
};

struct HostResult {
  double time_seconds = 0.0;
  double energy_joules = 0.0;
  double edp = 0.0;
  double cpi_per_thread = 0.0;   ///< single-thread CPI before parallel scaling
  double effective_parallelism = 0.0;
  double dram_traffic_bytes = 0.0;
  bool bandwidth_bound = false;
  double miss_l1 = 0.0, miss_l2 = 0.0, miss_l3 = 0.0;  ///< per-access, cumulative
  double prefetch_coverage = 0.0;  ///< fraction of miss latency hidden
};

class HostModel {
 public:
  explicit HostModel(HostConfig cfg = HostConfig::paper_default());

  /// Estimates host execution of the profiled kernel.
  HostResult evaluate(const profiler::Profile& profile) const;

  const HostConfig& config() const { return cfg_; }

 private:
  HostConfig cfg_;
};

}  // namespace napel::hostmodel
