#include "hostmodel/host_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace napel::hostmodel {

HostModel::HostModel(HostConfig cfg) : cfg_(cfg) {
  NAPEL_CHECK(cfg_.freq_ghz > 0.0);
  NAPEL_CHECK(cfg_.cores >= 1);
  NAPEL_CHECK(cfg_.smt >= 1);
  NAPEL_CHECK(cfg_.l1_bytes < cfg_.l2_bytes && cfg_.l2_bytes < cfg_.l3_bytes);
  NAPEL_CHECK(cfg_.stall_exposure > 0.0 && cfg_.stall_exposure <= 1.0);
}

HostResult HostModel::evaluate(const profiler::Profile& p) const {
  HostResult r;
  const double instr = static_cast<double>(p.total_instructions);
  if (instr == 0.0) return r;

  // Per-access miss ratios from the stack-distance histogram. The profile
  // tracks 64B lines; a capacity of C bytes holds C/64 such blocks (the
  // host's 128B lines make this a slightly pessimistic hit estimate, a
  // second-order effect).
  const auto& rd = p.data_all_rd;
  r.miss_l1 = rd.miss_fraction(cfg_.l1_bytes / 64);
  r.miss_l2 = rd.miss_fraction(cfg_.l2_bytes / 64);
  r.miss_l3 = rd.miss_fraction(cfg_.l3_bytes / 64);

  // Single-thread CPI: issue-limited baseline plus exposed memory stalls.
  const double ilp = std::max(1.0, p.ilp[profiler::IlpAnalyzer::kNumSchedules - 1]);
  const double cpi_base =
      1.0 / std::min<double>(cfg_.issue_width, ilp);
  const double mem_frac =
      static_cast<double>(p.memory_ops()) / instr;
  // Average exposed latency per memory access through the hierarchy,
  // discounted by the stride prefetchers for predictable access streams.
  const double penalty =
      (r.miss_l1 - r.miss_l2) * cfg_.lat_l2_cycles +
      (r.miss_l2 - r.miss_l3) * cfg_.lat_l3_cycles +
      r.miss_l3 * cfg_.lat_dram_cycles;
  r.prefetch_coverage =
      cfg_.prefetch_efficiency * p.pc_stride_regular_fraction;
  r.cpi_per_thread = cpi_base + mem_frac * penalty * cfg_.stall_exposure *
                                    (1.0 - r.prefetch_coverage);

  // Parallel scaling: up to `cores` threads scale near-linearly; SMT
  // threads add fractional throughput.
  const double threads = static_cast<double>(std::max(1u, p.n_threads));
  const double hw_threads =
      static_cast<double>(cfg_.cores) * static_cast<double>(cfg_.smt);
  const double on_cores = std::min<double>(threads, cfg_.cores);
  const double smt_extra =
      std::min(std::max(0.0, threads - on_cores),
               hw_threads - static_cast<double>(cfg_.cores));
  r.effective_parallelism = on_cores + cfg_.smt_gain * smt_extra;

  const double cycles = instr * r.cpi_per_thread / r.effective_parallelism;
  double time = cycles / (cfg_.freq_ghz * 1e9);

  // Off-chip bandwidth ceiling.
  r.dram_traffic_bytes = static_cast<double>(p.memory_ops()) * r.miss_l3 *
                         static_cast<double>(cfg_.line_bytes);
  const double bw_time = r.dram_traffic_bytes / (cfg_.dram_bw_gbs * 1e9);
  if (bw_time > time) {
    time = bw_time;
    r.bandwidth_bound = true;
  }
  r.time_seconds = time;

  // Wall power: idle floor plus active cores plus DRAM traffic energy.
  const double active_cores =
      std::min<double>(cfg_.cores, std::ceil(r.effective_parallelism));
  const double watts =
      cfg_.idle_watts + cfg_.active_watts_per_core * active_cores;
  r.energy_joules =
      watts * time + r.dram_traffic_bytes * cfg_.dram_pj_per_byte * 1e-12;
  r.edp = r.energy_joules * time;
  return r;
}

}  // namespace napel::hostmodel
