#include "ml/mlp.hpp"

#include <cmath>
#include <numeric>

#include "common/check.hpp"

namespace napel::ml {

namespace {
double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }
}  // namespace

Mlp::Mlp(MlpParams params) : params_(params) {
  NAPEL_CHECK(params_.hidden_units >= 1);
  NAPEL_CHECK(params_.epochs >= 1);
  NAPEL_CHECK(params_.learning_rate > 0.0);
  NAPEL_CHECK(params_.momentum >= 0.0 && params_.momentum < 1.0);
}

double Mlp::forward(std::span<const double> x,
                    std::vector<double>& hidden) const {
  const unsigned h = params_.hidden_units;
  hidden.resize(h);
  for (unsigned j = 0; j < h; ++j) {
    const double* wrow = &w1_[j * (n_in_ + 1)];
    double z = wrow[n_in_];  // bias
    for (std::size_t f = 0; f < n_in_; ++f) z += wrow[f] * x[f];
    hidden[j] = sigmoid(z);
  }
  double out = w2_[h];  // bias
  for (unsigned j = 0; j < h; ++j) out += w2_[j] * hidden[j];
  return out;
}

void Mlp::fit(const Dataset& data) {
  NAPEL_CHECK_MSG(!data.empty(), "cannot fit on an empty dataset");
  scaler_.fit(data);
  const Dataset z = scaler_.transform_features(data);
  n_in_ = z.n_features();
  const unsigned h = params_.hidden_units;

  Rng rng(params_.seed);
  const double init1 = 1.0 / std::sqrt(static_cast<double>(n_in_ + 1));
  const double init2 = 1.0 / std::sqrt(static_cast<double>(h + 1));
  w1_.resize(static_cast<std::size_t>(h) * (n_in_ + 1));
  w2_.resize(h + 1);
  for (auto& w : w1_) w = rng.uniform(-init1, init1);
  for (auto& w : w2_) w = rng.uniform(-init2, init2);

  std::vector<double> v1(w1_.size(), 0.0), v2(w2_.size(), 0.0);
  std::vector<double> hidden;
  std::vector<std::size_t> order(z.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  curve_.clear();
  curve_.reserve(params_.epochs);
  double lr = params_.learning_rate;

  for (unsigned epoch = 0; epoch < params_.epochs; ++epoch) {
    rng.shuffle(order);
    double sse = 0.0;
    for (std::size_t i : order) {
      const auto x = z.row(i);
      const double y = z.target(i);
      const double out = forward(x, hidden);
      const double err = out - y;
      sse += err * err;

      // Output layer.
      for (unsigned j = 0; j < h; ++j) {
        const double g = err * hidden[j] + params_.l2 * w2_[j];
        v2[j] = params_.momentum * v2[j] - lr * g;
        w2_[j] += v2[j];
      }
      v2[h] = params_.momentum * v2[h] - lr * err;
      w2_[h] += v2[h];

      // Hidden layer.
      for (unsigned j = 0; j < h; ++j) {
        const double delta =
            err * w2_[j] * hidden[j] * (1.0 - hidden[j]);
        double* wrow = &w1_[j * (n_in_ + 1)];
        double* vrow = &v1[j * (n_in_ + 1)];
        for (std::size_t f = 0; f < n_in_; ++f) {
          const double g = delta * x[f] + params_.l2 * wrow[f];
          vrow[f] = params_.momentum * vrow[f] - lr * g;
          wrow[f] += vrow[f];
        }
        vrow[n_in_] = params_.momentum * vrow[n_in_] - lr * delta;
        wrow[n_in_] += vrow[n_in_];
      }
    }
    curve_.push_back(sse / static_cast<double>(z.size()));
    lr *= params_.lr_decay;
  }
  fitted_ = true;
}

double Mlp::predict(std::span<const double> x) const {
  NAPEL_CHECK_MSG(fitted_, "predict before fit");
  const std::vector<double> z = scaler_.transform(x);
  std::vector<double> hidden;
  return scaler_.inverse_target(forward(z, hidden));
}

}  // namespace napel::ml
