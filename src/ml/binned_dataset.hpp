// Quantile-binned feature matrix for histogram tree training (the
// LightGBM-style preprocessing step): every feature is discretized once
// per training run into at most 256 ordinal codes, so per-node split
// finding degrades from scanning sorted rows to accumulating tiny
// fixed-size histograms (see ml/hist_split.hpp).
//
// Layout is SoA column-major — one contiguous u8 code column per feature —
// because the histogram build streams whole columns per node. Bin edges
// are *actual data values* (the largest value mapped into the bin), so a
// split "code <= b" is exactly the predicate "x <= upper_edge(b)" on raw
// features; when a feature has <= 256 distinct values the binning is
// lossless and hist-mode splits land on the same thresholds exact mode
// picks (the equivalence the test suite pins down).
//
// This header and hist_split.hpp are the only places allowed to do raw
// bin-code arithmetic (enforced by tools/source_lint.py, rule
// raw-bin-codes); everything else consumes the higher-level tree-building
// API.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.hpp"

namespace napel::ml {

class BinnedDataset {
 public:
  /// Ordinal per-feature bin code; kMaxBins keeps it one byte.
  using BinCode = std::uint8_t;
  static constexpr std::size_t kMaxBins = 256;

  /// Bins every feature of `data`. Features are binned independently and
  /// concurrently (n_threads: 0 = process-wide pool, 1 = serial); the
  /// resulting codes and edges are identical at any thread count.
  explicit BinnedDataset(const Dataset& data, unsigned n_threads = 1);

  std::size_t n_rows() const { return n_; }
  std::size_t n_features() const { return p_; }

  /// Bins actually used by feature f (1 for a constant column).
  std::size_t n_bins(std::size_t f) const {
    return offsets_[f + 1] - offsets_[f];
  }

  /// Column-major code column of feature f (n_rows entries).
  std::span<const BinCode> codes(std::size_t f) const {
    return {codes_.data() + f * n_, n_};
  }

  /// Largest dataset value mapped into bin b of feature f — the threshold
  /// a cut after bin b splits on ("x <= edge" keeps exactly bins [0, b]).
  double bin_upper_edge(std::size_t f, std::size_t b) const {
    return edges_[offsets_[f] + b];
  }

  /// Offset of feature f's bin range inside a flat all-feature histogram
  /// of total_bins() entries (hist_split's arena layout).
  std::size_t bin_offset(std::size_t f) const { return offsets_[f]; }
  std::size_t total_bins() const { return offsets_[p_]; }

  /// Training targets, copied once so tree builders never touch the
  /// row-major source dataset again.
  std::span<const double> targets() const { return y_; }

 private:
  std::size_t n_ = 0;
  std::size_t p_ = 0;
  std::vector<BinCode> codes_;        // p columns of n codes
  std::vector<std::size_t> offsets_;  // p+1 prefix sums of per-feature bins
  std::vector<double> edges_;         // flat per-bin upper edges
  std::vector<double> y_;
};

}  // namespace napel::ml
