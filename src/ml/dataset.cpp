#include "ml/dataset.hpp"

#include <numeric>

#include "common/check.hpp"

namespace napel::ml {

Dataset::Dataset(std::size_t n_features, std::vector<std::string> names)
    : n_features_(n_features), names_(std::move(names)) {
  NAPEL_CHECK(n_features >= 1);
  NAPEL_CHECK_MSG(names_.empty() || names_.size() == n_features,
                  "feature-name count must match feature count");
}

void Dataset::add_row(std::span<const double> x, double y) {
  NAPEL_CHECK_MSG(x.size() == n_features_, "row arity mismatch");
  x_.insert(x_.end(), x.begin(), x.end());
  y_.push_back(y);
}

std::span<const double> Dataset::row(std::size_t i) const {
  NAPEL_CHECK(i < size());
  return {x_.data() + i * n_features_, n_features_};
}

double Dataset::target(std::size_t i) const {
  NAPEL_CHECK(i < size());
  return y_[i];
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out(n_features_, names_);
  for (std::size_t i : indices) out.add_row(row(i), target(i));
  return out;
}

std::vector<std::size_t> Dataset::kfold_assignment(std::size_t k,
                                                   Rng& rng) const {
  NAPEL_CHECK(k >= 2);
  NAPEL_CHECK_MSG(size() >= k, "fewer rows than folds");
  std::vector<std::size_t> order(size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);
  std::vector<std::size_t> fold(size());
  for (std::size_t pos = 0; pos < order.size(); ++pos)
    fold[order[pos]] = pos % k;
  return fold;
}

std::pair<Dataset, Dataset> Dataset::split_fold(
    std::span<const std::size_t> fold_of_row, std::size_t test_fold) const {
  NAPEL_CHECK(fold_of_row.size() == size());
  Dataset train(n_features_, names_);
  Dataset test(n_features_, names_);
  for (std::size_t i = 0; i < size(); ++i) {
    (fold_of_row[i] == test_fold ? test : train).add_row(row(i), target(i));
  }
  return {std::move(train), std::move(test)};
}

}  // namespace napel::ml
