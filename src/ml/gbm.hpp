// Gradient-boosted regression trees — the other major ensemble family
// (boosting vs the paper's bagging). Squared-loss gradient boosting with
// shallow CART base learners, shrinkage, and row subsampling; used in the
// ensemble ablation to show why NAPEL's random forest is a sensible choice
// for small DoE training sets.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/decision_tree.hpp"
#include "ml/regressor.hpp"

namespace napel::ml {

struct GbmParams {
  unsigned n_rounds = 200;
  double learning_rate = 0.05;
  unsigned max_depth = 4;
  std::size_t min_samples_leaf = 4;
  /// Fraction of rows sampled (without replacement) per round.
  double subsample = 0.8;
  std::uint64_t seed = 29;
};

class GradientBoosting final : public Regressor {
 public:
  explicit GradientBoosting(GbmParams params = {});

  void fit(const Dataset& data) override;
  double predict(std::span<const double> x) const override;
  bool is_fitted() const override { return fitted_; }

  std::size_t round_count() const { return trees_.size(); }
  /// Training MSE after each boosting round (diagnostic).
  const std::vector<double>& training_curve() const { return curve_; }

  const GbmParams& params() const { return params_; }

 private:
  GbmParams params_;
  double base_ = 0.0;
  std::vector<DecisionTree> trees_;
  std::vector<double> curve_;
  bool fitted_ = false;
};

}  // namespace napel::ml
