#include "ml/ridge.hpp"

#include <cmath>

#include "common/check.hpp"
#include "ml/linalg.hpp"

namespace napel::ml {

RidgeRegression::RidgeRegression(RidgeParams params) : params_(params) {
  NAPEL_CHECK(params_.lambda >= 0.0);
}

void RidgeRegression::fit(const Dataset& data) {
  NAPEL_CHECK_MSG(!data.empty(), "cannot fit on an empty dataset");
  const std::size_t p = data.n_features();
  const std::size_t d = p + 1;  // + intercept column
  const std::size_t n = data.size();

  // Normal equations G·β = r with G = XᵀX (+ λ on non-intercept diagonal).
  std::vector<double> g(d * d, 0.0);
  std::vector<double> r(d, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto x = data.row(i);
    const double y = data.target(i);
    for (std::size_t a = 0; a < p; ++a) {
      const double xa = x[a];
      for (std::size_t b = a; b < p; ++b) g[a * d + b] += xa * x[b];
      g[a * d + p] += xa;  // intercept column
      r[a] += xa * y;
    }
    g[p * d + p] += 1.0;
    r[p] += y;
  }
  for (std::size_t a = 0; a < d; ++a)
    for (std::size_t b = 0; b < a; ++b) g[a * d + b] = g[b * d + a];
  for (std::size_t a = 0; a < p; ++a) g[a * d + a] += params_.lambda;

  std::vector<double> beta(d, 0.0);
  // Escalate regularization until the system factors (handles degenerate
  // leaves with p >> n and duplicated columns).
  double extra = 0.0;
  for (int attempt = 0; attempt < 6; ++attempt) {
    std::vector<double> gcopy = g;
    if (extra > 0.0)
      for (std::size_t a = 0; a < d; ++a) gcopy[a * d + a] += extra;
    if (cholesky_solve(gcopy, d, r, beta)) {
      w_.assign(beta.begin(), beta.begin() + static_cast<std::ptrdiff_t>(p));
      bias_ = beta[p];
      fitted_ = true;
      return;
    }
    extra = extra == 0.0 ? 1e-6 : extra * 100.0;
  }
  // Fully degenerate: fall back to the mean predictor.
  double mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean += data.target(i);
  w_.assign(p, 0.0);
  bias_ = mean / static_cast<double>(n);
  fitted_ = true;
}

double RidgeRegression::predict(std::span<const double> x) const {
  NAPEL_CHECK_MSG(fitted_, "predict before fit");
  NAPEL_CHECK(x.size() == w_.size());
  double s = bias_;
  for (std::size_t a = 0; a < w_.size(); ++a) s += w_[a] * x[a];
  return s;
}

}  // namespace napel::ml
