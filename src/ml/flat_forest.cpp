#include "ml/flat_forest.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "ml/forest_kernels.hpp"

namespace napel::ml {

namespace {

/// Rows per parallel shard. Matches the kernels' internal row block, so
/// sharding never splits a block: each task hands the kernel whole 64-row
/// blocks and the kernel's own blocking is a no-op partition of them —
/// output bytes cannot depend on the shard boundaries.
constexpr std::size_t kShardRows = 64;

/// Kernel for a dispatch level, assuming `level` already passed
/// clamp_to_cpu. The AVX2 kernel's i32 gather indices address dwords of
/// the 32-byte packed records (index up to 8 * node + 4), so arenas past
/// 2^28 nodes (not constructible today — compile caps the arena at u32
/// total nodes and real forests are orders of magnitude smaller — but
/// guarded for safety) degrade to the portable kernel.
detail::BatchKernel kernel_for(SimdLevel level,
                               [[maybe_unused]] std::size_t node_count) {
  switch (level) {
    case SimdLevel::kAvx2:
#if defined(NAPEL_ML_HAVE_AVX2)
      if (node_count < (std::size_t{1} << 28)) return &detail::batch_avx2;
#endif
      [[fallthrough]];
    case SimdLevel::kPortable:
      return &detail::batch_portable;
    case SimdLevel::kScalar:
      return &detail::batch_scalar;
  }
  return &detail::batch_scalar;
}

}  // namespace

FlatForest::FlatForest(const RandomForest& forest) {
  NAPEL_CHECK_MSG(forest.is_fitted(), "cannot compile an unfitted forest");
  n_features_ = forest.n_features();

  std::size_t total = 0;
  for (std::size_t t = 0; t < forest.tree_count(); ++t)
    total += forest.tree(t).node_count();
  NAPEL_CHECK_MSG(total <= 0xffffffffu, "forest too large for u32 arena");
  feature_.reserve(total);
  threshold_.reserve(total);
  left_.reserve(total);
  right_.reserve(total);
  value_.reserve(total);
  nodes_.reserve(total);
  tree_offset_.reserve(forest.tree_count() + 1);
  tree_steps_.reserve(forest.tree_count());

  std::vector<unsigned> depth;
  for (std::size_t t = 0; t < forest.tree_count(); ++t) {
    const auto base = static_cast<std::uint32_t>(feature_.size());
    tree_offset_.push_back(base);
    // DecisionTree stores nodes in DFS preorder already; packing is a copy
    // with child links rebased to arena-absolute indices. Leaves get the
    // lockstep encoding: a +inf threshold and self-referential children, so
    // the batch kernel can keep stepping a finished row without branching
    // (x[0] <= +inf routes left, back to the same leaf, forever).
    const auto& nodes = forest.tree(t).nodes_;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const DecisionTree::Node& nd = nodes[i];
      const bool leaf = nd.feature < 0;
      const auto self = static_cast<std::uint32_t>(base + i);
      feature_.push_back(nd.feature);
      threshold_.push_back(
          leaf ? std::numeric_limits<double>::infinity() : nd.threshold);
      left_.push_back(leaf ? self : base + nd.left);
      right_.push_back(leaf ? self : base + nd.right);
      value_.push_back(nd.value);
      nodes_.push_back({threshold_.back(), left_.back(), right_.back(),
                        nd.feature, 0, 0.0});
    }
    // Deepest leaf of this tree = the fixed step count that parks every
    // row of a lockstep block on its leaf. Children follow their parent in
    // preorder, so one forward pass settles all depths.
    depth.assign(nodes.size(), 0);
    unsigned deepest = 0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i].feature < 0) {
        deepest = std::max(deepest, depth[i]);
      } else {
        depth[nodes[i].left] = depth[i] + 1;
        depth[nodes[i].right] = depth[i] + 1;
      }
    }
    tree_steps_.push_back(deepest);
  }
  tree_offset_.push_back(static_cast<std::uint32_t>(feature_.size()));
}

void FlatForest::certify() const {
  const auto fail = [](const std::string& what) {
    throw ArenaCertificationError("arena certification: " + what);
  };
  if (!is_compiled()) fail("forest is not compiled");
  if (n_features_ == 0) fail("feature count is zero");
  const std::size_t n = feature_.size();
  if (threshold_.size() != n || left_.size() != n || right_.size() != n ||
      value_.size() != n)
    fail("column lengths disagree");
  if (tree_offset_.front() != 0)
    fail("first tree offset is not zero");
  if (tree_offset_.back() != n)
    fail("last tree offset does not close the arena");
  if (tree_steps_.size() != tree_count())
    fail("lockstep step table length disagrees with tree count");

  std::vector<std::uint32_t> refs(n, 0);
  for (std::size_t t = 0; t < tree_count(); ++t) {
    const std::uint32_t o = tree_offset_[t];
    const std::uint32_t e = tree_offset_[t + 1];
    if (e <= o) fail("tree " + std::to_string(t) + " offsets not monotone");
    for (std::uint32_t i = o; i < e; ++i) {
      const std::int32_t f = feature_[i];
      if (!std::isfinite(value_[i]))
        fail("node " + std::to_string(i) + " value is not finite");
      if (f < 0) {
        if (f != -1)
          fail("node " + std::to_string(i) + " has invalid leaf marker");
        if (threshold_[i] != std::numeric_limits<double>::infinity())
          fail("leaf " + std::to_string(i) + " threshold is not +inf");
        if (left_[i] != i || right_[i] != i)
          fail("leaf " + std::to_string(i) + " is not self-linked");
        continue;
      }
      if (static_cast<std::size_t>(f) >= n_features_)
        fail("node " + std::to_string(i) + " splits on out-of-schema feature");
      if (!std::isfinite(threshold_[i]))
        fail("node " + std::to_string(i) + " threshold is not finite");
      const std::uint32_t l = left_[i];
      const std::uint32_t r = right_[i];
      // Forward-only links within the node's own tree: traversal progress
      // is strictly monotone, so a certified arena can never cycle.
      if (l <= i || l >= e || r <= i || r >= e)
        fail("node " + std::to_string(i) + " child link escapes the tree");
      if (l == r)
        fail("node " + std::to_string(i) + " children collide");
      ++refs[l];
      ++refs[r];
    }
    // Tree-ness: the root is referenced by nothing, every other node by
    // exactly one parent (leaf self-links excluded above).
    for (std::uint32_t i = o; i < e; ++i) {
      const std::uint32_t expected = i == o ? 0 : 1;
      if (refs[i] != expected)
        fail("node " + std::to_string(i) +
             (refs[i] < expected ? " is unreachable debris"
                                 : " has multiple parents"));
    }
    // The recorded lockstep step count must reach the deepest leaf, or
    // predict_batch would stop mid-tree and read an internal node's value.
    std::vector<unsigned> depth(e - o, 0);
    unsigned deepest = 0;
    for (std::uint32_t i = o; i < e; ++i) {
      if (feature_[i] < 0) {
        deepest = std::max(deepest, depth[i - o]);
      } else {
        depth[left_[i] - o] = depth[i - o] + 1;
        depth[right_[i] - o] = depth[i - o] + 1;
      }
    }
    if (tree_steps_[t] != deepest)
      fail("tree " + std::to_string(t) + " lockstep step count " +
           std::to_string(tree_steps_[t]) + " != deepest leaf depth " +
           std::to_string(deepest));
  }
}

FlatForest::ValueBounds FlatForest::tree_value_bounds(std::size_t t) const {
  NAPEL_CHECK_MSG(is_compiled(), "value bounds before compile");
  NAPEL_CHECK(t < tree_count());
  ValueBounds b{std::numeric_limits<double>::infinity(),
                -std::numeric_limits<double>::infinity()};
  for (std::uint32_t i = tree_offset_[t]; i < tree_offset_[t + 1]; ++i) {
    if (feature_[i] >= 0) continue;
    b.lo = std::min(b.lo, value_[i]);
    b.hi = std::max(b.hi, value_[i]);
  }
  return b;
}

FlatForest::ValueBounds FlatForest::value_bounds() const {
  NAPEL_CHECK_MSG(is_compiled(), "value bounds before compile");
  const std::size_t nt = tree_count();
  // Summed in tree order, exactly like the vote accumulation in every
  // prediction path, so the bounds are bit-exact envelopes.
  double lo_sum = 0.0;
  double hi_sum = 0.0;
  for (std::size_t t = 0; t < nt; ++t) {
    const ValueBounds b = tree_value_bounds(t);
    lo_sum += b.lo;
    hi_sum += b.hi;
  }
  return {lo_sum / static_cast<double>(nt), hi_sum / static_cast<double>(nt)};
}

double FlatForest::predict(std::span<const double> x) const {
  NAPEL_CHECK_MSG(is_compiled(), "predict before compile");
  NAPEL_CHECK(x.size() == n_features_);
  double s = 0.0;
  const std::size_t nt = tree_count();
  for (std::size_t t = 0; t < nt; ++t) s += traverse(t, x.data());
  return s / static_cast<double>(nt);
}

void FlatForest::run_batch(const double* X, std::size_t n_rows, double* out,
                           double* votes, unsigned n_threads,
                           std::optional<SimdLevel> level) const {
  const SimdLevel resolved =
      level ? clamp_to_cpu(*level) : resolved_simd_level();
  const detail::BatchKernel kernel = kernel_for(resolved, node_count());
  const detail::ForestView v{feature_.data(), threshold_.data(),
                             left_.data(),    right_.data(),
                             value_.data(),   nodes_.data(),
                             tree_offset_.data(), tree_steps_.data(),
                             tree_count(), n_features_};
  const std::size_t n_shards = (n_rows + kShardRows - 1) / kShardRows;
  if (n_shards <= 1 || effective_threads(n_threads) <= 1) {
    kernel(v, X, n_rows, out, votes);
    return;
  }
  // Shard over whole row blocks: every row writes only its own out / votes
  // slot and its result never depends on which rows share a kernel call,
  // so any partition — and any claim order — yields identical bytes.
  const std::size_t nt = v.n_trees;
  const std::size_t nf = n_features_;
  parallel_for(n_shards, n_threads, [&](std::size_t s) {
    const std::size_t r0 = s * kShardRows;
    const std::size_t rows = std::min(kShardRows, n_rows - r0);
    kernel(v, X + r0 * nf, rows, out != nullptr ? out + r0 : nullptr,
           votes != nullptr ? votes + r0 * nt : nullptr);
  });
}

bool FlatForest::simd_kernel_available(SimdLevel level) {
  if (level == SimdLevel::kAvx2)
    return detail::have_avx2_kernel() && cpu_supports(SimdLevel::kAvx2);
  return true;
}

void FlatForest::predict_batch(std::span<const double> X, std::size_t n_rows,
                               std::span<double> out, unsigned n_threads,
                               std::optional<SimdLevel> level) const {
  NAPEL_CHECK_MSG(is_compiled(), "predict before compile");
  NAPEL_CHECK(X.size() == n_rows * n_features_);
  NAPEL_CHECK(out.size() >= n_rows);
  if (n_rows == 0) return;
  run_batch(X.data(), n_rows, out.data(), nullptr, n_threads, level);
}

void FlatForest::predict_votes_batch(std::span<const double> X,
                                     std::size_t n_rows,
                                     std::span<double> votes,
                                     unsigned n_threads,
                                     std::optional<SimdLevel> level) const {
  NAPEL_CHECK_MSG(is_compiled(), "predict before compile");
  NAPEL_CHECK(X.size() == n_rows * n_features_);
  NAPEL_CHECK(votes.size() >= n_rows * tree_count());
  if (n_rows == 0) return;
  run_batch(X.data(), n_rows, nullptr, votes.data(), n_threads, level);
}

double FlatForest::accumulate_votes(std::span<const double> x,
                                    std::size_t t_begin, std::size_t t_end,
                                    double sum) const {
  NAPEL_CHECK_MSG(is_compiled(), "predict before compile");
  NAPEL_CHECK(x.size() == n_features_);
  NAPEL_CHECK(t_begin <= t_end && t_end <= tree_count());
  for (std::size_t t = t_begin; t < t_end; ++t) sum += traverse(t, x.data());
  return sum;
}

FlatForest::ValueBounds FlatForest::PrefixBounds::interval(
    double prefix_sum, std::size_t k_evaluated) const {
  NAPEL_CHECK(k_evaluated <= tree_count());
  const std::size_t nt = tree_count();
  NAPEL_CHECK(nt > 0);
  // Continue the vote summation from the exact partial sum, substituting
  // each unevaluated tree's certified range — same values, same order, so
  // fl-monotonicity brackets the genuine full sum on both sides.
  double lo = prefix_sum;
  double hi = prefix_sum;
  for (std::size_t t = k_evaluated; t < nt; ++t) {
    lo += tree_lo[t];
    hi += tree_hi[t];
  }
  return {lo / static_cast<double>(nt), hi / static_cast<double>(nt)};
}

FlatForest::PrefixBounds FlatForest::prefix_bounds() const {
  NAPEL_CHECK_MSG(is_compiled(), "prefix bounds before compile");
  PrefixBounds pb;
  const std::size_t nt = tree_count();
  pb.tree_lo.reserve(nt);
  pb.tree_hi.reserve(nt);
  for (std::size_t t = 0; t < nt; ++t) {
    const ValueBounds b = tree_value_bounds(t);
    pb.tree_lo.push_back(b.lo);
    pb.tree_hi.push_back(b.hi);
  }
  return pb;
}

void FlatForest::predict_all_trees(std::span<const double> x,
                                   std::span<double> per_tree) const {
  NAPEL_CHECK_MSG(is_compiled(), "predict before compile");
  NAPEL_CHECK(x.size() == n_features_);
  NAPEL_CHECK(per_tree.size() == tree_count());
  for (std::size_t t = 0; t < per_tree.size(); ++t)
    per_tree[t] = traverse(t, x.data());
}

RandomForest::Interval FlatForest::interval_from_trees(
    std::span<double> votes, double lo_pct, double hi_pct) {
  NAPEL_CHECK(!votes.empty());
  NAPEL_CHECK(lo_pct <= hi_pct);
  double sum = 0.0;
  for (const double v : votes) sum += v;
  RandomForest::Interval iv;
  iv.mean = sum / static_cast<double>(votes.size());
  std::sort(votes.begin(), votes.end());
  iv.lo = percentile_sorted(votes, lo_pct);
  iv.hi = percentile_sorted(votes, hi_pct);
  return iv;
}

RandomForest::Interval FlatForest::predict_interval(std::span<const double> x,
                                                    std::span<double> scratch,
                                                    double lo_pct,
                                                    double hi_pct) const {
  predict_all_trees(x, scratch);
  return interval_from_trees(scratch, lo_pct, hi_pct);
}

}  // namespace napel::ml
