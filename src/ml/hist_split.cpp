#include "ml/hist_split.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/check.hpp"
#include "common/parallel.hpp"

namespace napel::ml {

namespace {

/// Features per histogram-build task: small enough that a wide level fans
/// across every worker, large enough that a task amortizes its dispatch.
constexpr std::size_t kFeatureBlock = 16;

/// Minimum rows × features of per-level work before the level fans out to
/// the pool at all; below this the dispatch overhead dominates. Purely a
/// scheduling knob — results are bit-identical either way.
constexpr std::size_t kMinParallelWork = std::size_t{1} << 14;

/// Row count at and above which a node takes the dense arena path — and
/// only when mtry == p. A dense build must cover every feature (a derived
/// child's mtry draw is unknown when its parent materializes), so at
/// mtry < p it would accumulate p columns to save a sibling's mtry-column
/// rebuild — a guaranteed loss — while below kMaxBins rows the full-width
/// arena passes (O(n_bins) zero + scan, O(total_bins) subtraction) cost
/// more than re-accumulating the rows. Build-path choice is a pure
/// function of row counts and mtry, so trees stay deterministic.
constexpr std::size_t kDenseMinRows = BinnedDataset::kMaxBins;

/// 256-bit occupancy mask over one feature's bins.
constexpr std::size_t kMaskWords = BinnedDataset::kMaxBins / 64;
static_assert(BinnedDataset::kMaxBins % 64 == 0);

}  // namespace

HistTreeBuilder::Totals HistTreeBuilder::totals_of(std::span<const double> y,
                                                   std::size_t begin,
                                                   std::size_t end) const {
  // Row order matches exact mode's per-node scans, so node values (and the
  // numerical-guard SSE) carry identical bits.
  Totals t;
  t.count = end - begin;
  for (std::size_t k = begin; k < end; ++k) {
    const double v = y[idx_[k]];
    t.sum += v;
    t.sum2 += v * v;
  }
  return t;
}

void HistTreeBuilder::build(const BinnedDataset& binned,
                            std::span<const std::uint32_t> rows,
                            const TreeParams& params, unsigned n_threads,
                            std::vector<HistNode>& nodes,
                            std::vector<double>& importance) {
  NAPEL_CHECK_MSG(!rows.empty(), "cannot fit on an empty row set");
  const std::size_t n = rows.size();
  const std::size_t p = binned.n_features();
  const std::size_t total_bins = binned.total_bins();
  const std::span<const double> y = binned.targets();

  nodes.clear();
  importance.assign(p, 0.0);
  idx_.assign(rows.begin(), rows.end());

  Rng rng(params.seed);
  std::size_t mtry = static_cast<std::size_t>(
      std::ceil(params.mtry_fraction * static_cast<double>(p)));
  mtry = std::clamp<std::size_t>(mtry, 1, p);

  const Totals root = totals_of(y, 0, n);
  nodes.push_back(
      HistNode{.value = root.sum / static_cast<double>(root.count)});
  items_.clear();
  if (n >= params.min_samples_split) {
    Item it;
    it.node = 0;
    it.begin = 0;
    it.end = static_cast<std::uint32_t>(n);
    it.depth = 0;
    it.totals = root;
    items_.push_back(it);
  }

  const std::size_t n_fblocks = (p + kFeatureBlock - 1) / kFeatureBlock;
  std::vector<Candidate> chosen;
  std::vector<std::uint32_t> direct;
  std::vector<std::uint32_t> derived;
  std::vector<std::uint32_t> iota(p);
  for (std::size_t f = 0; f < p; ++f) iota[f] = static_cast<std::uint32_t>(f);
  std::vector<std::uint32_t> pool(p);
  unsigned parity = 0;

  while (!items_.empty()) {
    Arena& cur = arenas_[parity & 1];
    const Arena& prev = arenas_[(parity ^ 1) & 1];

    // Targets in idx_ order for this level's partition of the rows: the
    // accumulate loops below read them sequentially instead of chasing
    // y[idx_[k]] per row per feature. Same values, same bits.
    gathered_y_.resize(n);
    for (std::size_t k = 0; k < n; ++k) gathered_y_[k] = y[idx_[k]];

    // Classify items and hand arena slots to the dense ones: nodes that
    // derive here, plus nodes large enough to seed a derivation below.
    // Everything else takes the arena-free sparse path in phase D.
    std::size_t level_rows = 0;
    std::uint32_t n_dense = 0;
    direct.clear();
    derived.clear();
    for (std::uint32_t i = 0; i < items_.size(); ++i) {
      Item& it = items_[i];
      const std::size_t k = it.end - it.begin;
      level_rows += k;
      const bool dense =
          it.parent_slot >= 0 || (mtry == p && k >= kDenseMinRows);
      it.arena_slot = dense ? static_cast<std::int32_t>(n_dense++) : -1;
      if (!dense) continue;
      (it.parent_slot >= 0 ? derived : direct).push_back(i);
    }
    cur.resize(static_cast<std::size_t>(n_dense) * total_bins);

    // Level fan-out gate: total accumulate/scan work this level.
    const unsigned fan =
        (n_threads == 1 || level_rows * p < kMinParallelWork) ? 1 : n_threads;

    // Phase A — direct dense histogram builds, fanned
    // (node × feature-block).
    parallel_for(direct.size() * n_fblocks, fan, [&](std::size_t task) {
      const Item& it = items_[direct[task / n_fblocks]];
      const std::size_t f0 = (task % n_fblocks) * kFeatureBlock;
      const std::size_t f1 = std::min(p, f0 + kFeatureBlock);
      const std::size_t base =
          static_cast<std::size_t>(it.arena_slot) * total_bins;
      for (std::size_t f = f0; f < f1; ++f) {
        const std::span<const BinnedDataset::BinCode> codes = binned.codes(f);
        const std::size_t off = base + binned.bin_offset(f);
        const std::size_t nb = binned.n_bins(f);
        std::fill_n(cur.count.begin() + static_cast<std::ptrdiff_t>(off), nb,
                    0U);
        std::fill_n(cur.sum.begin() + static_cast<std::ptrdiff_t>(off), nb,
                    0.0);
        for (std::size_t k = it.begin; k < it.end; ++k) {
          const std::size_t b = off + codes[idx_[k]];
          cur.count[b] += 1;
          cur.sum[b] += gathered_y_[k];
        }
      }
    });

    // Phase B — derived siblings: parent − sibling, bin by bin. u32 counts
    // subtract exactly; FP subtraction is deterministic, and *which* child
    // derives is decided by row counts (smaller builds directly, ties go
    // left), so the bins never depend on scheduling.
    parallel_for(derived.size() * n_fblocks, fan, [&](std::size_t task) {
      const Item& it = items_[derived[task / n_fblocks]];
      const std::size_t f0 = (task % n_fblocks) * kFeatureBlock;
      const std::size_t f1 = std::min(p, f0 + kFeatureBlock);
      const std::size_t b0 = binned.bin_offset(f0);
      const std::size_t b1 = f1 == p ? total_bins : binned.bin_offset(f1);
      const std::size_t dst =
          static_cast<std::size_t>(it.arena_slot) * total_bins;
      const std::size_t par =
          static_cast<std::size_t>(it.parent_slot) * total_bins;
      const std::size_t sib =
          static_cast<std::size_t>(
              items_[static_cast<std::size_t>(it.sibling_item)].arena_slot) *
          total_bins;
      for (std::size_t j = b0; j < b1; ++j) {
        cur.count[dst + j] = prev.count[par + j] - cur.count[sib + j];
        cur.sum[dst + j] = prev.sum[par + j] - cur.sum[sib + j];
      }
    });

    // Phase C — per-node feature draws, sequential in level (BFS) order so
    // the tree RNG stream is independent of threading. Same partial
    // Fisher–Yates exact mode uses; at mtry == p nothing is drawn. Every
    // item draws the same count, so phase D can index feats_ uniformly.
    feats_.resize(items_.size() * mtry);
    for (std::uint32_t i = 0; i < items_.size(); ++i) {
      Item& it = items_[i];
      const std::size_t base = static_cast<std::size_t>(i) * mtry;
      it.feats_begin = static_cast<std::uint32_t>(base);
      it.feats_count = static_cast<std::uint32_t>(mtry);
      std::uint32_t* dst = feats_.data() + base;
      if (mtry < p) {
        // Partial Fisher–Yates over a scratch pool reset from the identity
        // permutation: the RNG stream and the drawn set match the
        // fill-then-truncate formulation bit for bit.
        std::copy(iota.begin(), iota.end(), pool.begin());
        for (std::size_t k = 0; k < mtry; ++k) {
          const std::size_t j = k + rng.uniform_index(p - k);
          std::swap(pool[k], pool[j]);
        }
        std::copy_n(pool.begin(), mtry, dst);
      } else {
        std::copy(iota.begin(), iota.end(), dst);
      }
    }

    // Phase D — per-(node, feature) scans into private candidate slots,
    // fanned as (node × feature-block) tasks so task setup amortizes over
    // kFeatureBlock features while wide levels still spread across the
    // pool. The scan mirrors exact mode's boundary walk: cuts exist only
    // after nonempty bins with a nonempty right side, min_samples_leaf
    // filters both sides, and the variance-reduction score is maximized
    // with a strict > (first best wins). Dense nodes walk their arena
    // histogram; sparse nodes fuse accumulate + scan + re-zero through a
    // per-executor kMaxBins scratch guided by an occupancy bitmask,
    // touching only the bins their rows occupy. Both paths fold per-bin
    // row-order sums in ascending bin order, so a node's candidates carry
    // the same bits whichever path built it (modulo derived histograms'
    // subtraction bits).
    // Every task stores its slots unconditionally, so cand_ only needs
    // capacity, not a zero fill.
    if (cand_.size() < feats_.size()) cand_.resize(feats_.size());
    const std::size_t n_sblocks = (mtry + kFeatureBlock - 1) / kFeatureBlock;
    const std::size_t n_scan_tasks = items_.size() * n_sblocks;
    const std::size_t n_slots = parallel_slot_count(n_scan_tasks, fan);
    if (sparse_.size() < n_slots) sparse_.resize(n_slots);
    for (SparseScratch& s : sparse_)
      if (s.cell.empty()) s.cell.assign(BinnedDataset::kMaxBins, SparseCell{});
    parallel_for_slotted(
        n_scan_tasks, fan, [&](std::size_t slot, std::size_t task) {
          const Item& it = items_[task / n_sblocks];
          const std::size_t k0 = (task % n_sblocks) * kFeatureBlock;
          const std::size_t k1 =
              std::min<std::size_t>(it.feats_count, k0 + kFeatureBlock);
          const std::size_t n_node = it.totals.count;
          const double total_sum = it.totals.sum;
          const double parent_score =
              total_sum * total_sum / static_cast<double>(n_node);
          const std::size_t msl = params.min_samples_leaf;
          SparseScratch& s = sparse_[slot];
          for (std::size_t fk = k0; fk < k1; ++fk) {
            const std::size_t gi = it.feats_begin + fk;
            const std::size_t f = feats_[gi];
            Candidate c;
            std::size_t left_cnt = 0;
            double left_sum = 0.0;
            const auto consider = [&](std::size_t b, std::uint32_t cb,
                                      double sb) {
              left_cnt += cb;
              left_sum += sb;
              if (left_cnt < msl || n_node - left_cnt < msl) return;
              const double right_sum = total_sum - left_sum;
              const double nl = static_cast<double>(left_cnt);
              const double nr = static_cast<double>(n_node - left_cnt);
              const double children_score =
                  left_sum * left_sum / nl + right_sum * right_sum / nr;
              const double reduction = children_score - parent_score;
              if (!c.valid || reduction > c.reduction) {
                c.valid = true;
                c.reduction = reduction;
                c.threshold = binned.bin_upper_edge(f, b);
                c.feature = static_cast<std::uint32_t>(f);
                c.bin = static_cast<std::uint32_t>(b);
              }
            };

            if (it.arena_slot >= 0) {
              const std::size_t off =
                  static_cast<std::size_t>(it.arena_slot) * total_bins +
                  binned.bin_offset(f);
              const std::size_t nb = binned.n_bins(f);
              std::size_t first = nb;
              std::size_t last = nb;
              for (std::size_t b = 0; b < nb; ++b)
                if (cur.count[off + b] != 0) {
                  first = b;
                  break;
                }
              for (std::size_t b = nb; b-- > 0;)
                if (cur.count[off + b] != 0) {
                  last = b;
                  break;
                }
              if (first < last) {
                for (std::size_t b = first; b < last; ++b) {
                  const std::uint32_t cb = cur.count[off + b];
                  if (cb == 0) continue;
                  consider(b, cb, cur.sum[off + b]);
                }
              }
            } else {
              const std::span<const BinnedDataset::BinCode> codes =
                  binned.codes(f);
              std::uint64_t mask[kMaskWords] = {};
              for (std::size_t k = it.begin; k < it.end; ++k) {
                const std::size_t b = codes[idx_[k]];
                SparseCell& cell = s.cell[b];
                cell.count += 1;
                cell.sum += gathered_y_[k];
                mask[b >> 6] |= std::uint64_t{1} << (b & 63);
              }
              // Highest occupied bin: a cut there would empty the right
              // side, so it closes the walk without emitting a candidate.
              std::size_t last = 0;
              for (std::size_t w = kMaskWords; w-- > 0;)
                if (mask[w] != 0) {
                  last = w * 64 + 63 -
                         static_cast<std::size_t>(std::countl_zero(mask[w]));
                  break;
                }
              for (std::size_t w = 0; w < kMaskWords; ++w) {
                std::uint64_t m = mask[w];
                while (m != 0) {
                  const std::size_t b =
                      w * 64 + static_cast<std::size_t>(std::countr_zero(m));
                  m &= m - 1;
                  SparseCell& cell = s.cell[b];
                  const std::uint32_t cb = cell.count;
                  const double sb = cell.sum;
                  cell = SparseCell{};  // restore the all-zero invariant
                  if (b != last) consider(b, cb, sb);
                }
              }
            }
            cand_[gi] = c;
          }
        });

    // Phase E — cross-feature argmax, sequential per node in the drawn
    // feature order (strict >, so the earliest-drawn best feature wins —
    // the same tie-break exact mode's single-pass loop applies), then the
    // numerical guard exact mode uses.
    chosen.assign(items_.size(), Candidate{});
    for (std::uint32_t i = 0; i < items_.size(); ++i) {
      const Item& it = items_[i];
      Candidate best;
      for (std::uint32_t k = 0; k < it.feats_count; ++k) {
        const Candidate& c = cand_[it.feats_begin + k];
        if (!c.valid) continue;
        if (!best.valid || c.reduction > best.reduction) best = c;
      }
      const double cnt = static_cast<double>(it.totals.count);
      const double parent_sse =
          it.totals.sum2 - it.totals.sum * it.totals.sum / cnt;
      if (best.valid && best.reduction <= 1e-12 * (parent_sse + 1.0))
        best.valid = false;
      chosen[i] = best;
    }

    // Phase F — partition each split node's idx_ range in place. Ranges
    // are disjoint and the predicate "code <= bin" equals exact mode's
    // "value <= threshold" row for row, so the permutation matches too.
    parallel_for(items_.size(), fan, [&](std::size_t i) {
      if (!chosen[i].valid) return;
      Item& it = items_[i];
      const std::span<const BinnedDataset::BinCode> codes =
          binned.codes(chosen[i].feature);
      const auto bin = static_cast<BinnedDataset::BinCode>(chosen[i].bin);
      const auto mid_it =
          std::partition(idx_.begin() + it.begin, idx_.begin() + it.end,
                         [&](std::uint32_t r) { return codes[r] <= bin; });
      it.mid = static_cast<std::uint32_t>(mid_it - idx_.begin());
    });

    // Phase G — commit splits sequentially in level order: importance
    // sums, child nodes (BFS ids), and next-level work items.
    next_items_.clear();
    for (std::uint32_t i = 0; i < items_.size(); ++i) {
      if (!chosen[i].valid) continue;  // node stays a leaf
      const Item& it = items_[i];
      const Candidate& c = chosen[i];
      NAPEL_CHECK(it.mid > it.begin && it.mid < it.end);
      importance[c.feature] += c.reduction;

      const Totals lt = totals_of(y, it.begin, it.mid);
      const Totals rt = totals_of(y, it.mid, it.end);
      const auto left_id = static_cast<std::int32_t>(nodes.size());
      nodes.push_back(
          HistNode{.value = lt.sum / static_cast<double>(lt.count)});
      const auto right_id = static_cast<std::int32_t>(nodes.size());
      nodes.push_back(
          HistNode{.value = rt.sum / static_cast<double>(rt.count)});
      nodes[it.node].feature = static_cast<std::int32_t>(c.feature);
      nodes[it.node].threshold = c.threshold;
      nodes[it.node].left = left_id;
      nodes[it.node].right = right_id;

      const unsigned cd = it.depth + 1;
      const bool l_eval =
          cd < params.max_depth && lt.count >= params.min_samples_split;
      const bool r_eval =
          cd < params.max_depth && rt.count >= params.min_samples_split;
      if (!l_eval && !r_eval) continue;

      Item left;
      left.node = static_cast<std::uint32_t>(left_id);
      left.begin = it.begin;
      left.end = it.mid;
      left.depth = cd;
      left.totals = lt;
      Item right;
      right.node = static_cast<std::uint32_t>(right_id);
      right.begin = it.mid;
      right.end = it.end;
      right.depth = cd;
      right.totals = rt;
      if (l_eval && r_eval) {
        const auto li = static_cast<std::int32_t>(next_items_.size());
        const auto ri = li + 1;
        // Subtraction needs a parent histogram in the arena and a dense
        // sibling to materialize the full-width minuend's counterpart, so
        // only splits whose smaller child is itself dense derive. The
        // smaller child (ties to the left) accumulates directly; its
        // sibling derives via subtraction in phase B next level.
        if (it.arena_slot >= 0 &&
            std::min(lt.count, rt.count) >= kDenseMinRows) {
          if (lt.count <= rt.count) {
            right.parent_slot = it.arena_slot;
            right.sibling_item = li;
          } else {
            left.parent_slot = it.arena_slot;
            left.sibling_item = ri;
          }
        }
        next_items_.push_back(left);
        next_items_.push_back(right);
      } else if (l_eval) {
        next_items_.push_back(left);
      } else {
        next_items_.push_back(right);
      }
    }

    items_.swap(next_items_);
    parity ^= 1;
  }
}

}  // namespace napel::ml
