#include "ml/serialize.hpp"

namespace napel::ml {

void save_forest(const RandomForest& forest, std::ostream& os) {
  forest.save(os);
}

RandomForest load_forest(std::istream& is) { return RandomForest::load(is); }

}  // namespace napel::ml
