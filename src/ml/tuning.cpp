#include "ml/tuning.hpp"

#include <limits>

#include "common/check.hpp"
#include "ml/metrics.hpp"

namespace napel::ml {

RfTuningResult tune_random_forest(const Dataset& data,
                                  const RfTuningGrid& grid,
                                  std::size_t k_folds, std::uint64_t seed) {
  NAPEL_CHECK(grid.combinations() >= 1);
  NAPEL_CHECK_MSG(data.size() >= k_folds,
                  "need at least k_folds training rows");

  Rng rng(seed);
  const std::vector<std::size_t> fold = data.kfold_assignment(k_folds, rng);

  RfTuningResult result;
  result.all_scores.reserve(grid.combinations());
  double best = std::numeric_limits<double>::infinity();

  for (unsigned nt : grid.n_trees) {
    for (unsigned md : grid.max_depth) {
      for (double mtry : grid.mtry_fraction) {
        for (std::size_t leaf : grid.min_samples_leaf) {
          RandomForestParams p;
          p.n_trees = nt;
          p.max_depth = md;
          p.mtry_fraction = mtry;
          p.min_samples_leaf = leaf;
          p.min_samples_split = 2 * leaf >= 2 ? 2 * leaf : 2;
          p.seed = seed;

          double mre_sum = 0.0;
          std::size_t folds_used = 0;
          for (std::size_t f = 0; f < k_folds; ++f) {
            auto [train, test] = data.split_fold(fold, f);
            if (train.empty() || test.empty()) continue;
            RandomForest model(p);
            model.fit(train);
            mre_sum += evaluate(model, test).mre;
            ++folds_used;
          }
          const double score =
              folds_used ? mre_sum / static_cast<double>(folds_used)
                         : std::numeric_limits<double>::infinity();
          result.all_scores.push_back(score);
          ++result.combinations_evaluated;
          if (score < best) {
            best = score;
            result.best_params = p;
            result.best_cv_mre = score;
          }
        }
      }
    }
  }
  return result;
}

}  // namespace napel::ml
