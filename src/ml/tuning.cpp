#include "ml/tuning.hpp"

#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>

#include "common/check.hpp"
#include "common/journal.hpp"
#include "common/parallel.hpp"
#include "common/result.hpp"
#include "ml/metrics.hpp"

namespace napel::ml {

namespace {

/// Journal meta: fingerprints everything that determines the scores, so a
/// checkpoint from a different search (or dataset) cannot be resumed.
std::string tuning_meta(const Dataset& data, const RfTuningGrid& grid,
                        std::size_t k_folds, std::uint64_t seed,
                        SplitMode split_mode) {
  std::ostringstream os;
  os << "tune k=" << k_folds << " seed=" << seed << " rows=" << data.size()
     << " nt:";
  for (unsigned v : grid.n_trees) os << v << ',';
  os << " md:";
  for (unsigned v : grid.max_depth) os << v << ',';
  os << " mtry:";
  for (double v : grid.mtry_fraction) os << double_bits_to_hex(v) << ',';
  os << " leaf:";
  for (std::size_t v : grid.min_samples_leaf) os << v << ',';
  // Appended only for hist searches so every pre-existing exact-mode
  // journal keeps resuming unchanged.
  if (split_mode != SplitMode::kExact)
    os << " mode:" << split_mode_name(split_mode);
  return os.str();
}

std::string combo_key(std::size_t c) { return "combo/" + std::to_string(c); }

}  // namespace

RfTuningResult tune_random_forest(const Dataset& data,
                                  const RfTuningGrid& grid,
                                  std::size_t k_folds, std::uint64_t seed,
                                  unsigned n_threads,
                                  const TuningCheckpoint* checkpoint,
                                  SplitMode split_mode) {
  NAPEL_CHECK(grid.combinations() >= 1);
  NAPEL_CHECK_MSG(data.size() >= k_folds,
                  "need at least k_folds training rows");

  Rng rng(seed);
  const std::vector<std::size_t> fold = data.kfold_assignment(k_folds, rng);

  // Materialize the grid in its canonical nesting order so combination c
  // has the same parameters (and the same tie-breaking rank) the
  // sequential quadruple loop gave it.
  std::vector<RandomForestParams> combos;
  combos.reserve(grid.combinations());
  for (unsigned nt : grid.n_trees) {
    for (unsigned md : grid.max_depth) {
      for (double mtry : grid.mtry_fraction) {
        for (std::size_t leaf : grid.min_samples_leaf) {
          RandomForestParams p;
          p.n_trees = nt;
          p.max_depth = md;
          p.mtry_fraction = mtry;
          p.min_samples_leaf = leaf;
          p.min_samples_split = 2 * leaf >= 2 ? 2 * leaf : 2;
          p.seed = seed;
          p.n_threads = n_threads;
          p.split_mode = split_mode;
          combos.push_back(p);
        }
      }
    }
  }

  RfTuningResult result;
  result.all_scores.assign(combos.size(),
                           std::numeric_limits<double>::infinity());

  // Checkpoint journal: restore already-scored combinations, then append
  // new scores in grid order (buffered in-order flush, like the collection
  // journal) so the file is always a valid contiguous prefix.
  const std::size_t n = combos.size();
  std::vector<char> done(n, 0);
  std::unique_ptr<JournalWriter> writer;
  if (checkpoint) {
    const std::string meta =
        tuning_meta(data, grid, k_folds, seed, split_mode);
    if (checkpoint->resume) {
      std::vector<JournalRecord> resumed;
      writer = std::make_unique<JournalWriter>(
          JournalWriter::open_append(checkpoint->journal_path, meta, resumed)
              .value_or_throw());
      for (const JournalRecord& rec : resumed) {
        std::size_t c = n;
        if (rec.key.rfind("combo/", 0) == 0) {
          try {
            c = std::stoul(rec.key.substr(6));
          } catch (const std::exception&) {
            c = n;
          }
        }
        const Result<double> score = double_bits_from_hex(rec.payload);
        if (c >= n || !score.ok())
          throw PipelineException(
              {.kind = ErrorKind::kCorruptArtifact,
               .context = checkpoint->journal_path + ": " + rec.key,
               .message = "unparseable tuning checkpoint record"});
        result.all_scores[c] = score.value();
        done[c] = 1;
      }
    } else {
      writer = std::make_unique<JournalWriter>(
          JournalWriter::create(checkpoint->journal_path, meta)
              .value_or_throw());
    }
  }

  std::vector<std::size_t> pending;
  pending.reserve(n);
  for (std::size_t c = 0; c < n; ++c)
    if (!done[c]) pending.push_back(c);

  std::mutex flush_mu;
  std::size_t next_flush = 0;
  std::vector<char> resolved(done.begin(), done.end());
  std::optional<PipelineError> journal_error;
  const auto flush = [&](std::size_t c) {
    const std::lock_guard<std::mutex> lock(flush_mu);
    resolved[c] = 1;
    if (journal_error) return;
    while (next_flush < n && resolved[next_flush]) {
      if (!done[next_flush]) {
        Status s = writer->append(combo_key(next_flush),
                                  double_bits_to_hex(
                                      result.all_scores[next_flush]));
        if (!s.ok()) {
          journal_error = s.error();
          return;
        }
      }
      ++next_flush;
    }
  };

  // Each grid point owns its score slot; the fold loop inside stays
  // sequential (per-point cost is already k forest fits, which themselves
  // parallelize over trees through the shared pool).
  parallel_for(pending.size(), n_threads, [&](std::size_t pi) {
    const std::size_t c = pending[pi];
    double mre_sum = 0.0;
    std::size_t folds_used = 0;
    for (std::size_t f = 0; f < k_folds; ++f) {
      auto [train, test] = data.split_fold(fold, f);
      if (train.empty() || test.empty()) continue;
      RandomForest model(combos[c]);
      model.fit(train);
      // Score the held-out fold through the compiled flat arena: one
      // batched traversal instead of per-row pointer chasing, same bits.
      // Sharded over the shared pool — grid points already fan out, but
      // the tail of the grid leaves workers idle for the shards to use.
      mre_sum += evaluate(FlatForest(model), test, n_threads).mre;
      ++folds_used;
    }
    if (folds_used)
      result.all_scores[c] = mre_sum / static_cast<double>(folds_used);
    if (writer) flush(c);
  });
  if (journal_error) throw PipelineException(std::move(*journal_error));

  result.combinations_evaluated = combos.size();
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < combos.size(); ++c) {
    if (result.all_scores[c] < best) {
      best = result.all_scores[c];
      result.best_params = combos[c];
      result.best_cv_mre = best;
    }
  }
  return result;
}

}  // namespace napel::ml
