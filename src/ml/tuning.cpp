#include "ml/tuning.hpp"

#include <limits>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "ml/metrics.hpp"

namespace napel::ml {

RfTuningResult tune_random_forest(const Dataset& data,
                                  const RfTuningGrid& grid,
                                  std::size_t k_folds, std::uint64_t seed,
                                  unsigned n_threads) {
  NAPEL_CHECK(grid.combinations() >= 1);
  NAPEL_CHECK_MSG(data.size() >= k_folds,
                  "need at least k_folds training rows");

  Rng rng(seed);
  const std::vector<std::size_t> fold = data.kfold_assignment(k_folds, rng);

  // Materialize the grid in its canonical nesting order so combination c
  // has the same parameters (and the same tie-breaking rank) the
  // sequential quadruple loop gave it.
  std::vector<RandomForestParams> combos;
  combos.reserve(grid.combinations());
  for (unsigned nt : grid.n_trees) {
    for (unsigned md : grid.max_depth) {
      for (double mtry : grid.mtry_fraction) {
        for (std::size_t leaf : grid.min_samples_leaf) {
          RandomForestParams p;
          p.n_trees = nt;
          p.max_depth = md;
          p.mtry_fraction = mtry;
          p.min_samples_leaf = leaf;
          p.min_samples_split = 2 * leaf >= 2 ? 2 * leaf : 2;
          p.seed = seed;
          p.n_threads = n_threads;
          combos.push_back(p);
        }
      }
    }
  }

  RfTuningResult result;
  result.all_scores.assign(combos.size(),
                           std::numeric_limits<double>::infinity());

  // Each grid point owns its score slot; the fold loop inside stays
  // sequential (per-point cost is already k forest fits, which themselves
  // parallelize over trees through the shared pool).
  parallel_for(combos.size(), n_threads, [&](std::size_t c) {
    double mre_sum = 0.0;
    std::size_t folds_used = 0;
    for (std::size_t f = 0; f < k_folds; ++f) {
      auto [train, test] = data.split_fold(fold, f);
      if (train.empty() || test.empty()) continue;
      RandomForest model(combos[c]);
      model.fit(train);
      mre_sum += evaluate(model, test).mre;
      ++folds_used;
    }
    if (folds_used)
      result.all_scores[c] = mre_sum / static_cast<double>(folds_used);
  });

  result.combinations_evaluated = combos.size();
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < combos.size(); ++c) {
    if (result.all_scores[c] < best) {
      best = result.all_scores[c];
      result.best_params = combos[c];
      result.best_cv_mre = best;
    }
  }
  return result;
}

}  // namespace napel::ml
