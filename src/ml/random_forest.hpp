// Random forest regression (Breiman 2001): bagged CART trees with
// random-subspace splits. This is NAPEL's ensemble learner (Section 2.5):
// it screens the ~400 profile/architecture features automatically and
// captures the nonlinear interactions CCD is designed to expose.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "ml/decision_tree.hpp"
#include "ml/regressor.hpp"

namespace napel::ml {

struct RandomForestParams {
  unsigned n_trees = 100;
  unsigned max_depth = 24;
  std::size_t min_samples_split = 4;
  std::size_t min_samples_leaf = 2;
  /// Features considered per split as a fraction of all features
  /// (regression default ≈ 1/3).
  double mtry_fraction = 1.0 / 3.0;
  std::uint64_t seed = 42;
  /// Worker threads for tree fitting: 0 = process-wide pool, 1 = serial.
  /// Never serialized; the fitted forest, its out-of-bag error, and its
  /// save() bytes are identical at any thread count.
  unsigned n_threads = 0;
  /// Split-finding engine (ml/decision_tree.hpp). kExact is the historical
  /// default and serializes as napel-forest-v1; kHist trains over a shared
  /// quantile-binned matrix — one BinnedDataset per fit, per-tree bootstrap
  /// row indices instead of dataset copies, in-tree level parallelism —
  /// and serializes as napel-forest-v2 (the params line gains the mode
  /// token). Both modes are bit-identical at any thread count.
  SplitMode split_mode = SplitMode::kExact;
};

class RandomForest final : public Regressor {
 public:
  explicit RandomForest(RandomForestParams params = {});

  void fit(const Dataset& data) override;
  double predict(std::span<const double> x) const override;
  bool is_fitted() const override { return !trees_.empty(); }

  /// Prediction with an empirical uncertainty band from the ensemble
  /// spread: lo/hi are the requested percentiles of the per-tree
  /// predictions (default: an 80% band). Wide bands flag design points the
  /// training data covers poorly — useful to decide where to spend
  /// additional simulations during design-space exploration.
  struct Interval {
    double mean = 0.0;
    double lo = 0.0;
    double hi = 0.0;
    double width() const { return hi - lo; }
  };
  Interval predict_interval(std::span<const double> x, double lo_pct = 10.0,
                            double hi_pct = 90.0) const;

  std::size_t tree_count() const { return trees_.size(); }
  std::size_t n_features() const { return n_features_; }
  const DecisionTree& tree(std::size_t i) const;

  /// Mean out-of-bag absolute relative error — an internal generalization
  /// estimate available without a held-out set.
  double oob_mre() const { return oob_mre_; }

  /// Wall-clock spent quantile-binning the dataset during the last fit()
  /// (0 for exact mode) — the bench's bin/fit phase breakdown.
  double last_fit_bin_seconds() const { return last_fit_bin_seconds_; }

  /// Impurity feature importance, normalized to sum to 1 (all-zero when no
  /// split was ever made).
  std::vector<double> feature_importance() const;

  const RandomForestParams& params() const { return params_; }

  /// Text serialization of a fitted forest; the loaded forest predicts
  /// bit-identically (see ml/serialize.hpp for the free-function API).
  void save(std::ostream& os) const;
  static RandomForest load(std::istream& is);

 private:
  RandomForestParams params_;
  std::vector<DecisionTree> trees_;
  std::vector<double> importance_raw_;
  double oob_mre_ = 0.0;
  double last_fit_bin_seconds_ = 0.0;
  std::size_t n_features_ = 0;
};

}  // namespace napel::ml
