// Multilayer perceptron regressor — the ANN baseline of Ipek et al. used in
// the paper's Figure 5 comparison. One sigmoid hidden layer, linear output,
// SGD with momentum and L2 weight decay over standardized inputs/targets.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/regressor.hpp"
#include "ml/scaler.hpp"

namespace napel::ml {

struct MlpParams {
  unsigned hidden_units = 16;
  unsigned epochs = 300;
  double learning_rate = 0.01;
  double momentum = 0.9;
  double l2 = 1e-4;
  /// Multiplicative learning-rate decay applied each epoch.
  double lr_decay = 0.995;
  std::uint64_t seed = 17;
};

class Mlp final : public Regressor {
 public:
  explicit Mlp(MlpParams params = {});

  void fit(const Dataset& data) override;
  double predict(std::span<const double> x) const override;
  bool is_fitted() const override { return fitted_; }

  /// Mean squared training error (standardized target space) per epoch.
  const std::vector<double>& training_curve() const { return curve_; }

  const MlpParams& params() const { return params_; }

 private:
  double forward(std::span<const double> x, std::vector<double>& hidden) const;

  MlpParams params_;
  StandardScaler scaler_;
  std::size_t n_in_ = 0;
  // w1: hidden × (n_in + 1) including bias column; w2: hidden + 1.
  std::vector<double> w1_;
  std::vector<double> w2_;
  std::vector<double> curve_;
  bool fitted_ = false;
};

}  // namespace napel::ml
