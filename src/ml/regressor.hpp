// Common interface for all regression models (random forest, ANN, model
// tree, ridge), so pipelines and benchmarks treat them uniformly.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "ml/dataset.hpp"

namespace napel::ml {

class Regressor {
 public:
  virtual ~Regressor() = default;

  virtual void fit(const Dataset& data) = 0;
  virtual double predict(std::span<const double> x) const = 0;
  virtual bool is_fitted() const = 0;

  /// Predicts every row of a dataset.
  std::vector<double> predict_all(const Dataset& data) const {
    std::vector<double> out;
    out.reserve(data.size());
    for (std::size_t i = 0; i < data.size(); ++i)
      out.push_back(predict(data.row(i)));
    return out;
  }
};

}  // namespace napel::ml
