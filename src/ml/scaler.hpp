// Feature/target standardization (zero mean, unit variance) for the neural
// network, which is scale-sensitive; constant features map to zero.
#pragma once

#include <span>
#include <vector>

#include "ml/dataset.hpp"

namespace napel::ml {

class StandardScaler {
 public:
  void fit(const Dataset& data);
  bool is_fitted() const { return !mean_.empty(); }

  std::vector<double> transform(std::span<const double> x) const;
  Dataset transform_features(const Dataset& data) const;

  double transform_target(double y) const { return (y - y_mean_) / y_std_; }
  double inverse_target(double z) const { return z * y_std_ + y_mean_; }

 private:
  std::vector<double> mean_;
  std::vector<double> std_;
  double y_mean_ = 0.0;
  double y_std_ = 1.0;
};

}  // namespace napel::ml
