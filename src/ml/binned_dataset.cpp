#include "ml/binned_dataset.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"
#include "common/parallel.hpp"

namespace napel::ml {

namespace {

/// Per-feature binning result, staged so features can bin concurrently and
/// be flattened into the shared tables sequentially afterwards.
struct FeatureBins {
  std::vector<double> edges;  // upper edge per bin (ascending)
};

}  // namespace

BinnedDataset::BinnedDataset(const Dataset& data, unsigned n_threads) {
  NAPEL_CHECK_MSG(!data.empty(), "cannot bin an empty dataset");
  n_ = data.size();
  p_ = data.n_features();
  codes_.resize(p_ * n_);
  y_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) y_[i] = data.target(i);

  std::vector<FeatureBins> per_feature(p_);
  parallel_for(p_, n_threads, [&](std::size_t f) {
    // Gather the column once (the source dataset is row-major), then rank
    // rows by value; equal values always share a code, so the sort needs
    // no tie-break to be deterministic.
    std::vector<double> col(n_);
    for (std::size_t i = 0; i < n_; ++i) col[i] = data.row(i)[f];
    std::vector<std::uint32_t> ord(n_);
    std::iota(ord.begin(), ord.end(), std::uint32_t{0});
    std::sort(ord.begin(), ord.end(), [&](std::uint32_t a, std::uint32_t b) {
      return col[a] < col[b];
    });

    // Count distinct values. With <= kMaxBins of them, one bin per value:
    // the binning is lossless and every exact-mode threshold survives.
    std::size_t distinct = 1;
    for (std::size_t k = 1; k < n_; ++k)
      if (col[ord[k]] != col[ord[k - 1]]) ++distinct;

    BinCode* codes = codes_.data() + f * n_;
    FeatureBins& out = per_feature[f];
    if (distinct <= kMaxBins) {
      std::size_t b = 0;
      for (std::size_t k = 0; k < n_; ++k) {
        if (k > 0 && col[ord[k]] != col[ord[k - 1]]) ++b;
        codes[ord[k]] = static_cast<BinCode>(b);
        if (out.edges.size() == b) out.edges.push_back(col[ord[k]]);
      }
      return;
    }

    // Quantile merge: close bin b once its cumulative row count reaches
    // the ideal boundary ceil(n·(b+1)/kMaxBins), always at a distinct-value
    // boundary so a bin never splits a value run. The final bin absorbs
    // the tail, so at most kMaxBins bins exist and each is nonempty.
    std::size_t b = 0;
    std::size_t k = 0;
    while (k < n_) {
      std::size_t run_end = k + 1;
      while (run_end < n_ && col[ord[run_end]] == col[ord[k]]) ++run_end;
      for (std::size_t r = k; r < run_end; ++r)
        codes[ord[r]] = static_cast<BinCode>(b);
      if (out.edges.size() == b) out.edges.push_back(col[ord[k]]);
      out.edges[b] = col[ord[k]];  // extend the bin's edge to the last run
      const std::size_t boundary = (n_ * (b + 1) + kMaxBins - 1) / kMaxBins;
      if (run_end >= boundary && b + 1 < kMaxBins) ++b;
      k = run_end;
    }
  });

  offsets_.resize(p_ + 1);
  offsets_[0] = 0;
  for (std::size_t f = 0; f < p_; ++f) {
    NAPEL_CHECK(!per_feature[f].edges.empty() &&
                per_feature[f].edges.size() <= kMaxBins);
    offsets_[f + 1] = offsets_[f] + per_feature[f].edges.size();
  }
  edges_.reserve(offsets_[p_]);
  for (std::size_t f = 0; f < p_; ++f)
    edges_.insert(edges_.end(), per_feature[f].edges.begin(),
                  per_feature[f].edges.end());
}

}  // namespace napel::ml
