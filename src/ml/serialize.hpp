// Model persistence: save a trained random forest (or a full NAPEL model,
// see napel/model_io.hpp) to a portable text stream and load it back. The
// format is line-oriented, versioned, and locale-independent; numbers are
// round-tripped with max_digits10 so predictions are bit-identical after a
// save/load cycle.
#pragma once

#include <iosfwd>

#include "ml/random_forest.hpp"

namespace napel::ml {

/// Writes a fitted forest. Throws std::invalid_argument when not fitted.
void save_forest(const RandomForest& forest, std::ostream& os);

/// Reads a forest written by save_forest. Throws std::invalid_argument on
/// malformed input or version mismatch.
RandomForest load_forest(std::istream& is);

}  // namespace napel::ml
