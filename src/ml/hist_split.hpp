// Histogram split engine: trains one CART regression tree over a
// BinnedDataset by breadth-first level expansion.
//
// Per node, every feature's (count, Σy) histogram is accumulated over the
// node's rows — O(rows · features) with u8 code loads — and the best
// variance-reduction cut falls out of a scan over the nonempty bins. Two
// build paths share that scan, chosen per node by row count alone:
//
//   * dense (rows >= kMaxBins): the node owns a total_bins()-wide slot in
//     a per-level arena. Of a dense split's two dense children only the
//     smaller one is accumulated from rows; the larger is derived
//     bin-by-bin as parent − sibling (the classic subtraction trick,
//     halving histogram work where nodes are large enough for the
//     full-width pass to pay for itself).
//   * sparse (rows < kMaxBins): the node never touches the arena. Each
//     (node, feature) scan accumulates into a 256-entry per-executor
//     scratch plus a 256-bit occupancy mask, walks only the set bits, and
//     re-zeroes exactly what it touched — per-node cost stays O(rows ·
//     features) instead of O(total_bins), which is what makes histogram
//     mode fast on the small DoE matrices NAPEL trains on.
//
// Within a level, (node × feature-block) builds, sibling subtractions,
// per-(node, feature) scans and node partitions all fan out over the
// shared pool; every task writes only its own slot and all floating-point
// reductions (cross-feature argmax, importance, child stats) run
// sequentially in a fixed order, so the built tree is bit-identical at any
// thread count — the determinism contract the rest of the repo enforces
// (common/parallel.hpp). The dense/sparse choice depends only on row
// counts, never on scheduling. Sparse and dense-direct scans accumulate
// identical bits (per-bin sums in row order, folded in ascending bin
// order); a derived histogram's sums carry subtraction bits instead, which
// is deterministic but may steer floating-point score ties differently
// than a direct build would.
//
// Divergence from exact mode, by design: the per-node mtry feature draw
// consumes the tree RNG in breadth-first node order (exact mode recurses
// depth-first), so hist and exact trees only coincide at
// mtry_fraction == 1.0 where no draw happens. Split scores also accumulate
// in bin order rather than row order, so score *bits* may differ from
// exact mode even when the chosen splits are identical.
//
// This file and binned_dataset.* are the only places allowed to touch raw
// bin codes (tools/source_lint.py, rule raw-bin-codes); DecisionTree
// consumes the engine through build() below.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "ml/binned_dataset.hpp"
#include "ml/decision_tree.hpp"

namespace napel::ml {

/// Flat tree node in builder (breadth-first) order; DecisionTree relabels
/// the array into its canonical depth-first preorder before serving it.
struct HistNode {
  std::int32_t feature = -1;  // -1 = leaf
  double threshold = 0.0;
  std::int32_t left = -1;
  std::int32_t right = -1;
  double value = 0.0;  // mean of training targets in this subspace
};

/// Reusable histogram tree builder. One instance per worker: holds the
/// row-index array, ping-pong histogram arenas, sparse scan scratch and
/// candidate slots, all recycled across trees so a forest fit never
/// reallocates per tree.
class HistTreeBuilder {
 public:
  explicit HistTreeBuilder() = default;

  /// Fits one tree on `rows` (bootstrap row indices into `binned`, repeats
  /// allowed) and emits BFS-ordered nodes plus per-feature SSE-reduction
  /// importance. `n_threads` fans the per-level work (0 = process-wide
  /// pool, 1 = serial); the output never depends on it.
  void build(const BinnedDataset& binned, std::span<const std::uint32_t> rows,
             const TreeParams& params, unsigned n_threads,
             std::vector<HistNode>& nodes, std::vector<double>& importance);

 private:
  struct Totals {
    std::size_t count = 0;
    double sum = 0.0;
    double sum2 = 0.0;
  };

  /// One node awaiting processing at the current level.
  struct Item {
    std::uint32_t node = 0;          // index into the output node array
    std::uint32_t begin = 0;         // idx_ range [begin, end)
    std::uint32_t end = 0;
    std::int32_t parent_slot = -1;   // parent's slot in the *previous*
                                     // level's arena (>= 0 => derive here)
    std::int32_t sibling_item = -1;  // sibling's item index in *this* level
    std::int32_t arena_slot = -1;    // this node's slot, -1 = sparse path
    unsigned depth = 0;
    Totals totals;
    // Filled during level processing:
    std::uint32_t feats_begin = 0;  // range into feats_ drawn for this node
    std::uint32_t feats_count = 0;
    std::uint32_t mid = 0;          // partition point after a chosen split
  };

  /// Flat (count, Σy) histograms: one total_bins()-wide slot per *dense*
  /// level item, SoA so the subtraction pass streams linearly. Sparse
  /// items never get a slot, so the arena stays a few slots deep even on
  /// wide levels.
  struct Arena {
    std::vector<std::uint32_t> count;
    std::vector<double> sum;
    void resize(std::size_t entries) {
      count.resize(entries);
      sum.resize(entries);
    }
  };

  /// Per-executor scratch for sparse scans: kMaxBins-wide histogram kept
  /// all-zero between tasks (each task re-zeroes the bins its occupancy
  /// mask says it touched). (Σy, count) interleave into one 16-byte cell
  /// so each row update touches a single cache line.
  struct SparseCell {
    double sum = 0.0;
    std::uint32_t count = 0;
  };
  struct SparseScratch {
    std::vector<SparseCell> cell;
  };

  /// Per-(node, feature) scan result staged for the sequential reduction.
  struct Candidate {
    double reduction = 0.0;
    double threshold = 0.0;
    std::uint32_t feature = 0;
    std::uint32_t bin = 0;
    bool valid = false;
  };

  Totals totals_of(std::span<const double> y, std::size_t begin,
                   std::size_t end) const;

  std::vector<std::uint32_t> idx_;
  std::vector<double> gathered_y_;  // y[idx_[k]], re-gathered per level
  Arena arenas_[2];
  std::vector<Item> items_;
  std::vector<Item> next_items_;
  std::vector<std::uint32_t> feats_;
  std::vector<Candidate> cand_;
  std::vector<SparseScratch> sparse_;
};

}  // namespace napel::ml
