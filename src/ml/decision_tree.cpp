#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <numeric>
#include <ostream>
#include <string>

#include "common/check.hpp"
#include "ml/binned_dataset.hpp"
#include "ml/hist_split.hpp"

namespace napel::ml {

std::string_view split_mode_name(SplitMode mode) {
  return mode == SplitMode::kHist ? "hist" : "exact";
}

SplitMode parse_split_mode(std::string_view token) {
  if (token == "exact") return SplitMode::kExact;
  if (token == "hist") return SplitMode::kHist;
  throw std::invalid_argument("unknown split mode: '" + std::string(token) +
                              "' (expected exact|hist)");
}

DecisionTree::DecisionTree(TreeParams params) : params_(params) {
  NAPEL_CHECK(params_.max_depth >= 1);
  NAPEL_CHECK(params_.min_samples_leaf >= 1);
  NAPEL_CHECK(params_.min_samples_split >= 2 * params_.min_samples_leaf);
  NAPEL_CHECK(params_.mtry_fraction > 0.0 && params_.mtry_fraction <= 1.0);
}

void DecisionTree::fit(const Dataset& data) {
  NAPEL_CHECK_MSG(!data.empty(), "cannot fit on an empty dataset");
  std::vector<std::uint32_t> rows(data.size());
  std::iota(rows.begin(), rows.end(), std::uint32_t{0});
  if (params_.split_mode == SplitMode::kHist) {
    const BinnedDataset binned(data, params_.n_threads);
    HistTreeBuilder builder;
    fit_hist(binned, rows, builder);
    return;
  }
  TreeFitScratch scratch;
  fit_rows(data, rows, scratch);
}

/// Exact mode is sort-free: the scratch is filled once per fit and reused
/// by every node. `order` holds one index column per feature, sorted at
/// the root by (feature value, target) and maintained in that order down
/// the tree by stable partitioning — a subsequence of a sorted sequence is
/// sorted, so best_split never sorts (or allocates) again. The
/// (value, target) sort key reproduces the historical per-node `std::sort`
/// of (value, target) pairs exactly: target sums therefore accumulate in
/// the same order and every split score is bit-identical to the sorting
/// implementation. Gathering through `rows` instead of fitting a
/// materialized Dataset::subset copy is equally bit-identical — the copy
/// produced exactly these columns.
void DecisionTree::fit_rows(const Dataset& data,
                            std::span<const std::uint32_t> rows,
                            TreeFitScratch& ws) {
  NAPEL_CHECK_MSG(params_.split_mode == SplitMode::kExact,
                  "fit_rows is the exact-mode engine");
  NAPEL_CHECK_MSG(!rows.empty(), "cannot fit on an empty row set");
  nodes_.clear();
  n_features_ = data.n_features();
  importance_.assign(n_features_, 0.0);
  const std::size_t n = rows.size();
  const std::size_t p = n_features_;
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});

  ws.n = n;
  ws.p = p;
  ws.col.resize(p * n);
  ws.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    ws.y[i] = data.target(rows[i]);
    const std::span<const double> row = data.row(rows[i]);
    for (std::size_t f = 0; f < p; ++f) ws.col[f * n + i] = row[f];
  }
  ws.order.resize(p * n);
  for (std::size_t f = 0; f < p; ++f) {
    std::uint32_t* ord = ws.order.data() + f * n;
    std::iota(ord, ord + n, std::uint32_t{0});
    const double* v = ws.col.data() + f * n;
    std::sort(ord, ord + n, [&](std::uint32_t a, std::uint32_t b) {
      if (v[a] != v[b]) return v[a] < v[b];
      return ws.y[a] < ws.y[b];
    });
  }
  ws.scratch.resize(n);
  ws.goes_left.assign(n, 0);

  Rng rng(params_.seed);
  build(idx, ws, 0, n, 0, rng);
}

void DecisionTree::fit_hist(const BinnedDataset& binned,
                            std::span<const std::uint32_t> rows,
                            HistTreeBuilder& builder) {
  NAPEL_CHECK_MSG(params_.split_mode == SplitMode::kHist,
                  "fit_hist is the hist-mode engine");
  std::vector<HistNode> flat;
  builder.build(binned, rows, params_, params_.n_threads, flat, importance_);
  n_features_ = binned.n_features();

  // Relabel the builder's BFS array into DFS preorder — the order exact
  // mode emits, the order save()/load() enforce (children follow their
  // parent), and the order FlatForest compilation assumes.
  nodes_.clear();
  nodes_.reserve(flat.size());
  const auto copy_preorder = [&](const auto& self,
                                 std::int32_t old_id) -> std::uint32_t {
    const auto id = static_cast<std::uint32_t>(nodes_.size());
    const HistNode& src = flat[static_cast<std::size_t>(old_id)];
    nodes_.push_back(Node{.feature = src.feature,
                          .threshold = src.threshold,
                          .value = src.value});
    if (src.feature >= 0) {
      nodes_[id].left = self(self, src.left);
      nodes_[id].right = self(self, src.right);
    }
    return id;
  };
  copy_preorder(copy_preorder, 0);
}

std::optional<DecisionTree::SplitChoice> DecisionTree::best_split(
    const TreeFitScratch& ws, std::span<const std::size_t> idx,
    std::size_t begin, std::size_t end, Rng& rng) const {
  const std::size_t n = end - begin;
  const std::size_t p = ws.p;

  // Candidate features for this node.
  std::size_t mtry = static_cast<std::size_t>(
      std::ceil(params_.mtry_fraction * static_cast<double>(p)));
  mtry = std::clamp<std::size_t>(mtry, 1, p);
  std::vector<std::size_t> feats(p);
  std::iota(feats.begin(), feats.end(), std::size_t{0});
  if (mtry < p) {
    // Partial Fisher-Yates: first mtry entries become the random subset.
    for (std::size_t i = 0; i < mtry; ++i) {
      const std::size_t j = i + rng.uniform_index(p - i);
      std::swap(feats[i], feats[j]);
    }
    feats.resize(mtry);
  }

  double total_sum = 0.0;
  for (std::size_t i : idx) total_sum += ws.y[i];
  const double total_sq = [&] {
    double s = 0.0;
    for (std::size_t i : idx) {
      const double y = ws.y[i];
      s += y * y;
    }
    return s;
  }();
  const double parent_sse =
      total_sq - total_sum * total_sum / static_cast<double>(n);

  std::optional<SplitChoice> best;

  for (std::size_t f : feats) {
    // The node's rows in ascending (value, target) order — maintained since
    // the root presort, so no per-node sort and no allocation.
    const std::uint32_t* ord = ws.order.data() + f * ws.n + begin;
    const double* v = ws.col.data() + f * ws.n;
    if (v[ord[0]] == v[ord[n - 1]]) continue;  // constant feature

    double left_sum = 0.0;
    for (std::size_t cut = 1; cut < n; ++cut) {
      const std::uint32_t prev = ord[cut - 1];
      left_sum += ws.y[prev];
      if (v[ord[cut]] == v[prev]) continue;  // not a boundary
      if (cut < params_.min_samples_leaf || n - cut < params_.min_samples_leaf)
        continue;
      const double right_sum = total_sum - left_sum;
      const double nl = static_cast<double>(cut);
      const double nr = static_cast<double>(n - cut);
      // SSE(parent) - SSE(children) = Σ n_c·mean_c² - n·mean², up to the
      // shared Σy² term; maximize the children's weighted mean-square sum.
      const double children_score =
          left_sum * left_sum / nl + right_sum * right_sum / nr;
      const double reduction =
          children_score - total_sum * total_sum / static_cast<double>(n);
      if (!best || reduction > best->sse_reduction) {
        // Split on the left boundary value itself: `x <= threshold` then
        // routes exactly `cut` samples left regardless of floating-point
        // midpoint rounding between adjacent values.
        best = SplitChoice{
            .feature = f,
            .threshold = v[prev],
            .sse_reduction = reduction,
        };
      }
    }
  }
  // Numerical guard: only accept a genuinely improving split.
  if (best && (best->sse_reduction <= 1e-12 * (parent_sse + 1.0)))
    return std::nullopt;
  return best;
}

std::uint32_t DecisionTree::build(std::vector<std::size_t>& idx,
                                  TreeFitScratch& ws, std::size_t begin,
                                  std::size_t end, unsigned depth, Rng& rng) {
  const std::size_t n = end - begin;
  NAPEL_CHECK(n >= 1);
  const auto node_id = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(Node{});

  double mean = 0.0;
  for (std::size_t k = begin; k < end; ++k) mean += ws.y[idx[k]];
  mean /= static_cast<double>(n);
  nodes_[node_id].value = mean;

  if (depth >= params_.max_depth || n < params_.min_samples_split)
    return node_id;

  const auto choice =
      best_split(ws, {idx.data() + begin, n}, begin, end, rng);
  if (!choice) return node_id;

  const double* split_col = ws.col.data() + choice->feature * ws.n;
  const auto mid_it = std::partition(
      idx.begin() + static_cast<std::ptrdiff_t>(begin),
      idx.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t i) { return split_col[i] <= choice->threshold; });
  const auto mid = static_cast<std::size_t>(mid_it - idx.begin());
  // The split came from actual value boundaries, so both sides are nonempty.
  NAPEL_CHECK(mid > begin && mid < end);

  // Stable-partition every per-feature order column around the chosen
  // split: left rows compact forward in place (the write cursor never
  // passes the read cursor), right rows spill to scratch and copy back.
  // Relative order inside each side is preserved, so both children's
  // columns remain sorted by (value, target) with zero re-sorting.
  for (std::size_t k = begin; k < mid; ++k) ws.goes_left[idx[k]] = 1;
  for (std::size_t k = mid; k < end; ++k) ws.goes_left[idx[k]] = 0;
  for (std::size_t f = 0; f < ws.p; ++f) {
    std::uint32_t* ord = ws.order.data() + f * ws.n;
    std::uint32_t* spill = ws.scratch.data();
    std::size_t nl = begin, nr = 0;
    for (std::size_t k = begin; k < end; ++k) {
      const std::uint32_t i = ord[k];
      if (ws.goes_left[i])
        ord[nl++] = i;
      else
        spill[nr++] = i;
    }
    NAPEL_CHECK(nl == mid);
    std::copy(spill, spill + nr, ord + mid);
  }

  importance_[choice->feature] += choice->sse_reduction;
  const std::uint32_t left = build(idx, ws, begin, mid, depth + 1, rng);
  const std::uint32_t right = build(idx, ws, mid, end, depth + 1, rng);
  nodes_[node_id].feature = static_cast<std::int32_t>(choice->feature);
  nodes_[node_id].threshold = choice->threshold;
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

double DecisionTree::predict(std::span<const double> x) const {
  return nodes_[leaf_id(x)].value;
}

std::uint32_t DecisionTree::leaf_id(std::span<const double> x) const {
  NAPEL_CHECK_MSG(is_fitted(), "predict before fit");
  NAPEL_CHECK(x.size() == n_features_);
  std::uint32_t cur = 0;
  for (;;) {
    const Node& nd = nodes_[cur];
    if (nd.feature < 0) return cur;
    cur = x[static_cast<std::size_t>(nd.feature)] <= nd.threshold ? nd.left
                                                                  : nd.right;
  }
}

void DecisionTree::save(std::ostream& os) const {
  NAPEL_CHECK_MSG(is_fitted(), "cannot save an unfitted tree");
  const auto old_precision =
      os.precision(std::numeric_limits<double>::max_digits10);
  os << "tree " << n_features_ << ' ' << nodes_.size() << '\n';
  for (const Node& nd : nodes_)
    os << nd.feature << ' ' << nd.threshold << ' ' << nd.left << ' '
       << nd.right << ' ' << nd.value << '\n';
  for (std::size_t f = 0; f < importance_.size(); ++f)
    os << importance_[f] << (f + 1 < importance_.size() ? ' ' : '\n');
  os.precision(old_precision);
}

DecisionTree DecisionTree::load(std::istream& is) {
  std::string tag;
  std::size_t n_features = 0, n_nodes = 0;
  is >> tag >> n_features >> n_nodes;
  NAPEL_CHECK_MSG(is.good() && tag == "tree" && n_features >= 1 &&
                      n_nodes >= 1,
                  "malformed tree header");
  DecisionTree tree;
  tree.n_features_ = n_features;
  tree.nodes_.resize(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    Node& nd = tree.nodes_[i];
    is >> nd.feature >> nd.threshold >> nd.left >> nd.right >> nd.value;
    NAPEL_CHECK_MSG(is.good(), "truncated tree nodes");
    NAPEL_CHECK_MSG(nd.feature < static_cast<std::int32_t>(n_features),
                    "node feature out of range");
    NAPEL_CHECK_MSG(nd.feature < 0 ||
                        (nd.left < n_nodes && nd.right < n_nodes),
                    "node child out of range");
    // Saved trees are in DFS preorder, so every child id exceeds its
    // parent's. Enforcing that here makes traversal progress strictly
    // monotone: a corrupted file can mis-predict, but leaf_id() can never
    // cycle or hang.
    if (nd.feature >= 0 && (nd.left <= i || nd.right <= i))
      throw TreeTopologyError(
          "tree topology: node " + std::to_string(i) +
          " links to a child at or before itself (cycle risk)");
  }
  // Tree-ness: the root is referenced by nothing and every other node by
  // exactly one parent — rejects shared subtrees and unreachable debris.
  std::vector<std::uint8_t> refs(n_nodes, 0);
  for (const Node& nd : tree.nodes_)
    if (nd.feature >= 0) {
      ++refs[nd.left];
      ++refs[nd.right];
    }
  for (std::size_t i = 0; i < n_nodes; ++i)
    if (refs[i] != (i == 0 ? 0 : 1))
      throw TreeTopologyError(
          "tree topology: node " + std::to_string(i) +
          (refs[i] == 0 ? " is unreachable" : " has multiple parents"));
  tree.importance_.resize(n_features);
  for (double& v : tree.importance_) {
    is >> v;
    NAPEL_CHECK_MSG(is.good(), "truncated tree importance");
  }
  return tree;
}

std::size_t DecisionTree::leaf_count() const {
  std::size_t c = 0;
  for (const auto& nd : nodes_)
    if (nd.feature < 0) ++c;
  return c;
}

unsigned DecisionTree::depth() const {
  if (nodes_.empty()) return 0;
  // Iterative depth computation over the implicit tree structure.
  std::vector<std::pair<std::uint32_t, unsigned>> stack{{0, 0}};
  unsigned best = 0;
  while (!stack.empty()) {
    const auto [id, d] = stack.back();
    stack.pop_back();
    best = std::max(best, d);
    const Node& nd = nodes_[id];
    if (nd.feature >= 0) {
      stack.push_back({nd.left, d + 1});
      stack.push_back({nd.right, d + 1});
    }
  }
  return best;
}

}  // namespace napel::ml
