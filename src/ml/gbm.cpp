#include "ml/gbm.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace napel::ml {

GradientBoosting::GradientBoosting(GbmParams params) : params_(params) {
  NAPEL_CHECK(params_.n_rounds >= 1);
  NAPEL_CHECK(params_.learning_rate > 0.0 && params_.learning_rate <= 1.0);
  NAPEL_CHECK(params_.subsample > 0.0 && params_.subsample <= 1.0);
}

void GradientBoosting::fit(const Dataset& data) {
  NAPEL_CHECK_MSG(!data.empty(), "cannot fit on an empty dataset");
  trees_.clear();
  curve_.clear();
  const std::size_t n = data.size();

  base_ = 0.0;
  for (std::size_t i = 0; i < n; ++i) base_ += data.target(i);
  base_ /= static_cast<double>(n);

  // Current additive-model prediction per training row.
  std::vector<double> current(n, base_);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  const auto subset_size = std::max<std::size_t>(
      1, static_cast<std::size_t>(params_.subsample * static_cast<double>(n)));

  Rng rng(params_.seed);
  trees_.reserve(params_.n_rounds);

  for (unsigned round = 0; round < params_.n_rounds; ++round) {
    // Squared loss: the negative gradient is the residual.
    rng.shuffle(order);
    Dataset residuals(data.n_features(), data.feature_names());
    for (std::size_t k = 0; k < subset_size; ++k) {
      const std::size_t i = order[k];
      residuals.add_row(data.row(i), data.target(i) - current[i]);
    }

    TreeParams tp;
    tp.max_depth = params_.max_depth;
    tp.min_samples_leaf = params_.min_samples_leaf;
    tp.min_samples_split = 2 * params_.min_samples_leaf;
    tp.mtry_fraction = 1.0;
    tp.seed = rng();
    DecisionTree& tree = trees_.emplace_back(tp);
    tree.fit(residuals);

    double mse = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      current[i] += params_.learning_rate * tree.predict(data.row(i));
      const double e = data.target(i) - current[i];
      mse += e * e;
    }
    curve_.push_back(mse / static_cast<double>(n));
  }
  fitted_ = true;
}

double GradientBoosting::predict(std::span<const double> x) const {
  NAPEL_CHECK_MSG(fitted_, "predict before fit");
  double s = base_;
  for (const auto& tree : trees_) s += params_.learning_rate * tree.predict(x);
  return s;
}

}  // namespace napel::ml
