// AVX2 batched forest-traversal kernel.
//
// The one translation unit in the tree allowed to use vector intrinsics
// (tools/source_lint.py rule `raw-intrinsics` keeps it that way). Compiled
// with -mavx2 when the toolchain supports it; the dispatch layer
// (FlatForest::predict_batch via common/cpuid.hpp) only calls batch_avx2
// after a runtime __builtin_cpu_supports("avx2") check, so the binary
// stays runnable on pre-AVX2 machines.
//
// Shape: 8 rows per lane group — a __m256i of arena node indices — with
// two groups in flight per step loop so the gathers of one group overlap
// the latency of the other's. Each step gathers the feature column
// (vpgatherdd), the threshold column and the row features (vgatherdpd by
// 128-bit index halves), compares with ordered `<=` semantics (NaN
// features route right, exactly like the scalar compare), gathers both
// child columns and blends on the packed compare mask. A group whose
// lanes all sit on leaves (sign bits of the gathered feature column)
// stops stepping early — the lockstep spin encoding makes the parked
// lanes' gathers harmless until then. Leaf values are gathered once per
// tree and added to per-row accumulators in tree order, so every double
// is bit-identical to the scalar kernel's (see forest_kernels.hpp).
#include "ml/forest_kernels.hpp"

#if defined(NAPEL_ML_HAVE_AVX2)

#include <immintrin.h>

#include <algorithm>

namespace napel::ml::detail {

namespace {

constexpr std::size_t kRowBlock = 64;

/// One-row early-exit walk for sub-lane tails (same leaf as the lockstep
/// spin; see flat_forest_kernels.cpp).
inline std::uint32_t walk_one(const ForestView& f, const double* x,
                              std::uint32_t root) {
  std::uint32_t cur = root;
  for (;;) {
    const PackedNode& nd = f.packed[cur];
    if (nd.feature < 0) return cur;
    const std::uint32_t l = nd.left;
    const std::uint32_t r = nd.right;
    cur = x[static_cast<std::uint32_t>(nd.feature)] <= nd.threshold ? l : r;
  }
}

struct LaneGroup {
  __m256i cur;      // 8 arena node indices
  __m256i rowbase;  // 8 block-local row offsets into X (r * n_features)
  bool done;        // every lane parked on its leaf
};

// All-lanes gathers expressed through the masked forms with a zeroed
// source: identical vpgatherdd/vgatherdpd codegen, but without the
// _mm256_undefined_* source operand that trips -Wmaybe-uninitialized
// under -Werror builds.
inline __m256i gather_i32(const void* base, __m256i idx) {
  return _mm256_mask_i32gather_epi32(_mm256_setzero_si256(),
                                     static_cast<const int*>(base), idx,
                                     _mm256_set1_epi32(-1), 4);
}

inline __m256d gather_f64(const double* base, __m128i idx) {
  return _mm256_mask_i32gather_pd(
      _mm256_setzero_pd(), base, idx,
      _mm256_castsi256_pd(_mm256_set1_epi64x(-1)), 8);
}

/// One lockstep step for one 8-lane group. Returns true when every lane's
/// gathered feature is the leaf marker (-1), i.e. the group is parked.
/// Node data is gathered from the 32-byte packed records, so a lane's
/// feature / threshold / children loads all hit the same cache line:
/// in dwords of the record base, node `c` holds threshold at 8c (a qword
/// at qword index 4c), left at 8c+2, right at 8c+3, feature at 8c+4.
inline bool step_group(const ForestView& f, const double* Xb, LaneGroup& g) {
  const __m256i cur8 = _mm256_slli_epi32(g.cur, 3);
  const __m256i feat =
      gather_i32(f.packed, _mm256_add_epi32(cur8, _mm256_set1_epi32(4)));
  // Leaf marker -1 sets the sign bit; eight set sign bits = all parked.
  if (_mm256_movemask_ps(_mm256_castsi256_ps(feat)) == 0xff) return true;
  const __m256i fi = _mm256_max_epi32(feat, _mm256_setzero_si256());
  const __m256i xi = _mm256_add_epi32(g.rowbase, fi);
  const __m256i cur4 = _mm256_slli_epi32(g.cur, 2);
  const __m128i cur4_lo = _mm256_castsi256_si128(cur4);
  const __m128i cur4_hi = _mm256_extracti128_si256(cur4, 1);
  const double* packed_d = reinterpret_cast<const double*>(f.packed);
  const __m256d thr_lo = gather_f64(packed_d, cur4_lo);
  const __m256d thr_hi = gather_f64(packed_d, cur4_hi);
  const __m256d x_lo = gather_f64(Xb, _mm256_castsi256_si128(xi));
  const __m256d x_hi = gather_f64(Xb, _mm256_extracti128_si256(xi, 1));
  // Ordered quiet `<=`: NaN features compare false and route right, the
  // same direction the scalar `x <= thr ? l : r` picks.
  const __m256d le_lo = _mm256_cmp_pd(x_lo, thr_lo, _CMP_LE_OQ);
  const __m256d le_hi = _mm256_cmp_pd(x_hi, thr_hi, _CMP_LE_OQ);
  // Pack the two 4x64-bit masks into one 8x32-bit mask in lane order:
  // shuffle keeps the low 32 bits of each 64-bit mask, giving
  // [m0,m1,m4,m5 | m2,m3,m6,m7]; the permute restores [m0..m7].
  const __m256 packed =
      _mm256_shuffle_ps(_mm256_castpd_ps(le_lo), _mm256_castpd_ps(le_hi),
                        _MM_SHUFFLE(2, 0, 2, 0));
  const __m256i perm = _mm256_setr_epi32(0, 1, 4, 5, 2, 3, 6, 7);
  const __m256i mask =
      _mm256_permutevar8x32_epi32(_mm256_castps_si256(packed), perm);
  const __m256i l =
      gather_i32(f.packed, _mm256_add_epi32(cur8, _mm256_set1_epi32(2)));
  const __m256i r =
      gather_i32(f.packed, _mm256_add_epi32(cur8, _mm256_set1_epi32(3)));
  g.cur = _mm256_blendv_epi8(r, l, mask);  // mask lane set -> go left
  return false;
}

/// Gathers the 8 leaf values of a parked group, adds them onto the row
/// accumulators (per-lane independent adds: bit-identical to scalar), and
/// optionally records the per-tree votes.
inline void settle_group(const ForestView& f, const LaneGroup& g,
                         double* acc, double* votes_row0,
                         std::size_t votes_stride) {
  const __m128i cur_lo = _mm256_castsi256_si128(g.cur);
  const __m128i cur_hi = _mm256_extracti128_si256(g.cur, 1);
  const __m256d val_lo = gather_f64(f.value, cur_lo);
  const __m256d val_hi = gather_f64(f.value, cur_hi);
  _mm256_storeu_pd(acc, _mm256_add_pd(_mm256_loadu_pd(acc), val_lo));
  _mm256_storeu_pd(acc + 4,
                   _mm256_add_pd(_mm256_loadu_pd(acc + 4), val_hi));
  if (votes_row0 != nullptr) {
    alignas(32) double vals[8];
    _mm256_store_pd(vals, val_lo);
    _mm256_store_pd(vals + 4, val_hi);
    for (int k = 0; k < 8; ++k) votes_row0[static_cast<std::size_t>(k) *
                                           votes_stride] = vals[k];
  }
}

inline __m256i make_rowbase(std::size_t r, std::size_t nf) {
  const auto base = static_cast<std::int32_t>(r * nf);
  const auto n = static_cast<std::int32_t>(nf);
  return _mm256_setr_epi32(base, base + n, base + 2 * n, base + 3 * n,
                           base + 4 * n, base + 5 * n, base + 6 * n,
                           base + 7 * n);
}

}  // namespace

void batch_avx2(const ForestView& f, const double* X, std::size_t n_rows,
                double* out, double* votes) {
  constexpr std::size_t kGroups = kRowBlock / 8;
  const std::size_t nt = f.n_trees;
  const std::size_t nf = f.n_features;
  const __m256d nt_d = _mm256_set1_pd(static_cast<double>(nt));
  alignas(32) double acc[kRowBlock];
  LaneGroup gs[kGroups];
  for (std::size_t row0 = 0; row0 < n_rows; row0 += kRowBlock) {
    const std::size_t b = std::min(kRowBlock, n_rows - row0);
    const double* Xb = X + row0 * nf;  // block-local: gather indices stay i32
    std::fill_n(acc, b, 0.0);
    const std::size_t ng = b / 8;  // full lane groups; the rest walks alone
    const std::size_t lanes = ng * 8;
    for (std::size_t g = 0; g < ng; ++g)
      gs[g].rowbase = make_rowbase(g * 8, nf);
    for (std::size_t t = 0; t < nt; ++t) {
      const std::uint32_t root = f.tree_offset[t];
      const unsigned steps = f.tree_steps[t];
      const __m256i rootv = _mm256_set1_epi32(static_cast<std::int32_t>(root));
      double* votes_t =
          votes != nullptr ? votes + row0 * nt + t : nullptr;
      // Every live group advances one level per iteration of the step
      // loop: with all eight groups in flight, up to 64 lanes' gathers are
      // outstanding at once — the same memory-level parallelism that makes
      // the scalar lockstep kernel fast once the arena outgrows L2 — while
      // a group whose eight rows all parked drops out early instead of
      // spinning to the tree's deepest leaf.
      for (std::size_t g = 0; g < ng; ++g) {
        gs[g].cur = rootv;
        gs[g].done = false;
      }
      std::size_t live = ng;
      for (unsigned s = 0; s < steps && live > 0; ++s) {
        for (std::size_t g = 0; g < ng; ++g) {
          if (gs[g].done) continue;
          if (step_group(f, Xb, gs[g])) {
            gs[g].done = true;
            --live;
          }
        }
      }
      for (std::size_t g = 0; g < ng; ++g)
        settle_group(f, gs[g], acc + g * 8,
                     votes_t != nullptr ? votes_t + g * 8 * nt : nullptr,
                     nt);
      for (std::size_t r = lanes; r < b; ++r) {
        const std::uint32_t leaf = walk_one(f, Xb + r * nf, root);
        const double v = f.value[leaf];
        acc[r] += v;
        if (votes_t != nullptr) votes_t[r * nt] = v;
      }
    }
    if (out != nullptr) {
      std::size_t r = 0;
      for (; r + 4 <= b; r += 4)
        _mm256_storeu_pd(out + row0 + r,
                         _mm256_div_pd(_mm256_loadu_pd(acc + r), nt_d));
      for (; r < b; ++r)
        out[row0 + r] = acc[r] / static_cast<double>(nt);
    }
  }
}

}  // namespace napel::ml::detail

#endif  // NAPEL_ML_HAVE_AVX2
