// Ridge (L2-regularized) linear regression with an unpenalized intercept —
// used standalone (the "linear regression" related-work baseline) and as
// the leaf model of the M5-style model tree.
#pragma once

#include <vector>

#include "ml/regressor.hpp"

namespace napel::ml {

struct RidgeParams {
  double lambda = 1.0;
};

class RidgeRegression final : public Regressor {
 public:
  explicit RidgeRegression(RidgeParams params = {});

  void fit(const Dataset& data) override;
  double predict(std::span<const double> x) const override;
  bool is_fitted() const override { return fitted_; }

  /// Weights (per feature) and intercept after fitting.
  const std::vector<double>& weights() const { return w_; }
  double intercept() const { return bias_; }

 private:
  RidgeParams params_;
  std::vector<double> w_;
  double bias_ = 0.0;
  bool fitted_ = false;
};

}  // namespace napel::ml
