// Flat, batched forest-inference engine.
//
// A fitted RandomForest stores each tree as its own heap-allocated vector
// of AoS nodes; prediction pointer-chases them one row at a time. For the
// serving shapes NAPEL cares about — design-space exploration over hundreds
// of candidates, cross-validation over whole held-out sets — that wastes
// most of its cycles on cache misses and per-call allocations.
//
// FlatForest compiles a fitted forest into one contiguous structure-of-
// arrays arena: i32 feature / f64 threshold / u32 child / f64 leaf-value
// columns, trees packed back-to-back in the tree's natural DFS layout with
// per-tree offsets (child links are rebased to arena-absolute indices, so
// traversal needs no per-tree bias). predict_batch() walks row-blocks
// tree-major, keeping each tree's node columns cache-resident while it is
// reused across the block; predict_all_trees() exposes the per-tree votes
// of a single traversal so the ensemble mean and the percentile interval
// never pay for two walks.
//
// Determinism contract: every path reproduces the pointer-based forest
// bit-for-bit. Traversal visits identical nodes (same comparisons on the
// same values), per-row tree votes accumulate in tree order with the same
// `sum / n_trees` division, and intervals sort the same vote multiset
// before the same linear interpolation — so swapping a RandomForest for
// its compiled FlatForest can never change a prediction, at any batch
// size or thread count.
//
// Batched prediction additionally dispatches over SIMD levels
// (common/cpuid.hpp: scalar / portable / avx2 — see forest_kernels.hpp)
// and shards rows across the work-stealing pool; both knobs preserve the
// bit-identity contract, because every kernel walks the same arena with
// the same comparisons and each row's votes accumulate independently in
// tree order regardless of lane width or which shard the row lands in.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/cpuid.hpp"
#include "ml/forest_kernels.hpp"
#include "ml/random_forest.hpp"

namespace napel::ml {

/// Thrown by FlatForest::certify() when the arena violates the structural
/// contract predict_batch relies on: in-arena forward-only child links,
/// self-linked +inf-threshold leaves, monotone per-tree offsets, finite
/// thresholds and leaf values, consistent lockstep step counts. Distinct
/// from std::invalid_argument contract failures so the verification layer
/// can attribute a dedicated lint rule (`forest-structure`) to it.
class ArenaCertificationError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

class FlatForest {
 public:
  FlatForest() = default;

  /// Compiles a fitted forest into the flat arena. O(total node count).
  explicit FlatForest(const RandomForest& forest);

  bool is_compiled() const { return tree_offset_.size() > 1; }
  std::size_t tree_count() const {
    return tree_offset_.empty() ? 0 : tree_offset_.size() - 1;
  }
  std::size_t node_count() const { return feature_.size(); }
  std::size_t n_features() const { return n_features_; }

  /// Ensemble mean for one row (bit-identical to RandomForest::predict).
  double predict(std::span<const double> x) const;

  /// Ensemble means for `n_rows` row-major rows of X (size n_rows *
  /// n_features()), written to out[0..n_rows). Walks row-blocks tree-major:
  /// each tree's columns stay cache-resident while the whole block reuses
  /// them, instead of every row streaming the full arena past the cache.
  ///
  /// `n_threads` shards the rows over the work-stealing pool at 64-row
  /// block granularity (0 = pool default, 1 = inline); every row writes
  /// only its own out slot, so output bytes are identical at any thread
  /// count. `level` pins the SIMD dispatch level for this call (clamped to
  /// what the CPU supports); nullopt uses resolved_simd_level() — the
  /// --simd override, then NAPEL_SIMD, then the CPU maximum. All levels
  /// produce bit-identical doubles.
  void predict_batch(std::span<const double> X, std::size_t n_rows,
                     std::span<double> out, unsigned n_threads = 1,
                     std::optional<SimdLevel> level = std::nullopt) const;

  /// Per-tree votes for every row of X, row-major into
  /// votes[r * tree_count() + t] — predict_all_trees at batch scale, on
  /// the same sharded SIMD engine as predict_batch. votes.size() must be
  /// at least n_rows * tree_count(). Each row's vote vector matches
  /// predict_all_trees(row) bit-for-bit.
  void predict_votes_batch(std::span<const double> X, std::size_t n_rows,
                           std::span<double> votes, unsigned n_threads = 1,
                           std::optional<SimdLevel> level =
                               std::nullopt) const;

  /// True when `level` can actually execute in this process: kAvx2 needs
  /// both the compiled-in AVX2 kernel TU and runtime CPU support; scalar
  /// and portable always run. The "avx2-if-available" predicate tests use
  /// to decide which levels to sweep.
  static bool simd_kernel_available(SimdLevel level);

  /// One traversal's per-tree votes for a single row, in tree order
  /// (per_tree.size() == tree_count()). The mean and any percentile of
  /// these votes match predict()/predict_interval() bit-for-bit.
  void predict_all_trees(std::span<const double> x,
                         std::span<double> per_tree) const;

  /// Adds the votes of trees [t_begin, t_end) onto `sum`, accumulating in
  /// tree order — the resumable building block of deadline-bounded degraded
  /// inference. Chaining chunks from 0 to tree_count() and dividing by
  /// tree_count() reproduces predict() bit-for-bit, because the additions
  /// happen on the same values in the same order; the arena's per-tree DFS
  /// offsets make any prefix a valid sub-ensemble to stop at.
  double accumulate_votes(std::span<const double> x, std::size_t t_begin,
                          std::size_t t_end, double sum) const;

  /// Mean + percentile band from one traversal into the caller-owned
  /// scratch buffer (size tree_count()); sorts `scratch` in place, so no
  /// allocation. Bit-identical to RandomForest::predict_interval.
  RandomForest::Interval predict_interval(std::span<const double> x,
                                          std::span<double> scratch,
                                          double lo_pct = 10.0,
                                          double hi_pct = 90.0) const;

  /// Band over already-computed per-tree votes (sorts them in place).
  static RandomForest::Interval interval_from_trees(std::span<double> votes,
                                                    double lo_pct = 10.0,
                                                    double hi_pct = 90.0);

  // --- static-analysis surface (src/verify/forest_analyzer) ---------------

  /// Read-only view of the arena columns, for offline analyzers. Spans stay
  /// valid until the forest is recompiled or destroyed.
  struct ArenaView {
    std::span<const std::int32_t> feature;
    std::span<const double> threshold;
    std::span<const std::uint32_t> left;
    std::span<const std::uint32_t> right;
    std::span<const double> value;
    std::span<const std::uint32_t> tree_offset;  // size tree_count() + 1
    std::span<const unsigned> tree_steps;        // lockstep depth per tree
  };
  ArenaView arena() const {
    return {feature_, threshold_, left_, right_,
            value_,   tree_offset_, tree_steps_};
  }

  /// Corruption hook for verification tests: mutable access to the arena
  /// columns so a test can damage one cell and prove certify() (or the
  /// forest analyzer) rejects the arena before predict_batch runs. Not for
  /// production use — a mutated arena voids the determinism contract.
  /// (Structural columns are mirrored into the packed node records at
  /// compile time, so mutations to feature / threshold / child cells are
  /// only guaranteed visible to certify() and the offline analyzers;
  /// leaf `value` mutations are visible to every prediction path.)
  struct MutableArena {
    std::span<std::int32_t> feature;
    std::span<double> threshold;
    std::span<std::uint32_t> left;
    std::span<std::uint32_t> right;
    std::span<double> value;
  };
  MutableArena mutable_arena() {
    return {feature_, threshold_, left_, right_, value_};
  }

  /// Full structural re-validation of the compiled arena — the static
  /// safety half of the determinism contract. O(node count). Throws
  /// ArenaCertificationError naming the first violated invariant:
  ///   * per-tree offsets strictly monotone, first 0, last == node_count();
  ///   * internal nodes: feature in [0, n_features), finite threshold,
  ///     both children inside the same tree and strictly after the parent
  ///     (DFS-preorder forward-only — traversal provably terminates);
  ///   * leaves: feature == -1, +inf threshold, self-linked children,
  ///     finite value (the lockstep spin encoding);
  ///   * every non-root node referenced by exactly one parent (no shared
  ///     subtrees, no unreachable debris);
  ///   * recorded lockstep step counts match the recomputed leaf depths
  ///     (an understated count would truncate predict_batch mid-tree).
  void certify() const;

  /// Certified output range of one tree / of the ensemble mean: [lo, hi]
  /// over leaf values, combined across trees in tree order as
  /// (Σ min_t)/T .. (Σ max_t)/T. Round-to-nearest addition and division
  /// are monotone, and every prediction path sums per-tree votes in the
  /// same order, so any predict()/predict_batch()/predict_all_trees()
  /// result provably lies inside value_bounds() bit-exactly.
  struct ValueBounds {
    double lo = 0.0;
    double hi = 0.0;
    bool contains(double v) const { return v >= lo && v <= hi; }
  };
  ValueBounds tree_value_bounds(std::size_t t) const;
  ValueBounds value_bounds() const;

  /// Precomputed per-tree output ranges for prefix (degraded) inference.
  /// Given the exact partial sum of the first k votes, the full-ensemble
  /// prediction is (s_k + v_k + ... + v_{T-1}) / T with v_t in
  /// [tree_lo[t], tree_hi[t]]; interval() re-runs that exact summation
  /// order with each unevaluated vote replaced by its bound. Round-to-
  /// nearest addition and division are monotone, so the returned interval
  /// provably contains the full-ensemble prediction bit-exactly — and with
  /// k == 0 it IS value_bounds(), the certified ensemble range.
  struct PrefixBounds {
    std::vector<double> tree_lo;  // per-tree min leaf value, tree order
    std::vector<double> tree_hi;  // per-tree max leaf value

    std::size_t tree_count() const { return tree_lo.size(); }

    /// Certified interval around the full-ensemble mean after the first
    /// `k_evaluated` votes summed (in tree order) to `prefix_sum`.
    ValueBounds interval(double prefix_sum, std::size_t k_evaluated) const;
  };
  /// Snapshot of the per-tree bounds (O(node count); computed once per
  /// model load by the serving layer, not per request).
  PrefixBounds prefix_bounds() const;

 private:
  /// Leaf value tree `t` routes row `x` to. Root of tree t is
  /// tree_offset_[t]; child links are arena-absolute. Walks the packed
  /// single-line node records (detail::PackedNode) — one cache line per
  /// node instead of four column loads — with leaf values read from the
  /// SoA `value_` column (the cell verification tests mutate through
  /// mutable_arena() and expect every prediction path to observe).
  double traverse(std::size_t t, const double* x) const {
    std::uint32_t cur = tree_offset_[t];
    for (;;) {
      const detail::PackedNode& nd = nodes_[cur];
      if (nd.feature < 0) return value_[cur];
      // Both children loaded up front so the direction pick is a
      // conditional move, not a per-node mispredicted branch.
      const std::uint32_t l = nd.left;
      const std::uint32_t r = nd.right;
      cur = x[static_cast<std::uint32_t>(nd.feature)] <= nd.threshold ? l : r;
    }
  }

  /// Shared engine behind predict_batch / predict_votes_batch: resolves
  /// the kernel for `level` and shards [0, n_rows) over 64-row blocks.
  void run_batch(const double* X, std::size_t n_rows, double* out,
                 double* votes, unsigned n_threads,
                 std::optional<SimdLevel> level) const;

  // Leaves carry the lockstep encoding: threshold +inf and left_ == right_
  // == own index, so the batched kernel can step every row of a block one
  // level at a time with no per-row termination branch (a finished row
  // spins on its leaf). feature_ keeps -1 at leaves for the scalar paths.
  std::vector<std::int32_t> feature_;    // -1 = leaf
  std::vector<double> threshold_;
  std::vector<std::uint32_t> left_;      // arena-absolute child indices
  std::vector<std::uint32_t> right_;
  std::vector<double> value_;
  std::vector<detail::PackedNode> nodes_;  // packed single-line mirror
  std::vector<std::uint32_t> tree_offset_;  // size tree_count() + 1
  std::vector<unsigned> tree_steps_;        // deepest leaf depth per tree
  std::size_t n_features_ = 0;
};

}  // namespace napel::ml
