#include "ml/scaler.hpp"

#include <cmath>

#include "common/check.hpp"

namespace napel::ml {

void StandardScaler::fit(const Dataset& data) {
  NAPEL_CHECK_MSG(!data.empty(), "cannot fit scaler on empty dataset");
  const std::size_t p = data.n_features();
  const double n = static_cast<double>(data.size());
  mean_.assign(p, 0.0);
  std_.assign(p, 0.0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto x = data.row(i);
    for (std::size_t f = 0; f < p; ++f) mean_[f] += x[f];
  }
  for (double& m : mean_) m /= n;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto x = data.row(i);
    for (std::size_t f = 0; f < p; ++f) {
      const double d = x[f] - mean_[f];
      std_[f] += d * d;
    }
  }
  for (double& s : std_) {
    s = std::sqrt(s / n);
    if (s < 1e-12) s = 1.0;  // constant feature -> transforms to 0
  }

  y_mean_ = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) y_mean_ += data.target(i);
  y_mean_ /= n;
  double v = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double d = data.target(i) - y_mean_;
    v += d * d;
  }
  y_std_ = std::sqrt(v / n);
  if (y_std_ < 1e-12) y_std_ = 1.0;
}

std::vector<double> StandardScaler::transform(
    std::span<const double> x) const {
  NAPEL_CHECK_MSG(is_fitted(), "transform before fit");
  NAPEL_CHECK(x.size() == mean_.size());
  std::vector<double> out(x.size());
  for (std::size_t f = 0; f < x.size(); ++f)
    out[f] = (x[f] - mean_[f]) / std_[f];
  return out;
}

Dataset StandardScaler::transform_features(const Dataset& data) const {
  Dataset out(data.n_features(), data.feature_names());
  for (std::size_t i = 0; i < data.size(); ++i)
    out.add_row(transform(data.row(i)), transform_target(data.target(i)));
  return out;
}

}  // namespace napel::ml
