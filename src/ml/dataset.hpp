// Tabular regression dataset: dense feature matrix plus targets, with the
// subset/fold utilities the training and cross-validation pipelines need.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace napel::ml {

class Dataset {
 public:
  explicit Dataset(std::size_t n_features,
                   std::vector<std::string> feature_names = {});

  void add_row(std::span<const double> x, double y);

  std::size_t size() const { return y_.size(); }
  std::size_t n_features() const { return n_features_; }
  bool empty() const { return y_.empty(); }

  std::span<const double> row(std::size_t i) const;
  double target(std::size_t i) const;
  std::span<const double> targets() const { return y_; }
  /// The whole row-major feature matrix (size() * n_features() doubles) —
  /// the zero-copy input shape batched inference consumes.
  std::span<const double> features() const { return x_; }
  const std::vector<std::string>& feature_names() const { return names_; }

  /// New dataset holding the given rows (indices may repeat — used for
  /// bootstrap resampling).
  Dataset subset(std::span<const std::size_t> indices) const;

  /// Shuffled k-fold assignment: fold id per row.
  std::vector<std::size_t> kfold_assignment(std::size_t k, Rng& rng) const;

  /// Splits into (train, test) datasets where rows with fold==test_fold go
  /// to test.
  std::pair<Dataset, Dataset> split_fold(
      std::span<const std::size_t> fold_of_row, std::size_t test_fold) const;

 private:
  std::size_t n_features_;
  std::vector<std::string> names_;
  std::vector<double> x_;  // row-major, size() * n_features_
  std::vector<double> y_;
};

}  // namespace napel::ml
