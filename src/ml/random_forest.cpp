#include "ml/random_forest.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <istream>
#include <limits>
#include <memory>
#include <ostream>
#include <string>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "ml/binned_dataset.hpp"
#include "ml/hist_split.hpp"

namespace napel::ml {

namespace {

/// Per-executor fitting scratch, recycled across every tree the executor
/// claims: the bootstrap sample, its in-bag flags, and the engine
/// workspace (only one of the two is ever touched per forest). Replaces
/// the per-tree Dataset copy the old implementation materialized.
struct TreeScratch {
  std::vector<std::uint32_t> sample;
  std::vector<char> in_bag;
  TreeFitScratch exact;
  HistTreeBuilder hist;
};

}  // namespace

RandomForest::RandomForest(RandomForestParams params) : params_(params) {
  NAPEL_CHECK(params_.n_trees >= 1);
}

void RandomForest::fit(const Dataset& data) {
  NAPEL_CHECK_MSG(!data.empty(), "cannot fit on an empty dataset");
  n_features_ = data.n_features();
  importance_raw_.assign(n_features_, 0.0);
  const std::size_t n = data.size();

  // Pre-split every per-tree generator from the root generator up front:
  // the root consumes exactly one split() per tree, the same stream the
  // sequential implementation consumed, so tree t sees the same RNG no
  // matter how many threads fit the forest.
  Rng rng(params_.seed);
  std::vector<Rng> tree_rngs;
  tree_rngs.reserve(params_.n_trees);
  for (unsigned t = 0; t < params_.n_trees; ++t)
    tree_rngs.push_back(rng.split());

  // Hist mode bins the dataset exactly once per fit; every tree then
  // trains over the shared code matrix through its bootstrap row indices.
  const bool hist = params_.split_mode == SplitMode::kHist;
  last_fit_bin_seconds_ = 0.0;
  std::unique_ptr<const BinnedDataset> binned;
  if (hist) {
    const auto bin_t0 = std::chrono::steady_clock::now();
    binned = std::make_unique<const BinnedDataset>(data, params_.n_threads);
    last_fit_bin_seconds_ = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - bin_t0)
                                .count();
  }
  // In-tree level parallelism only pays when trees cannot saturate the
  // workers on their own; either way the fitted trees are bit-identical.
  const unsigned workers = effective_threads(params_.n_threads);
  const unsigned tree_threads =
      params_.n_trees >= workers ? 1 : params_.n_threads;

  // Trees fit concurrently into pre-allocated slots; out-of-bag
  // predictions are staged per tree (row index ascending) and reduced
  // sequentially below. Bootstrap rows are *sampled as indices* into
  // per-executor scratch — no per-tree dataset copy — which is
  // bit-identical to fitting the old Dataset::subset copy.
  trees_.assign(params_.n_trees, DecisionTree{});
  std::vector<std::vector<std::pair<std::size_t, double>>> oob_preds(
      params_.n_trees);
  std::vector<TreeScratch> scratch(
      parallel_slot_count(params_.n_trees, params_.n_threads));

  parallel_for_slotted(
      params_.n_trees, params_.n_threads, [&](std::size_t slot, std::size_t t) {
        TreeScratch& ws = scratch[slot];
        Rng tree_rng = tree_rngs[t];
        ws.sample.resize(n);
        ws.in_bag.assign(n, 0);
        for (std::size_t i = 0; i < n; ++i) {
          ws.sample[i] = static_cast<std::uint32_t>(tree_rng.uniform_index(n));
          ws.in_bag[ws.sample[i]] = 1;
        }

        TreeParams tp;
        tp.max_depth = params_.max_depth;
        tp.min_samples_split = params_.min_samples_split;
        tp.min_samples_leaf = params_.min_samples_leaf;
        tp.mtry_fraction = params_.mtry_fraction;
        tp.seed = tree_rng();
        tp.split_mode = params_.split_mode;
        tp.n_threads = tree_threads;
        DecisionTree tree(tp);
        if (hist)
          tree.fit_hist(*binned, ws.sample, ws.hist);
        else
          tree.fit_rows(data, ws.sample, ws.exact);

        for (std::size_t i = 0; i < n; ++i)
          if (!ws.in_bag[i])
            oob_preds[t].emplace_back(i, tree.predict(data.row(i)));
        trees_[t] = std::move(tree);
      });

  // Sequential reduction in tree order: feature-importance sums and the
  // out-of-bag accumulators add in exactly the order the sequential loop
  // used, keeping oob_mre_ and save() bytes bit-identical.
  std::vector<double> oob_sum(n, 0.0);
  std::vector<std::size_t> oob_cnt(n, 0);
  for (unsigned t = 0; t < params_.n_trees; ++t) {
    const auto& imp = trees_[t].feature_importance();
    for (std::size_t f = 0; f < n_features_; ++f)
      importance_raw_[f] += imp[f];
    for (const auto& [i, pred] : oob_preds[t]) {
      oob_sum[i] += pred;
      ++oob_cnt[i];
    }
  }

  double mre = 0.0;
  std::size_t covered = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (oob_cnt[i] == 0 || data.target(i) == 0.0) continue;
    const double pred = oob_sum[i] / static_cast<double>(oob_cnt[i]);
    mre += std::abs(pred - data.target(i)) / std::abs(data.target(i));
    ++covered;
  }
  oob_mre_ = covered ? mre / static_cast<double>(covered) : 0.0;
}

double RandomForest::predict(std::span<const double> x) const {
  NAPEL_CHECK_MSG(is_fitted(), "predict before fit");
  double s = 0.0;
  for (const auto& tree : trees_) s += tree.predict(x);
  return s / static_cast<double>(trees_.size());
}

RandomForest::Interval RandomForest::predict_interval(
    std::span<const double> x, double lo_pct, double hi_pct) const {
  NAPEL_CHECK_MSG(is_fitted(), "predict before fit");
  NAPEL_CHECK(lo_pct <= hi_pct);
  std::vector<double> preds;
  preds.reserve(trees_.size());
  double sum = 0.0;
  for (const auto& tree : trees_) {
    preds.push_back(tree.predict(x));
    sum += preds.back();
  }
  Interval iv;
  iv.mean = sum / static_cast<double>(preds.size());
  // One in-place sort serves both percentiles — no per-percentile copy.
  std::sort(preds.begin(), preds.end());
  iv.lo = percentile_sorted(preds, lo_pct);
  iv.hi = percentile_sorted(preds, hi_pct);
  return iv;
}

const DecisionTree& RandomForest::tree(std::size_t i) const {
  NAPEL_CHECK(i < trees_.size());
  return trees_[i];
}

void RandomForest::save(std::ostream& os) const {
  NAPEL_CHECK_MSG(is_fitted(), "cannot save an unfitted forest");
  const auto old_precision =
      os.precision(std::numeric_limits<double>::max_digits10);
  // Exact-mode forests keep the historical v1 header byte-for-byte; hist
  // forests bump to v2, whose only change is the split-mode token at the
  // end of the params line. load() accepts both.
  const bool hist = params_.split_mode == SplitMode::kHist;
  os << (hist ? "napel-forest-v2 " : "napel-forest-v1 ") << trees_.size()
     << ' ' << n_features_ << ' ' << oob_mre_ << '\n';
  os << params_.n_trees << ' ' << params_.max_depth << ' '
     << params_.min_samples_split << ' ' << params_.min_samples_leaf << ' '
     << params_.mtry_fraction << ' ' << params_.seed;
  if (hist) os << ' ' << split_mode_name(params_.split_mode);
  os << '\n';
  for (std::size_t f = 0; f < importance_raw_.size(); ++f)
    os << importance_raw_[f] << (f + 1 < importance_raw_.size() ? ' ' : '\n');
  for (const DecisionTree& tree : trees_) tree.save(os);
  os.precision(old_precision);
}

RandomForest RandomForest::load(std::istream& is) {
  std::string tag;
  std::size_t n_trees = 0;
  RandomForest forest;
  is >> tag >> n_trees >> forest.n_features_ >> forest.oob_mre_;
  NAPEL_CHECK_MSG(
      is.good() && (tag == "napel-forest-v1" || tag == "napel-forest-v2") &&
          n_trees >= 1,
      "malformed forest header");
  is >> forest.params_.n_trees >> forest.params_.max_depth >>
      forest.params_.min_samples_split >> forest.params_.min_samples_leaf >>
      forest.params_.mtry_fraction >> forest.params_.seed;
  NAPEL_CHECK_MSG(is.good(), "malformed forest parameters");
  if (tag == "napel-forest-v2") {
    std::string mode;
    is >> mode;
    NAPEL_CHECK_MSG(is.good(), "malformed forest parameters");
    forest.params_.split_mode = parse_split_mode(mode);
  }
  forest.importance_raw_.resize(forest.n_features_);
  for (double& v : forest.importance_raw_) {
    is >> v;
    NAPEL_CHECK_MSG(is.good(), "truncated forest importance");
  }
  forest.trees_.reserve(n_trees);
  for (std::size_t t = 0; t < n_trees; ++t)
    forest.trees_.push_back(DecisionTree::load(is));
  return forest;
}

std::vector<double> RandomForest::feature_importance() const {
  NAPEL_CHECK_MSG(is_fitted(), "importance before fit");
  double total = 0.0;
  for (double v : importance_raw_) total += v;
  std::vector<double> out(importance_raw_.size(), 0.0);
  if (total <= 0.0) return out;
  for (std::size_t f = 0; f < out.size(); ++f)
    out[f] = importance_raw_[f] / total;
  return out;
}

}  // namespace napel::ml
