// Hyper-parameter tuning (Section 2.5): grid search over random-forest
// hyper-parameters, scoring each combination by k-fold cross-validated MRE
// ("as many iterations of the cross-validation process as hyper-parameter
// combinations") and returning the best model configuration.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ml/random_forest.hpp"

namespace napel::ml {

struct RfTuningGrid {
  std::vector<unsigned> n_trees = {50, 100};
  std::vector<unsigned> max_depth = {8, 16, 24};
  std::vector<double> mtry_fraction = {0.2, 1.0 / 3.0, 0.6};
  std::vector<std::size_t> min_samples_leaf = {1, 2};

  std::size_t combinations() const {
    return n_trees.size() * max_depth.size() * mtry_fraction.size() *
           min_samples_leaf.size();
  }
};

struct RfTuningResult {
  RandomForestParams best_params;
  double best_cv_mre = 0.0;
  std::size_t combinations_evaluated = 0;
  /// CV MRE of every evaluated combination, in grid order.
  std::vector<double> all_scores;
};

/// Optional crash-safe checkpoint for the grid search: every evaluated
/// combination's CV score is journaled (common/journal.hpp), and a resumed
/// search skips combinations already scored — the resumed result is
/// bit-identical to an uninterrupted run. The journal meta fingerprints the
/// grid, fold count, seed, and row count, so resuming against a different
/// search is refused.
struct TuningCheckpoint {
  std::string journal_path;
  bool resume = false;
};

/// Exhaustive grid search with k-fold CV; deterministic given `seed` at
/// any thread count. Grid points are evaluated concurrently (n_threads:
/// 0 = process-wide pool, 1 = serial); scores, the winning combination,
/// and its tie-breaking (first best in grid order) never depend on the
/// execution interleaving. Journal failures (when `checkpoint` is given)
/// throw PipelineException. `split_mode` selects the training engine every
/// evaluated combination uses (and is carried into best_params); hist-mode
/// searches fingerprint their journal meta with the mode, so an exact-mode
/// checkpoint can never resume a hist search or vice versa.
RfTuningResult tune_random_forest(const Dataset& data,
                                  const RfTuningGrid& grid,
                                  std::size_t k_folds = 4,
                                  std::uint64_t seed = 1234,
                                  unsigned n_threads = 0,
                                  const TuningCheckpoint* checkpoint = nullptr,
                                  SplitMode split_mode = SplitMode::kExact);

}  // namespace napel::ml
