// Small dense linear-algebra helpers for the linear models.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace napel::ml {

/// Solves A·x = b for symmetric positive-definite A (row-major n×n) via
/// Cholesky factorization. A is destroyed. Returns false when A is not
/// (numerically) positive definite.
bool cholesky_solve(std::vector<double>& a, std::size_t n,
                    std::span<const double> b, std::span<double> x);

}  // namespace napel::ml
