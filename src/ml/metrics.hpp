// Model-evaluation helpers shared by cross-validation, tuning, and benches.
#pragma once

#include "common/stats.hpp"
#include "ml/flat_forest.hpp"
#include "ml/regressor.hpp"

namespace napel::ml {

struct EvalResult {
  double mre = 0.0;   ///< mean relative error (paper Equation 1)
  double rmse = 0.0;
  double r2 = 0.0;
  std::size_t n = 0;
};

namespace detail {

/// Scores a prediction vector against the test targets. Rows with a zero
/// target are excluded from MRE (relative error undefined) but kept for
/// RMSE/R².
inline EvalResult score_predictions(const std::vector<double>& pred,
                                    const Dataset& test) {
  EvalResult r;
  r.n = test.size();
  std::vector<double> actual(test.targets().begin(), test.targets().end());
  r.rmse = rmse(pred, actual);
  r.r2 = r_squared(pred, actual);

  std::vector<double> p_nz, a_nz;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    if (actual[i] != 0.0) {
      p_nz.push_back(pred[i]);
      a_nz.push_back(actual[i]);
    }
  }
  r.mre = a_nz.empty() ? 0.0 : mean_relative_error(p_nz, a_nz);
  return r;
}

}  // namespace detail

/// Evaluates a fitted model on a held-out dataset (row-at-a-time predict).
inline EvalResult evaluate(const Regressor& model, const Dataset& test) {
  if (test.empty()) return {};
  return detail::score_predictions(model.predict_all(test), test);
}

/// Evaluates a compiled forest on a held-out dataset via one batched
/// traversal of the dataset's feature matrix — bit-identical scores to
/// evaluating the pointer-based forest, minus the pointer chasing.
/// n_threads shards the traversal over the shared pool (0 = whole pool,
/// 1 = inline); the scores are identical at any thread count.
inline EvalResult evaluate(const FlatForest& model, const Dataset& test,
                           unsigned n_threads = 1) {
  if (test.empty()) return {};
  std::vector<double> pred(test.size());
  model.predict_batch(test.features(), test.size(), pred, n_threads);
  return detail::score_predictions(pred, test);
}

}  // namespace napel::ml
