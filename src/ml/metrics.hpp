// Model-evaluation helpers shared by cross-validation, tuning, and benches.
#pragma once

#include "common/stats.hpp"
#include "ml/regressor.hpp"

namespace napel::ml {

struct EvalResult {
  double mre = 0.0;   ///< mean relative error (paper Equation 1)
  double rmse = 0.0;
  double r2 = 0.0;
  std::size_t n = 0;
};

/// Evaluates a fitted model on a held-out dataset. Rows with a zero target
/// are excluded from MRE (relative error undefined) but kept for RMSE/R².
inline EvalResult evaluate(const Regressor& model, const Dataset& test) {
  EvalResult r;
  r.n = test.size();
  if (test.empty()) return r;
  const std::vector<double> pred = model.predict_all(test);
  std::vector<double> actual(test.targets().begin(), test.targets().end());
  r.rmse = rmse(pred, actual);
  r.r2 = r_squared(pred, actual);

  std::vector<double> p_nz, a_nz;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    if (actual[i] != 0.0) {
      p_nz.push_back(pred[i]);
      a_nz.push_back(actual[i]);
    }
  }
  r.mre = a_nz.empty() ? 0.0 : mean_relative_error(p_nz, a_nz);
  return r;
}

}  // namespace napel::ml
