#include "ml/linalg.hpp"

#include <cmath>

#include "common/check.hpp"

namespace napel::ml {

bool cholesky_solve(std::vector<double>& a, std::size_t n,
                    std::span<const double> b, std::span<double> x) {
  NAPEL_CHECK(a.size() == n * n);
  NAPEL_CHECK(b.size() == n && x.size() == n);

  // In-place lower-triangular factorization A = L·Lᵀ.
  for (std::size_t j = 0; j < n; ++j) {
    double d = a[j * n + j];
    for (std::size_t k = 0; k < j; ++k) d -= a[j * n + k] * a[j * n + k];
    if (d <= 0.0 || !std::isfinite(d)) return false;
    const double ljj = std::sqrt(d);
    a[j * n + j] = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a[i * n + j];
      for (std::size_t k = 0; k < j; ++k) s -= a[i * n + k] * a[j * n + k];
      a[i * n + j] = s / ljj;
    }
  }

  // Forward substitution L·z = b.
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= a[i * n + k] * x[k];
    x[i] = s / a[i * n + i];
  }
  // Back substitution Lᵀ·x = z.
  for (std::size_t ii = n; ii-- > 0;) {
    double s = x[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= a[k * n + ii] * x[k];
    x[ii] = s / a[ii * n + ii];
  }
  return true;
}

}  // namespace napel::ml
