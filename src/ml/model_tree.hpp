// M5-style model tree: a shallow CART partition with a ridge-regression
// model in each leaf. This is the "linear decision tree" baseline of
// Guo et al. the paper compares against in Figure 5 — piecewise-linear
// models cannot capture the nonlinearity of NMC responses, which is what
// the comparison demonstrates.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "ml/decision_tree.hpp"
#include "ml/regressor.hpp"
#include "ml/ridge.hpp"

namespace napel::ml {

struct ModelTreeParams {
  unsigned max_depth = 3;
  std::size_t min_samples_leaf = 8;
  double leaf_lambda = 1.0;  ///< ridge penalty of the leaf models
  std::uint64_t seed = 7;
};

class ModelTree final : public Regressor {
 public:
  explicit ModelTree(ModelTreeParams params = {});

  void fit(const Dataset& data) override;
  double predict(std::span<const double> x) const override;
  bool is_fitted() const override { return structure_.is_fitted(); }

  std::size_t leaf_count() const { return leaves_.size(); }

 private:
  ModelTreeParams params_;
  DecisionTree structure_;
  std::unordered_map<std::uint32_t, RidgeRegression> leaves_;
};

}  // namespace napel::ml
