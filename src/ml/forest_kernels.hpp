// Internal batched forest-traversal kernels (dispatch targets).
//
// FlatForest::predict_batch / predict_votes_batch resolve a SimdLevel
// (common/cpuid.hpp) and call exactly one of these kernels per row range.
// Every kernel implements the same contract over the same arena columns:
//
//   * rows are walked in 64-row blocks, tree-major inside the block;
//   * per row, tree votes accumulate in tree order and the mean is the
//     same `sum / n_trees` division — so all kernels, at any lane width,
//     produce bit-identical doubles (traversal is pure comparisons on the
//     same values; accumulation lanes are per-row independent);
//   * a row that reaches a leaf early parks on the leaf's self-link
//     (threshold +inf), which routes every comparison — including NaN
//     features, which compare false under ordered semantics — back to the
//     same leaf;
//   * row counts not divisible by the lane width fall through to narrower
//     lanes and finally a one-row early-exit walk, all of which visit the
//     identical leaf.
//
// This header is deliberately intrinsics-free; the AVX2 kernel body lives
// in flat_forest_simd_avx2.cpp, the single translation unit allowed to
// include <immintrin.h> (enforced by tools/source_lint.py rule
// `raw-intrinsics`), compiled with -mavx2 and only ever *called* after a
// runtime CPU check.
#pragma once

#include <cstddef>
#include <cstdint>

namespace napel::ml::detail {

/// One traversal node packed into a single 32-byte record: threshold,
/// both child links, and the split feature land in the same cache line
/// (the struct is 32-byte aligned, so a record never straddles lines).
/// The column arena touches up to four lines per node visit — one per
/// column array — and per-(tree, row-block) the tree's working set spills
/// L1; the packed mirror quarters the line traffic, which is what the
/// lane kernels and the single-row walk are actually bound by. Leaf
/// encoding matches the columns: +inf threshold, self-linked children,
/// feature -1. Leaf values intentionally stay in the `value` column (the
/// cell verification tests mutate and expect every path to observe).
struct alignas(32) PackedNode {
  double threshold = 0.0;     // +inf at leaves
  std::uint32_t left = 0;     // arena-absolute; self at leaves
  std::uint32_t right = 0;
  std::int32_t feature = -1;  // -1 = leaf
  std::int32_t pad0 = 0;
  double pad1 = 0.0;          // pad to one aligned 32-byte record
};
static_assert(sizeof(PackedNode) == 32);

/// Borrowed view of a compiled FlatForest arena (see flat_forest.hpp for
/// the column semantics). POD so the AVX2 TU needs no other ml headers.
/// batch_scalar walks the columns (the committed reference); the portable
/// and AVX2 kernels and the settle paths use `packed` + `value`.
struct ForestView {
  const std::int32_t* feature = nullptr;
  const double* threshold = nullptr;
  const std::uint32_t* left = nullptr;
  const std::uint32_t* right = nullptr;
  const double* value = nullptr;
  const PackedNode* packed = nullptr;
  const std::uint32_t* tree_offset = nullptr;  // n_trees + 1 entries
  const unsigned* tree_steps = nullptr;        // lockstep depth per tree
  std::size_t n_trees = 0;
  std::size_t n_features = 0;
};

/// Kernel contract: walk rows [0, n_rows) of X (row-major, n_features
/// stride). When `out` is non-null, write each row's ensemble mean to
/// out[r]; when `votes` is non-null, write the per-tree leaf values
/// row-major to votes[r * n_trees + t]. At least one of out/votes is
/// non-null. Callers shard by passing offset X/out/votes pointers — a
/// row's result never depends on which other rows share the call.
using BatchKernel = void (*)(const ForestView& forest, const double* X,
                             std::size_t n_rows, double* out, double* votes);

/// Reference lockstep kernel (the pre-SIMD engine, unchanged): 64
/// independent scalar row-slots stepped one level per iteration with cmov
/// direction picks. The baseline every other level is measured against.
void batch_scalar(const ForestView& forest, const double* X,
                  std::size_t n_rows, double* out, double* votes);

/// Plain-C++ explicit-lane kernel: 8-wide and 4-wide lane groups stamped
/// from one template, with an all-lanes-on-leaves early exit per group.
/// Compiles on any target; no intrinsics.
void batch_portable(const ForestView& forest, const double* X,
                    std::size_t n_rows, double* out, double* votes);

#if defined(NAPEL_ML_HAVE_AVX2)
/// AVX2 kernel: 8 rows per lane group (two groups in flight for ILP),
/// gathered feature/threshold/children columns, masked child selection,
/// early exit when every lane sits on a leaf.
void batch_avx2(const ForestView& forest, const double* X,
                std::size_t n_rows, double* out, double* votes);
#endif

/// True when this binary was built with the AVX2 kernel TU (compiler
/// support + x86 target at configure time). Runtime CPU support is a
/// separate check (napel::cpu_supports).
bool have_avx2_kernel();

}  // namespace napel::ml::detail
