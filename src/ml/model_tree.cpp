#include "ml/model_tree.hpp"

#include <vector>

#include "common/check.hpp"

namespace napel::ml {

namespace {

TreeParams structure_params(const ModelTreeParams& p) {
  TreeParams tp;
  tp.max_depth = p.max_depth;
  tp.min_samples_leaf = p.min_samples_leaf;
  tp.min_samples_split = 2 * p.min_samples_leaf;
  tp.mtry_fraction = 1.0;  // deterministic CART structure
  tp.seed = p.seed;
  return tp;
}

}  // namespace

ModelTree::ModelTree(ModelTreeParams params)
    : params_(params), structure_(structure_params(params)) {
  NAPEL_CHECK(params_.min_samples_leaf >= 2);
}

void ModelTree::fit(const Dataset& data) {
  NAPEL_CHECK_MSG(!data.empty(), "cannot fit on an empty dataset");
  leaves_.clear();
  structure_ = DecisionTree(structure_params(params_));
  structure_.fit(data);

  // Group training rows by leaf and fit one ridge model per leaf.
  std::unordered_map<std::uint32_t, std::vector<std::size_t>> rows_by_leaf;
  for (std::size_t i = 0; i < data.size(); ++i)
    rows_by_leaf[structure_.leaf_id(data.row(i))].push_back(i);

  for (const auto& [leaf, rows] : rows_by_leaf) {
    RidgeRegression model(RidgeParams{.lambda = params_.leaf_lambda});
    model.fit(data.subset(rows));
    leaves_.emplace(leaf, std::move(model));
  }
}

double ModelTree::predict(std::span<const double> x) const {
  NAPEL_CHECK_MSG(is_fitted(), "predict before fit");
  const auto it = leaves_.find(structure_.leaf_id(x));
  // Every leaf received at least one training row, so lookup must succeed.
  NAPEL_CHECK(it != leaves_.end());
  return it->second.predict(x);
}

}  // namespace napel::ml
