// CART regression tree: greedy variance-reduction splits with optional
// per-node feature subsampling (mtry), the building block of the random
// forest (Breiman 2001, the paper's reference [8]).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "ml/regressor.hpp"

namespace napel::ml {

class BinnedDataset;    // ml/binned_dataset.hpp
class HistTreeBuilder;  // ml/hist_split.hpp

/// Thrown by DecisionTree::load (and hence RandomForest / model loading)
/// when a file's node links do not form a proper forward-only tree: a child
/// pointing at its parent or an earlier node (a cycle — traversal would
/// never terminate), a node referenced by two parents, or unreachable
/// nodes. Distinct from the plain std::invalid_argument contract failures
/// so artifact validation can attribute a dedicated lint rule to it.
class TreeTopologyError : public std::invalid_argument {
  using std::invalid_argument::invalid_argument;
};

/// Split-finding engine selector. Exact mode scans presorted rows and is
/// the historical default; hist mode quantile-bins features into <= 256
/// codes (ml/binned_dataset.hpp) and scans per-node histograms instead
/// (ml/hist_split.hpp) — much faster, with in-tree parallelism. Both are
/// deterministic and bit-identical at any thread count; they coincide
/// node-for-node at mtry_fraction == 1.0 when features have <= 256
/// distinct values (hist consumes the per-node feature draw in BFS rather
/// than DFS order, so subsampled trees legitimately differ).
enum class SplitMode : std::uint8_t { kExact, kHist };

/// Canonical token for serialization and the CLI ("exact" / "hist").
std::string_view split_mode_name(SplitMode mode);
/// Inverse of split_mode_name; throws std::invalid_argument on any other
/// token (also the v2 forest-format validation path).
SplitMode parse_split_mode(std::string_view token);

struct TreeParams {
  unsigned max_depth = 24;
  std::size_t min_samples_split = 4;
  std::size_t min_samples_leaf = 2;
  /// Fraction of features considered per split; 1.0 = plain CART,
  /// < 1.0 = random-subspace node splits for forest decorrelation.
  double mtry_fraction = 1.0;
  std::uint64_t seed = 1;
  SplitMode split_mode = SplitMode::kExact;
  /// Worker threads for hist-mode in-tree level expansion: 0 =
  /// process-wide pool, 1 = serial. Scheduling only — never serialized,
  /// and the fitted tree is identical at any value. Exact mode is always
  /// single-threaded per tree (the forest parallelizes across trees).
  unsigned n_threads = 1;
};

/// Reusable exact-mode training scratch (one per fitting worker):
/// presorted per-feature index columns maintained by stable partitioning,
/// a column-major feature copy, and partition buffers. Opaque — only
/// DecisionTree::fit_rows reads or writes it; holding one across fits
/// recycles the allocations.
struct TreeFitScratch {
  std::size_t n = 0;                     // fitted rows
  std::size_t p = 0;                     // features
  std::vector<std::uint32_t> order;      // p columns of n row ids
  std::vector<std::uint32_t> scratch;    // stable-partition spill (n)
  std::vector<unsigned char> goes_left;  // per-row split side (n)
  std::vector<double> col;               // column-major feature copy (p * n)
  std::vector<double> y;                 // target copy (n)
};

class DecisionTree final : public Regressor {
 public:
  explicit DecisionTree(TreeParams params = {});

  void fit(const Dataset& data) override;

  /// Exact-mode fit over a row view of `data`: `rows` are dataset row
  /// indices (repeats allowed — the bootstrap case), gathered into the
  /// scratch instead of materializing a copied dataset. Bit-identical to
  /// fit() on Dataset::subset(rows). Requires split_mode == kExact.
  void fit_rows(const Dataset& data, std::span<const std::uint32_t> rows,
                TreeFitScratch& scratch);

  /// Histogram-mode fit over a shared binned matrix (rows as above); the
  /// builder is reusable worker scratch. Requires split_mode == kHist.
  void fit_hist(const BinnedDataset& binned,
                std::span<const std::uint32_t> rows,
                HistTreeBuilder& builder);

  double predict(std::span<const double> x) const override;
  bool is_fitted() const override { return !nodes_.empty(); }

  /// Index of the leaf node x routes to (stable for a fitted tree); lets
  /// wrappers attach per-leaf models (see ModelTree).
  std::uint32_t leaf_id(std::span<const double> x) const;

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t leaf_count() const;
  unsigned depth() const;

  /// Total SSE reduction attributed to each feature across all splits
  /// (unnormalized impurity importance).
  const std::vector<double>& feature_importance() const {
    return importance_;
  }

  const TreeParams& params() const { return params_; }

  /// Text serialization of a fitted tree (structure + importance); the
  /// loaded tree predicts bit-identically.
  void save(std::ostream& os) const;
  static DecisionTree load(std::istream& is);

 private:
  friend class FlatForest;  // compiles nodes_ into the SoA inference arena

  struct Node {
    std::int32_t feature = -1;  // -1 = leaf
    double threshold = 0.0;
    std::uint32_t left = 0;
    std::uint32_t right = 0;
    double value = 0.0;  // mean of training targets in this subspace
  };

  std::uint32_t build(std::vector<std::size_t>& idx, TreeFitScratch& ws,
                      std::size_t begin, std::size_t end, unsigned depth,
                      Rng& rng);
  struct SplitChoice {
    std::size_t feature;
    double threshold;
    double sse_reduction;
  };
  std::optional<SplitChoice> best_split(const TreeFitScratch& ws,
                                        std::span<const std::size_t> idx,
                                        std::size_t begin, std::size_t end,
                                        Rng& rng) const;

  TreeParams params_;
  std::vector<Node> nodes_;
  std::vector<double> importance_;
  std::size_t n_features_ = 0;
};

}  // namespace napel::ml
