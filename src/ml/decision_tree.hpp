// CART regression tree: greedy variance-reduction splits with optional
// per-node feature subsampling (mtry), the building block of the random
// forest (Breiman 2001, the paper's reference [8]).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <vector>

#include "ml/regressor.hpp"

namespace napel::ml {

struct TreeParams {
  unsigned max_depth = 24;
  std::size_t min_samples_split = 4;
  std::size_t min_samples_leaf = 2;
  /// Fraction of features considered per split; 1.0 = plain CART,
  /// < 1.0 = random-subspace node splits for forest decorrelation.
  double mtry_fraction = 1.0;
  std::uint64_t seed = 1;
};

class DecisionTree final : public Regressor {
 public:
  explicit DecisionTree(TreeParams params = {});

  void fit(const Dataset& data) override;
  double predict(std::span<const double> x) const override;
  bool is_fitted() const override { return !nodes_.empty(); }

  /// Index of the leaf node x routes to (stable for a fitted tree); lets
  /// wrappers attach per-leaf models (see ModelTree).
  std::uint32_t leaf_id(std::span<const double> x) const;

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t leaf_count() const;
  unsigned depth() const;

  /// Total SSE reduction attributed to each feature across all splits
  /// (unnormalized impurity importance).
  const std::vector<double>& feature_importance() const {
    return importance_;
  }

  const TreeParams& params() const { return params_; }

  /// Text serialization of a fitted tree (structure + importance); the
  /// loaded tree predicts bit-identically.
  void save(std::ostream& os) const;
  static DecisionTree load(std::istream& is);

 private:
  struct Node {
    std::int32_t feature = -1;  // -1 = leaf
    double threshold = 0.0;
    std::uint32_t left = 0;
    std::uint32_t right = 0;
    double value = 0.0;  // mean of training targets in this subspace
  };

  std::uint32_t build(const Dataset& data, std::vector<std::size_t>& idx,
                      std::size_t begin, std::size_t end, unsigned depth,
                      Rng& rng);
  struct SplitChoice {
    std::size_t feature;
    double threshold;
    double sse_reduction;
  };
  std::optional<SplitChoice> best_split(const Dataset& data,
                                        std::span<std::size_t> idx,
                                        Rng& rng) const;

  TreeParams params_;
  std::vector<Node> nodes_;
  std::vector<double> importance_;
  std::size_t n_features_ = 0;
};

}  // namespace napel::ml
