// CART regression tree: greedy variance-reduction splits with optional
// per-node feature subsampling (mtry), the building block of the random
// forest (Breiman 2001, the paper's reference [8]).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <stdexcept>
#include <vector>

#include "ml/regressor.hpp"

namespace napel::ml {

/// Thrown by DecisionTree::load (and hence RandomForest / model loading)
/// when a file's node links do not form a proper forward-only tree: a child
/// pointing at its parent or an earlier node (a cycle — traversal would
/// never terminate), a node referenced by two parents, or unreachable
/// nodes. Distinct from the plain std::invalid_argument contract failures
/// so artifact validation can attribute a dedicated lint rule to it.
class TreeTopologyError : public std::invalid_argument {
  using std::invalid_argument::invalid_argument;
};

struct TreeParams {
  unsigned max_depth = 24;
  std::size_t min_samples_split = 4;
  std::size_t min_samples_leaf = 2;
  /// Fraction of features considered per split; 1.0 = plain CART,
  /// < 1.0 = random-subspace node splits for forest decorrelation.
  double mtry_fraction = 1.0;
  std::uint64_t seed = 1;
};

class DecisionTree final : public Regressor {
 public:
  explicit DecisionTree(TreeParams params = {});

  void fit(const Dataset& data) override;
  double predict(std::span<const double> x) const override;
  bool is_fitted() const override { return !nodes_.empty(); }

  /// Index of the leaf node x routes to (stable for a fitted tree); lets
  /// wrappers attach per-leaf models (see ModelTree).
  std::uint32_t leaf_id(std::span<const double> x) const;

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t leaf_count() const;
  unsigned depth() const;

  /// Total SSE reduction attributed to each feature across all splits
  /// (unnormalized impurity importance).
  const std::vector<double>& feature_importance() const {
    return importance_;
  }

  const TreeParams& params() const { return params_; }

  /// Text serialization of a fitted tree (structure + importance); the
  /// loaded tree predicts bit-identically.
  void save(std::ostream& os) const;
  static DecisionTree load(std::istream& is);

 private:
  friend class FlatForest;  // compiles nodes_ into the SoA inference arena

  struct Node {
    std::int32_t feature = -1;  // -1 = leaf
    double threshold = 0.0;
    std::uint32_t left = 0;
    std::uint32_t right = 0;
    double value = 0.0;  // mean of training targets in this subspace
  };

  /// Per-fit scratch: presorted per-feature index columns maintained by
  /// stable partitioning, a column-major feature copy, and reusable
  /// partition buffers (see decision_tree.cpp).
  struct FitWorkspace;

  std::uint32_t build(const Dataset& data, std::vector<std::size_t>& idx,
                      FitWorkspace& ws, std::size_t begin, std::size_t end,
                      unsigned depth, Rng& rng);
  struct SplitChoice {
    std::size_t feature;
    double threshold;
    double sse_reduction;
  };
  std::optional<SplitChoice> best_split(const FitWorkspace& ws,
                                        std::span<const std::size_t> idx,
                                        std::size_t begin, std::size_t end,
                                        Rng& rng) const;

  TreeParams params_;
  std::vector<Node> nodes_;
  std::vector<double> importance_;
  std::size_t n_features_ = 0;
};

}  // namespace napel::ml
