// Scalar and portable batched traversal kernels (see forest_kernels.hpp
// for the shared contract; the AVX2 sibling lives in
// flat_forest_simd_avx2.cpp).
#include "ml/forest_kernels.hpp"

#include <algorithm>
#include <vector>

namespace napel::ml::detail {

namespace {

constexpr std::size_t kRowBlock = 64;

}  // namespace

void batch_scalar(const ForestView& f, const double* X, std::size_t n_rows,
                  double* out, double* votes) {
  const std::size_t nt = f.n_trees;
  const auto nt_d = static_cast<double>(nt);
  double acc[kRowBlock];
  const double* xs[kRowBlock];
  std::uint32_t cur[kRowBlock];
  for (std::size_t row0 = 0; row0 < n_rows; row0 += kRowBlock) {
    const std::size_t b = std::min(kRowBlock, n_rows - row0);
    std::fill_n(acc, b, 0.0);
    for (std::size_t r = 0; r < b; ++r)
      xs[r] = X + (row0 + r) * f.n_features;
    // Tree-major over the block, all rows stepping one level per iteration
    // in lockstep. One row alone is a serial chain of dependent node loads
    // (each next index depends on the previous load); b rows side by side
    // give the core b independent chains to overlap. Rows that reach a
    // leaf early spin harmlessly on its self-link (+inf threshold) until
    // the tree's deepest leaf is reached — branch-free, and the leaf each
    // row ends on is exactly the one early-exit traversal finds. Per-row
    // votes still accumulate in tree order, so out[r] is bit-identical to
    // the one-row-at-a-time sum.
    for (std::size_t t = 0; t < nt; ++t) {
      const std::uint32_t root = f.tree_offset[t];
      for (std::size_t r = 0; r < b; ++r) cur[r] = root;
      for (unsigned step = 0; step < f.tree_steps[t]; ++step) {
        for (std::size_t r = 0; r < b; ++r) {
          const std::uint32_t c = cur[r];
          const std::int32_t fv = f.feature[c];
          const auto fi =
              static_cast<std::uint32_t>(fv < 0 ? 0 : fv);  // leaf reads x[0]
          // Load both children before selecting: with the operands already
          // in registers the compare lowers to a conditional move, not a
          // 50/50-mispredicted branch per node.
          const std::uint32_t l = f.left[c];
          const std::uint32_t rt = f.right[c];
          cur[r] = xs[r][fi] <= f.threshold[c] ? l : rt;
        }
      }
      for (std::size_t r = 0; r < b; ++r) {
        const double v = f.value[cur[r]];
        acc[r] += v;
        if (votes != nullptr) votes[(row0 + r) * nt + t] = v;
      }
    }
    if (out != nullptr)
      for (std::size_t r = 0; r < b; ++r) out[row0 + r] = acc[r] / nt_d;
  }
}

void batch_portable(const ForestView& f, const double* X, std::size_t n_rows,
                    double* out, double* votes) {
  // Chain-refill traversal. The lockstep kernel above always walks a tree
  // to its deepest leaf (avg leaf depth on trained NAPEL forests is ~13
  // levels against a ~23-level lockstep spin), so up to ~40% of its node
  // visits are parked lanes re-reading a leaf self-link. Here every lane
  // is an independent (row, tree) chain: the moment a chain reaches its
  // leaf the lane settles it and pulls the next work item, keeping all
  // kLanes chains live — the same memory-level parallelism, none of the
  // spin. Work items drain tree-major so concurrent chains share the hot
  // upper levels of at most a couple of trees.
  //
  // Determinism: a leaf value is stored to a (row, tree)-addressed vote
  // slot when the chain finishes — address, not completion order, decides
  // where it lands — and the per-row mean is reduced *in tree order* from
  // those slots afterwards, so every double matches batch_scalar bitwise.
  constexpr std::size_t kLanes = 64;
  const std::size_t nt = f.n_trees;
  const auto nt_d = static_cast<double>(nt);
  const std::size_t nf = f.n_features;
  std::vector<double> scratch;  // vote slots when the caller wants none
  std::uint32_t cur[kLanes];    // current arena node per chain
  std::uint32_t slot[kLanes];   // row * n_trees + tree (vote address)
  const double* xp[kLanes];     // row feature pointer per chain
  for (std::size_t row0 = 0; row0 < n_rows; row0 += kRowBlock) {
    const std::size_t b = std::min(kRowBlock, n_rows - row0);
    const double* Xb = X + row0 * nf;
    double* vb;
    if (votes != nullptr) {
      vb = votes + row0 * nt;
    } else {
      scratch.resize(b * nt);
      vb = scratch.data();
    }
    const std::size_t total = nt * b;  // work items, tree-major
    std::size_t next = 0;
    const auto refill = [&](std::size_t k) -> bool {
      while (next < total) {
        const std::size_t w = next++;
        const std::size_t t = w / b;
        const std::size_t r = w - t * b;
        const std::uint32_t root = f.tree_offset[t];
        if (f.packed[root].feature < 0) {  // single-leaf tree: settle now
          vb[r * nt + t] = f.value[root];
          continue;
        }
        cur[k] = root;
        slot[k] = static_cast<std::uint32_t>(r * nt + t);
        xp[k] = Xb + r * nf;
        return true;
      }
      return false;
    };
    std::size_t live = 0;
    while (live < kLanes && refill(live)) ++live;
    while (live > 0) {
      // Advance every chain two levels branchlessly before looking for
      // parked ones. A chain already on its leaf just re-selects the
      // self-link (fi clamps the -1 marker to 0, the threshold there is
      // +inf), so overshooting costs at most one harmless visit while the
      // park check — the only unpredictable branch — runs half as often
      // and the step loop stays a fixed-bound cmov body the compiler can
      // unroll, exactly like the lockstep kernel's.
      for (unsigned rep = 0; rep < 2; ++rep) {
        for (std::size_t k = 0; k < live; ++k) {
          const PackedNode& nd = f.packed[cur[k]];
          const std::int32_t fv = nd.feature;
          const auto fi = static_cast<std::uint32_t>(fv < 0 ? 0 : fv);
          const std::uint32_t l = nd.left;
          const std::uint32_t r = nd.right;
          cur[k] = xp[k][fi] <= nd.threshold ? l : r;
        }
      }
      for (std::size_t k = 0; k < live; ++k) {
        const std::uint32_t c = cur[k];
        if (f.packed[c].feature >= 0) continue;
        vb[slot[k]] = f.value[c];
        if (!refill(k)) {
          --live;  // retire the lane; revisit the chain moved into it
          cur[k] = cur[live];
          slot[k] = slot[live];
          xp[k] = xp[live];
          --k;
        }
      }
    }
    if (out != nullptr) {
      for (std::size_t r = 0; r < b; ++r) {
        double acc = 0.0;
        const double* vr = vb + r * nt;
        for (std::size_t t = 0; t < nt; ++t) acc += vr[t];
        out[row0 + r] = acc / nt_d;
      }
    }
  }
}

bool have_avx2_kernel() {
#if defined(NAPEL_ML_HAVE_AVX2)
  return true;
#else
  return false;
#endif
}

}  // namespace napel::ml::detail
