// Application profile p(k, d): the microarchitecture-independent feature
// vector NAPEL feeds its ensemble model (Section 2.3 / Table 1 of the
// paper). The profile is computed in a single streaming pass over the
// kernel's instruction trace and assembles 395 named features covering
// instruction mix, ideal-machine ILP, data/instruction reuse distance,
// memory traffic at a range of cache capacities, spatial strides, register
// traffic, memory footprint, thread balance, and control behaviour.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.hpp"
#include "profiler/ilp.hpp"
#include "profiler/reuse_distance.hpp"
#include "trace/sink.hpp"

namespace napel::profiler {

/// Number of log2 buckets kept per reuse/stride histogram in the feature
/// vector. Chosen so the full schema is exactly kFeatureCount features.
inline constexpr std::size_t kHistFeatureBuckets = 56;
inline constexpr std::size_t kFeatureCount = 395;

struct Profile {
  std::string kernel;
  unsigned n_threads = 1;
  std::uint64_t total_instructions = 0;
  std::array<std::uint64_t, trace::kNumOpTypes> op_counts{};

  // Reuse-distance histograms at 64B-line granularity. Samples are
  // classified by the type of the *current* access.
  ReuseDistanceHistogram data_read_rd{kHistFeatureBuckets};
  ReuseDistanceHistogram data_write_rd{kHistFeatureBuckets};
  ReuseDistanceHistogram data_all_rd{kHistFeatureBuckets};
  ReuseDistanceHistogram instr_rd{kHistFeatureBuckets};
  Log2Histogram stride_hist{kHistFeatureBuckets};

  // ILP at windows 32/64/128/256 and infinite.
  std::array<double, IlpAnalyzer::kNumSchedules> ilp{};

  std::uint64_t unique_lines = 0;        // 64B-line footprint (all accesses)
  std::uint64_t unique_read_lines = 0;
  std::uint64_t unique_write_lines = 0;
  std::uint64_t read_bytes = 0;          // total traffic
  std::uint64_t write_bytes = 0;
  std::uint64_t unique_pcs = 0;

  std::uint64_t src_operand_reads = 0;   // register traffic
  std::uint64_t reg_defs = 0;
  std::uint64_t instr_with_src = 0;

  std::uint64_t branches_taken_slots = 0;  // dynamic basic blocks seen
  std::vector<std::uint64_t> per_thread_instr;

  /// Fraction of memory accesses whose stride relative to the previous
  /// access *from the same pseudo-PC* repeats the PC's previous stride and
  /// stays within a page — i.e. accesses a hardware stride prefetcher can
  /// predict. Dense kernels score near 1, pointer-chasing/indirect ones
  /// low. Kept out of the 395-feature model vector (it is consumed by the
  /// host model, which represents prefetching hardware the NMC PEs lack).
  double pc_stride_regular_fraction = 0.0;

  /// The assembled model-input vector; always kFeatureCount entries, in the
  /// order of feature_names().
  std::vector<double> features;

  /// Stable schema of all feature names.
  static const std::vector<std::string>& feature_names();
  /// Value of a named feature; throws for unknown names.
  double feature(std::string_view name) const;

  std::uint64_t memory_ops() const {
    return op_counts[static_cast<std::size_t>(trace::OpType::kLoad)] +
           op_counts[static_cast<std::size_t>(trace::OpType::kStore)];
  }
};

/// Streaming profile computation: attach to a Tracer, run the kernel, then
/// call build() once.
class ProfileBuilder final : public trace::TraceSink {
 public:
  ProfileBuilder();
  ~ProfileBuilder() override;

  void begin_kernel(std::string_view name, unsigned n_threads) override;
  void on_instr(const trace::InstrEvent& ev) override;
  void on_instr_batch(const trace::InstrEvent* evs, std::size_t n) override;
  void end_kernel() override;

  /// Assembles the profile. Requires a completed kernel bracket.
  Profile build() const;

 private:
  struct State;
  void ingest(State& s, const trace::InstrEvent& ev);
  std::unique_ptr<State> st_;
};

}  // namespace napel::profiler
