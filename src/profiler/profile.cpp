#include "profiler/profile.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/flat_map.hpp"
#include "common/stats.hpp"

namespace napel::profiler {

namespace {

double log2p1(double x) { return std::log2(1.0 + x); }

double safe_div(double a, double b) { return b == 0.0 ? 0.0 : a / b; }

// Cache capacities (in 64B lines) probed for the "memory traffic" features:
// 2^4 .. 2^19 lines = 1 KiB .. 32 MiB.
constexpr std::size_t kFirstCapacityLog = 4;
constexpr std::size_t kNumCapacities = 16;

void append_rd_features(std::vector<double>& out,
                        const ReuseDistanceHistogram& rd) {
  const auto fracs = rd.histogram().fractions();
  NAPEL_CHECK(fracs.size() == kHistFeatureBuckets);
  // Bucket fractions are normalized over non-cold samples.
  out.insert(out.end(), fracs.begin(), fracs.end());
  const double n = static_cast<double>(rd.samples());
  out.push_back(safe_div(static_cast<double>(rd.cold_misses()), n));
  out.push_back(log2p1(rd.histogram().approximate_mean()));
  out.push_back(log2p1(rd.histogram().approximate_percentile(50)));
  out.push_back(log2p1(rd.histogram().approximate_percentile(90)));
  out.push_back(log2p1(rd.histogram().approximate_percentile(99)));
}

void append_rd_names(std::vector<std::string>& out, const std::string& base) {
  for (std::size_t b = 0; b < kHistFeatureBuckets; ++b)
    out.push_back(base + "_bucket" + std::to_string(b));
  out.push_back(base + "_cold_frac");
  out.push_back(base + "_log_mean");
  out.push_back(base + "_log_p50");
  out.push_back(base + "_log_p90");
  out.push_back(base + "_log_p99");
}

}  // namespace

const std::vector<std::string>& Profile::feature_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> n;
    n.reserve(kFeatureCount);
    // A: totals & instruction mix
    n.push_back("log_total_instr");
    for (std::size_t op = 0; op < trace::kNumOpTypes; ++op)
      n.push_back("mix_" +
                  std::string(op_name(static_cast<trace::OpType>(op))));
    n.push_back("mem_fraction");
    n.push_back("arith_fraction");
    n.push_back("fp_fraction_of_arith");
    n.push_back("load_fraction_of_mem");
    // B: ILP
    for (auto w : IlpAnalyzer::kWindows)
      n.push_back("ilp_w" + std::to_string(w));
    n.push_back("ilp_inf");
    n.push_back("ilp_ratio_64_32");
    n.push_back("ilp_ratio_128_64");
    n.push_back("ilp_ratio_256_128");
    n.push_back("ilp_ratio_inf_256");
    // C-F: reuse distances
    append_rd_names(n, "rd_read");
    append_rd_names(n, "rd_write");
    append_rd_names(n, "rd_all");
    append_rd_names(n, "rd_instr");
    // G: memory traffic (DRAM-access fraction) at capacities
    for (const char* cls : {"read", "write", "all"})
      for (std::size_t k = 0; k < kNumCapacities; ++k)
        n.push_back(std::string("miss_frac_") + cls + "_cap2e" +
                    std::to_string(kFirstCapacityLog + k));
    // H: strides
    for (std::size_t b = 0; b < kHistFeatureBuckets; ++b)
      n.push_back("stride_bucket" + std::to_string(b));
    n.push_back("stride_frac_le_line");
    n.push_back("stride_frac_le_page");
    n.push_back("stride_log_mean");
    // I: register traffic
    n.push_back("avg_srcs_per_instr");
    n.push_back("frac_instr_with_dst");
    n.push_back("frac_instr_with_src");
    n.push_back("uses_per_def");
    n.push_back("log_unique_regs");
    n.push_back("log_unique_pcs");
    // J: footprint & traffic volume
    n.push_back("log_footprint_bytes");
    n.push_back("log_read_footprint_bytes");
    n.push_back("log_write_footprint_bytes");
    n.push_back("log_traffic_bytes");
    n.push_back("log_read_traffic_bytes");
    n.push_back("log_write_traffic_bytes");
    n.push_back("log_unique_lines");
    n.push_back("rw_footprint_overlap");
    // K: threads
    n.push_back("n_threads");
    n.push_back("log_instr_per_thread");
    n.push_back("thread_imbalance_cv");
    n.push_back("log_max_thread_instr");
    // L: control
    n.push_back("branch_fraction");
    n.push_back("branches_per_mem_op");
    n.push_back("avg_basic_block_len");
    NAPEL_CHECK_MSG(n.size() == kFeatureCount,
                    "feature schema drifted from kFeatureCount");
    return n;
  }();
  return names;
}

double Profile::feature(std::string_view name) const {
  const auto& names = feature_names();
  for (std::size_t i = 0; i < names.size(); ++i)
    if (names[i] == name) return features[i];
  napel::check_failed("feature exists", __FILE__, __LINE__,
                      "unknown feature: " + std::string(name));
}

struct ProfileBuilder::State {
  std::string kernel;
  unsigned n_threads = 1;
  bool in_kernel = false;
  bool ended = false;

  std::array<std::uint64_t, trace::kNumOpTypes> op_counts{};
  std::uint64_t total = 0;

  StackDistanceTracker data_sd;
  LruStackDistance instr_sd;
  ReuseDistanceHistogram rd_read{kHistFeatureBuckets};
  ReuseDistanceHistogram rd_write{kHistFeatureBuckets};
  ReuseDistanceHistogram rd_all{kHistFeatureBuckets};
  ReuseDistanceHistogram rd_instr{kHistFeatureBuckets};
  Log2Histogram stride{kHistFeatureBuckets};
  IlpAnalyzer ilp;

  FlatSet read_lines;
  FlatSet write_lines;
  // Sequential sweeps touch the same 64B line several times in a row; set
  // inserts are idempotent, so repeats skip the hash. ~0 is never a real
  // line (addresses are 64-bit, lines 58-bit).
  std::uint64_t last_read_line = ~0ULL;
  std::uint64_t last_write_line = ~0ULL;
  std::uint64_t read_bytes = 0;
  std::uint64_t write_bytes = 0;
  std::uint64_t src_reads = 0;
  std::uint64_t defs = 0;
  std::uint64_t instr_with_src = 0;
  std::uint64_t prev_addr = 0;
  bool have_prev_addr = false;
  std::vector<std::uint64_t> per_thread;

  // Per-PC stride predictability: last address and last stride per memory
  // pseudo-PC; an access is prefetchable when it repeats the PC's previous
  // stride and stays within a page.
  struct PcStride {
    std::uint64_t last_addr = 0;
    std::int64_t last_stride = 0;
    std::uint8_t seen = 0;  // 0: no addr, 1: addr only, 2: addr + stride
  };
  FlatMap<PcStride> pc_strides;
  std::uint64_t prefetchable_accesses = 0;
};

ProfileBuilder::ProfileBuilder() : st_(std::make_unique<State>()) {}
ProfileBuilder::~ProfileBuilder() = default;

void ProfileBuilder::begin_kernel(std::string_view name, unsigned n_threads) {
  st_ = std::make_unique<State>();
  st_->kernel = std::string(name);
  st_->n_threads = n_threads;
  st_->in_kernel = true;
  st_->per_thread.assign(n_threads, 0);
}

void ProfileBuilder::end_kernel() {
  NAPEL_CHECK(st_->in_kernel);
  st_->in_kernel = false;
  st_->ended = true;
}

void ProfileBuilder::on_instr(const trace::InstrEvent& ev) {
  ingest(*st_, ev);
}

// One virtual call per batch; the per-event feature updates run in this
// non-virtual loop with the State reference hoisted out.
void ProfileBuilder::on_instr_batch(const trace::InstrEvent* evs,
                                    std::size_t n) {
  State& s = *st_;
  for (std::size_t i = 0; i < n; ++i) ingest(s, evs[i]);
}

void ProfileBuilder::ingest(State& s, const trace::InstrEvent& ev) {
  ++s.total;
  ++s.op_counts[static_cast<std::size_t>(ev.op)];
  if (ev.thread < s.per_thread.size()) ++s.per_thread[ev.thread];

  const unsigned n_src =
      (ev.src1 != trace::kNoReg ? 1u : 0u) + (ev.src2 != trace::kNoReg ? 1u : 0u);
  s.src_reads += n_src;
  if (n_src > 0) ++s.instr_with_src;
  if (ev.dst != trace::kNoReg) ++s.defs;

  // Instruction reuse distance over pseudo-PCs.
  s.rd_instr.record(s.instr_sd.access(ev.pc));

  if (trace::is_memory(ev.op)) {
    const std::uint64_t line = ev.addr >> 6;
    const std::uint64_t d = s.data_sd.access(line);
    s.rd_all.record(d);
    if (ev.op == trace::OpType::kLoad) {
      s.rd_read.record(d);
      if (line != s.last_read_line) {
        s.read_lines.insert(line);
        s.last_read_line = line;
      }
      s.read_bytes += ev.size;
    } else {
      s.rd_write.record(d);
      if (line != s.last_write_line) {
        s.write_lines.insert(line);
        s.last_write_line = line;
      }
      s.write_bytes += ev.size;
    }
    if (s.have_prev_addr) {
      const std::uint64_t delta = ev.addr > s.prev_addr
                                      ? ev.addr - s.prev_addr
                                      : s.prev_addr - ev.addr;
      s.stride.add(delta);
    }
    s.prev_addr = ev.addr;
    s.have_prev_addr = true;

    // Per-PC stride predictability.
    State::PcStride& ps = s.pc_strides[ev.pc];
    if (ps.seen >= 1) {
      const std::int64_t stride =
          static_cast<std::int64_t>(ev.addr) -
          static_cast<std::int64_t>(ps.last_addr);
      if (ps.seen == 2 && stride == ps.last_stride && stride >= -4096 &&
          stride <= 4096) {
        ++s.prefetchable_accesses;
      }
      ps.last_stride = stride;
      ps.seen = 2;
    } else {
      ps.seen = 1;
    }
    ps.last_addr = ev.addr;
  }

  s.ilp.on_instr(ev);
}

Profile ProfileBuilder::build() const {
  const State& s = *st_;
  NAPEL_CHECK_MSG(s.ended, "build() requires a completed kernel run");

  Profile p;
  p.kernel = s.kernel;
  p.n_threads = s.n_threads;
  p.total_instructions = s.total;
  p.op_counts = s.op_counts;
  p.data_read_rd = s.rd_read;
  p.data_write_rd = s.rd_write;
  p.data_all_rd = s.rd_all;
  p.instr_rd = s.rd_instr;
  p.stride_hist = s.stride;
  for (std::size_t i = 0; i < IlpAnalyzer::kWindows.size(); ++i)
    p.ilp[i] = s.ilp.ilp_window(i);
  p.ilp[IlpAnalyzer::kNumSchedules - 1] = s.ilp.ilp_infinite();
  p.unique_lines = s.data_sd.unique_blocks();
  p.unique_read_lines = s.read_lines.size();
  p.unique_write_lines = s.write_lines.size();
  p.read_bytes = s.read_bytes;
  p.write_bytes = s.write_bytes;
  p.unique_pcs = s.instr_sd.unique_keys();
  p.src_operand_reads = s.src_reads;
  p.reg_defs = s.defs;
  p.instr_with_src = s.instr_with_src;
  p.per_thread_instr = s.per_thread;
  {
    const double mem_total = static_cast<double>(p.memory_ops());
    p.pc_stride_regular_fraction =
        safe_div(static_cast<double>(s.prefetchable_accesses), mem_total);
  }

  const double total = static_cast<double>(s.total);
  auto count = [&](trace::OpType op) {
    return static_cast<double>(
        s.op_counts[static_cast<std::size_t>(op)]);
  };
  const double loads = count(trace::OpType::kLoad);
  const double stores = count(trace::OpType::kStore);
  const double branches = count(trace::OpType::kBranch);
  const double mem = loads + stores;
  const double int_arith = count(trace::OpType::kIntAlu) +
                           count(trace::OpType::kIntMul) +
                           count(trace::OpType::kIntDiv);
  const double fp_arith = count(trace::OpType::kFpAdd) +
                          count(trace::OpType::kFpMul) +
                          count(trace::OpType::kFpDiv);
  const double arith = int_arith + fp_arith;

  std::vector<double>& f = p.features;
  f.reserve(kFeatureCount);

  // A: totals & mix
  f.push_back(log2p1(total));
  for (std::size_t op = 0; op < trace::kNumOpTypes; ++op)
    f.push_back(safe_div(static_cast<double>(s.op_counts[op]), total));
  f.push_back(safe_div(mem, total));
  f.push_back(safe_div(arith, total));
  f.push_back(safe_div(fp_arith, arith));
  f.push_back(safe_div(loads, mem));

  // B: ILP
  for (double v : p.ilp) f.push_back(v);
  f.push_back(safe_div(p.ilp[1], p.ilp[0]));
  f.push_back(safe_div(p.ilp[2], p.ilp[1]));
  f.push_back(safe_div(p.ilp[3], p.ilp[2]));
  f.push_back(safe_div(p.ilp[4], p.ilp[3]));

  // C-F: reuse distances
  append_rd_features(f, s.rd_read);
  append_rd_features(f, s.rd_write);
  append_rd_features(f, s.rd_all);
  append_rd_features(f, s.rd_instr);

  // G: memory traffic at capacities
  for (const auto* rd : {&s.rd_read, &s.rd_write, &s.rd_all})
    for (std::size_t k = 0; k < kNumCapacities; ++k)
      f.push_back(rd->miss_fraction(1ULL << (kFirstCapacityLog + k)));

  // H: strides
  {
    const auto fracs = s.stride.fractions();
    f.insert(f.end(), fracs.begin(), fracs.end());
    f.push_back(s.stride.fraction_below(65));
    f.push_back(s.stride.fraction_below(4097));
    f.push_back(log2p1(s.stride.approximate_mean()));
  }

  // I: register traffic
  f.push_back(safe_div(static_cast<double>(s.src_reads), total));
  f.push_back(safe_div(static_cast<double>(s.defs), total));
  f.push_back(safe_div(static_cast<double>(s.instr_with_src), total));
  f.push_back(safe_div(static_cast<double>(s.src_reads),
                       static_cast<double>(s.defs)));
  f.push_back(log2p1(static_cast<double>(s.defs)));
  f.push_back(log2p1(static_cast<double>(p.unique_pcs)));

  // J: footprint & traffic volume
  f.push_back(log2p1(static_cast<double>(p.unique_lines) * 64.0));
  f.push_back(log2p1(static_cast<double>(p.unique_read_lines) * 64.0));
  f.push_back(log2p1(static_cast<double>(p.unique_write_lines) * 64.0));
  f.push_back(log2p1(static_cast<double>(s.read_bytes + s.write_bytes)));
  f.push_back(log2p1(static_cast<double>(s.read_bytes)));
  f.push_back(log2p1(static_cast<double>(s.write_bytes)));
  f.push_back(log2p1(static_cast<double>(p.unique_lines)));
  {
    const double overlap =
        static_cast<double>(p.unique_read_lines + p.unique_write_lines) -
        static_cast<double>(p.unique_lines);
    f.push_back(safe_div(overlap, static_cast<double>(p.unique_lines)));
  }

  // K: threads
  f.push_back(static_cast<double>(s.n_threads));
  f.push_back(log2p1(total / static_cast<double>(s.n_threads)));
  {
    std::vector<double> pt(s.per_thread.begin(), s.per_thread.end());
    const double m = pt.empty() ? 0.0 : mean(pt);
    const double sd = pt.empty() ? 0.0 : stddev(pt);
    f.push_back(safe_div(sd, m));
    f.push_back(log2p1(pt.empty() ? 0.0 : max_of(pt)));
  }

  // L: control
  f.push_back(safe_div(branches, total));
  f.push_back(safe_div(branches, mem));
  f.push_back(safe_div(total, branches + 1.0));

  NAPEL_CHECK_MSG(f.size() == kFeatureCount,
                  "assembled feature vector has wrong arity");
  return p;
}

}  // namespace napel::profiler
