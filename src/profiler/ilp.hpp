// Ideal-machine instruction-level-parallelism analysis (Table 1: "ILP on an
// ideal machine"). Instructions are dataflow-scheduled with unit latencies
// and unlimited functional units; the only constraints are true dependences
// (register RAW through the SSA stream, memory RAW through store→load
// forwarding at exact addresses) and, for finite windows, an in-order issue
// window of W instructions. ILP_W = N / schedule-length.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/flat_map.hpp"
#include "trace/isa.hpp"

namespace napel::profiler {

class IlpAnalyzer {
 public:
  /// Window sizes analyzed (a 5th, infinite window is always included).
  static constexpr std::array<std::uint32_t, 4> kWindows = {32, 64, 128, 256};
  static constexpr std::size_t kNumSchedules = kWindows.size() + 1;

  IlpAnalyzer();

  /// Defined inline: called once per traced instruction by the profiler;
  /// inlining keeps the schedule-time vectors in registers across the
  /// batch loop.
  void on_instr(const trace::InstrEvent& ev) {
    const Times& r1 = reg_ready(ev.src1);
    const Times& r2 = reg_ready(ev.src2);

    Times issue;
    for (std::size_t s = 0; s < kNumSchedules; ++s)
      issue[s] = std::max(r1[s], r2[s]);

    if (ev.op == trace::OpType::kLoad) {
      if (const Times* fwd = store_ready_.find(ev.addr))
        for (std::size_t s = 0; s < kNumSchedules; ++s)
          issue[s] = std::max(issue[s], (*fwd)[s]);
    }

    // Finite windows: the W-entry window frees a slot one cycle after the
    // instruction W positions earlier has issued.
    for (std::size_t w = 0; w < kWindows.size(); ++w) {
      auto& ring = window_ring_[w];
      const std::size_t pos = static_cast<std::size_t>(n_ % kWindows[w]);
      if (n_ >= kWindows[w]) issue[w] = std::max(issue[w], ring[pos] + 1);
      ring[pos] = issue[w];  // our own issue time replaces the aged-out slot
    }

    Times done;
    for (std::size_t s = 0; s < kNumSchedules; ++s) {
      done[s] = issue[s] + 1;  // unit latency on the ideal machine
      horizon_[s] = std::max(horizon_[s], done[s]);
    }

    if (ev.dst != trace::kNoReg) set_reg_ready(ev.dst, done);
    if (ev.op == trace::OpType::kStore) {
      if (store_ready_.size() >= kMaxStoreMapEntries) store_ready_.clear();
      store_ready_[ev.addr] = done;
    }
    ++n_;
  }

  /// ILP for finite window index i (into kWindows).
  double ilp_window(std::size_t i) const;
  double ilp_infinite() const;
  std::uint64_t instructions() const { return n_; }

 private:
  using Times = std::array<std::uint64_t, kNumSchedules>;

  // Register ready times, in a collision-checked ring (SSA registers are
  // consumed shortly after definition; evicted entries read as ready-at-0,
  // which only shortens apparent dependence chains negligibly).
  static constexpr std::size_t kRegRingBits = 16;
  struct RegSlot {
    trace::Reg reg = trace::kNoReg;
    Times ready{};
  };

  // Returned by reference: two 40-byte Times copies per instruction are
  // measurable on the profiler's hot path.
  const Times& reg_ready(trace::Reg r) const {
    static constexpr Times kZero{};
    if (r == trace::kNoReg) return kZero;
    const RegSlot& slot = reg_ring_[r & ((1u << kRegRingBits) - 1)];
    return slot.reg == r ? slot.ready : kZero;
  }
  void set_reg_ready(trace::Reg r, const Times& t) {
    RegSlot& slot = reg_ring_[r & ((1u << kRegRingBits) - 1)];
    slot.reg = r;
    slot.ready = t;
  }

  std::vector<RegSlot> reg_ring_;
  // Memory RAW: last store completion per exact address (all schedules in
  // one map entry). Cleared when oversized to bound memory.
  FlatMap<Times> store_ready_;
  static constexpr std::size_t kMaxStoreMapEntries = 1u << 22;

  // Sliding-window issue constraint: issue time of the instruction W back.
  std::array<std::vector<std::uint64_t>, kWindows.size()> window_ring_;

  Times horizon_{};  // schedule length so far (max completion time)
  std::uint64_t n_ = 0;
};

}  // namespace napel::profiler
