// Ideal-machine instruction-level-parallelism analysis (Table 1: "ILP on an
// ideal machine"). Instructions are dataflow-scheduled with unit latencies
// and unlimited functional units; the only constraints are true dependences
// (register RAW through the SSA stream, memory RAW through store→load
// forwarding at exact addresses) and, for finite windows, an in-order issue
// window of W instructions. ILP_W = N / schedule-length.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/flat_map.hpp"
#include "trace/isa.hpp"

namespace napel::profiler {

class IlpAnalyzer {
 public:
  /// Window sizes analyzed (a 5th, infinite window is always included).
  static constexpr std::array<std::uint32_t, 4> kWindows = {32, 64, 128, 256};
  static constexpr std::size_t kNumSchedules = kWindows.size() + 1;

  IlpAnalyzer();

  void on_instr(const trace::InstrEvent& ev);

  /// ILP for finite window index i (into kWindows).
  double ilp_window(std::size_t i) const;
  double ilp_infinite() const;
  std::uint64_t instructions() const { return n_; }

 private:
  using Times = std::array<std::uint64_t, kNumSchedules>;

  // Register ready times, in a collision-checked ring (SSA registers are
  // consumed shortly after definition; evicted entries read as ready-at-0,
  // which only shortens apparent dependence chains negligibly).
  static constexpr std::size_t kRegRingBits = 16;
  struct RegSlot {
    trace::Reg reg = trace::kNoReg;
    Times ready{};
  };

  Times reg_ready(trace::Reg r) const;
  void set_reg_ready(trace::Reg r, const Times& t);

  std::vector<RegSlot> reg_ring_;
  // Memory RAW: last store completion per exact address (all schedules in
  // one map entry). Cleared when oversized to bound memory.
  FlatMap<Times> store_ready_;
  static constexpr std::size_t kMaxStoreMapEntries = 1u << 22;

  // Sliding-window issue constraint: issue time of the instruction W back.
  std::array<std::vector<std::uint64_t>, kWindows.size()> window_ring_;

  Times horizon_{};  // schedule length so far (max completion time)
  std::uint64_t n_ = 0;
};

}  // namespace napel::profiler
