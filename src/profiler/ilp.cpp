#include "profiler/ilp.hpp"

#include "common/check.hpp"

namespace napel::profiler {

IlpAnalyzer::IlpAnalyzer() : reg_ring_(1u << kRegRingBits) {
  for (std::size_t w = 0; w < kWindows.size(); ++w)
    window_ring_[w].assign(kWindows[w], 0);
}

double IlpAnalyzer::ilp_window(std::size_t i) const {
  NAPEL_CHECK(i < kWindows.size());
  if (n_ == 0) return 0.0;
  return static_cast<double>(n_) / static_cast<double>(horizon_[i]);
}

double IlpAnalyzer::ilp_infinite() const {
  if (n_ == 0) return 0.0;
  return static_cast<double>(n_) /
         static_cast<double>(horizon_[kNumSchedules - 1]);
}

}  // namespace napel::profiler
