#include "profiler/ilp.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace napel::profiler {

IlpAnalyzer::IlpAnalyzer() : reg_ring_(1u << kRegRingBits) {
  for (std::size_t w = 0; w < kWindows.size(); ++w)
    window_ring_[w].assign(kWindows[w], 0);
}

IlpAnalyzer::Times IlpAnalyzer::reg_ready(trace::Reg r) const {
  if (r == trace::kNoReg) return Times{};
  const RegSlot& slot = reg_ring_[r & ((1u << kRegRingBits) - 1)];
  return slot.reg == r ? slot.ready : Times{};
}

void IlpAnalyzer::set_reg_ready(trace::Reg r, const Times& t) {
  if (r == trace::kNoReg) return;
  RegSlot& slot = reg_ring_[r & ((1u << kRegRingBits) - 1)];
  slot.reg = r;
  slot.ready = t;
}

void IlpAnalyzer::on_instr(const trace::InstrEvent& ev) {
  const Times r1 = reg_ready(ev.src1);
  const Times r2 = reg_ready(ev.src2);

  Times issue;
  for (std::size_t s = 0; s < kNumSchedules; ++s)
    issue[s] = std::max(r1[s], r2[s]);

  if (ev.op == trace::OpType::kLoad) {
    if (const Times* fwd = store_ready_.find(ev.addr))
      for (std::size_t s = 0; s < kNumSchedules; ++s)
        issue[s] = std::max(issue[s], (*fwd)[s]);
  }

  // Finite windows: the W-entry window frees a slot one cycle after the
  // instruction W positions earlier has issued.
  for (std::size_t w = 0; w < kWindows.size(); ++w) {
    auto& ring = window_ring_[w];
    const std::size_t pos = static_cast<std::size_t>(n_ % kWindows[w]);
    if (n_ >= kWindows[w]) issue[w] = std::max(issue[w], ring[pos] + 1);
    ring[pos] = issue[w];  // our own issue time replaces the aged-out slot
  }

  Times done;
  for (std::size_t s = 0; s < kNumSchedules; ++s) {
    done[s] = issue[s] + 1;  // unit latency on the ideal machine
    horizon_[s] = std::max(horizon_[s], done[s]);
  }

  if (ev.dst != trace::kNoReg) set_reg_ready(ev.dst, done);
  if (ev.op == trace::OpType::kStore) {
    if (store_ready_.size() >= kMaxStoreMapEntries) store_ready_.clear();
    store_ready_[ev.addr] = done;
  }
  ++n_;
}

double IlpAnalyzer::ilp_window(std::size_t i) const {
  NAPEL_CHECK(i < kWindows.size());
  if (n_ == 0) return 0.0;
  return static_cast<double>(n_) / static_cast<double>(horizon_[i]);
}

double IlpAnalyzer::ilp_infinite() const {
  if (n_ == 0) return 0.0;
  return static_cast<double>(n_) /
         static_cast<double>(horizon_[kNumSchedules - 1]);
}

}  // namespace napel::profiler
