// Exact LRU stack (reuse) distance tracking, Olken-style: a Fenwick tree
// over access timestamps counts the number of *distinct* blocks touched
// between consecutive accesses to the same block.
//
// Reuse distance is the paper's key locality feature (Table 1): for a given
// distance δ, the probability of reusing a block before touching δ other
// unique blocks, and the percentage of accesses that would miss in a cache
// holding C blocks (distance ≥ C).
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/flat_map.hpp"
#include "common/histogram.hpp"

namespace napel::profiler {

/// Streaming exact stack-distance computation. O(log N) per access,
/// O(N) memory in the number of accesses (Fenwick tree of one bit-count per
/// timestamp) plus O(U) for the last-access map over unique blocks.
class StackDistanceTracker {
 public:
  StackDistanceTracker();

  /// Records an access to `block` and returns its stack distance: the number
  /// of distinct blocks accessed since the previous access to `block`, or
  /// kColdMiss for a first access.
  static constexpr std::uint64_t kColdMiss =
      std::numeric_limits<std::uint64_t>::max();
  std::uint64_t access(std::uint64_t block);

  std::uint64_t access_count() const { return time_; }
  std::uint64_t unique_blocks() const { return last_access_.size(); }

 private:
  void fenwick_add(std::size_t i, int delta);
  std::uint64_t fenwick_prefix_sum(std::size_t i) const;  // sum of [1..i]

  FlatMap<std::uint64_t> last_access_;
  std::vector<std::int32_t> fenwick_;  // 1-indexed
  std::uint64_t time_ = 0;
};

/// Exact LRU stack distance specialized for small universes with short
/// distances (instruction pseudo-PCs: a loop re-executes the same few PCs,
/// so the accessed key is almost always near the top of the LRU stack).
/// A move-to-front list makes each access O(distance) with a tiny constant,
/// much faster than the Fenwick tracker for this access pattern.
class LruStackDistance {
 public:
  static constexpr std::uint64_t kColdMiss = StackDistanceTracker::kColdMiss;

  /// Records an access and returns the number of distinct keys accessed
  /// since the previous access to `key` (kColdMiss on first access).
  std::uint64_t access(std::uint64_t key);

  std::uint64_t access_count() const { return accesses_; }
  std::uint64_t unique_keys() const { return slot_of_.size(); }

 private:
  struct Node {
    std::uint32_t prev;
    std::uint32_t next;
  };
  static constexpr std::uint32_t kNil = ~0u;

  std::vector<Node> nodes_;
  FlatMap<std::uint32_t> slot_of_;  // key -> node index
  std::uint32_t head_ = kNil;
  std::uint64_t accesses_ = 0;
};

/// Convenience aggregation: histogram of distances plus cold-miss count.
/// Distances below kExactBins are additionally counted exactly, so
/// miss_fraction() is precise for the tiny caches (a few lines) that NMC
/// processing elements carry — the log2 buckets alone smear exactly that
/// range.
class ReuseDistanceHistogram {
 public:
  static constexpr std::size_t kExactBins = 64;

  explicit ReuseDistanceHistogram(std::size_t buckets = 40)
      : hist_(buckets) {}

  void record(std::uint64_t distance);

  const Log2Histogram& histogram() const { return hist_; }
  std::uint64_t cold_misses() const { return cold_; }
  std::uint64_t samples() const { return hist_.total() + cold_; }

  /// Fraction of accesses whose distance is >= `capacity_blocks` (would miss
  /// in a fully-associative LRU cache of that many blocks); cold misses
  /// always count as misses. Exact for capacities <= kExactBins.
  double miss_fraction(std::uint64_t capacity_blocks) const;

 private:
  Log2Histogram hist_;
  std::array<std::uint64_t, kExactBins> small_{};
  std::uint64_t cold_ = 0;
};

}  // namespace napel::profiler
