// Exact LRU stack (reuse) distance tracking, Olken-style: a Fenwick tree
// over access timestamps counts the number of *distinct* blocks touched
// between consecutive accesses to the same block.
//
// Reuse distance is the paper's key locality feature (Table 1): for a given
// distance δ, the probability of reusing a block before touching δ other
// unique blocks, and the percentage of accesses that would miss in a cache
// holding C blocks (distance ≥ C).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/flat_map.hpp"
#include "common/histogram.hpp"

namespace napel::profiler {

/// Streaming exact stack-distance computation, O(log) amortized per access.
/// When timestamps outgrow the Fenwick tree, high-reuse streams (live set
/// much smaller than the tree) compact timestamps to a dense prefix
/// preserving recency order — a per-instruction tracker over a few hundred
/// PCs runs on a cache-resident tree across millions of accesses — while
/// low-reuse streams (graph traversals, where unique blocks grow with the
/// access count and compaction would rebuild an ever-growing live set over
/// and over) just double the tree with an O(1) marker-count fixup.
///
/// Keys are hashed through a FlatMap in all uses: pseudo-PCs look dense but
/// are strided by 4096 per tracer scope (a direct-indexed table would be
/// megabytes of mostly-empty slots), while the hash table holds just the
/// few hundred live entries cache-resident.
class StackDistanceTracker {
 public:
  StackDistanceTracker() : fenwick_(1024, 0) {}

  /// Records an access to `block` and returns its stack distance: the number
  /// of distinct blocks accessed since the previous access to `block`, or
  /// kColdMiss for a first access.
  static constexpr std::uint64_t kColdMiss =
      std::numeric_limits<std::uint64_t>::max();

  /// Defined inline: this is the single hottest call in the profiler (once
  /// per instruction for PC reuse, once per memory op for data reuse).
  std::uint64_t access(std::uint64_t block) {
    // Fast path: immediate re-access of the block touched last (sequential
    // sweeps hit each 64B line several times in a row). Skips the hash
    // lookup entirely; the marker move from now_-1 to now_ collapses to at
    // most one tree node because the two paths merge immediately. Produces
    // exactly the slow path's result (distance 0, marker at now_).
    // memo_slot_ points at the most recent call's table slot; it stays
    // valid because compact() rewrites timestamps without rehashing, and
    // the table only grows at the start of a slow-path call (which then
    // re-establishes the memo from the post-growth reference).
    if (memo_slot_ != nullptr && block == memo_block_) {
      ++time_;
      if (now_ + 1 >= fenwick_.size()) maintain();
      ++now_;
      const std::size_t n = fenwick_.size();
      std::size_t a = static_cast<std::size_t>(now_ - 1);
      std::size_t b = static_cast<std::size_t>(now_);
      while (a != b && (a < n || b < n)) {
        if (a < b) {
          if (a < n) fenwick_[a] -= 1;
          a += a & (~a + 1);
        } else {
          if (b < n) fenwick_[b] += 1;
          b += b & (~b + 1);
        }
      }
      *memo_slot_ = now_;
      return 0;
    }

    ++time_;
    if (now_ + 1 >= fenwick_.size()) maintain();
    ++now_;  // timestamps are 1-indexed for the Fenwick tree

    std::uint64_t distance = kColdMiss;
    bool inserted;
    std::uint64_t& slot = last_access_.insert_or_get(block, inserted);
    if (!inserted) {
      // Distinct blocks touched strictly after prev: present markers in
      // (prev, now_). Current access not yet marked. The two prefix-sum
      // cursors share their low path, so interleaving them makes the query
      // cost O(log(now - prev)) — near-constant for the tight-loop reuse
      // that dominates instruction streams — instead of O(log N).
      std::size_t a = static_cast<std::size_t>(slot);
      std::size_t b = static_cast<std::size_t>(now_ - 1);
      std::int64_t in_between = 0;
      while (a != b) {
        if (b > a) {
          in_between += fenwick_[b];
          b -= b & (~b + 1);
        } else {
          in_between -= fenwick_[a];
          a -= a & (~a + 1);
        }
      }
      distance = static_cast<std::uint64_t>(in_between);

      // Move the marker from prev to now_: the two update paths merge at
      // their lowest common Fenwick ancestor, above which -1 and +1
      // cancel, so the walk also costs O(log(now - prev)).
      const std::size_t n = fenwick_.size();
      a = static_cast<std::size_t>(slot);
      b = static_cast<std::size_t>(now_);
      while (a != b && (a < n || b < n)) {
        if (a < b) {
          if (a < n) fenwick_[a] -= 1;
          a += a & (~a + 1);
        } else {
          if (b < n) fenwick_[b] += 1;
          b += b & (~b + 1);
        }
      }
    } else {
      fenwick_add(static_cast<std::size_t>(now_), +1);
    }
    slot = now_;
    memo_block_ = block;
    memo_slot_ = &slot;
    return distance;
  }

  std::uint64_t access_count() const { return time_; }
  std::uint64_t unique_blocks() const { return last_access_.size(); }

 private:
  void fenwick_add(std::size_t i, int delta) {
    for (; i < fenwick_.size(); i += i & (~i + 1)) {
      fenwick_[i] += delta;
    }
  }

  // Timestamps have filled the tree. Compact only when the live set is much
  // smaller than the tree (reclaiming at least 63/64 of the timestamps per
  // rebuild); otherwise the stream touches new blocks about as fast as it
  // accesses, compaction would rebuild a live set that grows with the
  // stream, and doubling is O(1) amortized.
  void maintain() {
    if ((last_access_.size() + 1) * 64 <= fenwick_.size()) {
      compact();
    } else {
      grow_tree();
    }
  }

  void grow_tree() {
    // The tree size is always a power of two (ctor, compact(), and this
    // doubling preserve it), so exactly one new node spans old timestamps:
    // index `old` covers [1, old], which holds one marker per live block.
    // Every other new node's range lies entirely above old timestamps.
    const std::size_t old = fenwick_.size();
    fenwick_.resize(old * 2, 0);
    fenwick_[old] = static_cast<std::int32_t>(last_access_.size());
  }

  void compact() {
    // Only the "present" markers (one per tracked block, at its last access
    // time) carry state. Remap them onto a dense 1..U timestamp prefix in
    // recency order: prefix sums between any two markers are preserved, so
    // every future distance is unchanged, but the tree stays sized to the
    // live set instead of the access count. Only reached when the live set
    // fills at most 1/64 of the tree (see maintain()), so the O(U log U)
    // rebuild amortizes over the >= 63·U accesses the freed headroom buys
    // before the next one.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> live;  // (ts, block)
    live.reserve(last_access_.size());
    last_access_.for_each([&](std::uint64_t block, std::uint64_t ts) {
      live.emplace_back(ts, block);
    });
    std::sort(live.begin(), live.end());

    std::size_t cap = fenwick_.size();
    while (cap < (live.size() + 1) * 16) cap *= 2;
    fenwick_.assign(cap, 0);
    now_ = 0;
    for (const auto& [old_ts, block] : live) {
      *last_access_.find(block) = ++now_;
      fenwick_add(static_cast<std::size_t>(now_), +1);
    }
  }

  FlatMap<std::uint64_t> last_access_;
  std::vector<std::int32_t> fenwick_;  // 1-indexed
  std::uint64_t time_ = 0;  // monotone access count (never reset)
  std::uint64_t now_ = 0;   // Fenwick timestamp clock (reset by compact())
  std::uint64_t memo_block_ = 0;         // last accessed block...
  std::uint64_t* memo_slot_ = nullptr;   // ...and its table slot
};

/// Exact LRU stack distance over arbitrary keys (instruction pseudo-PCs).
/// Historically a move-to-front linked list whose access cost was
/// O(distance) — fine for tight loops re-touching the stack top, but
/// pathological for kernels interleaving many distinct PCs (outer-loop PCs
/// paid a full-stack walk on every reuse). Now a thin wrapper over the
/// Olken-style Fenwick tracker: O(log N) per access regardless of distance,
/// with identical results.
class LruStackDistance {
 public:
  static constexpr std::uint64_t kColdMiss = StackDistanceTracker::kColdMiss;

  /// Records an access and returns the number of distinct keys accessed
  /// since the previous access to `key` (kColdMiss on first access).
  std::uint64_t access(std::uint64_t key) { return tracker_.access(key); }

  std::uint64_t access_count() const { return tracker_.access_count(); }
  std::uint64_t unique_keys() const { return tracker_.unique_blocks(); }

 private:
  StackDistanceTracker tracker_;
};

/// Convenience aggregation: histogram of distances plus cold-miss count.
/// Distances below kExactBins are additionally counted exactly, so
/// miss_fraction() is precise for the tiny caches (a few lines) that NMC
/// processing elements carry — the log2 buckets alone smear exactly that
/// range.
class ReuseDistanceHistogram {
 public:
  static constexpr std::size_t kExactBins = 64;

  explicit ReuseDistanceHistogram(std::size_t buckets = 40)
      : hist_(buckets) {}

  /// Defined inline: recorded once per instruction (PC reuse) and up to
  /// three times per memory op (read/write/all data reuse).
  void record(std::uint64_t distance) {
    if (distance == StackDistanceTracker::kColdMiss) {
      ++cold_;
    } else {
      hist_.add(distance);
      if (distance < kExactBins) ++small_[distance];
    }
  }

  const Log2Histogram& histogram() const { return hist_; }
  std::uint64_t cold_misses() const { return cold_; }
  std::uint64_t samples() const { return hist_.total() + cold_; }

  /// Fraction of accesses whose distance is >= `capacity_blocks` (would miss
  /// in a fully-associative LRU cache of that many blocks); cold misses
  /// always count as misses. Exact for capacities <= kExactBins.
  double miss_fraction(std::uint64_t capacity_blocks) const;

 private:
  Log2Histogram hist_;
  std::array<std::uint64_t, kExactBins> small_{};
  std::uint64_t cold_ = 0;
};

}  // namespace napel::profiler
