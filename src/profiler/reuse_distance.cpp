#include "profiler/reuse_distance.hpp"

#include <limits>

#include "common/check.hpp"

namespace napel::profiler {

StackDistanceTracker::StackDistanceTracker() : fenwick_(1024, 0) {}

void StackDistanceTracker::fenwick_add(std::size_t i, int delta) {
  for (; i < fenwick_.size(); i += i & (~i + 1)) {
    fenwick_[i] += delta;
  }
}

std::uint64_t StackDistanceTracker::fenwick_prefix_sum(std::size_t i) const {
  std::uint64_t s = 0;
  for (; i > 0; i -= i & (~i + 1)) {
    s += static_cast<std::uint64_t>(fenwick_[i]);
  }
  return s;
}

std::uint64_t StackDistanceTracker::access(std::uint64_t block) {
  ++time_;  // timestamps are 1-indexed for the Fenwick tree
  if (time_ >= fenwick_.size()) {
    // Grow by rebuilding: only the "present" markers (one per tracked block,
    // at its last access time) carry state, so a rebuild costs O(U log N)
    // and is amortized over the doubling.
    fenwick_.assign(fenwick_.size() * 2, 0);
    last_access_.for_each([&](std::uint64_t, std::uint64_t ts) {
      fenwick_add(static_cast<std::size_t>(ts), +1);
    });
  }

  std::uint64_t distance = kColdMiss;
  bool inserted;
  std::uint64_t& slot = last_access_.insert_or_get(block, inserted);
  if (!inserted) {
    const std::uint64_t prev = slot;
    // Distinct blocks touched strictly after prev: present markers in
    // (prev, time_). Current access not yet marked.
    const std::uint64_t upto_now = fenwick_prefix_sum(time_ - 1);
    const std::uint64_t upto_prev = fenwick_prefix_sum(prev);
    distance = upto_now - upto_prev;
    fenwick_add(static_cast<std::size_t>(prev), -1);
  }
  slot = time_;
  fenwick_add(static_cast<std::size_t>(time_), +1);
  return distance;
}

std::uint64_t LruStackDistance::access(std::uint64_t key) {
  ++accesses_;
  bool inserted;
  std::uint32_t& slot = slot_of_.insert_or_get(key, inserted);
  if (inserted) {
    slot = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(Node{kNil, head_});
    if (head_ != kNil) nodes_[head_].prev = slot;
    head_ = slot;
    return kColdMiss;
  }

  // Walk from the head counting distinct keys ahead of `key`.
  std::uint64_t distance = 0;
  std::uint32_t cur = head_;
  while (cur != slot) {
    NAPEL_DCHECK(cur != kNil);
    cur = nodes_[cur].next;
    ++distance;
  }
  // Move to front.
  if (slot != head_) {
    Node& n = nodes_[slot];
    nodes_[n.prev].next = n.next;
    if (n.next != kNil) nodes_[n.next].prev = n.prev;
    n.prev = kNil;
    n.next = head_;
    nodes_[head_].prev = slot;
    head_ = slot;
  }
  return distance;
}

void ReuseDistanceHistogram::record(std::uint64_t distance) {
  if (distance == StackDistanceTracker::kColdMiss) {
    ++cold_;
  } else {
    hist_.add(distance);
    if (distance < kExactBins) ++small_[distance];
  }
}

double ReuseDistanceHistogram::miss_fraction(
    std::uint64_t capacity_blocks) const {
  const std::uint64_t n = samples();
  if (n == 0) return 0.0;
  double hits;
  if (capacity_blocks <= kExactBins) {
    std::uint64_t h = 0;
    for (std::uint64_t d = 0; d < capacity_blocks; ++d) h += small_[d];
    hits = static_cast<double>(h);
  } else {
    hits = hist_.fraction_below(capacity_blocks) *
           static_cast<double>(hist_.total());
  }
  return 1.0 - hits / static_cast<double>(n);
}

}  // namespace napel::profiler
