#include "profiler/reuse_distance.hpp"

namespace napel::profiler {

double ReuseDistanceHistogram::miss_fraction(
    std::uint64_t capacity_blocks) const {
  const std::uint64_t n = samples();
  if (n == 0) return 0.0;
  double hits;
  if (capacity_blocks <= kExactBins) {
    std::uint64_t h = 0;
    for (std::uint64_t d = 0; d < capacity_blocks; ++d) h += small_[d];
    hits = static_cast<double>(h);
  } else {
    hits = hist_.fraction_below(capacity_blocks) *
           static_cast<double>(hist_.total());
  }
  return 1.0 - hits / static_cast<double>(n);
}

}  // namespace napel::profiler
