// Static validators for NAPEL's serialized artifacts: model files written
// by napel/model_io, CSV tables (training data / benchmark exports), and
// DoE parameter spaces. Findings are reported through the same
// DiagnosticEngine as the stream rules, so `napel lint` gives one unified
// report across dynamic and static checks.
//
// Artifact rule catalog:
//   artifact-empty model / CSV / trace file exists but is zero-length —
//                  almost always a crashed producer or bad redirect  (error)
//   model-format   unreadable file, bad header/tag, structurally
//                  invalid forests                                   (error)
//   model-truncated file ends mid-model (EOF inside a forest or the
//                  bounds line) — partial write or copy              (error)
//   model-topology node links cycle, escape or share subtrees        (error)
//   model-content  loaded model has non-finite or negative statistics
//                  (OOB error, feature importance)                   (error)
//   model-split-mode reports which split engine (exact / hist) trained
//                  the model's forests (info); warns when the two
//                  forests disagree — NapelModel trains both through
//                  one Options, so a mixed file was spliced      (info/warn)
//   contract-schema feature-schema contract between model, DoE space
//                  and feature matrix broken: count/order/fingerprint
//                  mismatch (error), value outside declared range (warn)
//   forest-bounds  stored serve-time prediction bounds disagree with
//                  the model's forests (see forest_analyzer.hpp)     (error)
//   csv-format     unreadable file, empty header, blank/duplicate
//                  column names (warn), ragged rows                  (error)
//   csv-truncated  file does not end in a newline — CsvWriter always
//                  terminates rows, so the last row was cut short    (error)
//   csv-value      numeric-looking cell is nan/inf                   (error)
//   trace-file     trace is structurally malformed / fails replay    (error)
//   trace-truncated trace ends inside the header or before the
//                  header-declared event count                       (error)
//   doe-param      empty space, unnamed/duplicate parameters,
//                  non-positive or unsorted levels, non-positive test
//                  input; duplicate levels degrade CCD               (warn)
//   doe-ccd        central_composite() fails or its point count does
//                  not match the paper's ccd_size formula            (error)
//   journal-format    unreadable run journal, bad header, checksum
//                     mismatch or non-monotone indices mid-file      (error)
//   journal-torn-tail trailing partial record — the expected debris
//                     of a crash, dropped on resume                  (warn)
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "verify/diagnostics.hpp"
#include "workloads/params.hpp"

namespace napel::verify {

/// Splits one CSV line, honouring CsvWriter's RFC-4180 quoting ("" inside a
/// quoted field is a literal quote). Shared by the CSV validator and the
/// forest analyzer's feature-matrix contract check.
std::vector<std::string> split_csv_line(const std::string& line);

/// Validates a serialized NapelModel (see napel/model_io.hpp). The stream
/// overload uses `name` as the diagnostic context.
void check_model_stream(std::istream& is, std::string_view name,
                        DiagnosticEngine& diags);
void check_model_file(const std::string& path, DiagnosticEngine& diags);

/// Validates a CSV table: consistent row arity against the header and
/// finite numeric cells. Quoted fields follow CsvWriter's RFC-4180 escaping.
void check_csv_stream(std::istream& is, std::string_view name,
                      DiagnosticEngine& diags);
void check_csv_file(const std::string& path, DiagnosticEngine& diags);

/// Validates one workload's DoE parameter space and the legality of the
/// central-composite design built from it.
void check_doe_space(const workloads::DoeSpace& space,
                     std::string_view context, DiagnosticEngine& diags);

/// Validates a run journal (common/journal.hpp): header, per-record
/// checksums, monotone indices. A clean torn tail — the signature of a
/// crash mid-append — is a warning; any other corruption is an error.
void check_journal_file(const std::string& path, DiagnosticEngine& diags);

/// Validates a recorded trace by replaying it through a VerifyingSink:
/// empty files, truncation (header or payload) and malformed structure get
/// dedicated rules; the replayed stream runs the full dynamic rule set.
/// Returns the number of stream events verified (0 when the file fails
/// before replay).
std::uint64_t check_trace_file(const std::string& path,
                               DiagnosticEngine& diags);

}  // namespace napel::verify
