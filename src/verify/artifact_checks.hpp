// Static validators for NAPEL's serialized artifacts: model files written
// by napel/model_io, CSV tables (training data / benchmark exports), and
// DoE parameter spaces. Findings are reported through the same
// DiagnosticEngine as the stream rules, so `napel lint` gives one unified
// report across dynamic and static checks.
//
// Artifact rule catalog:
//   model-format   unreadable file, bad header/tag, feature-count mismatch,
//                  truncated or structurally invalid forests         (error)
//   model-content  loaded model has non-finite or negative statistics
//                  (OOB error, feature importance)                   (error)
//   csv-format     unreadable file, empty header, blank/duplicate
//                  column names (warn), ragged rows                  (error)
//   csv-value      numeric-looking cell is nan/inf                   (error)
//   doe-param      empty space, unnamed/duplicate parameters,
//                  non-positive or unsorted levels, non-positive test
//                  input; duplicate levels degrade CCD               (warn)
//   doe-ccd        central_composite() fails or its point count does
//                  not match the paper's ccd_size formula            (error)
//   journal-format    unreadable run journal, bad header, checksum
//                     mismatch or non-monotone indices mid-file      (error)
//   journal-torn-tail trailing partial record — the expected debris
//                     of a crash, dropped on resume                  (warn)
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "verify/diagnostics.hpp"
#include "workloads/params.hpp"

namespace napel::verify {

/// Validates a serialized NapelModel (see napel/model_io.hpp). The stream
/// overload uses `name` as the diagnostic context.
void check_model_stream(std::istream& is, std::string_view name,
                        DiagnosticEngine& diags);
void check_model_file(const std::string& path, DiagnosticEngine& diags);

/// Validates a CSV table: consistent row arity against the header and
/// finite numeric cells. Quoted fields follow CsvWriter's RFC-4180 escaping.
void check_csv_stream(std::istream& is, std::string_view name,
                      DiagnosticEngine& diags);
void check_csv_file(const std::string& path, DiagnosticEngine& diags);

/// Validates one workload's DoE parameter space and the legality of the
/// central-composite design built from it.
void check_doe_space(const workloads::DoeSpace& space,
                     std::string_view context, DiagnosticEngine& diags);

/// Validates a run journal (common/journal.hpp): header, per-record
/// checksums, monotone indices. A clean torn tail — the signature of a
/// crash mid-append — is a warning; any other corruption is an error.
void check_journal_file(const std::string& path, DiagnosticEngine& diags);

}  // namespace napel::verify
