#include "verify/forest_analyzer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "napel/model_io.hpp"
#include "napel/napel_model.hpp"
#include "napel/pipeline.hpp"
#include "sim/arch.hpp"
#include "verify/artifact_checks.hpp"

namespace napel::verify {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Diagnostic make_diag(Severity severity, std::string rule,
                     std::string_view context, std::string message,
                     std::int64_t index = -1) {
  return Diagnostic{
      .rule = std::move(rule),
      .severity = severity,
      .context = std::string(context),
      .index = index,
      .message = std::move(message),
  };
}

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

/// True when every fraction-style schema name convention applies: these
/// features are ratios of counts and provably live in [0, 1].
bool is_fraction_feature(std::string_view name) {
  static constexpr std::string_view kPrefixes[] = {"mix_", "miss_frac_",
                                                   "stride_frac_"};
  for (const auto p : kPrefixes)
    if (name.substr(0, p.size()) == p) return true;
  static constexpr std::string_view kExact[] = {
      "mem_fraction",          "arith_fraction",
      "fp_fraction_of_arith",  "load_fraction_of_mem",
      "frac_instr_with_dst",   "frac_instr_with_src",
      "rw_footprint_overlap",  "branch_fraction",
      "arch_cache_access_fraction", "arch_dram_access_fraction",
      "analytic_mem_stall_frac"};
  for (const auto e : kExact)
    if (name == e) return true;
  return false;
}

// --- structural pass ------------------------------------------------------

/// Reports every violated arena invariant as a forest-structure error.
/// Mirrors ml::FlatForest::certify() (which throws on the first violation
/// for the serve path); the two must enforce the same contract.
bool check_structure(const ml::FlatForest& forest, std::string_view context,
                     DiagnosticEngine& diags) {
  bool ok = true;
  const auto bad = [&](std::int64_t index, std::string message) {
    ok = false;
    diags.report(make_diag(Severity::kError, "forest-structure", context,
                           std::move(message), index));
  };

  const auto a = forest.arena();
  const std::size_t n = a.feature.size();
  if (!forest.is_compiled()) {
    bad(-1, "forest is not compiled");
    return false;
  }
  if (forest.n_features() == 0) bad(-1, "feature count is zero");
  if (a.threshold.size() != n || a.left.size() != n || a.right.size() != n ||
      a.value.size() != n) {
    bad(-1, "arena column lengths disagree");
    return false;  // nothing below can index safely
  }
  const std::size_t nt = forest.tree_count();
  if (a.tree_offset.front() != 0) bad(-1, "first tree offset is not zero");
  if (a.tree_offset.back() != n)
    bad(-1, "last tree offset does not close the arena");
  if (a.tree_steps.size() != nt)
    bad(-1, "lockstep step table length disagrees with tree count");
  for (std::size_t t = 0; t + 1 < a.tree_offset.size(); ++t)
    if (a.tree_offset[t + 1] <= a.tree_offset[t])
      bad(-1, "tree " + std::to_string(t) + " offsets are not monotone");
  if (!ok) return false;

  std::vector<std::uint32_t> refs(n, 0);
  for (std::size_t t = 0; t < nt; ++t) {
    const std::uint32_t o = a.tree_offset[t];
    const std::uint32_t e = a.tree_offset[t + 1];
    for (std::uint32_t i = o; i < e; ++i) {
      const std::int32_t f = a.feature[i];
      if (!std::isfinite(a.value[i]))
        bad(i, "node value is not finite");
      if (f < 0) {
        if (f != -1) bad(i, "invalid leaf marker " + std::to_string(f));
        if (a.threshold[i] != kInf)
          bad(i, "leaf threshold is not +inf (lockstep spin encoding)");
        if (a.left[i] != i || a.right[i] != i)
          bad(i, "leaf is not self-linked");
        continue;
      }
      if (static_cast<std::size_t>(f) >= forest.n_features())
        bad(i, "split feature " + std::to_string(f) +
                   " is outside the schema (n_features = " +
                   std::to_string(forest.n_features()) + ")");
      if (!std::isfinite(a.threshold[i]))
        bad(i, "split threshold is not finite");
      const std::uint32_t l = a.left[i];
      const std::uint32_t r = a.right[i];
      if (l <= i || l >= e || r <= i || r >= e) {
        bad(i, "child link escapes the tree or points backwards "
               "(traversal could cycle or cross trees)");
        continue;  // refs on wild links would index out of the tree
      }
      if (l == r) bad(i, "left and right children collide");
      ++refs[l];
      ++refs[r];
    }
    if (!ok) continue;  // ref/depth accounting is noise on broken links
    for (std::uint32_t i = o; i < e; ++i) {
      const std::uint32_t expected = i == o ? 0 : 1;
      if (refs[i] != expected)
        bad(i, refs[i] < expected ? "node is unreachable debris"
                                  : "node has multiple parents");
    }
    std::vector<unsigned> depth(e - o, 0);
    unsigned deepest = 0;
    for (std::uint32_t i = o; i < e; ++i) {
      if (a.feature[i] < 0) {
        deepest = std::max(deepest, depth[i - o]);
      } else {
        depth[a.left[i] - o] = depth[i - o] + 1;
        depth[a.right[i] - o] = depth[i - o] + 1;
      }
    }
    if (ok && a.tree_steps[t] != deepest)
      bad(-1, "tree " + std::to_string(t) + " lockstep step count " +
                  std::to_string(a.tree_steps[t]) +
                  " != deepest leaf depth " + std::to_string(deepest) +
                  " (predict_batch would stop mid-tree)");
  }
  return ok;
}

}  // namespace

FeatureDomain FeatureDomain::unbounded(std::vector<std::string> names) {
  FeatureDomain d;
  d.lo.assign(names.size(), -kInf);
  d.hi.assign(names.size(), kInf);
  d.names = std::move(names);
  return d;
}

FeatureDomain napel_feature_domain(const workloads::DoeSpace* space) {
  FeatureDomain d = FeatureDomain::unbounded(core::model_feature_names());
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (is_fraction_feature(d.names[i])) {
      d.lo[i] = 0.0;
      d.hi[i] = 1.0;
    }
  }
  // Architecture features: the training pool's level tables.
  const auto& arch_names = sim::ArchConfig::feature_names();
  const auto& arch_ranges = sim::arch_feature_ranges();
  for (std::size_t ai = 0; ai < arch_names.size(); ++ai) {
    const auto it = std::find(d.names.begin(), d.names.end(), arch_names[ai]);
    if (it == d.names.end()) continue;
    const auto i = static_cast<std::size_t>(it - d.names.begin());
    d.lo[i] = arch_ranges[ai].first;
    d.hi[i] = arch_ranges[ai].second;
  }
  // Thread count: at least one, and within the DoE space's CCD levels when
  // a space is declared (training rows only ever see those levels).
  const auto nt = std::find(d.names.begin(), d.names.end(), "n_threads");
  if (nt != d.names.end()) {
    const auto i = static_cast<std::size_t>(nt - d.names.begin());
    d.lo[i] = 1.0;
    if (space != nullptr && space->has_param("threads")) {
      const auto& p = space->param("threads");
      d.lo[i] = static_cast<double>(p.minimum());
      d.hi[i] = static_cast<double>(p.maximum());
    }
  }
  return d;
}

ForestAnalysis analyze_forest(const ml::FlatForest& forest,
                              const FeatureDomain& domain,
                              std::string_view context,
                              DiagnosticEngine& diags) {
  ForestAnalysis out;
  out.structure_ok = check_structure(forest, context, diags);
  if (!out.structure_ok) return out;

  const auto a = forest.arena();
  out.n_trees = forest.tree_count();
  out.n_nodes = forest.node_count();

  const std::size_t nf = forest.n_features();
  FeatureDomain root = domain;
  if (domain.size() != nf) {
    diags.report(make_diag(
        Severity::kError, "contract-schema", context,
        "declared feature domain has " + std::to_string(domain.size()) +
            " features, the forest splits over " + std::to_string(nf)));
    root = FeatureDomain::unbounded(
        std::vector<std::string>(nf, std::string("?")));
  }
  for (std::size_t f = 0; f < root.size(); ++f) {
    if (root.lo[f] > root.hi[f]) {
      diags.report(make_diag(Severity::kError, "contract-schema", context,
                             "declared domain of feature \"" + root.names[f] +
                                 "\" is empty (lo > hi)"));
      return out;
    }
  }

  out.feature_split_reachable.assign(nf, 0);
  out.feature_split_anywhere.assign(nf, 0);
  out.tree_bounds.reserve(out.n_trees);

  // Per-tree forward pass over the DFS-preorder arena: a parent's index is
  // always smaller than its children's, so each node's interval box is
  // final before the node is visited. Boxes are stored per node of the
  // current tree (flat lo/hi matrices).
  std::vector<double> lo, hi;
  std::vector<std::uint8_t> reachable;
  double lo_sum = 0.0;
  double hi_sum = 0.0;
  for (std::size_t t = 0; t < out.n_trees; ++t) {
    const std::uint32_t o = a.tree_offset[t];
    const std::uint32_t e = a.tree_offset[t + 1];
    const std::size_t tn = e - o;
    lo.assign(tn * nf, 0.0);
    hi.assign(tn * nf, 0.0);
    reachable.assign(tn, 0);
    std::copy(root.lo.begin(), root.lo.end(), lo.begin());
    std::copy(root.hi.begin(), root.hi.end(), hi.begin());
    reachable[0] = 1;

    ml::FlatForest::ValueBounds tb{kInf, -kInf};
    for (std::uint32_t i = o; i < e; ++i) {
      const std::size_t k = i - o;
      const std::int32_t f = a.feature[i];
      if (f < 0) {
        if (reachable[k]) {
          tb.lo = std::min(tb.lo, a.value[i]);
          tb.hi = std::max(tb.hi, a.value[i]);
        } else {
          ++out.n_unreachable_nodes;
        }
        continue;
      }
      const auto fi = static_cast<std::size_t>(f);
      if (!reachable[k]) {
        ++out.n_unreachable_nodes;
        out.feature_split_anywhere[fi] = 1;
        // Children inherit unreachability; boxes stay untouched.
        continue;
      }
      out.feature_split_anywhere[fi] = 1;
      out.feature_split_reachable[fi] = 1;
      const double th = a.threshold[i];
      if (th < root.lo[fi] || th > root.hi[fi]) {
        ++out.n_domain_violations;
        diags.report(make_diag(
            Severity::kWarning, "forest-domain", context,
            "tree " + std::to_string(t) + " splits \"" + root.names[fi] +
                "\" at " + fmt(th) + ", outside the declared domain [" +
                fmt(root.lo[fi]) + ", " + fmt(root.hi[fi]) + "]",
            i));
      }
      const std::size_t lk = a.left[i] - o;
      const std::size_t rk = a.right[i] - o;
      const double box_lo = lo[k * nf + fi];
      const double box_hi = hi[k * nf + fi];
      // Exact transfer function over doubles: x <= th routes left,
      // x >= nextafter(th) routes right.
      const bool left_reachable = box_lo <= th;
      const bool right_reachable = box_hi > th;
      if (left_reachable) {
        std::copy_n(lo.begin() + static_cast<std::ptrdiff_t>(k * nf), nf,
                    lo.begin() + static_cast<std::ptrdiff_t>(lk * nf));
        std::copy_n(hi.begin() + static_cast<std::ptrdiff_t>(k * nf), nf,
                    hi.begin() + static_cast<std::ptrdiff_t>(lk * nf));
        hi[lk * nf + fi] = std::min(box_hi, th);
        reachable[lk] = 1;
      } else {
        diags.report(make_diag(
            Severity::kWarning, "forest-unreachable", context,
            "tree " + std::to_string(t) + ": left child of node " +
                std::to_string(i) + " is unreachable — \"" + root.names[fi] +
                "\" <= " + fmt(th) + " cannot hold inside [" + fmt(box_lo) +
                ", " + fmt(box_hi) + "]",
            i));
      }
      if (right_reachable) {
        std::copy_n(lo.begin() + static_cast<std::ptrdiff_t>(k * nf), nf,
                    lo.begin() + static_cast<std::ptrdiff_t>(rk * nf));
        std::copy_n(hi.begin() + static_cast<std::ptrdiff_t>(k * nf), nf,
                    hi.begin() + static_cast<std::ptrdiff_t>(rk * nf));
        lo[rk * nf + fi] =
            std::max(box_lo, std::nextafter(th, kInf));
        reachable[rk] = 1;
      } else {
        diags.report(make_diag(
            Severity::kWarning, "forest-unreachable", context,
            "tree " + std::to_string(t) + ": right child of node " +
                std::to_string(i) + " is unreachable — \"" + root.names[fi] +
                "\" > " + fmt(th) + " cannot hold inside [" + fmt(box_lo) +
                ", " + fmt(box_hi) + "]",
            i));
      }
    }
    // The root is always reachable (the declared domain is non-empty), so
    // every tree keeps at least one reachable leaf.
    out.tree_bounds.push_back(tb);
    lo_sum += tb.lo;
    hi_sum += tb.hi;
  }
  out.bounds = {lo_sum / static_cast<double>(out.n_trees),
                hi_sum / static_cast<double>(out.n_trees)};

  // Dead features: part of the schema, never consulted on a reachable path.
  for (std::size_t f = 0; f < nf; ++f) {
    if (out.feature_split_reachable[f]) continue;
    ++out.n_dead_features;
    if (out.feature_split_anywhere[f]) {
      diags.report(make_diag(
          Severity::kWarning, "forest-dead-feature", context,
          "feature \"" + root.names[f] +
              "\" is split on only along unreachable paths — every one of "
              "its splits is dead code"));
    }
  }
  if (out.n_dead_features > 0) {
    std::string examples;
    std::size_t listed = 0;
    for (std::size_t f = 0; f < nf && listed < 4; ++f) {
      if (out.feature_split_reachable[f]) continue;
      examples += (listed == 0 ? "" : ", ") + root.names[f];
      ++listed;
    }
    diags.report(make_diag(
        Severity::kInfo, "forest-dead-feature", context,
        std::to_string(out.n_dead_features) + " of " + std::to_string(nf) +
            " schema features never split on a reachable path (" + examples +
            (out.n_dead_features > listed ? ", ..." : "") +
            "); the model is insensitive to them"));
  }
  return out;
}

void check_trained_model(const core::NapelModel& model,
                         const FeatureDomain& domain,
                         std::string_view context, DiagnosticEngine& diags) {
  struct Side {
    const char* tag;
    const ml::FlatForest* forest;
    ml::FlatForest::ValueBounds stored;
  };
  const Side sides[] = {
      {"ipc", &model.ipc_flat(), model.ipc_bounds()},
      {"power", &model.energy_flat(), model.power_bounds()},
  };
  for (const Side& s : sides) {
    const std::string ctx = std::string(context) + "/" + s.tag;
    const ForestAnalysis analysis =
        analyze_forest(*s.forest, domain, ctx, diags);
    if (!analysis.structure_ok) continue;

    // forest-bounds: the serve-time certificate must (1) be finite and
    // ordered, (2) equal the bounds recomputed from the arena it claims to
    // describe, (3) contain the tighter reachable-leaf bounds the abstract
    // interpretation derived.
    if (!std::isfinite(s.stored.lo) || !std::isfinite(s.stored.hi) ||
        s.stored.lo > s.stored.hi) {
      diags.report(make_diag(Severity::kError, "forest-bounds", ctx,
                             "certified bounds are non-finite or inverted ["
                             + fmt(s.stored.lo) + ", " + fmt(s.stored.hi) +
                             "]"));
      continue;
    }
    const auto recomputed = s.forest->value_bounds();
    if (recomputed.lo != s.stored.lo || recomputed.hi != s.stored.hi) {
      diags.report(make_diag(
          Severity::kError, "forest-bounds", ctx,
          "certified bounds [" + fmt(s.stored.lo) + ", " + fmt(s.stored.hi) +
              "] disagree with the arena's recomputed bounds [" +
              fmt(recomputed.lo) + ", " + fmt(recomputed.hi) + "]"));
      continue;
    }
    if (analysis.bounds.lo < s.stored.lo || analysis.bounds.hi > s.stored.hi) {
      diags.report(make_diag(
          Severity::kError, "forest-bounds", ctx,
          "reachable-leaf bounds [" + fmt(analysis.bounds.lo) + ", " +
              fmt(analysis.bounds.hi) +
              "] escape the certified serve-time bounds [" +
              fmt(s.stored.lo) + ", " + fmt(s.stored.hi) + "]"));
      continue;
    }
    diags.report(make_diag(
        Severity::kInfo, "forest-bounds", ctx,
        std::string("certified ") + s.tag + " prediction bounds [" +
            fmt(s.stored.lo) + ", " + fmt(s.stored.hi) +
            "], reachable-leaf bounds [" + fmt(analysis.bounds.lo) + ", " +
            fmt(analysis.bounds.hi) + "] over " +
            std::to_string(analysis.n_trees) + " trees / " +
            std::to_string(analysis.n_nodes) + " nodes"));
  }
}

namespace {

/// Shared loader for the lint and reload paths: loads `path`, attributing
/// every load failure mode to its dedicated rule id. Returns nullptr when
/// the model could not be loaded (a diagnostic was reported).
std::unique_ptr<core::NapelModel> load_checked_model(const std::string& path,
                                                     DiagnosticEngine& diags) {
  std::ifstream f(path);
  if (!f.good()) {
    diags.report(make_diag(Severity::kError, "model-format", path,
                           "cannot open model file"));
    return nullptr;
  }
  if (f.peek() == std::char_traits<char>::eof()) {
    diags.report(make_diag(Severity::kError, "artifact-empty", path,
                           "model file is empty"));
    return nullptr;
  }
  try {
    return std::make_unique<core::NapelModel>(core::load_model(f));
  } catch (const core::ModelSchemaError& e) {
    diags.report(make_diag(Severity::kError, "contract-schema", path,
                           std::string("schema contract violated: ") +
                               e.what()));
  } catch (const core::ModelBoundsError& e) {
    diags.report(make_diag(Severity::kError, "forest-bounds", path,
                           std::string("bounds certificate violated: ") +
                               e.what()));
  } catch (const ml::TreeTopologyError& e) {
    diags.report(make_diag(Severity::kError, "model-topology", path,
                           std::string("corrupt tree structure: ") +
                               e.what()));
  } catch (const std::exception& e) {
    diags.report(make_diag(
        Severity::kError, f.eof() ? "model-truncated" : "model-format", path,
        std::string(f.eof() ? "model file is truncated: " :
                              "model does not load: ") + e.what()));
  }
  return nullptr;
}

}  // namespace

void check_forest_model_file(const std::string& path,
                             const workloads::DoeSpace* space,
                             DiagnosticEngine& diags) {
  const std::unique_ptr<core::NapelModel> model =
      load_checked_model(path, diags);
  if (model == nullptr) return;
  check_trained_model(*model, napel_feature_domain(space), path, diags);
}

Result<std::unique_ptr<core::NapelModel>> validate_reload_candidate(
    const std::string& path, const workloads::DoeSpace* space) {
  DiagnosticEngine diags;
  std::unique_ptr<core::NapelModel> model = load_checked_model(path, diags);
  if (model != nullptr)
    check_trained_model(*model, napel_feature_domain(space), path, diags);
  if (!diags.ok()) {
    // The structured rejection carries the first error-severity finding
    // under its stable rule id, so a reload client can tell a schema
    // mismatch from a bounds drift without parsing prose.
    std::string msg = "validation failed";
    for (const Diagnostic& d : diags.diagnostics()) {
      if (d.severity != Severity::kError) continue;
      msg = "[" + d.rule + "] " + d.message;
      break;
    }
    return PipelineError{.kind = ErrorKind::kModelReloadRejected,
                         .context = path,
                         .message = std::move(msg)};
  }
  return model;
}

void check_feature_matrix_contract(const std::string& csv_path,
                                   const FeatureDomain& domain,
                                   DiagnosticEngine& diags) {
  std::ifstream f(csv_path);
  if (!f.good()) {
    diags.report(make_diag(Severity::kError, "csv-format", csv_path,
                           "cannot open CSV file"));
    return;
  }
  std::string line;
  if (!std::getline(f, line) || line.empty()) {
    diags.report(make_diag(Severity::kError, "artifact-empty", csv_path,
                           "feature matrix is empty"));
    return;
  }
  const std::vector<std::string> header = split_csv_line(line);
  if (header.size() < domain.size()) {
    diags.report(make_diag(
        Severity::kError, "contract-schema", csv_path,
        "feature matrix has " + std::to_string(header.size()) +
            " columns, fewer than the " + std::to_string(domain.size()) +
            "-feature schema"));
    return;
  }
  const std::size_t base = header.size() - domain.size();
  for (std::size_t i = 0; i < domain.size(); ++i) {
    if (header[base + i] != domain.names[i]) {
      diags.report(make_diag(
          Severity::kError, "contract-schema", csv_path,
          "feature column " + std::to_string(base + i) + " is \"" +
              header[base + i] + "\", schema expects \"" + domain.names[i] +
              "\" — count, order and names must agree"));
      return;
    }
  }

  std::int64_t row = 0;
  while (std::getline(f, line)) {
    ++row;
    if (line.empty()) continue;
    const std::vector<std::string> cells = split_csv_line(line);
    if (cells.size() != header.size()) continue;  // csv-format territory
    for (std::size_t i = 0; i < domain.size(); ++i) {
      char* end = nullptr;
      const std::string& cell = cells[base + i];
      const double v = std::strtod(cell.c_str(), &end);
      if (cell.empty() || end != cell.c_str() + cell.size()) continue;
      if (v < domain.lo[i] || v > domain.hi[i])
        diags.report(make_diag(
            Severity::kWarning, "contract-schema", csv_path,
            "row feature \"" + domain.names[i] + "\" = " + fmt(v) +
                " lies outside the declared domain [" + fmt(domain.lo[i]) +
                ", " + fmt(domain.hi[i]) + "]",
            row));
    }
  }
}

}  // namespace napel::verify
