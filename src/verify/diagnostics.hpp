// Diagnostic engine for the static/dynamic analysis framework.
//
// Every analysis (stream rules in VerifyingSink, artifact validators in
// artifact_checks) reports findings as Diagnostic records identified by a
// stable rule id. The engine owns severity accounting, per-rule
// enable/disable and retention limits, and renders collected findings as
// human-readable text or machine-readable JSON (`napel lint --json`).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace napel::verify {

enum class Severity : std::uint8_t { kError, kWarning, kInfo };

std::string_view severity_name(Severity s);

/// One finding. `context` names the analyzed object (kernel name, file
/// path, "app/scale" pair); `index` is the 0-based dynamic instruction
/// index within a kernel stream, or -1 when the finding has no stream
/// position (artifact checks, bracket-level findings).
struct Diagnostic {
  std::string rule;
  Severity severity = Severity::kError;
  std::string context;
  std::int64_t index = -1;
  std::string message;
};

class DiagnosticEngine {
 public:
  struct Options {
    /// Diagnostics retained per rule id; further findings still count in
    /// rule_count() but are dropped from the report. 0 = unlimited.
    std::size_t max_per_rule = 25;
  };

  DiagnosticEngine() = default;
  explicit DiagnosticEngine(Options opts) : opts_(opts) {}

  /// Per-rule knob: disabled rules are counted in rule_count() but do not
  /// contribute diagnostics or severity totals.
  void set_rule_enabled(std::string_view rule, bool enabled);
  bool rule_enabled(std::string_view rule) const;

  void report(Diagnostic d);

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  std::size_t error_count() const { return n_by_severity_[0]; }
  std::size_t warning_count() const { return n_by_severity_[1]; }
  std::size_t info_count() const { return n_by_severity_[2]; }
  /// Total firings of `rule`, including disabled and over-limit ones.
  std::uint64_t rule_count(std::string_view rule) const;
  /// Rule id -> total firings, for summary tables.
  const std::map<std::string, std::uint64_t, std::less<>>& rule_counts()
      const {
    return fired_;
  }

  /// True when no error-severity diagnostic was recorded.
  bool ok() const { return error_count() == 0; }

  /// "context[@index]: severity [rule] message" per line plus a summary.
  void print_text(std::ostream& os) const;
  /// {"diagnostics":[...],"summary":{...}} — stable key order.
  void print_json(std::ostream& os) const;

  void clear();

 private:
  Options opts_;
  std::vector<Diagnostic> diags_;
  std::map<std::string, std::uint64_t, std::less<>> fired_;
  std::map<std::string, std::uint64_t, std::less<>> retained_;
  std::map<std::string, bool, std::less<>> enabled_;
  std::size_t n_by_severity_[3] = {0, 0, 0};
};

}  // namespace napel::verify
