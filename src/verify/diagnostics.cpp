#include "verify/diagnostics.hpp"

#include <ostream>

namespace napel::verify {

namespace {

std::size_t severity_slot(Severity s) { return static_cast<std::size_t>(s); }

void json_escape(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char hex[] = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string_view severity_name(Severity s) {
  switch (s) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kInfo: return "info";
  }
  return "invalid";
}

void DiagnosticEngine::set_rule_enabled(std::string_view rule, bool enabled) {
  enabled_[std::string(rule)] = enabled;
}

bool DiagnosticEngine::rule_enabled(std::string_view rule) const {
  const auto it = enabled_.find(rule);
  return it == enabled_.end() || it->second;
}

void DiagnosticEngine::report(Diagnostic d) {
  auto& fired = fired_[d.rule];
  ++fired;
  if (!rule_enabled(d.rule)) return;
  ++n_by_severity_[severity_slot(d.severity)];
  auto& retained = retained_[d.rule];
  if (opts_.max_per_rule != 0 && retained >= opts_.max_per_rule) return;
  ++retained;
  diags_.push_back(std::move(d));
}

std::uint64_t DiagnosticEngine::rule_count(std::string_view rule) const {
  const auto it = fired_.find(rule);
  return it == fired_.end() ? 0 : it->second;
}

void DiagnosticEngine::print_text(std::ostream& os) const {
  for (const Diagnostic& d : diags_) {
    os << d.context;
    if (d.index >= 0) os << '@' << d.index;
    os << ": " << severity_name(d.severity) << " [" << d.rule << "] "
       << d.message << '\n';
  }
  const std::size_t shown = diags_.size();
  const std::size_t total = error_count() + warning_count() + info_count();
  if (total > shown)
    os << "(" << (total - shown) << " further diagnostics suppressed by the "
       << "per-rule limit)\n";
  os << error_count() << " error(s), " << warning_count() << " warning(s), "
     << info_count() << " info\n";
}

void DiagnosticEngine::print_json(std::ostream& os) const {
  os << "{\"diagnostics\":[";
  bool first = true;
  for (const Diagnostic& d : diags_) {
    if (!first) os << ',';
    first = false;
    os << "{\"rule\":";
    json_escape(os, d.rule);
    os << ",\"severity\":";
    json_escape(os, severity_name(d.severity));
    os << ",\"context\":";
    json_escape(os, d.context);
    os << ",\"index\":" << d.index << ",\"message\":";
    json_escape(os, d.message);
    os << '}';
  }
  os << "],\"rule_counts\":{";
  first = true;
  for (const auto& [rule, n] : fired_) {
    if (!first) os << ',';
    first = false;
    json_escape(os, rule);
    os << ':' << n;
  }
  os << "},\"summary\":{\"errors\":" << error_count()
     << ",\"warnings\":" << warning_count() << ",\"infos\":" << info_count()
     << ",\"ok\":" << (ok() ? "true" : "false") << "}}\n";
}

void DiagnosticEngine::clear() {
  diags_.clear();
  fired_.clear();
  retained_.clear();
  n_by_severity_[0] = n_by_severity_[1] = n_by_severity_[2] = 0;
}

}  // namespace napel::verify
