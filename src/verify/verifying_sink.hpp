// VerifyingSink: online rule checking over the virtual-ISA event stream.
//
// Wraps any TraceSink (or none) and validates every event against the ISA
// contract documented in trace/isa.hpp before forwarding it. All rules run
// in O(1)–O(live allocations) memory, so arbitrarily long streams verify
// without buffering: because the tracer allocates SSA registers
// monotonically, def-before-use and single-assignment reduce to comparisons
// against the running maximum defined register.
//
// Stream rule catalog (ids are stable; see DESIGN.md "Static analysis &
// verification"):
//   bracket                 instr/end outside a begin_kernel bracket, or
//                           begin_kernel while a bracket is open      (error)
//   kernel-decl             begin_kernel with 0 threads or empty name (error)
//   empty-kernel            bracket closed with zero instructions     (warn)
//   thread-id               event thread id >= declared n_threads     (error)
//   ssa-def-before-use      source register never defined             (error)
//   ssa-single-assignment   destination register reused               (error)
//   reg-monotonic           destination skips register ids            (warn)
//   operand-arity           per-opcode dest/source legality (loads and
//                           arithmetic must define; stores/branches must
//                           not; branches take a single source)       (error)
//   mem-null-addr           load/store with a null address            (error)
//   mem-align               access size not a power of two in [1,64],
//                           or address misaligned for the size        (error)
//   mem-footprint           access outside every allocated range      (error)
//   non-mem-operands        non-memory op carrying addr/size payload  (error)
//
// Out-of-bracket events are reported but NOT forwarded to the wrapped sink
// (the utility sinks treat them as hard contract violations and throw).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/sink.hpp"
#include "verify/diagnostics.hpp"

namespace napel::verify {

class VerifyingSink final : public trace::TraceSink {
 public:
  /// Diagnostics go to `diags`; events are forwarded to `inner` when given.
  /// Both must outlive the sink.
  explicit VerifyingSink(DiagnosticEngine& diags,
                         trace::TraceSink* inner = nullptr)
      : diags_(&diags), inner_(inner) {}

  void on_alloc(std::uint64_t base, std::uint64_t bytes) override;
  void begin_kernel(std::string_view name, unsigned n_threads) override;
  void on_instr(const trace::InstrEvent& ev) override;
  /// Batched verification. Events that must not reach the wrapped sink
  /// (out-of-bracket, invalid opcode) split the batch: the contiguous spans
  /// of forwardable events around them are passed through as sub-batches,
  /// so the inner sink observes exactly the same stream as under per-event
  /// delivery.
  void on_instr_batch(const trace::InstrEvent* evs, std::size_t n) override;
  void end_kernel() override;

  std::uint64_t events_seen() const { return events_seen_; }

 private:
  struct Range {
    std::uint64_t base = 0;
    std::uint64_t end = 0;  // one past the last allocated byte
  };

  void diag(Severity severity, std::string rule, std::string message,
            bool at_instr = true);
  bool in_footprint(std::uint64_t addr, std::uint64_t size) const;
  void check_memory_event(const trace::InstrEvent& ev);
  void check_ssa(const trace::InstrEvent& ev, bool defines);
  /// Runs every rule on one event; returns whether it may be forwarded.
  bool verify_instr(const trace::InstrEvent& ev);

  DiagnosticEngine* diags_;
  trace::TraceSink* inner_;
  std::vector<Range> footprint_;  // sorted by base, non-overlapping
  std::string kernel_;
  std::uint64_t events_seen_ = 0;
  std::int64_t instr_index_ = -1;   // within the current bracket
  trace::Reg max_def_ = trace::kNoReg;  // registers 1..max_def_ are defined
  unsigned n_threads_ = 0;
  bool in_kernel_ = false;
};

}  // namespace napel::verify
