// Static forest analyzer: abstract interpretation over compiled models.
//
// The FlatForest arena is the serving hot path for DSE, LOAO and tuning,
// and nothing at serve time re-checks that a compiled (or loaded) forest is
// well-formed, that its splits are reachable, or that its outputs stay
// inside the range the training data supports. This analyzer proves those
// properties offline, before a model is served, in the spirit of
// platform-independent static software analysis for NMC (PISA,
// arXiv:1906.10037) applied to our own model artifacts.
//
// The abstract domain is a per-feature interval box propagated from the
// root of each tree: the root starts at the declared feature domain, a
// split on feature f at threshold t refines the box to x_f <= t on the
// left edge and x_f > t (nextafter(t) for the double-valued features the
// forest actually sees — the transfer function is exact, not an
// approximation) on the right edge. An edge whose refined box is empty is
// unreachable; reachable leaves accumulate the certified per-tree and
// ensemble prediction bounds.
//
// Rule catalog (all reported through DiagnosticEngine):
//   forest-structure     arena violates the structural contract
//                        predict_batch relies on (links, leaf encoding,
//                        offsets, finiteness, lockstep depths)    (error)
//   forest-unreachable   an edge's refined interval box is empty — the
//                        subtree below it can never be taken      (warn)
//   forest-dead-feature  schema features never split on any reachable
//                        path (info summary), or split *only* on
//                        unreachable paths                 (warn per feat)
//   forest-domain        a reachable split threshold lies outside the
//                        feature's declared domain                (warn)
//   forest-bounds        stored/derived prediction bounds are non-finite,
//                        inverted, or disagree with the forests   (error)
//   contract-schema      model, DoE space and feature-matrix schema
//                        disagree on feature count, order or range
//                                                      (error; range warn)
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "ml/flat_forest.hpp"
#include "verify/diagnostics.hpp"
#include "workloads/params.hpp"

namespace napel::core {
class NapelModel;
}

namespace napel::verify {

/// Declared per-feature closed domain [lo, hi] in schema order; ±inf marks
/// an unconstrained side. The abstract interpretation starts every tree's
/// root box here.
struct FeatureDomain {
  std::vector<std::string> names;
  std::vector<double> lo;
  std::vector<double> hi;

  std::size_t size() const { return names.size(); }
  static FeatureDomain unbounded(std::vector<std::string> names);
};

/// The declared domain of this build's model feature schema:
///   * fraction-valued features (instruction mix, miss/stride fractions,
///     access-fraction interactions) are bounded to [0, 1];
///   * architecture features take sim::arch_feature_ranges() — the design
///     pool every training row's architecture is drawn from;
///   * with a DoE `space`, the profile thread count is bounded by the
///     space's "threads" CCD levels (split thresholds come from training
///     rows, which only ever see those levels);
///   * everything else (sizes, latencies, analytic interactions) is
///     unconstrained.
FeatureDomain napel_feature_domain(const workloads::DoeSpace* space = nullptr);

/// What one forest's abstract interpretation concluded.
struct ForestAnalysis {
  bool structure_ok = false;
  std::size_t n_trees = 0;
  std::size_t n_nodes = 0;
  /// Nodes inside subtrees hanging off an empty-box edge.
  std::size_t n_unreachable_nodes = 0;
  /// Reachable split thresholds outside the declared feature domain.
  std::size_t n_domain_violations = 0;
  /// Schema features never split on any reachable path of this forest.
  std::size_t n_dead_features = 0;
  std::vector<std::uint8_t> feature_split_reachable;  // per schema feature
  std::vector<std::uint8_t> feature_split_anywhere;
  /// Certified output range per tree over *reachable* leaves, and the
  /// ensemble mean range combined in tree order (see
  /// ml::FlatForest::value_bounds for the bit-exactness argument).
  std::vector<ml::FlatForest::ValueBounds> tree_bounds;
  ml::FlatForest::ValueBounds bounds{};
};

/// Abstract-interprets one compiled forest under `domain`, reporting
/// forest-structure / forest-unreachable / forest-dead-feature /
/// forest-domain diagnostics against `context`. The interval propagation
/// only runs when the structural pass is clean (interpreting a corrupt
/// arena would chase broken links).
ForestAnalysis analyze_forest(const ml::FlatForest& forest,
                              const FeatureDomain& domain,
                              std::string_view context,
                              DiagnosticEngine& diags);

/// Full static pass over a trained model: both forests analyzed under
/// `domain`, plus the forest-bounds certificate check (the model's stored
/// serve-time bounds must equal the bounds recomputed from its arenas, and
/// must contain the reachable-leaf bounds) and the model-side
/// contract-schema check (forest feature count vs domain).
void check_trained_model(const core::NapelModel& model,
                         const FeatureDomain& domain,
                         std::string_view context, DiagnosticEngine& diags);

/// `napel lint --forest`: loads a saved model (dedicated diagnostics for
/// empty files, schema mismatches and bounds drift) and runs
/// check_trained_model under napel_feature_domain(space).
void check_forest_model_file(const std::string& path,
                             const workloads::DoeSpace* space,
                             DiagnosticEngine& diags);

/// Reload-validation hook for the serving runtime (src/serve): loads the
/// candidate model at `path` and runs the full static pass — load-failure
/// diagnostics plus check_trained_model under napel_feature_domain(space)
/// — entirely off the serving path. Returns the validated model, or a
/// kModelReloadRejected error whose message names the first error-severity
/// diagnostic ("[rule] message"). A candidate with warnings still loads;
/// only error-severity findings reject it.
Result<std::unique_ptr<core::NapelModel>> validate_reload_candidate(
    const std::string& path, const workloads::DoeSpace* space);

/// Cross-artifact contract between a training/feature CSV and the declared
/// schema: the table's trailing columns must be exactly the schema feature
/// names in order (contract-schema error otherwise), and every feature
/// cell must lie inside the declared domain (contract-schema warning per
/// offending cell).
void check_feature_matrix_contract(const std::string& csv_path,
                                   const FeatureDomain& domain,
                                   DiagnosticEngine& diags);

}  // namespace napel::verify
