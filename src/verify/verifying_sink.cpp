#include "verify/verifying_sink.hpp"

#include <algorithm>
#include <sstream>

namespace napel::verify {

namespace {

using trace::InstrEvent;
using trace::kNoReg;
using trace::OpType;
using trace::Reg;

bool size_is_power_of_two(std::uint64_t size) {
  return size != 0 && (size & (size - 1)) == 0;
}

std::string hex(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

}  // namespace

void VerifyingSink::diag(Severity severity, std::string rule,
                         std::string message, bool at_instr) {
  diags_->report(Diagnostic{
      .rule = std::move(rule),
      .severity = severity,
      .context = kernel_.empty() ? std::string("<no-kernel>") : kernel_,
      .index = at_instr ? instr_index_ : -1,
      .message = std::move(message),
  });
}

void VerifyingSink::on_alloc(std::uint64_t base, std::uint64_t bytes) {
  if (bytes == 0) return;
  const Range r{.base = base, .end = base + bytes};
  const auto it = std::lower_bound(
      footprint_.begin(), footprint_.end(), r,
      [](const Range& a, const Range& b) { return a.base < b.base; });
  footprint_.insert(it, r);
  if (inner_ != nullptr) inner_->on_alloc(base, bytes);
}

bool VerifyingSink::in_footprint(std::uint64_t addr,
                                 std::uint64_t size) const {
  // First range with base > addr; the candidate is its predecessor.
  auto it = std::upper_bound(
      footprint_.begin(), footprint_.end(), addr,
      [](std::uint64_t a, const Range& r) { return a < r.base; });
  if (it == footprint_.begin()) return false;
  --it;
  return addr + size <= it->end;
}

void VerifyingSink::begin_kernel(std::string_view name, unsigned n_threads) {
  if (in_kernel_) {
    diag(Severity::kError, "bracket",
         "begin_kernel(\"" + std::string(name) +
             "\") while kernel \"" + kernel_ + "\" is still open",
         /*at_instr=*/false);
    return;  // keep the open bracket; do not re-arm the inner sink
  }
  kernel_ = std::string(name);
  n_threads_ = n_threads;
  in_kernel_ = true;
  instr_index_ = 0;
  if (name.empty())
    diag(Severity::kError, "kernel-decl", "begin_kernel with an empty name",
         /*at_instr=*/false);
  if (n_threads == 0)
    diag(Severity::kError, "kernel-decl", "begin_kernel with zero threads",
         /*at_instr=*/false);
  if (inner_ != nullptr) inner_->begin_kernel(name, n_threads);
}

void VerifyingSink::check_ssa(const InstrEvent& ev, bool defines) {
  for (const Reg src : {ev.src1, ev.src2}) {
    if (src != kNoReg && src > max_def_)
      diag(Severity::kError, "ssa-def-before-use",
           "source register r" + std::to_string(src) +
               " used before any definition (max defined: r" +
               std::to_string(max_def_) + ")");
  }
  if (ev.dst == kNoReg) return;
  if (!defines) return;  // dest-legality already reported via operand-arity
  if (max_def_ == kNoReg) {
    // First definition seen becomes the baseline: a replayed trace may come
    // from a tracer whose register counter did not start at 1.
    max_def_ = ev.dst;
    return;
  }
  if (ev.dst <= max_def_) {
    diag(Severity::kError, "ssa-single-assignment",
         "destination register r" + std::to_string(ev.dst) +
             " re-assigned (SSA registers are defined exactly once)");
    return;  // do not move max_def_ backwards
  }
  if (ev.dst != max_def_ + 1)
    diag(Severity::kWarning, "reg-monotonic",
         "destination register r" + std::to_string(ev.dst) +
             " skips ids (expected r" + std::to_string(max_def_ + 1) + ")");
  max_def_ = ev.dst;
}

void VerifyingSink::check_memory_event(const InstrEvent& ev) {
  if (ev.addr == 0) {
    diag(Severity::kError, "mem-null-addr",
         std::string(op_name(ev.op)) + " with a null address");
    return;  // alignment/footprint against address 0 would be noise
  }
  const auto size = static_cast<std::uint64_t>(ev.size);
  if (!size_is_power_of_two(size) || size > 64) {
    diag(Severity::kError, "mem-align",
         std::string(op_name(ev.op)) + " access size " +
             std::to_string(size) + " is not a power of two in [1, 64]");
    return;
  }
  if (ev.addr % size != 0)
    diag(Severity::kError, "mem-align",
         std::string(op_name(ev.op)) + " address " + hex(ev.addr) +
             " is not " + std::to_string(size) + "-byte aligned");
  if (!footprint_.empty() && !in_footprint(ev.addr, size))
    diag(Severity::kError, "mem-footprint",
         std::string(op_name(ev.op)) + " of " + std::to_string(size) +
             " bytes at " + hex(ev.addr) +
             " falls outside every allocated range");
}

void VerifyingSink::on_instr(const InstrEvent& ev) {
  if (verify_instr(ev) && inner_ != nullptr) inner_->on_instr(ev);
}

void VerifyingSink::on_instr_batch(const InstrEvent* evs, std::size_t n) {
  // Verify every event; forward the contiguous runs of forwardable events
  // as sub-batches so the inner sink sees the per-event-equivalent stream.
  std::size_t span_begin = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!verify_instr(evs[i])) {
      if (inner_ != nullptr && i > span_begin)
        inner_->on_instr_batch(evs + span_begin, i - span_begin);
      span_begin = i + 1;
    }
  }
  if (inner_ != nullptr && n > span_begin)
    inner_->on_instr_batch(evs + span_begin, n - span_begin);
}

bool VerifyingSink::verify_instr(const InstrEvent& ev) {
  ++events_seen_;
  if (!in_kernel_) {
    diag(Severity::kError, "bracket",
         "instr event outside a begin_kernel/end_kernel bracket",
         /*at_instr=*/false);
    // The utility sinks treat this as a hard error; do not forward.
    return false;
  }

  if (ev.op >= OpType::kCount) {
    diag(Severity::kError, "operand-arity",
         "invalid opcode " +
             std::to_string(static_cast<unsigned>(ev.op)));
    ++instr_index_;
    return false;  // inner sinks index per-opcode tables; do not forward
  }

  if (ev.thread >= n_threads_ && n_threads_ > 0)
    diag(Severity::kError, "thread-id",
         "thread id " + std::to_string(ev.thread) +
             " >= declared n_threads " + std::to_string(n_threads_));

  // Per-opcode operand arity and destination legality.
  bool defines = false;
  switch (ev.op) {
    case OpType::kLoad:
      defines = true;
      if (ev.dst == kNoReg)
        diag(Severity::kError, "operand-arity",
             "load must define a destination register");
      if (ev.src2 != kNoReg)
        diag(Severity::kError, "operand-arity",
             "load takes at most one source (the address register)");
      break;
    case OpType::kStore:
      if (ev.dst != kNoReg)
        diag(Severity::kError, "operand-arity",
             "store must not define a register (dst must be kNoReg)");
      break;
    case OpType::kBranch:
      if (ev.dst != kNoReg)
        diag(Severity::kError, "operand-arity",
             "branch must not define a register (dst must be kNoReg)");
      if (ev.src2 != kNoReg)
        diag(Severity::kError, "operand-arity",
             "branch takes a single source (the condition register)");
      break;
    default:  // arithmetic
      defines = true;
      if (ev.dst == kNoReg)
        diag(Severity::kError, "operand-arity",
             std::string(op_name(ev.op)) +
                 " must define a destination register");
      break;
  }

  if (is_memory(ev.op)) {
    check_memory_event(ev);
  } else if (ev.addr != 0 || ev.size != 0) {
    diag(Severity::kError, "non-mem-operands",
         std::string(op_name(ev.op)) + " carries a memory payload (addr " +
             hex(ev.addr) + ", size " + std::to_string(ev.size) + ")");
  }

  check_ssa(ev, defines);

  ++instr_index_;
  return true;
}

void VerifyingSink::end_kernel() {
  if (!in_kernel_) {
    diag(Severity::kError, "bracket", "end_kernel without begin_kernel",
         /*at_instr=*/false);
    return;
  }
  if (instr_index_ == 0)
    diag(Severity::kWarning, "empty-kernel",
         "kernel bracket closed with zero instructions", /*at_instr=*/false);
  in_kernel_ = false;
  instr_index_ = -1;
  if (inner_ != nullptr) inner_->end_kernel();
}

}  // namespace napel::verify
