#include "verify/artifact_checks.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/journal.hpp"
#include "doe/doe.hpp"
#include "napel/model_io.hpp"
#include "napel/pipeline.hpp"
#include "trace/trace_file.hpp"
#include "verify/verifying_sink.hpp"

namespace napel::verify {

namespace {

Diagnostic make_diag(Severity severity, std::string rule,
                     std::string_view context, std::string message,
                     std::int64_t index = -1) {
  return Diagnostic{
      .rule = std::move(rule),
      .severity = severity,
      .context = std::string(context),
      .index = index,
      .message = std::move(message),
  };
}

/// True when a seekable stream (file or stringstream) holds no bytes at
/// all — the artifact-empty case every per-format validator screens first,
/// so "crashed producer" never masquerades as "bad header".
bool stream_is_empty(std::istream& is) {
  return is.peek() == std::char_traits<char>::eof();
}

}  // namespace

// --- CSV ------------------------------------------------------------------

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else if (c != '\r') {
      cell += c;
    }
  }
  cells.push_back(std::move(cell));
  return cells;
}

namespace {

/// True when the cell parses fully as a floating-point number.
bool parse_number(const std::string& cell, double& out) {
  if (cell.empty()) return false;
  char* end = nullptr;
  out = std::strtod(cell.c_str(), &end);
  return end == cell.c_str() + cell.size();
}

}  // namespace

// --- model ----------------------------------------------------------------

void check_model_stream(std::istream& is, std::string_view name,
                        DiagnosticEngine& diags) {
  if (stream_is_empty(is)) {
    diags.report(make_diag(Severity::kError, "artifact-empty", name,
                           "model file is empty"));
    return;
  }
  std::string tag;
  std::size_t n_features = 0;
  is >> tag >> n_features;
  if (!is.good() || (tag != "napel-model-v1" && tag != "napel-model-v2")) {
    diags.report(make_diag(
        Severity::kError, "model-format", name,
        "bad header: expected \"napel-model-v1|v2 <n_features>\", got \"" +
            tag + "\""));
    return;
  }
  const std::size_t expected = core::model_feature_names().size();
  if (n_features != expected) {
    // Feature count is the model <-> build half of the schema contract;
    // the v2 fingerprint (name order) is enforced by load_model below.
    diags.report(make_diag(
        Severity::kError, "contract-schema", name,
        "feature-schema mismatch: file has " + std::to_string(n_features) +
            " features, this build expects " + std::to_string(expected)));
    return;
  }

  // Rewind and let the real loader validate forest structure; its contract
  // checks (tags, node bounds, truncation) become diagnostics here.
  is.clear();
  is.seekg(0);
  core::NapelModel model;
  try {
    model = core::load_model(is);
  } catch (const core::ModelSchemaError& e) {
    diags.report(make_diag(Severity::kError, "contract-schema", name,
                           std::string("schema contract violated: ") +
                               e.what()));
    return;
  } catch (const core::ModelBoundsError& e) {
    diags.report(make_diag(Severity::kError, "forest-bounds", name,
                           std::string("bounds certificate violated: ") +
                               e.what()));
    return;
  } catch (const ml::TreeTopologyError& e) {
    // Node links that cycle or share subtrees would hang or corrupt
    // traversal; the loader rejects them and lint gets a dedicated rule.
    diags.report(make_diag(Severity::kError, "model-topology", name,
                           std::string("corrupt tree structure: ") + e.what()));
    return;
  } catch (const std::exception& e) {
    // EOF mid-load means the file physically ends before the model does —
    // a partial write/copy, not merely bad syntax.
    const bool truncated = is.eof();
    diags.report(make_diag(
        Severity::kError, truncated ? "model-truncated" : "model-format",
        name,
        std::string(truncated ? "model file is truncated: "
                              : "model does not load: ") + e.what()));
    return;
  }

  // Split-engine provenance: exact-mode forests persist as napel-forest-v1,
  // hist-mode ones as v2 with a mode token, and NapelModel trains both
  // forests through one Options — so a file whose forests disagree was
  // spliced together from two different training runs.
  const auto mode_name = [](ml::SplitMode m) {
    return m == ml::SplitMode::kHist ? "hist" : "exact";
  };
  const ml::SplitMode ipc_mode = model.ipc_forest().params().split_mode;
  const ml::SplitMode energy_mode = model.energy_forest().params().split_mode;
  if (ipc_mode != energy_mode)
    diags.report(make_diag(
        Severity::kWarning, "model-split-mode", name,
        std::string("forests trained by different split engines (ipc ") +
            mode_name(ipc_mode) + ", energy " + mode_name(energy_mode) +
            "): file was spliced from two training runs"));
  else
    diags.report(make_diag(
        Severity::kInfo, "model-split-mode", name,
        std::string("forests trained with the ") + mode_name(ipc_mode) +
            " split engine"));

  for (const auto* forest : {&model.ipc_forest(), &model.energy_forest()}) {
    const std::string which =
        forest == &model.ipc_forest() ? "ipc" : "energy";
    if (!std::isfinite(forest->oob_mre()) || forest->oob_mre() < 0.0)
      diags.report(make_diag(Severity::kError, "model-content", name,
                             which + " forest has an invalid out-of-bag MRE"));
    for (const double v : forest->feature_importance()) {
      if (!std::isfinite(v) || v < 0.0) {
        diags.report(make_diag(
            Severity::kError, "model-content", name,
            which + " forest has a non-finite or negative feature importance"));
        break;
      }
    }
  }
}

void check_model_file(const std::string& path, DiagnosticEngine& diags) {
  std::ifstream f(path);
  if (!f.good()) {
    diags.report(make_diag(Severity::kError, "model-format", path,
                           "cannot open model file"));
    return;
  }
  check_model_stream(f, path, diags);
}

// --- CSV ------------------------------------------------------------------

void check_csv_stream(std::istream& is, std::string_view name,
                      DiagnosticEngine& diags) {
  if (stream_is_empty(is)) {
    diags.report(
        make_diag(Severity::kError, "artifact-empty", name, "CSV is empty"));
    return;
  }
  // Slurp once: CsvWriter terminates every row with '\n', so a file whose
  // last byte is not a newline was cut off mid-row (partial write or copy).
  std::ostringstream slurped;
  slurped << is.rdbuf();
  const std::string content = slurped.str();
  if (content.back() != '\n')
    diags.report(make_diag(
        Severity::kError, "csv-truncated", name,
        "file does not end in a newline — the last row was cut short"));

  std::istringstream body(content);
  std::string line;
  std::getline(body, line);
  const auto header = split_csv_line(line);
  std::set<std::string> seen;
  for (std::size_t c = 0; c < header.size(); ++c) {
    if (header[c].empty())
      diags.report(make_diag(Severity::kWarning, "csv-format", name,
                             "column " + std::to_string(c) +
                                 " has an empty name",
                             0));
    else if (!seen.insert(header[c]).second)
      diags.report(make_diag(Severity::kWarning, "csv-format", name,
                             "duplicate column name \"" + header[c] + "\"",
                             0));
  }

  std::int64_t row = 0;
  while (std::getline(body, line)) {
    ++row;
    if (line.empty() && body.peek() == std::char_traits<char>::eof()) break;
    const auto cells = split_csv_line(line);
    if (cells.size() != header.size()) {
      diags.report(make_diag(Severity::kError, "csv-format", name,
                             "row has " + std::to_string(cells.size()) +
                                 " cells, header has " +
                                 std::to_string(header.size()),
                             row));
      continue;
    }
    for (std::size_t c = 0; c < cells.size(); ++c) {
      double v = 0.0;
      if (parse_number(cells[c], v) && !std::isfinite(v))
        diags.report(make_diag(Severity::kError, "csv-value", name,
                               "column \"" + header[c] +
                                   "\" holds a non-finite value \"" +
                                   cells[c] + "\"",
                               row));
    }
  }
}

void check_csv_file(const std::string& path, DiagnosticEngine& diags) {
  std::ifstream f(path);
  if (!f.good()) {
    diags.report(make_diag(Severity::kError, "csv-format", path,
                           "cannot open CSV file"));
    return;
  }
  check_csv_stream(f, path, diags);
}

// --- DoE ------------------------------------------------------------------

void check_doe_space(const workloads::DoeSpace& space,
                     std::string_view context, DiagnosticEngine& diags) {
  if (space.params.empty()) {
    diags.report(make_diag(Severity::kError, "doe-param", context,
                           "parameter space is empty"));
    return;
  }

  std::set<std::string> names;
  bool structurally_valid = true;
  for (const auto& p : space.params) {
    if (p.name.empty()) {
      diags.report(make_diag(Severity::kError, "doe-param", context,
                             "parameter with an empty name"));
      structurally_valid = false;
    } else if (!names.insert(p.name).second) {
      diags.report(make_diag(Severity::kError, "doe-param", context,
                             "duplicate parameter \"" + p.name + "\""));
      structurally_valid = false;
    }
    for (std::size_t l = 0; l < p.levels.size(); ++l) {
      if (p.levels[l] <= 0) {
        diags.report(make_diag(
            Severity::kError, "doe-param", context,
            "parameter \"" + p.name + "\" level " + std::to_string(l) +
                " is non-positive (" + std::to_string(p.levels[l]) + ")"));
        structurally_valid = false;
      }
      if (l > 0 && p.levels[l] < p.levels[l - 1]) {
        diags.report(make_diag(
            Severity::kError, "doe-param", context,
            "parameter \"" + p.name + "\" levels are not sorted ascending"));
        structurally_valid = false;
      } else if (l > 0 && p.levels[l] == p.levels[l - 1]) {
        diags.report(make_diag(
            Severity::kWarning, "doe-param", context,
            "parameter \"" + p.name + "\" has duplicate level " +
                std::to_string(p.levels[l]) +
                " (CCD factorial/axial points coincide)"));
      }
    }
    if (p.test <= 0) {
      diags.report(make_diag(Severity::kError, "doe-param", context,
                             "parameter \"" + p.name +
                                 "\" test input is non-positive"));
      structurally_valid = false;
    }
  }

  if (space.dimension() > 6)
    diags.report(make_diag(
        Severity::kWarning, "doe-ccd", context,
        "dimension " + std::to_string(space.dimension()) +
            " makes the 2^k factorial portion of the CCD very large"));

  if (!structurally_valid) return;  // CCD legality on broken spaces is noise

  try {
    const auto configs = doe::central_composite(space);
    const std::size_t expected = doe::ccd_size(space.dimension());
    if (configs.size() != expected)
      diags.report(make_diag(
          Severity::kError, "doe-ccd", context,
          "central composite design has " + std::to_string(configs.size()) +
              " points, the 2^k + 2k + (2k-1) rule expects " +
              std::to_string(expected)));
  } catch (const std::exception& e) {
    diags.report(make_diag(
        Severity::kError, "doe-ccd", context,
        std::string("central_composite() rejects the space: ") + e.what()));
  }
}

// --- Run journal ----------------------------------------------------------

void check_journal_file(const std::string& path, DiagnosticEngine& diags) {
  const Result<JournalContents> r = read_journal(path);
  if (!r.ok()) {
    diags.report(
        make_diag(Severity::kError, "journal-format", path,
                  r.error().to_string()));
    return;
  }
  const JournalContents& j = r.value();
  if (j.torn_tail)
    diags.report(make_diag(
        Severity::kWarning, "journal-torn-tail", path,
        "torn tail after " + std::to_string(j.records.size()) +
            " valid record(s) — crash debris, dropped on resume (" +
            j.torn_detail + ")",
        static_cast<std::int64_t>(j.records.size())));
}

// --- trace ----------------------------------------------------------------

std::uint64_t check_trace_file(const std::string& path,
                               DiagnosticEngine& diags) {
  {
    std::ifstream f(path, std::ios::binary);
    if (!f.good()) {
      diags.report(make_diag(Severity::kError, "trace-file", path,
                             "cannot open trace file"));
      return 0;
    }
    if (stream_is_empty(f)) {
      diags.report(make_diag(Severity::kError, "artifact-empty", path,
                             "trace file is empty"));
      return 0;
    }
  }
  VerifyingSink verifier(diags);
  try {
    trace::replay_trace(path, {&verifier});
  } catch (const trace::TruncatedTraceError& e) {
    diags.report(make_diag(Severity::kError, "trace-truncated", path,
                           std::string("trace file is truncated: ") +
                               e.what()));
  } catch (const std::exception& e) {
    diags.report(make_diag(Severity::kError, "trace-file", path,
                           std::string("trace does not replay: ") +
                               e.what()));
  }
  return verifier.events_seen();
}

}  // namespace napel::verify
