// Trace capture/replay dispatch throughput over the 15 registered kernels.
//
// Four measured paths per kernel, all driving one paper-default simulator:
//   live_per_event — kernel execution with per-event virtual dispatch (the
//                    pre-batching pipeline: one on_instr call per event);
//   live_batched   — kernel execution with the Tracer's batched dispatch;
//   replay_per_event — replay of a captured TraceBuffer, one on_instr per
//                    event;
//   replay_batched — TraceBuffer replay via the fast path (the collection
//                    hot path): the simulator is a TraceColumnConsumer, so
//                    it ingests the encoded SoA columns directly with no
//                    InstrEvent materialization.
// Each measurement includes the simulator's stream compilation but not the
// timing-model run, so the numbers isolate dispatch + ingestion cost.
//
// Emits BENCH_trace_replay.json (machine-readable perf trajectory).
// --smoke runs a reduced configuration for CI.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "trace/trace_buffer.hpp"
#include "trace/tracer.hpp"

using namespace napel;

namespace {

/// Reproduces the pre-batching dispatch cost: every event is forwarded to
/// the wrapped sink through an individual virtual on_instr call, defeating
/// the batch path the way the old Tracer fan-out loop did.
class PerEventShim final : public trace::TraceSink {
 public:
  explicit PerEventShim(trace::TraceSink& inner) : inner_(inner) {}

  void on_alloc(std::uint64_t base, std::uint64_t bytes) override {
    inner_.on_alloc(base, bytes);
  }
  void begin_kernel(std::string_view name, unsigned n_threads) override {
    inner_.begin_kernel(name, n_threads);
  }
  void on_instr(const trace::InstrEvent& ev) override { inner_.on_instr(ev); }
  void on_instr_batch(const trace::InstrEvent* evs, std::size_t n) override {
    for (std::size_t i = 0; i < n; ++i) inner_.on_instr(evs[i]);
  }
  void end_kernel() override { inner_.end_kernel(); }

 private:
  trace::TraceSink& inner_;
};

struct KernelResult {
  std::string app;
  std::uint64_t events = 0;
  double live_per_event_s = 0.0;
  double live_batched_s = 0.0;
  double replay_per_event_s = 0.0;
  double replay_batched_s = 0.0;
};

double events_per_second(std::uint64_t events, double seconds) {
  return seconds > 0.0 ? static_cast<double>(events) / seconds : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  const workloads::Scale scale =
      smoke ? workloads::Scale::kTiny : workloads::Scale::kBench;
  const int reps = smoke ? 1 : 3;

  std::printf("=== trace capture/replay dispatch throughput (%s) ===\n",
              smoke ? "smoke: tiny scale" : "bench scale, best of 3");

  std::vector<const workloads::Workload*> all;
  for (const auto* w : workloads::all_workloads()) all.push_back(w);
  for (const auto* w : workloads::extended_workloads()) all.push_back(w);

  std::vector<KernelResult> results;
  for (const auto* w : all) {
    const auto params =
        workloads::WorkloadParams::central(w->doe_space(scale));
    KernelResult r;
    r.app = std::string(w->name());

    // Capture once (untimed); replays below reuse this buffer.
    trace::TraceBuffer buf;
    {
      trace::Tracer t;
      t.attach(buf);
      w->run(t, params, 2019);
    }
    r.events = buf.event_count();

    auto best = [&](auto&& body) {
      double best_s = 0.0;
      for (int rep = 0; rep < reps; ++rep) {
        bench::Timer timer;
        body();
        const double s = timer.seconds();
        if (rep == 0 || s < best_s) best_s = s;
      }
      return best_s;
    };

    r.live_per_event_s = best([&] {
      sim::NmcSimulator s(sim::ArchConfig::paper_default());
      PerEventShim shim(s);
      trace::Tracer t;
      t.attach(shim);
      w->run(t, params, 2019);
    });
    r.live_batched_s = best([&] {
      sim::NmcSimulator s(sim::ArchConfig::paper_default());
      trace::Tracer t;
      t.attach(s);
      w->run(t, params, 2019);
    });
    r.replay_per_event_s = best([&] {
      sim::NmcSimulator s(sim::ArchConfig::paper_default());
      buf.replay_per_event(s);
    });
    r.replay_batched_s = best([&] {
      sim::NmcSimulator s(sim::ArchConfig::paper_default());
      buf.replay(s);
    });
    results.push_back(r);

    std::printf(
        "%-12s %9llu events | live/ev %6.1f M/s  live/batch %6.1f M/s  "
        "replay/ev %6.1f M/s  replay/batch %6.1f M/s  (batch replay %4.1fx "
        "vs live/ev)\n",
        r.app.c_str(), static_cast<unsigned long long>(r.events),
        events_per_second(r.events, r.live_per_event_s) / 1e6,
        events_per_second(r.events, r.live_batched_s) / 1e6,
        events_per_second(r.events, r.replay_per_event_s) / 1e6,
        events_per_second(r.events, r.replay_batched_s) / 1e6,
        r.live_per_event_s > 0.0 && r.replay_batched_s > 0.0
            ? r.live_per_event_s / r.replay_batched_s
            : 0.0);
  }

  // Aggregate over all kernels (summed events / summed seconds).
  std::uint64_t tot_events = 0;
  double tot_live_pe = 0, tot_live_b = 0, tot_rep_pe = 0, tot_rep_b = 0;
  for (const auto& r : results) {
    tot_events += r.events;
    tot_live_pe += r.live_per_event_s;
    tot_live_b += r.live_batched_s;
    tot_rep_pe += r.replay_per_event_s;
    tot_rep_b += r.replay_batched_s;
  }
  const double speedup =
      tot_rep_b > 0.0 ? tot_live_pe / tot_rep_b : 0.0;
  std::printf(
      "\nTOTAL %llu events: batched replay %.1f M events/s vs live "
      "per-event %.1f M events/s -> %.1fx\n",
      static_cast<unsigned long long>(tot_events),
      events_per_second(tot_events, tot_rep_b) / 1e6,
      events_per_second(tot_events, tot_live_pe) / 1e6, speedup);

  // Machine-readable trajectory for future PRs.
  FILE* f = std::fopen("BENCH_trace_replay.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_trace_replay.json\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"trace_replay\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"kernels\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(
        f,
        "    {\"app\": \"%s\", \"events\": %llu, "
        "\"live_per_event_eps\": %.0f, \"live_batched_eps\": %.0f, "
        "\"replay_per_event_eps\": %.0f, \"replay_batched_eps\": %.0f}%s\n",
        r.app.c_str(), static_cast<unsigned long long>(r.events),
        events_per_second(r.events, r.live_per_event_s),
        events_per_second(r.events, r.live_batched_s),
        events_per_second(r.events, r.replay_per_event_s),
        events_per_second(r.events, r.replay_batched_s),
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(
      f,
      "  \"total\": {\"events\": %llu, \"replay_batched_eps\": %.0f, "
      "\"live_per_event_eps\": %.0f, "
      "\"batched_replay_vs_live_per_event\": %.3f}\n}\n",
      static_cast<unsigned long long>(tot_events),
      events_per_second(tot_events, tot_rep_b),
      events_per_second(tot_events, tot_live_pe), speedup);
  std::fclose(f);
  std::printf("wrote BENCH_trace_replay.json\n");

  // The collection pipeline relies on batched replay being decisively
  // faster than the old live per-event dispatch.
  if (!smoke && speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: batched replay only %.2fx live per-event dispatch "
                 "(expected >= 2x)\n",
                 speedup);
    return 1;
  }
  return 0;
}
