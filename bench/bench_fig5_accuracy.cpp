// Reproduces Figure 5: mean relative error of performance (a) and energy
// (b) predictions for previously-unseen applications, via
// leave-one-application-out cross-validation, comparing NAPEL's tuned
// random forest against the ANN of Ipek et al. and the linear decision
// tree of Guo et al.
//
// Shapes to check against the paper: NAPEL avg MRE ~8.5% (perf) / ~11.6%
// (energy); NAPEL more accurate than the ANN (paper: 1.7x / 1.4x) and much
// more accurate than the linear decision tree (paper: 3.2x / 3.5x); bfs,
// bp, kmeans are the hardest applications.
#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

using namespace napel;

int main() {
  bench::print_system_header(
      "Figure 5: LOAO prediction accuracy, NAPEL vs ANN vs linear decision tree");

  std::vector<core::TrainingRow> rows;
  bench::Timer collect_timer;
  bench::collect_all_apps(rows);
  std::printf("collected %zu training rows in %.1fs\n\n", rows.size(),
              collect_timer.seconds());

  core::LoaoOptions lo;
  lo.tune_rf = true;
  lo.grid.n_trees = {60};
  lo.grid.max_depth = {16, 24};
  lo.grid.mtry_fraction = {1.0 / 3.0};
  lo.grid.min_samples_leaf = {1, 2};
  lo.k_folds = 3;

  const std::vector<std::pair<core::ModelKind, std::string>> kinds = {
      {core::ModelKind::kNapelRf, "NAPEL"},
      {core::ModelKind::kAnn, "ANN"},
      {core::ModelKind::kLinearDecisionTree, "DecisionTree"},
  };

  std::map<std::string, std::vector<core::LoaoAppResult>> results;
  for (const auto& [kind, label] : kinds) {
    bench::Timer t;
    results[label] = core::leave_one_app_out(rows, kind, lo);
    std::printf("%s LOAO done in %.1fs\n", label.c_str(), t.seconds());
  }
  std::printf("\n");

  for (const char* metric : {"performance", "energy"}) {
    const bool perf = std::string(metric) == "performance";
    std::printf("--- %s prediction MRE (%%) ---\n", metric);
    Table t({"app", "NAPEL", "ANN", "DecisionTree"});
    CsvWriter csv({"app", "napel", "ann", "dtree"});
    std::map<std::string, double> avg;
    const std::size_t n_apps = results["NAPEL"].size();
    for (std::size_t i = 0; i < n_apps; ++i) {
      std::vector<std::string> cells = {results["NAPEL"][i].app};
      std::vector<std::string> csv_cells = {results["NAPEL"][i].app};
      for (const auto& [kind, label] : kinds) {
        const auto& r = results[label][i];
        const double mre = perf ? r.perf_mre : r.energy_mre;
        avg[label] += mre / static_cast<double>(n_apps);
        cells.push_back(Table::fmt(100.0 * mre, 1));
        csv_cells.push_back(Table::fmt(mre, 4));
      }
      t.add_row(cells);
      csv.add_row(csv_cells);
    }
    t.add_row({"AVG", Table::fmt(100.0 * avg["NAPEL"], 1),
               Table::fmt(100.0 * avg["ANN"], 1),
               Table::fmt(100.0 * avg["DecisionTree"], 1)});
    t.print(std::cout);
    csv.write_file(perf ? "fig5_perf_mre.csv" : "fig5_energy_mre.csv");

    std::printf(
        "NAPEL vs ANN: %.1fx more accurate; NAPEL vs decision tree: %.1fx "
        "more accurate\n",
        avg["ANN"] / avg["NAPEL"], avg["DecisionTree"] / avg["NAPEL"]);
    std::printf(
        "paper reference: NAPEL avg %s; vs ANN %s; vs decision tree %s\n\n",
        perf ? "8.5%" : "11.6%", perf ? "1.7x" : "1.4x",
        perf ? "3.2x" : "3.5x");
  }
  return 0;
}
