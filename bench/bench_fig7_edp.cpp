// Reproduces Figure 7: estimated energy-delay-product (EDP) reduction of
// offloading each workload's test input to the NMC system versus executing
// it on the host CPU. For each application two bars: "Actual" (EDP from the
// cycle-level simulator) and "NAPEL" (EDP from the trained model), both
// normalized to the host EDP.
//
// Shapes to check against the paper: (1) NAPEL classifies the same
// workloads NMC-suitable as the simulator does; (2) memory-intensive
// irregular workloads (bfs, bp, cholesky, gramschmidt, kmeans) benefit,
// dense cache-friendly kernels (gemver, gesummv, lu, mvt, syrk, trmm) do
// not; (3) EDP-prediction MRE in the tens of percent (paper: 1.3-26.3%,
// avg 14.1%).
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

using namespace napel;

int main() {
  bench::print_system_header(
      "Figure 7: EDP reduction of NMC offload vs host, NAPEL vs Actual");

  // Train on all applications; Figure 7 uses held-out *test inputs*, which
  // never appear in the DoE training configurations.
  std::vector<core::TrainingRow> rows;
  bench::collect_all_apps(rows);
  core::NapelModel model;
  model.train(rows, bench::bench_model_options(true));

  const hostmodel::HostModel host(hostmodel::HostConfig::bench_scaled());
  const auto arch = sim::ArchConfig::paper_default();

  Table t({"app", "EDP red. NAPEL", "EDP red. Actual", "rel.err %",
           "suitable NAPEL", "suitable Actual", "agree"});
  CsvWriter csv({"app", "edp_reduction_napel", "edp_reduction_actual"});
  std::vector<double> errors;
  std::size_t agreements = 0;
  std::size_t n = 0;

  core::SuitabilityOptions so;
  so.scale = workloads::Scale::kBench;
  for (const auto* w : workloads::all_workloads()) {
    const auto row = core::analyze_suitability(*w, model, host, arch, so);
    const bool agree = row.nmc_suitable_pred() == row.nmc_suitable_actual();
    agreements += agree;
    ++n;
    errors.push_back(row.edp_relative_error());
    t.add_row({row.app, Table::fmt(row.edp_reduction_pred(), 2),
               Table::fmt(row.edp_reduction_actual(), 2),
               Table::fmt(100.0 * row.edp_relative_error(), 1),
               row.nmc_suitable_pred() ? "yes" : "no",
               row.nmc_suitable_actual() ? "yes" : "no",
               agree ? "yes" : "NO"});
    csv.add_row({row.app, Table::fmt(row.edp_reduction_pred(), 4),
                 Table::fmt(row.edp_reduction_actual(), 4)});
  }
  t.print(std::cout);
  csv.write_file("fig7_edp.csv");

  std::printf(
      "\nsuitability agreement: %zu/%zu; EDP MRE: min %.1f%%  avg %.1f%%  "
      "max %.1f%%\n",
      agreements, n, 100.0 * min_of(errors), 100.0 * mean(errors),
      100.0 * max_of(errors));
  std::printf(
      "paper reference: full agreement; EDP MRE 1.3%%-26.3%%, avg 14.1%%\n");
  return 0;
}
