// Forest inference throughput: pointer-chasing RandomForest vs the compiled
// FlatForest arena.
//
// Four measured paths over the same fitted forest and the same evaluation
// matrix:
//   scalar_rf      — RandomForest::predict per row (per-tree AoS node
//                    vectors, one heap-allocated tree at a time);
//   flat_scalar    — FlatForest::predict per row (contiguous SoA arena,
//                    still row-at-a-time);
//   flat_batched   — FlatForest::predict_batch, row-blocks walked
//                    tree-major (the DSE / cross-validation hot path);
//   interval_rf / interval_flat — predict_interval per row: the forest path
//                    allocates + copies + double-sorts per call, the flat
//                    path reuses one scratch buffer and one traversal.
// Every flat result is checked bit-for-bit against the forest result before
// anything is timed — a wrong fast path fails the bench, not just the gate.
//
// Emits BENCH_forest_inference.json. --smoke runs a reduced configuration
// for CI; the >= 3x batched-vs-scalar gate applies to the full run only
// (smoke sizes are too small for stable ratios).
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.hpp"
#include "ml/flat_forest.hpp"
#include "verify/forest_analyzer.hpp"

using namespace napel;

namespace {

/// Synthetic nonlinear regression surface: deterministic from the seed, with
/// enough feature interaction that the trees actually grow deep.
ml::Dataset make_dataset(std::size_t n_rows, std::size_t n_features,
                         Rng& rng) {
  ml::Dataset data(n_features);
  std::vector<double> x(n_features);
  for (std::size_t i = 0; i < n_rows; ++i) {
    for (auto& v : x) v = rng.uniform(-2.0, 2.0);
    double y = std::sin(x[0] * 3.0) + x[1] * x[2] - 0.5 * x[3];
    for (std::size_t f = 4; f < n_features; ++f)
      y += 0.05 * x[f] * (f % 2 ? 1.0 : -1.0);
    y += rng.normal(0.0, 0.05);
    data.add_row(x, y);
  }
  return data;
}

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  const std::size_t n_features = 16;
  const std::size_t n_train = smoke ? 400 : 2000;
  const std::size_t n_eval = smoke ? 2000 : 20000;
  const unsigned n_trees = smoke ? 30 : 100;
  const int reps = smoke ? 3 : 5;

  std::printf("=== forest inference: pointer forest vs flat arena (%s) ===\n",
              smoke ? "smoke, best of 3" : "full, best of 5");

  Rng rng(2019);
  const ml::Dataset train = make_dataset(n_train, n_features, rng);
  const ml::Dataset eval = make_dataset(n_eval, n_features, rng);

  ml::RandomForestParams params;
  params.n_trees = n_trees;
  params.seed = 7;
  ml::RandomForest forest(params);
  forest.fit(train);
  const ml::FlatForest flat(forest);
  std::printf("forest: %zu trees, %zu arena nodes, %zu eval rows\n",
              flat.tree_count(), flat.node_count(), eval.size());

  // --- bit-identity first: a fast-but-wrong path must fail loudly. --------
  std::vector<double> scratch(flat.tree_count());
  std::vector<double> batched(eval.size());
  flat.predict_batch(eval.features(), eval.size(), batched, 1,
                     SimdLevel::kScalar);
  for (std::size_t i = 0; i < eval.size(); ++i) {
    const double ref = forest.predict(eval.row(i));
    if (!bits_equal(ref, flat.predict(eval.row(i))) ||
        !bits_equal(ref, batched[i])) {
      std::fprintf(stderr, "FAIL: flat prediction differs at row %zu\n", i);
      return 1;
    }
    const auto ri = forest.predict_interval(eval.row(i));
    const auto fi = flat.predict_interval(eval.row(i), scratch);
    if (!bits_equal(ri.mean, fi.mean) || !bits_equal(ri.lo, fi.lo) ||
        !bits_equal(ri.hi, fi.hi)) {
      std::fprintf(stderr, "FAIL: flat interval differs at row %zu\n", i);
      return 1;
    }
  }
  std::printf("bit-identity: %zu rows x {predict, batch, interval} OK\n",
              eval.size());

  // --- dispatch matrix: every executable SIMD level x {1, 4} threads must
  // reproduce the scalar batched bytes exactly. memcmp over the whole
  // output vector, so a single flipped mantissa bit anywhere fails.
  std::vector<SimdLevel> levels = {SimdLevel::kScalar, SimdLevel::kPortable};
  if (ml::FlatForest::simd_kernel_available(SimdLevel::kAvx2))
    levels.push_back(SimdLevel::kAvx2);
  {
    std::vector<double> out2(eval.size());
    for (const SimdLevel level : levels) {
      for (const unsigned threads : {1u, 4u}) {
        std::fill(out2.begin(), out2.end(), 0.0);
        flat.predict_batch(eval.features(), eval.size(), out2, threads,
                           level);
        if (std::memcmp(out2.data(), batched.data(),
                        eval.size() * sizeof(double)) != 0) {
          std::fprintf(stderr,
                       "FAIL: %s kernel x %u threads diverges from scalar\n",
                       simd_level_name(level), threads);
          return 1;
        }
      }
    }
    std::printf("dispatch bit-identity: %zu levels x {1,4} threads OK\n\n",
                levels.size());
  }

  // Paths are timed in interleaved rep rounds (path A, B, C, ... then A
  // again) with the best rep kept per path: on a shared machine a load
  // spike then penalizes every path's same round, not whichever path
  // happened to run during it — the ratios below stay honest.
  volatile double guard = 0.0;  // keep the work observable
  auto timed = [&](auto&& body) {
    bench::Timer timer;
    guard = guard + body();
    return timer.seconds();
  };
  const bool have_avx2 =
      ml::FlatForest::simd_kernel_available(SimdLevel::kAvx2);
  double scalar_rf_s = 0.0, flat_scalar_s = 0.0, flat_batched_s = 0.0;
  double portable_s = 0.0, avx2_s = 0.0;
  double interval_rf_s = 0.0, interval_flat_s = 0.0;
  const auto keep_best = [](double& slot, double s) {
    if (slot == 0.0 || s < slot) slot = s;
  };
  for (int rep = 0; rep < reps; ++rep) {
    keep_best(scalar_rf_s, timed([&] {
      double acc = 0.0;
      for (std::size_t i = 0; i < eval.size(); ++i)
        acc += forest.predict(eval.row(i));
      return acc;
    }));
    keep_best(flat_scalar_s, timed([&] {
      double acc = 0.0;
      for (std::size_t i = 0; i < eval.size(); ++i)
        acc += flat.predict(eval.row(i));
      return acc;
    }));
    // The scalar lockstep kernel stays the committed reference: its
    // numbers are comparable across history, and the SIMD ratios below
    // are measured against it in the same process on the same matrix.
    keep_best(flat_batched_s, timed([&] {
      flat.predict_batch(eval.features(), eval.size(), batched, 1,
                         SimdLevel::kScalar);
      return batched[0];
    }));
    keep_best(portable_s, timed([&] {
      flat.predict_batch(eval.features(), eval.size(), batched, 1,
                         SimdLevel::kPortable);
      return batched[0];
    }));
    if (have_avx2)
      keep_best(avx2_s, timed([&] {
        flat.predict_batch(eval.features(), eval.size(), batched, 1,
                           SimdLevel::kAvx2);
        return batched[0];
      }));
    keep_best(interval_rf_s, timed([&] {
      double acc = 0.0;
      for (std::size_t i = 0; i < eval.size(); ++i)
        acc += forest.predict_interval(eval.row(i)).mean;
      return acc;
    }));
    keep_best(interval_flat_s, timed([&] {
      double acc = 0.0;
      for (std::size_t i = 0; i < eval.size(); ++i)
        acc += flat.predict_interval(eval.row(i), scratch).mean;
      return acc;
    }));
  }
  auto best = [&](auto&& body) {
    double best_s = 0.0;
    for (int rep = 0; rep < reps; ++rep) keep_best(best_s, timed(body));
    return best_s;
  };

  const double rows = static_cast<double>(eval.size());
  const auto rps = [rows](double s) { return s > 0.0 ? rows / s : 0.0; };
  const double batched_speedup =
      flat_batched_s > 0.0 ? scalar_rf_s / flat_batched_s : 0.0;
  const double interval_speedup =
      interval_flat_s > 0.0 ? interval_rf_s / interval_flat_s : 0.0;
  const double portable_vs_batched =
      portable_s > 0.0 ? flat_batched_s / portable_s : 0.0;
  const double avx2_vs_batched = avx2_s > 0.0 ? flat_batched_s / avx2_s : 0.0;

  // Static-analyzer cost over the same arena: certify() (the serve-time
  // structural pass) and the full abstract interpretation. Reported for
  // tracking, not gated — the analyzer runs offline, never per prediction.
  const double certify_s = best([&] {
    flat.certify();
    return 1.0;
  });
  const double analyze_s = best([&] {
    verify::DiagnosticEngine diags;
    const auto domain = verify::FeatureDomain::unbounded(
        std::vector<std::string>(n_features, "f"));
    const auto analysis =
        verify::analyze_forest(flat, domain, "bench", diags);
    return analysis.bounds.hi;
  });

  std::printf("scalar forest    %10.0f rows/s\n", rps(scalar_rf_s));
  std::printf("flat scalar      %10.0f rows/s  (%.2fx)\n", rps(flat_scalar_s),
              flat_scalar_s > 0.0 ? scalar_rf_s / flat_scalar_s : 0.0);
  std::printf("flat batched     %10.0f rows/s  (%.2fx)\n", rps(flat_batched_s),
              batched_speedup);
  std::printf("simd portable    %10.0f rows/s  (%.2fx vs batched)\n",
              rps(portable_s), portable_vs_batched);
  if (have_avx2)
    std::printf("simd avx2        %10.0f rows/s  (%.2fx vs batched)\n",
                rps(avx2_s), avx2_vs_batched);
  else
    std::printf("simd avx2        unavailable (kernel not built or CPU "
                "lacks avx2)\n");
  std::printf("interval forest  %10.0f rows/s\n", rps(interval_rf_s));
  std::printf("interval flat    %10.0f rows/s  (%.2fx)\n",
              rps(interval_flat_s), interval_speedup);
  std::printf("static analyzer  certify %.3f ms, abstract-interp %.3f ms "
              "(%zu nodes; offline, not gated)\n",
              certify_s * 1e3, analyze_s * 1e3, flat.node_count());

  FILE* f = std::fopen("BENCH_forest_inference.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_forest_inference.json\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"forest_inference\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f,
               "  \"trees\": %zu, \"nodes\": %zu, \"eval_rows\": %zu,\n",
               flat.tree_count(), flat.node_count(), eval.size());
  std::fprintf(f,
               "  \"scalar_rf_rps\": %.0f, \"flat_scalar_rps\": %.0f, "
               "\"flat_batched_rps\": %.0f,\n",
               rps(scalar_rf_s), rps(flat_scalar_s), rps(flat_batched_s));
  std::fprintf(f,
               "  \"interval_rf_rps\": %.0f, \"interval_flat_rps\": %.0f,\n",
               rps(interval_rf_s), rps(interval_flat_s));
  std::fprintf(f,
               "  \"simd_portable_rps\": %.0f, \"simd_avx2_rps\": %.0f,\n",
               rps(portable_s), rps(avx2_s));
  std::fprintf(f,
               "  \"portable_vs_batched\": %.3f, \"avx2_vs_batched\": %.3f, "
               "\"avx2_available\": %s,\n",
               portable_vs_batched, avx2_vs_batched,
               have_avx2 ? "true" : "false");
  std::fprintf(f,
               "  \"batched_vs_scalar\": %.3f, "
               "\"interval_flat_vs_rf\": %.3f,\n",
               batched_speedup, interval_speedup);
  std::fprintf(f,
               "  \"certify_ms\": %.3f, \"analyze_ms\": %.3f\n}\n",
               certify_s * 1e3, analyze_s * 1e3);
  std::fclose(f);
  std::printf("wrote BENCH_forest_inference.json\n");

  // The DSE and cross-validation loops were rebuilt on the batched path; it
  // has to be decisively faster than the pointer-chasing forest.
  if (!smoke && batched_speedup < 3.0) {
    std::fprintf(stderr,
                 "FAIL: flat batched inference only %.2fx the scalar forest "
                 "(expected >= 3x)\n",
                 batched_speedup);
    return 1;
  }
  // SIMD non-regression floors (full mode; smoke sizes are too small for
  // stable ratios). These are floors, not targets: the lockstep scalar
  // reference already saturates memory-level parallelism (64 independent
  // chains), so on hosts whose vpgatherdd/vgatherdpd are microcode-
  // mitigated (Downfall-era Xeons — including this CI class) the gather
  // kernels measure near parity rather than the 2x a desktop part with
  // full-rate gathers shows. A kernel falling under 0.7x means the lane
  // code itself broke, which is what the gate is for; see DESIGN.md
  // "SIMD inference & runtime dispatch" for the measured numbers.
  if (!smoke && portable_vs_batched < 0.7) {
    std::fprintf(stderr,
                 "FAIL: portable lane kernel only %.2fx the scalar batched "
                 "kernel (floor 0.7x)\n",
                 portable_vs_batched);
    return 1;
  }
  if (!smoke && have_avx2 && avx2_vs_batched < 0.7) {
    std::fprintf(stderr,
                 "FAIL: avx2 kernel only %.2fx the scalar batched kernel "
                 "(floor 0.7x)\n",
                 avx2_vs_batched);
    return 1;
  }
  // Smoke regression floor for CI: the committed smoke baseline records
  // batched_vs_scalar = 4.7; dipping under 3.5 means the batched engine
  // genuinely regressed, not that the small configuration wobbled.
  if (smoke && batched_speedup < 3.5) {
    std::fprintf(stderr,
                 "FAIL: smoke batched_vs_scalar %.2fx fell below the "
                 "committed-baseline floor 3.5x\n",
                 batched_speedup);
    return 1;
  }
  return 0;
}
