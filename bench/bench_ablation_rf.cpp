// Ablation (ours, motivated by §2.5): random-forest hyper-parameter
// sensitivity — the effect of tree count, depth, mtry fraction, and
// hyper-parameter tuning on LOAO accuracy for a fixed training set.
#include <algorithm>
#include <memory>
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "ml/gbm.hpp"
#include "ml/metrics.hpp"

using namespace napel;

namespace {

/// LOAO perf-MRE for a fixed RF configuration over a 4-app subset.
double loao_mre(const std::vector<core::TrainingRow>& rows,
                const ml::RandomForestParams& params) {
  std::vector<std::string> apps;
  for (const auto& r : rows)
    if (std::find(apps.begin(), apps.end(), r.app) == apps.end())
      apps.push_back(r.app);
  std::vector<double> mres;
  for (const auto& app : apps) {
    std::vector<core::TrainingRow> train, test;
    for (const auto& r : rows) (r.app == app ? test : train).push_back(r);
    ml::RandomForest rf(params);
    rf.fit(core::assemble_dataset(train, core::Target::kIpc));
    mres.push_back(
        ml::evaluate(rf, core::assemble_dataset(test, core::Target::kIpc))
            .mre);
  }
  return mean(mres);
}

}  // namespace

int main() {
  bench::print_system_header("Ablation: random-forest hyper-parameters");

  std::vector<core::TrainingRow> rows;
  for (const char* app : {"atax", "gesummv", "mvt", "kmeans", "trmm", "lu"})
    core::collect_training_data(workloads::workload(app),
                                bench::bench_collect_options(), rows);
  std::printf("training rows: %zu\n\n", rows.size());

  ml::RandomForestParams base;
  base.n_trees = 60;
  base.max_depth = 24;
  base.mtry_fraction = 1.0 / 3.0;
  base.seed = 2019;

  {
    Table t({"n_trees", "LOAO IPC MRE %"});
    for (unsigned n : {1u, 5u, 20u, 60u, 150u}) {
      ml::RandomForestParams p = base;
      p.n_trees = n;
      t.add_row({std::to_string(n), Table::fmt(100.0 * loao_mre(rows, p), 1)});
    }
    std::printf("--- ensemble size ---\n");
    t.print(std::cout);
  }

  {
    Table t({"max_depth", "LOAO IPC MRE %"});
    for (unsigned d : {1u, 2u, 4u, 8u, 16u, 24u}) {
      ml::RandomForestParams p = base;
      p.max_depth = d;
      t.add_row({std::to_string(d), Table::fmt(100.0 * loao_mre(rows, p), 1)});
    }
    std::printf("\n--- tree depth ---\n");
    t.print(std::cout);
  }

  {
    Table t({"mtry_fraction", "LOAO IPC MRE %"});
    for (double m : {0.05, 0.2, 1.0 / 3.0, 0.6, 1.0}) {
      ml::RandomForestParams p = base;
      p.mtry_fraction = m;
      t.add_row({Table::fmt(m, 2), Table::fmt(100.0 * loao_mre(rows, p), 1)});
    }
    std::printf("\n--- feature subsampling (mtry) ---\n");
    t.print(std::cout);
  }

  // Ensemble family: bagging (the paper's choice) vs gradient boosting vs a
  // single deep CART, all at comparable budgets.
  {
    std::vector<std::string> apps;
    for (const auto& r : rows)
      if (std::find(apps.begin(), apps.end(), r.app) == apps.end())
        apps.push_back(r.app);
    auto loao_with = [&](auto make_model) {
      std::vector<double> mres;
      for (const auto& app : apps) {
        std::vector<core::TrainingRow> tr, te;
        for (const auto& r : rows) (r.app == app ? te : tr).push_back(r);
        auto m = make_model();
        m->fit(core::assemble_dataset(tr, core::Target::kIpc));
        mres.push_back(
            ml::evaluate(*m, core::assemble_dataset(te, core::Target::kIpc))
                .mre);
      }
      return mean(mres);
    };
    Table t({"ensemble", "LOAO IPC MRE %"});
    t.add_row({"random forest (bagging, 60 trees)",
               Table::fmt(100.0 * loao_with([&] {
                            auto p = base;
                            return std::make_unique<ml::RandomForest>(p);
                          }),
                          1)});
    t.add_row({"gradient boosting (200 rounds, depth 4)",
               Table::fmt(100.0 * loao_with([&] {
                            ml::GbmParams p;
                            p.seed = base.seed;
                            return std::make_unique<ml::GradientBoosting>(p);
                          }),
                          1)});
    t.add_row({"single CART (depth 24)",
               Table::fmt(100.0 * loao_with([&] {
                            ml::TreeParams p;
                            p.seed = base.seed;
                            return std::make_unique<ml::DecisionTree>(p);
                          }),
                          1)});
    std::printf("\n--- ensemble family (bagging vs boosting vs single tree) ---\n");
    t.print(std::cout);
  }

  // Tuned vs untuned, the §2.5 claim that tuning "can provide better
  // performance estimates for some applications".
  {
    core::LoaoOptions untuned;
    untuned.tune_rf = false;
    core::LoaoOptions tuned;
    tuned.tune_rf = true;
    tuned.grid.n_trees = {60};
    tuned.grid.max_depth = {8, 16, 24};
    tuned.grid.mtry_fraction = {0.2, 1.0 / 3.0};
    tuned.grid.min_samples_leaf = {1, 2};
    tuned.k_folds = 3;

    const auto ru =
        core::leave_one_app_out(rows, core::ModelKind::kNapelRf, untuned);
    const auto rt =
        core::leave_one_app_out(rows, core::ModelKind::kNapelRf, tuned);
    Table t({"app", "untuned perf MRE %", "tuned perf MRE %"});
    double su = 0, st = 0;
    for (std::size_t i = 0; i < ru.size(); ++i) {
      su += ru[i].perf_mre / static_cast<double>(ru.size());
      st += rt[i].perf_mre / static_cast<double>(rt.size());
      t.add_row({ru[i].app, Table::fmt(100 * ru[i].perf_mre, 1),
                 Table::fmt(100 * rt[i].perf_mre, 1)});
    }
    t.add_row({"AVG", Table::fmt(100 * su, 1), Table::fmt(100 * st, 1)});
    std::printf("\n--- hyper-parameter tuning (grid of %zu combos) ---\n",
                tuned.grid.combinations());
    t.print(std::cout);
  }
  return 0;
}
