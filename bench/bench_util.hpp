// Shared helpers for the reproduction benches: every binary prints the
// modelled system configuration (paper Table 3) and uses the same
// bench-scale data-collection defaults.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "napel/napel.hpp"

namespace napel::bench {

class Timer {
 public:
  Timer() : t0_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point t0_;
};

inline void print_system_header(const char* bench_name) {
  const auto arch = sim::ArchConfig::paper_default();
  const auto host = hostmodel::HostConfig::bench_scaled();
  std::printf("=== %s ===\n", bench_name);
  std::printf(
      "NMC system (paper Table 3): %u in-order PEs @ %.2f GHz, L1 %u x %uB "
      "(%u-way), %u vaults x %u layers, %.0f GiB, closed-row\n",
      arch.n_pes, arch.core_freq_ghz, arch.cache_lines,
      arch.cache_line_bytes, arch.cache_ways, arch.n_vaults, arch.dram_layers,
      static_cast<double>(arch.dram_bytes) / (1ULL << 30));
  std::printf(
      "Host model (POWER9 substitute, caches bench-scaled /32): %u cores x SMT%u @ %.1f GHz, "
      "L1 %llu KiB / L2 %llu KiB / L3 %llu KiB, %.0f GB/s DRAM\n\n",
      host.cores, host.smt, host.freq_ghz,
      static_cast<unsigned long long>(host.l1_bytes / 1024),
      static_cast<unsigned long long>(host.l2_bytes / 1024),
      static_cast<unsigned long long>(host.l3_bytes / 1024),
      host.dram_bw_gbs);
}

inline core::CollectOptions bench_collect_options() {
  core::CollectOptions o;
  o.scale = workloads::Scale::kBench;
  o.archs_per_config = 3;
  o.arch_pool_size = 8;
  o.seed = 2019;
  return o;
}

/// Small tuning grid used by the benches (the full grid is exercised in the
/// RF ablation bench).
inline core::NapelModel::Options bench_model_options(bool tune = true) {
  core::NapelModel::Options m;
  m.tune = tune;
  m.grid.n_trees = {60};
  m.grid.max_depth = {16, 24};
  m.grid.mtry_fraction = {1.0 / 3.0};
  m.grid.min_samples_leaf = {1, 2};
  m.k_folds = 3;
  m.untuned_params.n_trees = 60;
  return m;
}

/// Collects training rows for every evaluated application at bench scale.
/// Returns per-app collection statistics alongside.
struct AppCollection {
  std::string app;
  core::CollectStats stats;
};

inline std::vector<AppCollection> collect_all_apps(
    std::vector<core::TrainingRow>& rows,
    const core::CollectOptions& opts = bench_collect_options()) {
  std::vector<AppCollection> out;
  for (const auto* w : workloads::all_workloads()) {
    AppCollection c;
    c.app = std::string(w->name());
    c.stats = core::collect_training_data(*w, opts, rows);
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace napel::bench
