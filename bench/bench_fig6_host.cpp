// Reproduces Figure 6: execution time and energy consumption of each
// workload's test input on the host CPU (the paper measures an IBM POWER9
// AC922 with AMESTER power telemetry; we evaluate the analytic host model
// on the same profiles).
//
// Shape to check: the cache-friendly dense kernels (gesummv, trmm, syrk,
// mvt, gemver, lu) run efficiently, while the memory-intensive irregular
// workloads (bfs, kmeans, and large-footprint bp) pay disproportionate time
// and energy — the separation that drives Figure 7.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"

using namespace napel;

int main() {
  bench::print_system_header("Figure 6: host CPU execution time and energy");

  const hostmodel::HostModel host(hostmodel::HostConfig::bench_scaled());
  Table t({"app", "time (ms)", "energy (J)", "CPI/thread", "L3 miss %",
           "eff. parallelism", "BW-bound"});
  CsvWriter csv({"app", "time_s", "energy_j"});

  for (const auto* w : workloads::all_workloads()) {
    const auto space = w->doe_space(workloads::Scale::kBench);
    const auto input = workloads::WorkloadParams::test_input(space);
    const auto profile = core::profile_workload(*w, input, 404);
    const auto r = host.evaluate(profile);
    t.add_row({std::string(w->name()), Table::fmt(r.time_seconds * 1e3, 3),
               Table::fmt(r.energy_joules, 4),
               Table::fmt(r.cpi_per_thread, 2),
               Table::fmt(100.0 * r.miss_l3, 1),
               Table::fmt(r.effective_parallelism, 1),
               r.bandwidth_bound ? "yes" : "no"});
    csv.add_row({std::string(w->name()), Table::fmt(r.time_seconds, 6),
                 Table::fmt(r.energy_joules, 6)});
  }
  t.print(std::cout);
  csv.write_file("fig6_host.csv");

  std::printf(
      "\npaper reference shape: host handles high-locality kernels well; "
      "bfs/kmeans/bp stress the memory hierarchy\n");
  return 0;
}
