// Reproduces Figure 4: NAPEL's prediction speedup over the simulator for
// 256 DoE configurations, per application, in increasing order.
//
// Methodology (as in §3.2): predicting a previously-unseen application on N
// design points costs one instrumentation/profiling pass plus N model
// inferences; the simulator costs N full runs. We measure all three
// components and report the speedup for N = 256. The paper reports
// min 33x / avg 220x / max 1039x against their (much slower) cycle-accurate
// Ramulator; our lean substrate simulator deflates the achievable ratio, so
// the shape to check is "one to three orders of magnitude, spread across
// applications", not the absolute average.
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

using namespace napel;

namespace {
constexpr std::size_t kConfigs = 256;
constexpr std::size_t kSimSample = 3;  // measured sims per app, then scaled
}  // namespace

int main() {
  bench::print_system_header(
      "Figure 4: prediction speedup over simulation (256 DoE configurations)");

  // Train one model on all applications (the trained model is amortized and
  // not part of the per-prediction cost, as in the paper).
  std::vector<core::TrainingRow> rows;
  bench::collect_all_apps(rows);
  core::NapelModel model;
  model.train(rows, bench::bench_model_options(false));

  Rng rng(42);
  const auto archs = sim::sample_arch_configs(kSimSample, rng);

  struct Entry {
    std::string app;
    double speedup;
    double sim_s_per_config;
    double profile_s;
    double predict_s_per_config;
  };
  std::vector<Entry> entries;

  for (const auto* w : workloads::all_workloads()) {
    const auto space = w->doe_space(workloads::Scale::kBench);
    const auto input = workloads::WorkloadParams::central(space);

    // Simulator cost per configuration (mean over a sample of archs).
    bench::Timer sim_timer;
    for (std::size_t i = 0; i < kSimSample; ++i)
      (void)core::simulate_workload(*w, input, archs[i % archs.size()], 11);
    const double sim_per_config = sim_timer.seconds() / kSimSample;

    // NAPEL cost: one profile + kConfigs model inferences.
    bench::Timer profile_timer;
    const auto profile = core::profile_workload(*w, input, 11);
    const double profile_s = profile_timer.seconds();

    bench::Timer predict_timer;
    for (std::size_t i = 0; i < kConfigs; ++i)
      (void)model.predict(profile, archs[i % archs.size()]);
    const double predict_s = predict_timer.seconds();

    const double napel_total = profile_s + predict_s;
    const double sim_total = sim_per_config * kConfigs;
    entries.push_back({std::string(w->name()), sim_total / napel_total,
                       sim_per_config, profile_s, predict_s / kConfigs});
  }

  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.speedup < b.speedup; });

  Table t({"app", "speedup (x)", "sim s/config", "profile (s)",
           "predict ms/config"});
  CsvWriter csv({"app", "speedup"});
  std::vector<double> speedups;
  for (const auto& e : entries) {
    t.add_row({e.app, Table::fmt(e.speedup, 1), Table::fmt(e.sim_s_per_config, 4),
               Table::fmt(e.profile_s, 4),
               Table::fmt(e.predict_s_per_config * 1e3, 3)});
    csv.add_row({e.app, Table::fmt(e.speedup, 2)});
    speedups.push_back(e.speedup);
  }
  t.print(std::cout);
  csv.write_file("fig4_speedup.csv");

  std::printf(
      "\nspeedup for %zu configurations: min %.0fx  avg %.0fx  max %.0fx\n",
      kConfigs, min_of(speedups), mean(speedups), max_of(speedups));
  std::printf(
      "paper reference: min 33x  avg 220x  max 1039x (vs cycle-accurate "
      "Ramulator, which is far slower per config than our substrate)\n");
  return 0;
}
