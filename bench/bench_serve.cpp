// Serving-runtime latency/throughput: full vs degraded inference.
//
// Drives the real serving path (Server::handle_line — parse, admission-
// aware degradation policy, chunked deadline-checked forest walk, certified
// intervals, response rendering) synchronously, so the numbers are
// per-request service times without queueing noise, plus one end-to-end
// run() pass through the stream transport. Scenarios:
//   full            — no deadline, no load: full-ensemble inference;
//   degraded_load   — queue depth at the degradation threshold: prefix
//                     inference (8 of the trees) with certified intervals;
//   degraded_zero   — deadline_ms:0: no trees walked, certified ensemble
//                     range answered straight from the precomputed bounds;
//   pipelined_run   — the threaded run() loop end-to-end over a scripted
//                     request stream (reader + worker + drain).
// Reports p50/p99 latency and throughput per scenario and emits
// BENCH_serve.json. --smoke shrinks the request counts for CI.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "ml/flat_forest.hpp"
#include "ml/random_forest.hpp"
#include "serve/server.hpp"

using namespace napel;

namespace {

ml::Dataset make_dataset(std::size_t n_rows, std::size_t n_features,
                         double offset, Rng& rng) {
  ml::Dataset data(n_features);
  std::vector<double> x(n_features);
  for (std::size_t i = 0; i < n_rows; ++i) {
    for (auto& v : x) v = rng.uniform(-2.0, 2.0);
    double y = offset + 0.3 * x[0] * x[1] + 0.1 * x[2];
    for (std::size_t f = 3; f < n_features; ++f)
      y += 0.02 * x[f] * (f % 2 ? 1.0 : -1.0);
    data.add_row(x, y + rng.normal(0.0, 0.02));
  }
  return data;
}

ml::RandomForest fit_forest(const ml::Dataset& data, unsigned n_trees,
                            std::uint64_t seed) {
  ml::RandomForestParams p;
  p.n_trees = n_trees;
  p.seed = seed;
  ml::RandomForest rf(p);
  rf.fit(data);
  return rf;
}

struct Scenario {
  std::string name;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double rps = 0.0;
  std::string mode;  // "full" / "degraded" of the observed responses
};

double percentile(std::vector<double>& v, double pct) {
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(
      pct / 100.0 * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  const std::size_t n_features = 16;
  // Both modes serve the paper-sized 100-tree ensembles: shrinking the
  // forest for smoke would shift the per-request cost toward JSON handling
  // and make the micro-batch ratio measure the wrong thing.
  const unsigned n_trees = 100;
  const std::size_t n_requests = smoke ? 500 : 5000;

  std::printf("=== serving runtime: full vs degraded inference (%s) ===\n",
              smoke ? "smoke" : "full");

  Rng rng(2019);
  const ml::Dataset ipc_data = make_dataset(800, n_features, 1.0, rng);
  const ml::Dataset power_data = make_dataset(800, n_features, 6.0, rng);
  core::NapelModel model = core::NapelModel::from_forests(
      fit_forest(ipc_data, n_trees, 7), fit_forest(power_data, n_trees, 8));

  serve::ServerOptions opts;
  opts.degrade_queue_depth = 8;
  opts.degrade_trees = 8;
  serve::Server server(opts,
                       serve::ServedModel::make(std::move(model), 1, "bench"));

  // Pre-render the request lines so parsing cost is measured, generation
  // cost is not.
  std::vector<std::string> full_lines, zero_lines;
  {
    Rng req_rng(404);
    std::vector<double> x(n_features);
    for (std::size_t i = 0; i < n_requests; ++i) {
      for (auto& v : x) v = req_rng.uniform(-2.0, 2.0);
      serve::JsonValue req = serve::JsonValue::object();
      req.set("op", serve::JsonValue::string("predict"));
      req.set("id", serve::JsonValue::string("r" + std::to_string(i)));
      serve::JsonValue feats = serve::JsonValue::array();
      for (double v : x) feats.push_back(serve::JsonValue::number(v));
      req.set("features", std::move(feats));
      full_lines.push_back(req.dump());
      req.set("deadline_ms", serve::JsonValue::number(0));
      zero_lines.push_back(req.dump());
    }
  }

  const auto drive = [&](const std::string& name,
                         const std::vector<std::string>& lines,
                         std::size_t queue_depth) {
    Scenario s;
    s.name = name;
    std::vector<double> lat_us;
    lat_us.reserve(lines.size());
    bench::Timer total;
    for (const std::string& line : lines) {
      bench::Timer t;
      const std::string resp = server.handle_line(line, queue_depth);
      lat_us.push_back(t.seconds() * 1e6);
      if (s.mode.empty()) {
        const serve::JsonValue v = serve::JsonValue::parse(resp);
        if (const auto* mode = v.find("mode")) s.mode = mode->as_string();
      }
    }
    const double total_s = total.seconds();
    s.p50_us = percentile(lat_us, 50.0);
    s.p99_us = percentile(lat_us, 99.0);
    s.rps = total_s > 0.0 ? static_cast<double>(lines.size()) / total_s : 0.0;
    return s;
  };

  // Micro-batched dispatch: the same requests, the same responses, but
  // coalesced into batch_max-sized slices that handle_lines serves via one
  // sharded predict_batch traversal per forest instead of per-request tree
  // chunking. Latency here is per-slice (what the last request of a
  // coalesced slice experiences).
  const auto drive_batched = [&](const std::vector<std::string>& lines,
                                 std::size_t batch_max) {
    Scenario s;
    s.name = "micro_batch";
    std::vector<double> lat_us;
    lat_us.reserve(lines.size() / batch_max + 1);
    std::size_t served = 0;
    bench::Timer total;
    for (std::size_t lo = 0; lo < lines.size(); lo += batch_max) {
      const std::size_t hi = std::min(lo + batch_max, lines.size());
      const std::vector<std::string> slice(lines.begin() + lo,
                                           lines.begin() + hi);
      bench::Timer t;
      const std::vector<std::string> resps = server.handle_lines(slice);
      lat_us.push_back(t.seconds() * 1e6);
      served += resps.size();
      if (s.mode.empty()) {
        const serve::JsonValue v = serve::JsonValue::parse(resps.front());
        if (const auto* mode = v.find("mode")) s.mode = mode->as_string();
      }
    }
    const double total_s = total.seconds();
    s.p50_us = percentile(lat_us, 50.0);
    s.p99_us = percentile(lat_us, 99.0);
    s.rps = total_s > 0.0 ? static_cast<double>(served) / total_s : 0.0;
    return s;
  };

  // The per-request / micro-batch comparison is a ratio of two separate
  // timed phases, so the rounds interleave and each side keeps its best —
  // a background load spike then hits both sides or neither, instead of
  // deflating whichever phase it landed on.
  constexpr int kReps = 3;
  const std::size_t batch_max = 64;
  Scenario best_full, best_batch;
  for (int rep = 0; rep < kReps; ++rep) {
    const Scenario f_run = drive("full", full_lines, /*queue_depth=*/0);
    if (f_run.rps > best_full.rps) best_full = f_run;
    const Scenario b_run = drive_batched(full_lines, batch_max);
    if (b_run.rps > best_batch.rps) best_batch = b_run;
  }
  std::vector<Scenario> scenarios;
  scenarios.push_back(best_full);
  scenarios.push_back(
      drive("degraded_load", full_lines, /*queue_depth=*/8));
  scenarios.push_back(drive("degraded_zero", zero_lines, /*queue_depth=*/0));
  scenarios.push_back(best_batch);
  for (const Scenario& s : scenarios)
    std::printf("%-14s %8.1f us p50  %8.1f us p99  %10.0f req/s  (%s)\n",
                s.name.c_str(), s.p50_us, s.p99_us, s.rps, s.mode.c_str());

  // End-to-end threaded run(): reader + worker + graceful drain.
  {
    std::stringstream in;
    for (const std::string& line : full_lines) in << line << '\n';
    in << "{\"op\":\"shutdown\"}\n";
    std::stringstream out;
    serve::IoStreamTransport transport(in, out);
    serve::ServerOptions run_opts;
    run_opts.queue_capacity = n_requests;  // no shedding: measure service
    serve::Server run_server(
        run_opts, serve::ServedModel::make(
                      core::NapelModel::from_forests(
                          fit_forest(ipc_data, n_trees, 7),
                          fit_forest(power_data, n_trees, 8)),
                      1, "bench"));
    bench::Timer t;
    const int rc = run_server.run(transport);
    const double total_s = t.seconds();
    Scenario s;
    s.name = "pipelined_run";
    s.mode = rc == 0 ? "full" : "error";
    s.rps =
        total_s > 0.0 ? static_cast<double>(n_requests) / total_s : 0.0;
    std::printf("%-14s %38.0f req/s  (end-to-end, rc=%d)\n", s.name.c_str(),
                s.rps, rc);
    scenarios.push_back(s);
  }

  const serve::ServeStats stats = server.stats_snapshot();
  const double batch_vs_single =
      scenarios[0].rps > 0.0 ? scenarios[3].rps / scenarios[0].rps : 0.0;
  std::printf("served: %llu full, %llu degraded; %llu micro-batches "
              "(%llu rows), batch vs per-request %.2fx\n",
              static_cast<unsigned long long>(stats.served_full),
              static_cast<unsigned long long>(stats.served_degraded),
              static_cast<unsigned long long>(stats.micro_batches),
              static_cast<unsigned long long>(stats.batched_predicts),
              batch_vs_single);

  FILE* f = std::fopen("BENCH_serve.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_serve.json\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"serve\",\n  \"smoke\": %s,\n",
               smoke ? "true" : "false");
  std::fprintf(f, "  \"trees\": %u, \"requests\": %zu,\n", n_trees,
               n_requests);
  std::fprintf(f, "  \"scenarios\": [\n");
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& s = scenarios[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"p50_us\": %.2f, \"p99_us\": %.2f, "
                 "\"rps\": %.0f, \"mode\": \"%s\"}%s\n",
                 s.name.c_str(), s.p50_us, s.p99_us, s.rps, s.mode.c_str(),
                 i + 1 < scenarios.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"batch_vs_single\": %.3f, \"micro_batches\": %llu,\n",
               batch_vs_single,
               static_cast<unsigned long long>(stats.micro_batches));
  std::fprintf(f, "  \"served_full\": %llu, \"served_degraded\": %llu\n}\n",
               static_cast<unsigned long long>(stats.served_full),
               static_cast<unsigned long long>(stats.served_degraded));
  std::fclose(f);
  std::printf("wrote BENCH_serve.json\n");

  // Sanity gates: the degraded paths must actually degrade, and the
  // zero-budget path must not be slower than full inference.
  if (scenarios[1].mode != "degraded" || scenarios[2].mode != "degraded") {
    std::fprintf(stderr, "FAIL: degradation scenarios served full mode\n");
    return 1;
  }
  // The micro-batch path must serve full-ensemble answers and beat
  // per-request dispatch decisively — it replaces N chunked per-request
  // walks with one batched lockstep traversal per forest.
  if (scenarios[3].mode != "full") {
    std::fprintf(stderr, "FAIL: micro_batch scenario served %s mode\n",
                 scenarios[3].mode.c_str());
    return 1;
  }
  if (batch_vs_single < 2.0) {
    std::fprintf(stderr,
                 "FAIL: micro-batched serving only %.2fx per-request "
                 "dispatch (expected >= 2x)\n",
                 batch_vs_single);
    return 1;
  }
  return 0;
}
