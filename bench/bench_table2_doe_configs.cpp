// Reproduces Table 2: the evaluated applications, their DoE parameters with
// five levels (minimum, low, central, high, maximum) and the held-out test
// input — at both the paper's input scale and the scaled-down bench scale —
// plus the number of CCD configurations each space generates (the "#DoE
// conf." column of Table 4).
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "doe/doe.hpp"

using namespace napel;

namespace {

void print_scale(workloads::Scale scale, const char* label) {
  std::printf("--- DoE parameter levels (%s) ---\n", label);
  Table t({"app", "DoE param", "min", "low", "central", "high", "max",
           "test", "#CCD conf"});
  for (const auto* w : workloads::all_workloads()) {
    const auto space = w->doe_space(scale);
    const std::size_t n_ccd = doe::central_composite(space).size();
    bool first = true;
    for (const auto& p : space.params) {
      t.add_row({first ? std::string(w->name()) : "",
                 p.name,
                 std::to_string(p.minimum()),
                 std::to_string(p.low()),
                 std::to_string(p.central()),
                 std::to_string(p.high()),
                 std::to_string(p.maximum()),
                 std::to_string(p.test),
                 first ? std::to_string(n_ccd) : ""});
      first = false;
    }
  }
  t.print(std::cout);
  std::printf("\n");
}

}  // namespace

int main() {
  bench::print_system_header("Table 2: evaluated applications and DoE parameters");
  print_scale(workloads::Scale::kPaper, "paper scale, as printed in Table 2");
  print_scale(workloads::Scale::kBench,
              "bench scale, used by the shipped reproduction benches");

  // Total DoE configurations across the suite (the paper's Figure 4 uses
  // 256 DoE configurations).
  std::size_t total = 0;
  for (const auto* w : workloads::all_workloads())
    total +=
        doe::central_composite(w->doe_space(workloads::Scale::kBench)).size();
  std::printf("total CCD configurations across all 12 applications: %zu\n",
              total);
  return 0;
}
