// Ablation (ours, motivated by §2.4 and Table 5): how does the choice of
// design-of-experiments strategy affect model accuracy for a fixed
// simulation budget? Compares CCD against uniform-random and
// Latin-hypercube designs with the same number of points, and against a
// larger random design, by training a per-application model on each design
// and evaluating on a held-out random probe set plus the test input.
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "ml/metrics.hpp"

using namespace napel;

namespace {

const char* kApps[] = {"atax", "gesummv", "mvt", "kmeans", "cholesky", "trmm"};

double eval_design(const workloads::Workload& w, core::DesignKind design,
                   std::size_t points,
                   const std::vector<core::TrainingRow>& probe) {
  core::CollectOptions o = bench::bench_collect_options();
  o.design = design;
  o.design_points = points;
  std::vector<core::TrainingRow> rows;
  core::collect_training_data(w, o, rows);

  core::NapelModel model;
  model.train(rows, bench::bench_model_options(false));

  const auto test = core::assemble_dataset(probe, core::Target::kIpc);
  return ml::evaluate(model.ipc_forest(), test).mre;
}

}  // namespace

int main() {
  bench::print_system_header(
      "Ablation: DoE strategy vs model accuracy (IPC MRE on held-out probes)");

  Table t({"app", "#CCD pts", "CCD", "random (same N)", "LHS (same N)",
           "random (2N)"});
  std::vector<double> ccd_v, rnd_v, lhs_v, rnd2_v;

  for (const char* app : kApps) {
    const auto& w = workloads::workload(app);
    const auto space = w.doe_space(workloads::Scale::kBench);
    const std::size_t n_ccd = doe::central_composite(space).size();

    // Held-out probe set: random input configurations with a different seed
    // than any design (16 probes x 2 archs).
    core::CollectOptions probe_opts = bench::bench_collect_options();
    probe_opts.design = core::DesignKind::kRandom;
    probe_opts.design_points = 16;
    probe_opts.archs_per_config = 2;
    probe_opts.seed = 909090;
    std::vector<core::TrainingRow> probe;
    core::collect_training_data(w, probe_opts, probe);

    const double ccd = eval_design(w, core::DesignKind::kCcd, n_ccd, probe);
    const double rnd =
        eval_design(w, core::DesignKind::kRandom, n_ccd, probe);
    const double lhs =
        eval_design(w, core::DesignKind::kLatinHypercube, n_ccd, probe);
    const double rnd2 =
        eval_design(w, core::DesignKind::kRandom, 2 * n_ccd, probe);
    ccd_v.push_back(ccd);
    rnd_v.push_back(rnd);
    lhs_v.push_back(lhs);
    rnd2_v.push_back(rnd2);
    t.add_row({app, std::to_string(n_ccd), Table::fmt(100 * ccd, 1) + "%",
               Table::fmt(100 * rnd, 1) + "%", Table::fmt(100 * lhs, 1) + "%",
               Table::fmt(100 * rnd2, 1) + "%"});
  }
  t.add_row({"AVG", "", Table::fmt(100 * mean(ccd_v), 1) + "%",
             Table::fmt(100 * mean(rnd_v), 1) + "%",
             Table::fmt(100 * mean(lhs_v), 1) + "%",
             Table::fmt(100 * mean(rnd2_v), 1) + "%"});
  t.print(std::cout);

  std::printf(
      "\nexpected shape: CCD is competitive with (often better than) random "
      "and LHS at equal budget, approaching a 2x-budget random design — the "
      "paper's justification for CCD (§2.4)\n");
  return 0;
}
