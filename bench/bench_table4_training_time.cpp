// Reproduces Table 4: per application, the number of DoE configurations,
// the time to run the DoE-selected training simulations ("DoE run"), the
// model training + hyper-parameter tuning time ("Train+Tune"), and the
// prediction time for one previously-unseen application input ("Pred.").
//
// The paper reports minutes on their testbed (a cycle-accurate simulator
// taking ~hours per configuration); our substrate simulator is orders of
// magnitude faster, so absolute numbers are seconds — the shape to check is
// the *relative* ordering (DoE run >> Train+Tune >> Pred) and the DoE
// configuration counts, which match Table 4 exactly.
// A second table sweeps the end-to-end pipeline (DoE collection + train)
// over worker-thread counts: the three dominant loops — DoE-selected
// simulations, forest fitting, and grid-search points — all fan out to the
// shared pool, and the speedup column quantifies the win. Results are
// byte-identical at every thread count (see test_parallel_determinism).
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"

using namespace napel;

int main() {
  bench::print_system_header("Table 4: DoE counts, training and prediction time");

  Table t({"app", "#DoE conf", "DoE run (s)", "Train+Tune (s)", "Pred. (ms)"});
  const auto opts = bench::bench_collect_options();

  double tot_doe = 0, tot_train = 0, tot_pred = 0;
  for (const auto* w : workloads::all_workloads()) {
    // Phase 1-2: DoE-selected simulations for this application.
    std::vector<core::TrainingRow> rows;
    bench::Timer doe_timer;
    const auto stats = core::collect_training_data(*w, opts, rows);
    const double doe_s = doe_timer.seconds();

    // Phase 3: train + tune on this application's rows.
    bench::Timer train_timer;
    core::NapelModel model;
    model.train(rows, bench::bench_model_options(true));
    const double train_s = train_timer.seconds();

    // Prediction phase: profile the unseen test input once, then predict.
    const auto space = w->doe_space(opts.scale);
    const auto test_input = workloads::WorkloadParams::test_input(space);
    bench::Timer pred_timer;
    const auto profile = core::profile_workload(*w, test_input, 7);
    (void)model.predict(profile, sim::ArchConfig::paper_default());
    const double pred_s = pred_timer.seconds();

    tot_doe += doe_s;
    tot_train += train_s;
    tot_pred += pred_s;
    t.add_row({std::string(w->name()), std::to_string(stats.n_input_configs),
               Table::fmt(doe_s, 2), Table::fmt(train_s, 2),
               Table::fmt(pred_s * 1e3, 1)});
  }
  t.add_row({"TOTAL", "", Table::fmt(tot_doe, 2), Table::fmt(tot_train, 2),
             Table::fmt(tot_pred * 1e3, 1)});
  t.print(std::cout);

  std::printf(
      "\npaper reference (minutes, their testbed): #DoE conf identical; "
      "DoE run 522-1084, Train+Tune 24.4-43.8, Pred 0.47-0.55\n");

  // Thread-scaling sweep: same end-to-end work (all apps: DoE collection,
  // then train+tune on the pooled rows) at 1/2/4/N worker threads.
  std::vector<unsigned> thread_counts = {1, 2, 4};
  const unsigned hw = ThreadPool::default_threads();
  if (hw > 4) thread_counts.push_back(hw);

  std::printf("\nThread scaling (all apps, DoE collection + train+tune):\n");
  Table scaling(
      {"threads", "DoE run (s)", "Train+Tune (s)", "total (s)", "speedup"});
  double serial_total = 0.0;
  for (const unsigned threads : thread_counts) {
    auto copt = bench::bench_collect_options();
    copt.n_threads = threads;
    auto mopt = bench::bench_model_options(true);
    mopt.n_threads = threads;

    std::vector<core::TrainingRow> rows;
    bench::Timer doe_timer;
    for (const auto* w : workloads::all_workloads())
      core::collect_training_data(*w, copt, rows);
    const double doe_s = doe_timer.seconds();

    bench::Timer train_timer;
    core::NapelModel model;
    model.train(rows, mopt);
    const double train_s = train_timer.seconds();

    const double total_s = doe_s + train_s;
    if (threads == 1) serial_total = total_s;
    scaling.add_row({std::to_string(threads), Table::fmt(doe_s, 2),
                     Table::fmt(train_s, 2), Table::fmt(total_s, 2),
                     Table::fmt(serial_total / total_s, 2) + "x"});
  }
  scaling.print(std::cout);
  return 0;
}
