// Reproduces Table 4: per application, the number of DoE configurations,
// the time to run the DoE-selected training simulations ("DoE run"), the
// model training + hyper-parameter tuning time ("Train+Tune"), and the
// prediction time for one previously-unseen application input ("Pred.").
//
// The paper reports minutes on their testbed (a cycle-accurate simulator
// taking ~hours per configuration); our substrate simulator is orders of
// magnitude faster, so absolute numbers are seconds — the shape to check is
// the *relative* ordering (DoE run >> Train+Tune >> Pred) and the DoE
// configuration counts, which match Table 4 exactly.
//
// On top of the paper table, this bench gates the histogram training
// engine (ml/hist_split.hpp) on the pooled Table-4 matrix:
//   * exact vs hist forest fit, interleaved best-of-N, with save-byte
//     thread-invariance checked for both modes before anything is timed —
//     a fast-but-nondeterministic engine fails the bench, not just the
//     gate. Hist must be >= 4x faster than exact (fit time, binning
//     included), and the bin/fit breakdown is reported so a regression in
//     either phase is attributable.
//   * leave-one-app-out MAPE under both engines (untuned forests): the
//     speedup may not cost accuracy — per target (perf, energy) hist may
//     not sit more than 1 percentage point above exact, and the combined
//     aggregate must stay within 1 pp in either direction.
// Emits BENCH_training.json. --smoke runs a reduced configuration for CI
// (speedup + MAPE sections only); both gates apply in smoke and full mode.
//
// A final table (full mode) sweeps the end-to-end pipeline (DoE collection
// + train) over worker-thread counts: the three dominant loops —
// DoE-selected simulations, forest fitting, and grid-search points — all
// fan out to the shared pool, and the speedup column quantifies the win.
// Results are byte-identical at every thread count (see
// test_parallel_determinism).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"

using namespace napel;

namespace {

/// Mean per-app LOAO MREs in percent (the paper's MAPE aggregates), for
/// both reported targets.
struct LoaoMape {
  double perf_pct = 0.0;
  double energy_pct = 0.0;
  double combined_pct() const { return 0.5 * (perf_pct + energy_pct); }
};

LoaoMape loao_mape_pct(const std::vector<core::TrainingRow>& rows,
                       ml::SplitMode mode) {
  core::LoaoOptions lo;
  lo.tune_rf = false;
  lo.split_mode = mode;
  const auto res = core::leave_one_app_out(rows, core::ModelKind::kNapelRf, lo);
  LoaoMape m;
  if (res.empty()) return m;
  for (const auto& r : res) {
    m.perf_pct += r.perf_mre;
    m.energy_pct += r.energy_mre;
  }
  m.perf_pct *= 100.0 / static_cast<double>(res.size());
  m.energy_pct *= 100.0 / static_cast<double>(res.size());
  return m;
}

std::string fit_and_save(const ml::Dataset& data, ml::SplitMode mode,
                         unsigned n_threads) {
  ml::RandomForestParams p;
  p.n_trees = 60;
  p.seed = 7;
  p.n_threads = n_threads;
  p.split_mode = mode;
  ml::RandomForest rf(p);
  rf.fit(data);
  std::ostringstream os;
  rf.save(os);
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  bench::print_system_header(
      "Table 4: DoE counts, training and prediction time");
  const auto opts = bench::bench_collect_options();

  if (!smoke) {
    Table t(
        {"app", "#DoE conf", "DoE run (s)", "Train+Tune (s)", "Pred. (ms)"});
    double tot_doe = 0, tot_train = 0, tot_pred = 0;
    for (const auto* w : workloads::all_workloads()) {
      // Phase 1-2: DoE-selected simulations for this application.
      std::vector<core::TrainingRow> rows;
      bench::Timer doe_timer;
      const auto stats = core::collect_training_data(*w, opts, rows);
      const double doe_s = doe_timer.seconds();

      // Phase 3: train + tune on this application's rows.
      bench::Timer train_timer;
      core::NapelModel model;
      model.train(rows, bench::bench_model_options(true));
      const double train_s = train_timer.seconds();

      // Prediction phase: profile the unseen test input once, then predict.
      const auto space = w->doe_space(opts.scale);
      const auto test_input = workloads::WorkloadParams::test_input(space);
      bench::Timer pred_timer;
      const auto profile = core::profile_workload(*w, test_input, 7);
      (void)model.predict(profile, sim::ArchConfig::paper_default());
      const double pred_s = pred_timer.seconds();

      tot_doe += doe_s;
      tot_train += train_s;
      tot_pred += pred_s;
      t.add_row({std::string(w->name()), std::to_string(stats.n_input_configs),
                 Table::fmt(doe_s, 2), Table::fmt(train_s, 2),
                 Table::fmt(pred_s * 1e3, 1)});
    }
    t.add_row({"TOTAL", "", Table::fmt(tot_doe, 2), Table::fmt(tot_train, 2),
               Table::fmt(tot_pred * 1e3, 1)});
    t.print(std::cout);

    std::printf(
        "\npaper reference (minutes, their testbed): #DoE conf identical; "
        "DoE run 522-1084, Train+Tune 24.4-43.8, Pred 0.47-0.55\n");
  }

  // --- exact vs hist on the pooled Table-4 matrix ------------------------
  std::vector<core::TrainingRow> pooled;
  for (const auto* w : workloads::all_workloads())
    core::collect_training_data(*w, opts, pooled);
  const ml::Dataset data = core::assemble_dataset(pooled, core::Target::kIpc);
  std::printf("\nSplit engines (pooled matrix: %zu rows x %zu features, "
              "60 trees):\n",
              data.size(), data.n_features());

  // Thread-invariance first: both engines must save byte-identical forests
  // at 1 and 4 threads before their timings mean anything.
  for (const auto mode : {ml::SplitMode::kExact, ml::SplitMode::kHist}) {
    if (fit_and_save(data, mode, 1) != fit_and_save(data, mode, 4)) {
      std::fprintf(stderr, "FAIL: %s-mode forest bytes differ at 1 vs 4 "
                           "threads\n",
                   mode == ml::SplitMode::kExact ? "exact" : "hist");
      return 1;
    }
  }
  std::printf("thread-invariance: exact and hist save bytes identical at "
              "{1,4} threads OK\n");

  // Interleaved best-of-N rounds (exact then hist each round, best rep
  // kept per engine) so a load spike on a shared machine penalizes both
  // engines' same round rather than one engine's only round.
  const int reps = smoke ? 3 : 5;
  double exact_s = 0.0, hist_s = 0.0, hist_bin_s = 0.0;
  const auto keep_best = [](double& slot, double s) {
    if (slot == 0.0 || s < slot) slot = s;
  };
  for (int rep = 0; rep < reps; ++rep) {
    {
      ml::RandomForestParams p;
      p.n_trees = 60;
      p.seed = 7;
      p.n_threads = 0;
      ml::RandomForest rf(p);
      bench::Timer timer;
      rf.fit(data);
      keep_best(exact_s, timer.seconds());
    }
    {
      ml::RandomForestParams p;
      p.n_trees = 60;
      p.seed = 7;
      p.n_threads = 0;
      p.split_mode = ml::SplitMode::kHist;
      ml::RandomForest rf(p);
      bench::Timer timer;
      rf.fit(data);
      const double s = timer.seconds();
      if (hist_s == 0.0 || s < hist_s) {
        hist_s = s;
        hist_bin_s = rf.last_fit_bin_seconds();
      }
    }
  }
  const double speedup = hist_s > 0.0 ? exact_s / hist_s : 0.0;
  std::printf("exact fit   %8.3f s\n", exact_s);
  std::printf("hist fit    %8.3f s  (bin %.3f s + grow %.3f s)  %.2fx\n",
              hist_s, hist_bin_s, hist_s - hist_bin_s, speedup);

  // Accuracy guard: leave-one-app-out MAPE under both engines. The guard
  // is against accuracy *loss* — per target, hist may not sit more than
  // 1 pp above exact (being better is fine; the per-app means are
  // dominated by the two extrapolation-hostile apps, where hist's
  // bin-quantized cuts happen to generalize slightly better). The
  // combined (perf + energy) aggregate must additionally stay within
  // 1 pp in either direction.
  const LoaoMape mape_exact = loao_mape_pct(pooled, ml::SplitMode::kExact);
  const LoaoMape mape_hist = loao_mape_pct(pooled, ml::SplitMode::kHist);
  const double perf_degrade_pp = mape_hist.perf_pct - mape_exact.perf_pct;
  const double energy_degrade_pp =
      mape_hist.energy_pct - mape_exact.energy_pct;
  const double combined_delta_pp =
      std::abs(mape_hist.combined_pct() - mape_exact.combined_pct());
  std::printf("LOAO MAPE   perf   exact %6.2f%%  hist %6.2f%%  (%+.2f pp)\n",
              mape_exact.perf_pct, mape_hist.perf_pct, perf_degrade_pp);
  std::printf("LOAO MAPE   energy exact %6.2f%%  hist %6.2f%%  (%+.2f pp)\n",
              mape_exact.energy_pct, mape_hist.energy_pct, energy_degrade_pp);
  std::printf("LOAO MAPE   combined delta %.2f pp\n", combined_delta_pp);

  FILE* f = std::fopen("BENCH_training.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_training.json\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"training\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"rows\": %zu, \"features\": %zu, \"trees\": 60,\n",
               data.size(), data.n_features());
  std::fprintf(f,
               "  \"exact_fit_s\": %.4f, \"hist_fit_s\": %.4f, "
               "\"hist_bin_s\": %.4f,\n",
               exact_s, hist_s, hist_bin_s);
  std::fprintf(f, "  \"hist_vs_exact\": %.3f,\n", speedup);
  std::fprintf(f,
               "  \"loao_mape_perf_exact_pct\": %.3f, "
               "\"loao_mape_perf_hist_pct\": %.3f,\n",
               mape_exact.perf_pct, mape_hist.perf_pct);
  std::fprintf(f,
               "  \"loao_mape_energy_exact_pct\": %.3f, "
               "\"loao_mape_energy_hist_pct\": %.3f,\n",
               mape_exact.energy_pct, mape_hist.energy_pct);
  std::fprintf(f,
               "  \"perf_degrade_pp\": %.3f, \"energy_degrade_pp\": %.3f, "
               "\"combined_delta_pp\": %.3f\n}\n",
               perf_degrade_pp, energy_degrade_pp, combined_delta_pp);
  std::fclose(f);
  std::printf("wrote BENCH_training.json\n");

  // The histogram engine exists to make training cheap; on the Table-4
  // matrix it has to beat exact decisively, at unchanged accuracy.
  if (speedup < 4.0) {
    std::fprintf(stderr,
                 "FAIL: hist split engine only %.2fx the exact engine "
                 "(expected >= 4x)\n",
                 speedup);
    return 1;
  }
  if (perf_degrade_pp > 1.0 || energy_degrade_pp > 1.0) {
    std::fprintf(stderr,
                 "FAIL: hist degrades LOAO MAPE (perf %+.2f pp, energy "
                 "%+.2f pp; allowed <= +1 pp each)\n",
                 perf_degrade_pp, energy_degrade_pp);
    return 1;
  }
  if (combined_delta_pp > 1.0) {
    std::fprintf(stderr,
                 "FAIL: hist combined LOAO MAPE drifts %.2f pp from exact "
                 "(allowed <= 1 pp)\n",
                 combined_delta_pp);
    return 1;
  }

  if (smoke) return 0;

  // Thread-scaling sweep: same end-to-end work (all apps: DoE collection,
  // then train+tune on the pooled rows) at 1/2/4/N worker threads.
  std::vector<unsigned> thread_counts = {1, 2, 4};
  const unsigned hw = ThreadPool::default_threads();
  if (hw > 4) thread_counts.push_back(hw);

  std::printf("\nThread scaling (all apps, DoE collection + train+tune):\n");
  Table scaling(
      {"threads", "DoE run (s)", "Train+Tune (s)", "total (s)", "speedup"});
  double serial_total = 0.0;
  for (const unsigned threads : thread_counts) {
    auto copt = bench::bench_collect_options();
    copt.n_threads = threads;
    auto mopt = bench::bench_model_options(true);
    mopt.n_threads = threads;

    std::vector<core::TrainingRow> rows;
    bench::Timer doe_timer;
    for (const auto* w : workloads::all_workloads())
      core::collect_training_data(*w, copt, rows);
    const double doe_s = doe_timer.seconds();

    bench::Timer train_timer;
    core::NapelModel model;
    model.train(rows, mopt);
    const double train_s = train_timer.seconds();

    const double total_s = doe_s + train_s;
    if (threads == 1) serial_total = total_s;
    scaling.add_row({std::to_string(threads), Table::fmt(doe_s, 2),
                     Table::fmt(train_s, 2), Table::fmt(total_s, 2),
                     Table::fmt(serial_total / total_s, 2) + "x"});
  }
  scaling.print(std::cout);
  return 0;
}
