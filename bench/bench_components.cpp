// Component micro-benchmarks (google-benchmark): throughput of the
// framework's building blocks — tracing, profiling, simulation, reuse
// distance tracking, and model training/inference. These underpin the
// Table-4 / Figure-4 timing results.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "ml/random_forest.hpp"
#include "napel/napel_model.hpp"
#include "napel/pipeline.hpp"
#include "profiler/profile.hpp"
#include "profiler/reuse_distance.hpp"
#include "sim/l1_cache.hpp"
#include "sim/simulator.hpp"
#include "trace/tracer.hpp"
#include "workloads/registry.hpp"

using namespace napel;

namespace {

const workloads::Workload& bench_workload() {
  return workloads::workload("gesummv");
}

workloads::WorkloadParams bench_input() {
  return workloads::WorkloadParams::central(
      bench_workload().doe_space(workloads::Scale::kBench));
}

void BM_TraceGeneration(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    trace::Tracer t;
    trace::CountingSink sink;
    t.attach(sink);
    bench_workload().run(t, bench_input(), 1);
    events += sink.total();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_TraceGeneration)->Unit(benchmark::kMillisecond);

void BM_Profiling(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    trace::Tracer t;
    profiler::ProfileBuilder builder;
    t.attach(builder);
    bench_workload().run(t, bench_input(), 1);
    const auto p = builder.build();
    events += p.total_instructions;
    benchmark::DoNotOptimize(p.features.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_Profiling)->Unit(benchmark::kMillisecond);

void BM_Simulation(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    const auto r = core::simulate_workload(
        bench_workload(), bench_input(), sim::ArchConfig::paper_default(), 1);
    events += r.instructions;
    benchmark::DoNotOptimize(r.cycles);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_Simulation)->Unit(benchmark::kMillisecond);

void BM_StackDistanceFenwick(benchmark::State& state) {
  const std::size_t universe = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  std::vector<std::uint64_t> stream(1 << 16);
  for (auto& b : stream) b = rng.uniform_index(universe);
  for (auto _ : state) {
    profiler::StackDistanceTracker tracker;
    std::uint64_t sum = 0;
    for (auto b : stream) sum += tracker.access(b) != 0;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_StackDistanceFenwick)->Arg(64)->Arg(4096)->Arg(1 << 18);

void BM_StackDistanceLru(benchmark::State& state) {
  // Loop-like PC stream: short distances dominate.
  std::vector<std::uint64_t> stream;
  for (int rep = 0; rep < 4096; ++rep)
    for (std::uint64_t pc = 0; pc < 16; ++pc) stream.push_back(pc);
  for (auto _ : state) {
    profiler::LruStackDistance tracker;
    std::uint64_t sum = 0;
    for (auto b : stream) sum += tracker.access(b) != 0;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_StackDistanceLru);

const std::vector<core::TrainingRow>& cached_rows() {
  static const std::vector<core::TrainingRow> rows = [] {
    core::CollectOptions o;
    o.scale = workloads::Scale::kTiny;
    o.archs_per_config = 2;
    o.arch_pool_size = 4;
    std::vector<core::TrainingRow> r;
    for (const char* app : {"atax", "gesummv", "mvt"})
      core::collect_training_data(workloads::workload(app), o, r);
    return r;
  }();
  return rows;
}

void BM_ForestTraining(benchmark::State& state) {
  const auto data = core::assemble_dataset(cached_rows(), core::Target::kIpc);
  ml::RandomForestParams params;
  params.n_trees = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    ml::RandomForest rf(params);
    rf.fit(data);
    benchmark::DoNotOptimize(rf.tree_count());
  }
}
BENCHMARK(BM_ForestTraining)->Arg(10)->Arg(50)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_ForestInference(benchmark::State& state) {
  const auto data = core::assemble_dataset(cached_rows(), core::Target::kIpc);
  ml::RandomForestParams params;
  params.n_trees = 100;
  ml::RandomForest rf(params);
  rf.fit(data);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rf.predict(data.row(i % data.size())));
    ++i;
  }
}
BENCHMARK(BM_ForestInference);

void BM_L1Cache(benchmark::State& state) {
  Rng rng(3);
  std::vector<std::uint64_t> addrs(1 << 14);
  for (auto& a : addrs) a = rng.uniform_index(1 << 12) * 64;
  sim::L1Cache cache(32, 2, 64);
  for (auto _ : state) {
    std::uint64_t hits = 0;
    for (auto a : addrs) hits += cache.access(a, false).hit;
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(addrs.size()));
}
BENCHMARK(BM_L1Cache);

}  // namespace

BENCHMARK_MAIN();
