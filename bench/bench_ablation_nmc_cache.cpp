// Ablation following the paper's own suggestion (§3.4): "for atax-like
// workloads, the introduction of a small cache or scratchpad memory in the
// NMC compute units (larger than the 128B L1 in Table 3) can be
// beneficial." Sweeps the per-PE L1 size and reports, per workload, the
// simulated NMC EDP and the resulting EDP reduction over the host —
// alongside NAPEL's prediction at each design point, demonstrating
// model-driven cache sizing without further simulation.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

using namespace napel;

int main() {
  bench::print_system_header(
      "Ablation: NMC L1 size (the paper's atax suggestion, Section 3.4)");

  // Train once on all applications.
  std::vector<core::TrainingRow> rows;
  bench::collect_all_apps(rows);
  core::NapelModel model;
  model.train(rows, bench::bench_model_options(false));

  const hostmodel::HostModel host(hostmodel::HostConfig::bench_scaled());
  const unsigned cache_lines[] = {2, 4, 8, 16, 32, 64};

  for (const char* app : {"atax", "gesummv", "bfs"}) {
    const auto& w = workloads::workload(app);
    const auto space = w.doe_space(workloads::Scale::kBench);
    const auto input = workloads::WorkloadParams::test_input(space);
    const auto profile = core::profile_workload(w, input, 404);
    const auto host_res = host.evaluate(profile);

    Table t({"L1 lines", "L1 bytes", "sim hit %", "sim EDP red.",
             "NAPEL EDP red.", "NAPEL IPC 80% band"});
    for (unsigned lines : cache_lines) {
      sim::ArchConfig arch = sim::ArchConfig::paper_default();
      arch.cache_lines = lines;
      const auto sim_res = core::simulate_workload(w, input, arch, 404);
      const auto pred = model.predict(profile, arch);
      const auto band = model.ipc_forest().predict_interval(
          core::model_features(profile, arch));
      std::string band_cell = "[";
      band_cell += Table::fmt(band.lo, 2);
      band_cell += ", ";
      band_cell += Table::fmt(band.hi, 2);
      band_cell += "]";
      t.add_row({std::to_string(lines),
                 std::to_string(lines * arch.cache_line_bytes),
                 Table::fmt(100.0 * sim_res.l1_hit_rate(), 1),
                 Table::fmt(host_res.edp / sim_res.edp, 2),
                 Table::fmt(host_res.edp / pred.edp, 2), std::move(band_cell)});
    }
    std::printf("--- %s (test input %s) ---\n", app,
                input.to_string().c_str());
    t.print(std::cout);
    std::printf("\n");
  }

  std::printf(
      "expected shape: EDP reduction grows once the per-PE L1 is large "
      "enough to hold a workload's hot working streams (gesummv's three "
      "streams, bfs's frontier arrays), confirming the paper's suggestion "
      "that NMC compute units benefit from a cache larger than the 128B "
      "Table 3 baseline; NAPEL tracks the trend within its training hull\n");
  return 0;
}
