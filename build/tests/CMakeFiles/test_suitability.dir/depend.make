# Empty dependencies file for test_suitability.
# This may be replaced when dependencies are built.
