file(REMOVE_RECURSE
  "CMakeFiles/test_suitability.dir/napel/test_suitability.cpp.o"
  "CMakeFiles/test_suitability.dir/napel/test_suitability.cpp.o.d"
  "test_suitability"
  "test_suitability.pdb"
  "test_suitability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_suitability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
