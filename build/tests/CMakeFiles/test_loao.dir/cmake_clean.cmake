file(REMOVE_RECURSE
  "CMakeFiles/test_loao.dir/napel/test_loao.cpp.o"
  "CMakeFiles/test_loao.dir/napel/test_loao.cpp.o.d"
  "test_loao"
  "test_loao.pdb"
  "test_loao[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_loao.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
