# Empty dependencies file for test_loao.
# This may be replaced when dependencies are built.
