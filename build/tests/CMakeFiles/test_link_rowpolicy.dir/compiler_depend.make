# Empty compiler generated dependencies file for test_link_rowpolicy.
# This may be replaced when dependencies are built.
