file(REMOVE_RECURSE
  "CMakeFiles/test_link_rowpolicy.dir/sim/test_link_rowpolicy.cpp.o"
  "CMakeFiles/test_link_rowpolicy.dir/sim/test_link_rowpolicy.cpp.o.d"
  "test_link_rowpolicy"
  "test_link_rowpolicy.pdb"
  "test_link_rowpolicy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_link_rowpolicy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
