
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ml/test_tuning.cpp" "tests/CMakeFiles/test_tuning.dir/ml/test_tuning.cpp.o" "gcc" "tests/CMakeFiles/test_tuning.dir/ml/test_tuning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/napel/CMakeFiles/napel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/doe/CMakeFiles/napel_doe.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/napel_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hostmodel/CMakeFiles/napel_hostmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/napel_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/napel_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/napel_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/napel_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/napel_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
