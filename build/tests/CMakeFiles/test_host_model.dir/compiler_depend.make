# Empty compiler generated dependencies file for test_host_model.
# This may be replaced when dependencies are built.
