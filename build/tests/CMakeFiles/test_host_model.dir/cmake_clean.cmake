file(REMOVE_RECURSE
  "CMakeFiles/test_host_model.dir/hostmodel/test_host_model.cpp.o"
  "CMakeFiles/test_host_model.dir/hostmodel/test_host_model.cpp.o.d"
  "test_host_model"
  "test_host_model.pdb"
  "test_host_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_host_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
