# Empty dependencies file for test_vault.
# This may be replaced when dependencies are built.
