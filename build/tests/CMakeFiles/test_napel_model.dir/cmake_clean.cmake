file(REMOVE_RECURSE
  "CMakeFiles/test_napel_model.dir/napel/test_model.cpp.o"
  "CMakeFiles/test_napel_model.dir/napel/test_model.cpp.o.d"
  "test_napel_model"
  "test_napel_model.pdb"
  "test_napel_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_napel_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
