file(REMOVE_RECURSE
  "CMakeFiles/test_flat_map.dir/common/test_flat_map.cpp.o"
  "CMakeFiles/test_flat_map.dir/common/test_flat_map.cpp.o.d"
  "test_flat_map"
  "test_flat_map.pdb"
  "test_flat_map[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flat_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
