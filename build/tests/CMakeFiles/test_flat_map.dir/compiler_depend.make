# Empty compiler generated dependencies file for test_flat_map.
# This may be replaced when dependencies are built.
