file(REMOVE_RECURSE
  "CMakeFiles/test_gbm.dir/ml/test_gbm.cpp.o"
  "CMakeFiles/test_gbm.dir/ml/test_gbm.cpp.o.d"
  "test_gbm"
  "test_gbm.pdb"
  "test_gbm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gbm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
