# Empty dependencies file for test_gbm.
# This may be replaced when dependencies are built.
