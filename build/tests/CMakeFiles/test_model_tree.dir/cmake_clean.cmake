file(REMOVE_RECURSE
  "CMakeFiles/test_model_tree.dir/ml/test_model_tree.cpp.o"
  "CMakeFiles/test_model_tree.dir/ml/test_model_tree.cpp.o.d"
  "test_model_tree"
  "test_model_tree.pdb"
  "test_model_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
