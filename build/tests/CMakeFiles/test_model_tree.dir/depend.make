# Empty dependencies file for test_model_tree.
# This may be replaced when dependencies are built.
