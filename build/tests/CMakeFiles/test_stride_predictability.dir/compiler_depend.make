# Empty compiler generated dependencies file for test_stride_predictability.
# This may be replaced when dependencies are built.
