file(REMOVE_RECURSE
  "CMakeFiles/test_stride_predictability.dir/profiler/test_stride_predictability.cpp.o"
  "CMakeFiles/test_stride_predictability.dir/profiler/test_stride_predictability.cpp.o.d"
  "test_stride_predictability"
  "test_stride_predictability.pdb"
  "test_stride_predictability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stride_predictability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
