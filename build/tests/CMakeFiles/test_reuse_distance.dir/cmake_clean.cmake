file(REMOVE_RECURSE
  "CMakeFiles/test_reuse_distance.dir/profiler/test_reuse_distance.cpp.o"
  "CMakeFiles/test_reuse_distance.dir/profiler/test_reuse_distance.cpp.o.d"
  "test_reuse_distance"
  "test_reuse_distance.pdb"
  "test_reuse_distance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reuse_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
