# Empty compiler generated dependencies file for test_ridge_linalg.
# This may be replaced when dependencies are built.
