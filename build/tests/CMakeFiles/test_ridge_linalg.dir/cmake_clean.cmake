file(REMOVE_RECURSE
  "CMakeFiles/test_ridge_linalg.dir/ml/test_ridge_linalg.cpp.o"
  "CMakeFiles/test_ridge_linalg.dir/ml/test_ridge_linalg.cpp.o.d"
  "test_ridge_linalg"
  "test_ridge_linalg.pdb"
  "test_ridge_linalg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ridge_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
