# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_list "/root/repo/build/tools/napel" "list")
set_tests_properties(cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_doe "/root/repo/build/tools/napel" "doe" "atax" "--scale" "tiny")
set_tests_properties(cli_doe PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build/tools/napel" "frobnicate")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_roundtrip "/usr/bin/cmake" "-DCLI=/root/repo/build/tools/napel" "-DWORKDIR=/root/repo/build/tools" "-P" "/root/repo/tools/cli_roundtrip_test.cmake")
set_tests_properties(cli_roundtrip PROPERTIES  LABELS "tools" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_record_simulate "/usr/bin/cmake" "-DCLI=/root/repo/build/tools/napel" "-DWORKDIR=/root/repo/build/tools" "-P" "/root/repo/tools/cli_trace_test.cmake")
set_tests_properties(cli_record_simulate PROPERTIES  LABELS "tools" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
