file(REMOVE_RECURSE
  "CMakeFiles/napel_cli.dir/napel_cli.cpp.o"
  "CMakeFiles/napel_cli.dir/napel_cli.cpp.o.d"
  "napel"
  "napel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/napel_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
