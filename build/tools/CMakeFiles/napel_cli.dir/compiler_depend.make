# Empty compiler generated dependencies file for napel_cli.
# This may be replaced when dependencies are built.
