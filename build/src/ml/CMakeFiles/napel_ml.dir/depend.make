# Empty dependencies file for napel_ml.
# This may be replaced when dependencies are built.
