
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/napel_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/napel_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/decision_tree.cpp" "src/ml/CMakeFiles/napel_ml.dir/decision_tree.cpp.o" "gcc" "src/ml/CMakeFiles/napel_ml.dir/decision_tree.cpp.o.d"
  "/root/repo/src/ml/gbm.cpp" "src/ml/CMakeFiles/napel_ml.dir/gbm.cpp.o" "gcc" "src/ml/CMakeFiles/napel_ml.dir/gbm.cpp.o.d"
  "/root/repo/src/ml/linalg.cpp" "src/ml/CMakeFiles/napel_ml.dir/linalg.cpp.o" "gcc" "src/ml/CMakeFiles/napel_ml.dir/linalg.cpp.o.d"
  "/root/repo/src/ml/mlp.cpp" "src/ml/CMakeFiles/napel_ml.dir/mlp.cpp.o" "gcc" "src/ml/CMakeFiles/napel_ml.dir/mlp.cpp.o.d"
  "/root/repo/src/ml/model_tree.cpp" "src/ml/CMakeFiles/napel_ml.dir/model_tree.cpp.o" "gcc" "src/ml/CMakeFiles/napel_ml.dir/model_tree.cpp.o.d"
  "/root/repo/src/ml/random_forest.cpp" "src/ml/CMakeFiles/napel_ml.dir/random_forest.cpp.o" "gcc" "src/ml/CMakeFiles/napel_ml.dir/random_forest.cpp.o.d"
  "/root/repo/src/ml/ridge.cpp" "src/ml/CMakeFiles/napel_ml.dir/ridge.cpp.o" "gcc" "src/ml/CMakeFiles/napel_ml.dir/ridge.cpp.o.d"
  "/root/repo/src/ml/scaler.cpp" "src/ml/CMakeFiles/napel_ml.dir/scaler.cpp.o" "gcc" "src/ml/CMakeFiles/napel_ml.dir/scaler.cpp.o.d"
  "/root/repo/src/ml/serialize.cpp" "src/ml/CMakeFiles/napel_ml.dir/serialize.cpp.o" "gcc" "src/ml/CMakeFiles/napel_ml.dir/serialize.cpp.o.d"
  "/root/repo/src/ml/tuning.cpp" "src/ml/CMakeFiles/napel_ml.dir/tuning.cpp.o" "gcc" "src/ml/CMakeFiles/napel_ml.dir/tuning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/napel_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
