file(REMOVE_RECURSE
  "libnapel_ml.a"
)
