file(REMOVE_RECURSE
  "CMakeFiles/napel_ml.dir/dataset.cpp.o"
  "CMakeFiles/napel_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/napel_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/napel_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/napel_ml.dir/gbm.cpp.o"
  "CMakeFiles/napel_ml.dir/gbm.cpp.o.d"
  "CMakeFiles/napel_ml.dir/linalg.cpp.o"
  "CMakeFiles/napel_ml.dir/linalg.cpp.o.d"
  "CMakeFiles/napel_ml.dir/mlp.cpp.o"
  "CMakeFiles/napel_ml.dir/mlp.cpp.o.d"
  "CMakeFiles/napel_ml.dir/model_tree.cpp.o"
  "CMakeFiles/napel_ml.dir/model_tree.cpp.o.d"
  "CMakeFiles/napel_ml.dir/random_forest.cpp.o"
  "CMakeFiles/napel_ml.dir/random_forest.cpp.o.d"
  "CMakeFiles/napel_ml.dir/ridge.cpp.o"
  "CMakeFiles/napel_ml.dir/ridge.cpp.o.d"
  "CMakeFiles/napel_ml.dir/scaler.cpp.o"
  "CMakeFiles/napel_ml.dir/scaler.cpp.o.d"
  "CMakeFiles/napel_ml.dir/serialize.cpp.o"
  "CMakeFiles/napel_ml.dir/serialize.cpp.o.d"
  "CMakeFiles/napel_ml.dir/tuning.cpp.o"
  "CMakeFiles/napel_ml.dir/tuning.cpp.o.d"
  "libnapel_ml.a"
  "libnapel_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/napel_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
