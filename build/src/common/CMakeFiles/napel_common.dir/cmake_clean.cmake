file(REMOVE_RECURSE
  "CMakeFiles/napel_common.dir/csv.cpp.o"
  "CMakeFiles/napel_common.dir/csv.cpp.o.d"
  "CMakeFiles/napel_common.dir/histogram.cpp.o"
  "CMakeFiles/napel_common.dir/histogram.cpp.o.d"
  "CMakeFiles/napel_common.dir/stats.cpp.o"
  "CMakeFiles/napel_common.dir/stats.cpp.o.d"
  "CMakeFiles/napel_common.dir/table.cpp.o"
  "CMakeFiles/napel_common.dir/table.cpp.o.d"
  "libnapel_common.a"
  "libnapel_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/napel_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
