# Empty dependencies file for napel_common.
# This may be replaced when dependencies are built.
