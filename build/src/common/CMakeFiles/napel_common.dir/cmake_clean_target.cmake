file(REMOVE_RECURSE
  "libnapel_common.a"
)
