# Empty dependencies file for napel_trace.
# This may be replaced when dependencies are built.
