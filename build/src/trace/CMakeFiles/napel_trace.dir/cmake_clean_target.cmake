file(REMOVE_RECURSE
  "libnapel_trace.a"
)
