file(REMOVE_RECURSE
  "CMakeFiles/napel_trace.dir/sink.cpp.o"
  "CMakeFiles/napel_trace.dir/sink.cpp.o.d"
  "CMakeFiles/napel_trace.dir/trace_file.cpp.o"
  "CMakeFiles/napel_trace.dir/trace_file.cpp.o.d"
  "CMakeFiles/napel_trace.dir/tracer.cpp.o"
  "CMakeFiles/napel_trace.dir/tracer.cpp.o.d"
  "libnapel_trace.a"
  "libnapel_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/napel_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
