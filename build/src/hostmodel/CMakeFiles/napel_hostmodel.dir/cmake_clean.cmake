file(REMOVE_RECURSE
  "CMakeFiles/napel_hostmodel.dir/host_model.cpp.o"
  "CMakeFiles/napel_hostmodel.dir/host_model.cpp.o.d"
  "libnapel_hostmodel.a"
  "libnapel_hostmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/napel_hostmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
