# Empty compiler generated dependencies file for napel_hostmodel.
# This may be replaced when dependencies are built.
