file(REMOVE_RECURSE
  "libnapel_hostmodel.a"
)
