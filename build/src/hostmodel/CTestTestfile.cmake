# CMake generated Testfile for 
# Source directory: /root/repo/src/hostmodel
# Build directory: /root/repo/build/src/hostmodel
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
