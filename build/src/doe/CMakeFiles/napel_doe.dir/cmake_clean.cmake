file(REMOVE_RECURSE
  "CMakeFiles/napel_doe.dir/doe.cpp.o"
  "CMakeFiles/napel_doe.dir/doe.cpp.o.d"
  "libnapel_doe.a"
  "libnapel_doe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/napel_doe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
