file(REMOVE_RECURSE
  "libnapel_doe.a"
)
