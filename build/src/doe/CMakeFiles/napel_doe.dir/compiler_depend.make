# Empty compiler generated dependencies file for napel_doe.
# This may be replaced when dependencies are built.
