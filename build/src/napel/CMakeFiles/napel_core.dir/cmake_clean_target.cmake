file(REMOVE_RECURSE
  "libnapel_core.a"
)
