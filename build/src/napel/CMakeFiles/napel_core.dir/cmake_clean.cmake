file(REMOVE_RECURSE
  "CMakeFiles/napel_core.dir/dse.cpp.o"
  "CMakeFiles/napel_core.dir/dse.cpp.o.d"
  "CMakeFiles/napel_core.dir/loao.cpp.o"
  "CMakeFiles/napel_core.dir/loao.cpp.o.d"
  "CMakeFiles/napel_core.dir/model_io.cpp.o"
  "CMakeFiles/napel_core.dir/model_io.cpp.o.d"
  "CMakeFiles/napel_core.dir/napel_model.cpp.o"
  "CMakeFiles/napel_core.dir/napel_model.cpp.o.d"
  "CMakeFiles/napel_core.dir/pipeline.cpp.o"
  "CMakeFiles/napel_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/napel_core.dir/suitability.cpp.o"
  "CMakeFiles/napel_core.dir/suitability.cpp.o.d"
  "libnapel_core.a"
  "libnapel_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/napel_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
