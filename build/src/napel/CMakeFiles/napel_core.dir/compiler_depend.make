# Empty compiler generated dependencies file for napel_core.
# This may be replaced when dependencies are built.
