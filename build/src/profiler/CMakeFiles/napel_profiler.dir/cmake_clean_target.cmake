file(REMOVE_RECURSE
  "libnapel_profiler.a"
)
