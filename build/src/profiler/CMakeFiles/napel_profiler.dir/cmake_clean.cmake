file(REMOVE_RECURSE
  "CMakeFiles/napel_profiler.dir/ilp.cpp.o"
  "CMakeFiles/napel_profiler.dir/ilp.cpp.o.d"
  "CMakeFiles/napel_profiler.dir/profile.cpp.o"
  "CMakeFiles/napel_profiler.dir/profile.cpp.o.d"
  "CMakeFiles/napel_profiler.dir/reuse_distance.cpp.o"
  "CMakeFiles/napel_profiler.dir/reuse_distance.cpp.o.d"
  "libnapel_profiler.a"
  "libnapel_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/napel_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
