
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profiler/ilp.cpp" "src/profiler/CMakeFiles/napel_profiler.dir/ilp.cpp.o" "gcc" "src/profiler/CMakeFiles/napel_profiler.dir/ilp.cpp.o.d"
  "/root/repo/src/profiler/profile.cpp" "src/profiler/CMakeFiles/napel_profiler.dir/profile.cpp.o" "gcc" "src/profiler/CMakeFiles/napel_profiler.dir/profile.cpp.o.d"
  "/root/repo/src/profiler/reuse_distance.cpp" "src/profiler/CMakeFiles/napel_profiler.dir/reuse_distance.cpp.o" "gcc" "src/profiler/CMakeFiles/napel_profiler.dir/reuse_distance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/napel_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/napel_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
