# Empty compiler generated dependencies file for napel_profiler.
# This may be replaced when dependencies are built.
