# Empty dependencies file for napel_workloads.
# This may be replaced when dependencies are built.
