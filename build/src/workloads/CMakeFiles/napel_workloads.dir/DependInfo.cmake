
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/kernels/atax.cpp" "src/workloads/CMakeFiles/napel_workloads.dir/kernels/atax.cpp.o" "gcc" "src/workloads/CMakeFiles/napel_workloads.dir/kernels/atax.cpp.o.d"
  "/root/repo/src/workloads/kernels/bfs.cpp" "src/workloads/CMakeFiles/napel_workloads.dir/kernels/bfs.cpp.o" "gcc" "src/workloads/CMakeFiles/napel_workloads.dir/kernels/bfs.cpp.o.d"
  "/root/repo/src/workloads/kernels/bp.cpp" "src/workloads/CMakeFiles/napel_workloads.dir/kernels/bp.cpp.o" "gcc" "src/workloads/CMakeFiles/napel_workloads.dir/kernels/bp.cpp.o.d"
  "/root/repo/src/workloads/kernels/chol.cpp" "src/workloads/CMakeFiles/napel_workloads.dir/kernels/chol.cpp.o" "gcc" "src/workloads/CMakeFiles/napel_workloads.dir/kernels/chol.cpp.o.d"
  "/root/repo/src/workloads/kernels/extended.cpp" "src/workloads/CMakeFiles/napel_workloads.dir/kernels/extended.cpp.o" "gcc" "src/workloads/CMakeFiles/napel_workloads.dir/kernels/extended.cpp.o.d"
  "/root/repo/src/workloads/kernels/gemver.cpp" "src/workloads/CMakeFiles/napel_workloads.dir/kernels/gemver.cpp.o" "gcc" "src/workloads/CMakeFiles/napel_workloads.dir/kernels/gemver.cpp.o.d"
  "/root/repo/src/workloads/kernels/gesummv.cpp" "src/workloads/CMakeFiles/napel_workloads.dir/kernels/gesummv.cpp.o" "gcc" "src/workloads/CMakeFiles/napel_workloads.dir/kernels/gesummv.cpp.o.d"
  "/root/repo/src/workloads/kernels/gramschmidt.cpp" "src/workloads/CMakeFiles/napel_workloads.dir/kernels/gramschmidt.cpp.o" "gcc" "src/workloads/CMakeFiles/napel_workloads.dir/kernels/gramschmidt.cpp.o.d"
  "/root/repo/src/workloads/kernels/kmeans.cpp" "src/workloads/CMakeFiles/napel_workloads.dir/kernels/kmeans.cpp.o" "gcc" "src/workloads/CMakeFiles/napel_workloads.dir/kernels/kmeans.cpp.o.d"
  "/root/repo/src/workloads/kernels/lu.cpp" "src/workloads/CMakeFiles/napel_workloads.dir/kernels/lu.cpp.o" "gcc" "src/workloads/CMakeFiles/napel_workloads.dir/kernels/lu.cpp.o.d"
  "/root/repo/src/workloads/kernels/mvt.cpp" "src/workloads/CMakeFiles/napel_workloads.dir/kernels/mvt.cpp.o" "gcc" "src/workloads/CMakeFiles/napel_workloads.dir/kernels/mvt.cpp.o.d"
  "/root/repo/src/workloads/kernels/syrk.cpp" "src/workloads/CMakeFiles/napel_workloads.dir/kernels/syrk.cpp.o" "gcc" "src/workloads/CMakeFiles/napel_workloads.dir/kernels/syrk.cpp.o.d"
  "/root/repo/src/workloads/kernels/trmm.cpp" "src/workloads/CMakeFiles/napel_workloads.dir/kernels/trmm.cpp.o" "gcc" "src/workloads/CMakeFiles/napel_workloads.dir/kernels/trmm.cpp.o.d"
  "/root/repo/src/workloads/params.cpp" "src/workloads/CMakeFiles/napel_workloads.dir/params.cpp.o" "gcc" "src/workloads/CMakeFiles/napel_workloads.dir/params.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/workloads/CMakeFiles/napel_workloads.dir/registry.cpp.o" "gcc" "src/workloads/CMakeFiles/napel_workloads.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/napel_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/napel_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
