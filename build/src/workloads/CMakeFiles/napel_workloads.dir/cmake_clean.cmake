file(REMOVE_RECURSE
  "CMakeFiles/napel_workloads.dir/kernels/atax.cpp.o"
  "CMakeFiles/napel_workloads.dir/kernels/atax.cpp.o.d"
  "CMakeFiles/napel_workloads.dir/kernels/bfs.cpp.o"
  "CMakeFiles/napel_workloads.dir/kernels/bfs.cpp.o.d"
  "CMakeFiles/napel_workloads.dir/kernels/bp.cpp.o"
  "CMakeFiles/napel_workloads.dir/kernels/bp.cpp.o.d"
  "CMakeFiles/napel_workloads.dir/kernels/chol.cpp.o"
  "CMakeFiles/napel_workloads.dir/kernels/chol.cpp.o.d"
  "CMakeFiles/napel_workloads.dir/kernels/extended.cpp.o"
  "CMakeFiles/napel_workloads.dir/kernels/extended.cpp.o.d"
  "CMakeFiles/napel_workloads.dir/kernels/gemver.cpp.o"
  "CMakeFiles/napel_workloads.dir/kernels/gemver.cpp.o.d"
  "CMakeFiles/napel_workloads.dir/kernels/gesummv.cpp.o"
  "CMakeFiles/napel_workloads.dir/kernels/gesummv.cpp.o.d"
  "CMakeFiles/napel_workloads.dir/kernels/gramschmidt.cpp.o"
  "CMakeFiles/napel_workloads.dir/kernels/gramschmidt.cpp.o.d"
  "CMakeFiles/napel_workloads.dir/kernels/kmeans.cpp.o"
  "CMakeFiles/napel_workloads.dir/kernels/kmeans.cpp.o.d"
  "CMakeFiles/napel_workloads.dir/kernels/lu.cpp.o"
  "CMakeFiles/napel_workloads.dir/kernels/lu.cpp.o.d"
  "CMakeFiles/napel_workloads.dir/kernels/mvt.cpp.o"
  "CMakeFiles/napel_workloads.dir/kernels/mvt.cpp.o.d"
  "CMakeFiles/napel_workloads.dir/kernels/syrk.cpp.o"
  "CMakeFiles/napel_workloads.dir/kernels/syrk.cpp.o.d"
  "CMakeFiles/napel_workloads.dir/kernels/trmm.cpp.o"
  "CMakeFiles/napel_workloads.dir/kernels/trmm.cpp.o.d"
  "CMakeFiles/napel_workloads.dir/params.cpp.o"
  "CMakeFiles/napel_workloads.dir/params.cpp.o.d"
  "CMakeFiles/napel_workloads.dir/registry.cpp.o"
  "CMakeFiles/napel_workloads.dir/registry.cpp.o.d"
  "libnapel_workloads.a"
  "libnapel_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/napel_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
