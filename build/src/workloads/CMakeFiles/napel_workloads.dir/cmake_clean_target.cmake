file(REMOVE_RECURSE
  "libnapel_workloads.a"
)
