file(REMOVE_RECURSE
  "CMakeFiles/napel_sim.dir/arch.cpp.o"
  "CMakeFiles/napel_sim.dir/arch.cpp.o.d"
  "CMakeFiles/napel_sim.dir/l1_cache.cpp.o"
  "CMakeFiles/napel_sim.dir/l1_cache.cpp.o.d"
  "CMakeFiles/napel_sim.dir/link.cpp.o"
  "CMakeFiles/napel_sim.dir/link.cpp.o.d"
  "CMakeFiles/napel_sim.dir/simulator.cpp.o"
  "CMakeFiles/napel_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/napel_sim.dir/vault.cpp.o"
  "CMakeFiles/napel_sim.dir/vault.cpp.o.d"
  "libnapel_sim.a"
  "libnapel_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/napel_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
