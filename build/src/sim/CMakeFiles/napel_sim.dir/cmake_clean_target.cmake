file(REMOVE_RECURSE
  "libnapel_sim.a"
)
