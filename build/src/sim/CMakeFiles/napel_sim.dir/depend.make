# Empty dependencies file for napel_sim.
# This may be replaced when dependencies are built.
