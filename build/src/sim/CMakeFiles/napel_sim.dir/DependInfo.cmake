
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/arch.cpp" "src/sim/CMakeFiles/napel_sim.dir/arch.cpp.o" "gcc" "src/sim/CMakeFiles/napel_sim.dir/arch.cpp.o.d"
  "/root/repo/src/sim/l1_cache.cpp" "src/sim/CMakeFiles/napel_sim.dir/l1_cache.cpp.o" "gcc" "src/sim/CMakeFiles/napel_sim.dir/l1_cache.cpp.o.d"
  "/root/repo/src/sim/link.cpp" "src/sim/CMakeFiles/napel_sim.dir/link.cpp.o" "gcc" "src/sim/CMakeFiles/napel_sim.dir/link.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/napel_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/napel_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/vault.cpp" "src/sim/CMakeFiles/napel_sim.dir/vault.cpp.o" "gcc" "src/sim/CMakeFiles/napel_sim.dir/vault.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/napel_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/napel_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
