# Empty compiler generated dependencies file for bench_ablation_doe.
# This may be replaced when dependencies are built.
