file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_doe.dir/bench_ablation_doe.cpp.o"
  "CMakeFiles/bench_ablation_doe.dir/bench_ablation_doe.cpp.o.d"
  "bench_ablation_doe"
  "bench_ablation_doe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_doe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
