file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_edp.dir/bench_fig7_edp.cpp.o"
  "CMakeFiles/bench_fig7_edp.dir/bench_fig7_edp.cpp.o.d"
  "bench_fig7_edp"
  "bench_fig7_edp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_edp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
