file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_host.dir/bench_fig6_host.cpp.o"
  "CMakeFiles/bench_fig6_host.dir/bench_fig6_host.cpp.o.d"
  "bench_fig6_host"
  "bench_fig6_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
