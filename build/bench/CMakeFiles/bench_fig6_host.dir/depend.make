# Empty dependencies file for bench_fig6_host.
# This may be replaced when dependencies are built.
