# Empty dependencies file for bench_table2_doe_configs.
# This may be replaced when dependencies are built.
