# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  LABELS "examples" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_profile_inspector "/root/repo/build/examples/profile_inspector" "bfs")
set_tests_properties(example_profile_inspector PROPERTIES  LABELS "examples" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_workflow "/root/repo/build/examples/trace_workflow")
set_tests_properties(example_trace_workflow PROPERTIES  LABELS "examples" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dse_sweep "/root/repo/build/examples/dse_sweep")
set_tests_properties(example_dse_sweep PROPERTIES  LABELS "examples" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_nmc_suitability "/root/repo/build/examples/nmc_suitability" "mvt")
set_tests_properties(example_nmc_suitability PROPERTIES  LABELS "examples" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
