file(REMOVE_RECURSE
  "CMakeFiles/nmc_suitability.dir/nmc_suitability.cpp.o"
  "CMakeFiles/nmc_suitability.dir/nmc_suitability.cpp.o.d"
  "nmc_suitability"
  "nmc_suitability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmc_suitability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
