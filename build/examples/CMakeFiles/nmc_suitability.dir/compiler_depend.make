# Empty compiler generated dependencies file for nmc_suitability.
# This may be replaced when dependencies are built.
