file(REMOVE_RECURSE
  "CMakeFiles/dse_sweep.dir/dse_sweep.cpp.o"
  "CMakeFiles/dse_sweep.dir/dse_sweep.cpp.o.d"
  "dse_sweep"
  "dse_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dse_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
