# Empty dependencies file for dse_sweep.
# This may be replaced when dependencies are built.
