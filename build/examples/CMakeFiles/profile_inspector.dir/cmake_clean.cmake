file(REMOVE_RECURSE
  "CMakeFiles/profile_inspector.dir/profile_inspector.cpp.o"
  "CMakeFiles/profile_inspector.dir/profile_inspector.cpp.o.d"
  "profile_inspector"
  "profile_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
