#include <gtest/gtest.h>

#include "trace/sink.hpp"
#include "trace/tracer.hpp"
#include "workloads/registry.hpp"

namespace napel::workloads {
namespace {

using trace::CountingSink;
using trace::OpType;
using trace::Tracer;

TEST(ExtendedSuite, HasThreeWorkloadsReachableByName) {
  EXPECT_EQ(extended_workloads().size(), 3u);
  for (const char* name : {"gemm", "jacobi2d", "spmv"}) {
    EXPECT_TRUE(has_workload(name)) << name;
    EXPECT_EQ(workload(name).name(), name);
  }
}

TEST(ExtendedSuite, NotPartOfThePaperTwelve) {
  for (const auto* w : all_workloads())
    for (const auto* e : extended_workloads())
      EXPECT_NE(w->name(), e->name());
  EXPECT_EQ(all_workloads().size(), 12u);
}

class ExtendedWorkloadTest : public ::testing::TestWithParam<const Workload*> {
};

TEST_P(ExtendedWorkloadTest, RunsAtTinyScale) {
  const Workload& w = *GetParam();
  Tracer t;
  CountingSink sink;
  t.attach(sink);
  const auto space = w.doe_space(Scale::kTiny);
  w.run(t, WorkloadParams::central(space), 1);
  EXPECT_GT(sink.total(), 50u);
  EXPECT_GT(sink.memory_ops(), 0u);
}

TEST_P(ExtendedWorkloadTest, DoeSpacesAreWellFormed) {
  const Workload& w = *GetParam();
  for (Scale s : {Scale::kPaper, Scale::kBench, Scale::kTiny}) {
    const auto space = w.doe_space(s);
    for (const auto& p : space.params) {
      for (int i = 0; i < 4; ++i) EXPECT_LT(p.levels[i], p.levels[i + 1]);
      EXPECT_GE(p.test, 1);
    }
    EXPECT_TRUE(space.has_param("threads"));
  }
}

TEST_P(ExtendedWorkloadTest, DeterministicBySeed) {
  const Workload& w = *GetParam();
  const auto space = w.doe_space(Scale::kTiny);
  const auto params = WorkloadParams::central(space);
  std::uint64_t counts[2];
  for (int r = 0; r < 2; ++r) {
    Tracer t;
    CountingSink sink;
    t.attach(sink);
    w.run(t, params, 44);
    counts[r] = sink.total();
  }
  EXPECT_EQ(counts[0], counts[1]);
}

std::string ext_name(const ::testing::TestParamInfo<const Workload*>& info) {
  return std::string(info.param->name());
}

INSTANTIATE_TEST_SUITE_P(Ext, ExtendedWorkloadTest,
                         ::testing::ValuesIn(extended_workloads().begin(),
                                             extended_workloads().end()),
                         ext_name);

TEST(ExtendedSuite, GemmOpCountMatchesDims) {
  const auto& w = workload("gemm");
  WorkloadParams p;
  p.set("dimension_i", 4);
  p.set("dimension_j", 5);
  p.set("dimension_k", 6);
  p.set("threads", 1);
  Tracer t;
  CountingSink sink;
  t.attach(sink);
  w.run(t, p, 1);
  // Two FpMul per inner iteration (alpha*a*b) plus one per c scaling.
  EXPECT_EQ(sink.count(OpType::kFpMul), 4u * 5u * (6u * 2u + 1u));
}

TEST(ExtendedSuite, SpmvIsIrregular) {
  const auto& w = workload("spmv");
  const auto space = w.doe_space(Scale::kTiny);
  Tracer t;
  trace::VectorSink sink;
  t.attach(sink);
  w.run(t, WorkloadParams::central(space), 3);
  // The x-gather must produce loads whose address generation depends on a
  // register (indexed loads).
  bool any_indexed_load = false;
  for (const auto& ev : sink.events())
    if (ev.op == OpType::kLoad && ev.src1 != trace::kNoReg)
      any_indexed_load = true;
  EXPECT_TRUE(any_indexed_load);
}

TEST(ExtendedSuite, JacobiIterationsAlternateBuffers) {
  const auto& w = workload("jacobi2d");
  WorkloadParams p1, p2;
  for (auto* p : {&p1, &p2}) {
    p->set("dimension", 8);
    p->set("threads", 1);
  }
  p1.set("iterations", 1);
  p2.set("iterations", 2);
  Tracer t1, t2;
  CountingSink s1, s2;
  t1.attach(s1);
  t2.attach(s2);
  w.run(t1, p1, 1);
  w.run(t2, p2, 1);
  EXPECT_GT(s2.total(), s1.total());
}

}  // namespace
}  // namespace napel::workloads
