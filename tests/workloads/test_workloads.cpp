#include "workloads/registry.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <string>

#include "trace/sink.hpp"
#include "trace/tracer.hpp"
#include "workloads/params.hpp"

namespace napel::workloads {
namespace {

using trace::CountingSink;
using trace::OpType;
using trace::Tracer;

TEST(Registry, HasAllTwelveApplications) {
  EXPECT_EQ(all_workloads().size(), 12u);
  for (const char* name :
       {"atax", "bfs", "bp", "cholesky", "gemver", "gesummv", "gramschmidt",
        "kmeans", "lu", "mvt", "syrk", "trmm"}) {
    EXPECT_TRUE(has_workload(name)) << name;
    EXPECT_EQ(workload(name).name(), name);
  }
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_FALSE(has_workload("nope"));
  EXPECT_THROW(workload("nope"), std::invalid_argument);
}

TEST(Registry, NamesAreUnique) {
  std::set<std::string_view> names;
  for (const auto* w : all_workloads()) names.insert(w->name());
  EXPECT_EQ(names.size(), 12u);
}

TEST(DoeParam, NormalizesLevelOrderAndRejectsDuplicates) {
  DoeParam p("x", {5, 1, 3, 2, 4}, 10);
  EXPECT_EQ(p.minimum(), 1);
  EXPECT_EQ(p.low(), 2);
  EXPECT_EQ(p.central(), 3);
  EXPECT_EQ(p.high(), 4);
  EXPECT_EQ(p.maximum(), 5);
  EXPECT_THROW(DoeParam("y", {1, 1, 2, 3, 4}, 1), std::invalid_argument);
  EXPECT_THROW(DoeParam("z", {0, 1, 2, 3, 4}, 1), std::invalid_argument);
}

TEST(WorkloadParams, AccessorsAndRendering) {
  WorkloadParams p;
  p.set("b", 2);
  p.set("a", 1);
  EXPECT_EQ(p.get("a"), 1);
  EXPECT_EQ(p.get_or("missing", 9), 9);
  EXPECT_TRUE(p.has("b"));
  EXPECT_FALSE(p.has("c"));
  EXPECT_THROW(p.get("c"), std::invalid_argument);
  EXPECT_EQ(p.to_string(), "a=1,b=2");  // sorted by name
}

class WorkloadSuiteTest : public ::testing::TestWithParam<const Workload*> {};

TEST_P(WorkloadSuiteTest, DoeSpacesAreWellFormedAtEveryScale) {
  const Workload& w = *GetParam();
  for (Scale s : {Scale::kPaper, Scale::kBench, Scale::kTiny}) {
    const DoeSpace space = w.doe_space(s);
    EXPECT_GE(space.dimension(), 2u);
    EXPECT_LE(space.dimension(), 4u);
    for (const auto& p : space.params) {
      for (int i = 0; i < 4; ++i)
        EXPECT_LT(p.levels[i], p.levels[i + 1]) << w.name() << ':' << p.name;
      EXPECT_GE(p.test, 1) << w.name() << ':' << p.name;
    }
    EXPECT_TRUE(space.has_param("threads")) << w.name();
  }
}

TEST_P(WorkloadSuiteTest, ScalesShrinkTowardTiny) {
  const Workload& w = *GetParam();
  const auto paper = w.doe_space(Scale::kPaper);
  const auto tiny = w.doe_space(Scale::kTiny);
  // Same parameter names in the same order at every scale.
  ASSERT_EQ(paper.dimension(), tiny.dimension());
  for (std::size_t i = 0; i < paper.dimension(); ++i) {
    EXPECT_EQ(paper.params[i].name, tiny.params[i].name);
    EXPECT_LE(tiny.params[i].maximum(), paper.params[i].maximum());
  }
}

TEST_P(WorkloadSuiteTest, RunsAtTinyCentralAndEmitsWork) {
  const Workload& w = *GetParam();
  Tracer t;
  CountingSink sink;
  t.attach(sink);
  const auto space = w.doe_space(Scale::kTiny);
  w.run(t, WorkloadParams::central(space), 1);
  EXPECT_EQ(sink.kernel_name(), w.name());
  EXPECT_GT(sink.total(), 100u);
  EXPECT_GT(sink.memory_ops(), 0u);
  EXPECT_GT(sink.count(OpType::kBranch), 0u);
}

TEST_P(WorkloadSuiteTest, SameSeedSameTrace) {
  const Workload& w = *GetParam();
  const auto space = w.doe_space(Scale::kTiny);
  const auto params = WorkloadParams::central(space);
  std::array<std::uint64_t, 2> totals{};
  std::array<std::uint64_t, 2> loads{};
  for (int r = 0; r < 2; ++r) {
    Tracer t;
    CountingSink sink;
    t.attach(sink);
    w.run(t, params, 99);
    totals[r] = sink.total();
    loads[r] = sink.count(OpType::kLoad);
  }
  EXPECT_EQ(totals[0], totals[1]);
  EXPECT_EQ(loads[0], loads[1]);
}

TEST_P(WorkloadSuiteTest, EveryThreadReceivesWork) {
  const Workload& w = *GetParam();
  const auto space = w.doe_space(Scale::kTiny);
  auto params = WorkloadParams::central(space);
  params.set("threads", 2);
  Tracer t;
  CountingSink sink;
  t.attach(sink);
  w.run(t, params, 3);
  ASSERT_EQ(sink.n_threads(), 2u);
  EXPECT_GT(sink.count_for_thread(0), 0u);
  EXPECT_GT(sink.count_for_thread(1), 0u);
}

TEST_P(WorkloadSuiteTest, LargerInputEmitsMoreInstructions) {
  const Workload& w = *GetParam();
  const auto space = w.doe_space(Scale::kTiny);
  WorkloadParams small, large;
  for (const auto& p : space.params) {
    small.set(p.name, p.name == "threads" ? p.central() : p.minimum());
    large.set(p.name, p.name == "threads" ? p.central() : p.maximum());
  }
  Tracer t1, t2;
  CountingSink s1, s2;
  t1.attach(s1);
  t2.attach(s2);
  w.run(t1, small, 5);
  w.run(t2, large, 5);
  EXPECT_LT(s1.total(), s2.total()) << w.name();
}

TEST_P(WorkloadSuiteTest, TestInputRunsAtTinyScale) {
  const Workload& w = *GetParam();
  const auto space = w.doe_space(Scale::kTiny);
  Tracer t;
  CountingSink sink;
  t.attach(sink);
  w.run(t, WorkloadParams::test_input(space), 11);
  EXPECT_GT(sink.total(), 0u);
}

std::string workload_name(
    const ::testing::TestParamInfo<const Workload*>& info) {
  return std::string(info.param->name());
}

INSTANTIATE_TEST_SUITE_P(AllApps, WorkloadSuiteTest,
                         ::testing::ValuesIn(all_workloads().begin(),
                                             all_workloads().end()),
                         workload_name);

// --- numerical correctness spot checks against untraced references ---

TEST(KernelCorrectness, CholeskyFactorReconstructsInput) {
  const auto& w = workload("cholesky");
  // Run with a captured trace of stores to recover the factored matrix is
  // intrusive; instead validate the library's SPD generator + the kernel's
  // invariant indirectly: run must not throw (sqrt of non-positive pivot
  // throws via tsqrt's check).
  Tracer t;
  const auto space = w.doe_space(Scale::kTiny);
  EXPECT_NO_THROW(w.run(t, WorkloadParams::central(space), 123));
}

TEST(KernelCorrectness, BfsVisitsReachableNodes) {
  // The bfs kernel's frontier loop must terminate (guaranteed by `visited`
  // monotonicity) — run with several seeds.
  const auto& w = workload("bfs");
  const auto space = w.doe_space(Scale::kTiny);
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    Tracer t;
    EXPECT_NO_THROW(w.run(t, WorkloadParams::central(space), seed));
  }
}

TEST(KernelCorrectness, AtaxMatchesDenseReference) {
  // atax with dimension d emits exactly 2·d² multiply-accumulate pairs of
  // FpMul ops (one per matrix element per pass).
  const auto& w = workload("atax");
  WorkloadParams p;
  p.set("dimension", 10);
  p.set("threads", 1);
  Tracer t;
  CountingSink sink;
  t.attach(sink);
  w.run(t, p, 7);
  EXPECT_EQ(sink.count(OpType::kFpMul), 200u);
}

TEST(KernelCorrectness, GesummvOpCountScalesWithIterations) {
  const auto& w = workload("gesummv");
  WorkloadParams p1, p3;
  for (auto* p : {&p1, &p3}) {
    p->set("dimension", 8);
    p->set("threads", 1);
  }
  p1.set("iterations", 1);
  p3.set("iterations", 3);
  Tracer t1, t3;
  CountingSink s1, s3;
  t1.attach(s1);
  t3.attach(s3);
  w.run(t1, p1, 7);
  w.run(t3, p3, 7);
  EXPECT_EQ(s3.count(OpType::kFpMul), 3 * s1.count(OpType::kFpMul));
}

}  // namespace
}  // namespace napel::workloads
