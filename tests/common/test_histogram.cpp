#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace napel {
namespace {

TEST(Log2Histogram, BucketIndexBoundaries) {
  Log2Histogram h;
  EXPECT_EQ(h.bucket_index(0), 0u);   // value 0 -> bucket 0
  EXPECT_EQ(h.bucket_index(1), 1u);   // values 1..2 -> bucket 1
  EXPECT_EQ(h.bucket_index(2), 1u);
  EXPECT_EQ(h.bucket_index(3), 2u);   // values 3..6 -> bucket 2
  EXPECT_EQ(h.bucket_index(6), 2u);
  EXPECT_EQ(h.bucket_index(7), 3u);
}

TEST(Log2Histogram, BucketLowerBoundInvertsIndex) {
  Log2Histogram h;
  for (std::size_t b = 0; b < 40; ++b) {
    const auto lo = Log2Histogram::bucket_lower_bound(b);
    EXPECT_EQ(h.bucket_index(lo), b);
    if (b > 0) {
      EXPECT_EQ(h.bucket_index(lo - 1), b - 1);
    }
  }
}

TEST(Log2Histogram, SaturatesIntoLastBucket) {
  Log2Histogram h(4);
  h.add(1'000'000);
  EXPECT_EQ(h.bucket(3), 1u);
}

TEST(Log2Histogram, TotalTracksMass) {
  Log2Histogram h;
  h.add(1);
  h.add(5, 3);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Log2Histogram, FractionsSumToOne) {
  Log2Histogram h(16);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) h.add(rng.uniform_index(5000));
  const auto f = h.fractions();
  double s = 0.0;
  for (double x : f) s += x;
  EXPECT_NEAR(s, 1.0, 1e-12);
}

TEST(Log2Histogram, EmptyHistogramIsAllZero) {
  Log2Histogram h(8);
  EXPECT_EQ(h.total(), 0u);
  for (double f : h.fractions()) EXPECT_DOUBLE_EQ(f, 0.0);
  EXPECT_DOUBLE_EQ(h.fraction_below(100), 0.0);
  EXPECT_DOUBLE_EQ(h.approximate_mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.approximate_percentile(50), 0.0);
}

TEST(Log2Histogram, FractionBelowFullyCoveredBucketCountsFully) {
  Log2Histogram h;
  h.add(0, 10);  // bucket 0 holds values < 1
  EXPECT_DOUBLE_EQ(h.fraction_below(1), 1.0);
  EXPECT_DOUBLE_EQ(h.fraction_below(100), 1.0);
}

TEST(Log2Histogram, FractionBelowInterpolatesWithinBucket) {
  Log2Histogram h;
  h.add(10, 100);  // bucket 3 spans values [7, 15)
  EXPECT_DOUBLE_EQ(h.fraction_below(7), 0.0);
  EXPECT_NEAR(h.fraction_below(11), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(h.fraction_below(15), 1.0);
}

TEST(Log2Histogram, CumulativeFractionIsMonotone) {
  Log2Histogram h(20);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) h.add(rng.uniform_index(100000));
  double prev = 0.0;
  for (std::size_t b = 0; b < h.bucket_count(); ++b) {
    const double c = h.cumulative_fraction(b);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_NEAR(prev, 1.0, 1e-12);
}

TEST(Log2Histogram, ApproximateMeanUsesLowerBounds) {
  Log2Histogram h;
  h.add(1, 2);  // bucket 1, lower bound 1
  h.add(7, 2);  // bucket 3, lower bound 7
  EXPECT_NEAR(h.approximate_mean(), (1.0 * 2 + 7.0 * 2) / 4.0, 1e-12);
}

TEST(Log2Histogram, ApproximatePercentileOrdering) {
  Log2Histogram h(30);
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) h.add(rng.uniform_index(1u << 20));
  const double p10 = h.approximate_percentile(10);
  const double p50 = h.approximate_percentile(50);
  const double p90 = h.approximate_percentile(90);
  EXPECT_LE(p10, p50);
  EXPECT_LE(p50, p90);
}

TEST(Log2Histogram, RejectsInvalidBucketCount) {
  EXPECT_THROW(Log2Histogram(0), std::invalid_argument);
  EXPECT_THROW(Log2Histogram(100), std::invalid_argument);
}

}  // namespace
}  // namespace napel
