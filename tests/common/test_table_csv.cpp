#include <gtest/gtest.h>

#include "common/csv.hpp"
#include "common/table.hpp"

namespace napel {
namespace {

TEST(Table, RendersHeadersAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, RejectsWrongRowWidth) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, FormatsDoublesWithPrecision) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(3.14159, 4), "3.1416");
  EXPECT_EQ(Table::fmt_int(-42), "-42");
}

TEST(Table, ColumnsAlignToWidestCell) {
  Table t({"h"});
  t.add_row({"wide-cell-content"});
  const std::string s = t.to_string();
  // Every rendered line should have the same length.
  std::size_t first_len = s.find('\n');
  std::size_t pos = first_len + 1;
  while (pos < s.size()) {
    const std::size_t next = s.find('\n', pos);
    if (next == std::string::npos) break;
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

TEST(Csv, PlainFieldsPassThrough) {
  EXPECT_EQ(CsvWriter::escape("hello"), "hello");
}

TEST(Csv, QuotesFieldsWithCommas) {
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
}

TEST(Csv, DoublesEmbeddedQuotes) {
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, QuotesNewlines) {
  EXPECT_EQ(CsvWriter::escape("a\nb"), "\"a\nb\"");
}

TEST(Csv, RendersHeaderAndRows) {
  CsvWriter w({"x", "y"});
  w.add_row({"1", "2"});
  EXPECT_EQ(w.to_string(), "x,y\n1,2\n");
}

TEST(Csv, RejectsWrongRowWidth) {
  CsvWriter w({"x"});
  EXPECT_THROW(w.add_row({"1", "2"}), std::invalid_argument);
}

}  // namespace
}  // namespace napel
