#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace napel {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsProduceDifferentStreams) {
  Rng a(42), b(43);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformIsInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsNearHalf) {
  Rng rng(7);
  double s = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) s += rng.uniform();
  EXPECT_NEAR(s / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.5, 2.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.25);
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(5, 4), std::invalid_argument);
}

TEST(Rng, NormalHasExpectedMoments) {
  Rng rng(17);
  const int n = 200000;
  double s = 0.0, s2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    s += x;
    s2 += x * x;
  }
  EXPECT_NEAR(s / n, 0.0, 0.02);
  EXPECT_NEAR(s2 / n, 1.0, 0.03);
}

TEST(Rng, NormalScalesMeanAndStddev) {
  Rng rng(19);
  const int n = 100000;
  double s = 0.0;
  for (int i = 0; i < n; ++i) s += rng.normal(10.0, 2.0);
  EXPECT_NEAR(s / n, 10.0, 0.1);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(23);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto sorted = v;
  rng.shuffle(v);
  EXPECT_FALSE(std::is_sorted(v.begin(), v.end()));
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(31);
  Rng child = a.split();
  // Child and parent streams should not be identical.
  int equal = 0;
  for (int i = 0; i < 50; ++i)
    if (a() == child()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace napel
