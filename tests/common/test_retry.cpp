#include "common/retry.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace napel {
namespace {

TEST(RetryBackoff, ZeroBaseNeverSleeps) {
  RetryPolicy p;  // base_backoff_ms = 0
  for (std::size_t attempt = 1; attempt <= 5; ++attempt)
    EXPECT_EQ(retry_backoff(p, 7, attempt).count(), 0);
}

TEST(RetryBackoff, MatchesPipelineJitterFormula) {
  // The extracted policy must be bit-compatible with the pipeline
  // runtime's original backoff: capped doubled base plus SplitMix64 jitter
  // seeded from (seed, key, attempt).
  RetryPolicy p{.max_attempts = 5, .base_backoff_ms = 10, .seed = 2019};
  for (std::uint64_t key : {0ULL, 3ULL, 17ULL}) {
    for (std::size_t attempt = 1; attempt <= 3; ++attempt) {
      SplitMix64 sm(p.seed ^ (key * 0x9e3779b97f4a7c15ULL) ^ attempt);
      const std::uint64_t base = std::uint64_t{10} << (attempt - 1);
      const auto expect = base + sm.next() % (base + 1);
      EXPECT_EQ(retry_backoff(p, key, attempt).count(),
                static_cast<std::int64_t>(expect))
          << "key " << key << " attempt " << attempt;
    }
  }
}

TEST(RetryBackoff, DeterministicAcrossCalls) {
  RetryPolicy p{.base_backoff_ms = 5, .seed = 42};
  EXPECT_EQ(retry_backoff(p, 9, 2), retry_backoff(p, 9, 2));
  // Distinct keys draw independent jitter streams.
  EXPECT_NE(retry_backoff(p, 1, 3), retry_backoff(p, 2, 3));
}

TEST(RetryBackoff, ExponentialBaseIsCapped) {
  RetryPolicy p{.base_backoff_ms = 100, .max_backoff_ms = 250, .seed = 1};
  // attempt 3 would double to 400ms uncapped; the jitter is in [0, base],
  // so the delay is bounded by 2 * max_backoff_ms.
  const auto d = retry_backoff(p, 0, 3);
  EXPECT_GE(d.count(), 250);
  EXPECT_LE(d.count(), 500);
}

Result<int> counted(int* calls, int fail_until, ErrorKind kind) {
  ++*calls;
  if (*calls <= fail_until)
    return PipelineError{.kind = kind, .context = "t", .message = "boom"};
  return 7;
}

TEST(WithRetries, SucceedsFirstTryWithoutRetrying) {
  int calls = 0;
  std::size_t retries = 0;
  auto r = with_retries(
      RetryPolicy{}, 0, [&] { return counted(&calls, 0, ErrorKind::kIoError); },
      &retries);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(retries, 0u);
}

TEST(WithRetries, RetriesRetryableErrorToSuccess) {
  int calls = 0;
  std::size_t retries = 0;
  auto r = with_retries(
      RetryPolicy{.max_attempts = 3}, 0,
      [&] { return counted(&calls, 2, ErrorKind::kIoError); }, &retries);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2u);
}

TEST(WithRetries, ExhaustedBudgetReportsAttemptCount) {
  int calls = 0;
  auto r = with_retries(RetryPolicy{.max_attempts = 3}, 0, [&] {
    return counted(&calls, 99, ErrorKind::kInjectedFault);
  });
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(r.error().attempts, 3);
  EXPECT_EQ(r.error().kind, ErrorKind::kInjectedFault);
}

TEST(WithRetries, NonRetryableErrorFailsImmediately) {
  int calls = 0;
  auto r = with_retries(RetryPolicy{.max_attempts = 5}, 0, [&] {
    return counted(&calls, 99, ErrorKind::kModelReloadRejected);
  });
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(calls, 1);  // a structurally rejected model stays rejected
  EXPECT_EQ(r.error().attempts, 1);
}

TEST(ErrorKinds, ServingKindsRoundTripNamesAndRetryability) {
  EXPECT_STREQ(error_kind_name(ErrorKind::kOverload).data(), "overload");
  EXPECT_TRUE(error_kind_retryable(ErrorKind::kOverload));
  for (ErrorKind k :
       {ErrorKind::kDeadlineExceeded, ErrorKind::kBadRequest,
        ErrorKind::kModelReloadRejected, ErrorKind::kInterrupted}) {
    EXPECT_FALSE(error_kind_retryable(k)) << error_kind_name(k);
    EXPECT_FALSE(error_kind_name(k).empty());
  }
}

}  // namespace
}  // namespace napel
