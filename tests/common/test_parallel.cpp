// Thread-pool and parallel_for contract tests: exact coverage on uneven
// ranges, exception propagation, serial fallback, the NAPEL_THREADS
// override, and nested fork-join safety on deliberately tiny pools.
#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace napel {
namespace {

TEST(ParallelFor, CoversUnevenRangeExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1013;  // prime: never divides evenly
  std::vector<int> hits(kN, 0);     // distinct slots, no synchronization
  std::atomic<std::size_t> total{0};
  parallel_for(
      kN, 4,
      [&](std::size_t i) {
        ++hits[i];
        total.fetch_add(1, std::memory_order_relaxed);
      },
      &pool);
  EXPECT_EQ(total.load(), kN);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i], 1) << "index " << i;
}

TEST(ParallelFor, EmptyAndSingletonRanges) {
  ThreadPool pool(3);
  int calls = 0;
  parallel_for(0, 3, [&](std::size_t) { ++calls; }, &pool);
  EXPECT_EQ(calls, 0);
  parallel_for(1, 3, [&](std::size_t i) { calls += static_cast<int>(i) + 1; },
               &pool);
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, PropagatesWorkerException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(
          100, 4,
          [](std::size_t i) {
            if (i == 37) throw std::runtime_error("boom");
          },
          &pool),
      std::runtime_error);

  // The pool survives a failed region and runs subsequent work.
  std::atomic<int> after{0};
  parallel_for(8, 4, [&](std::size_t) { ++after; }, &pool);
  EXPECT_EQ(after.load(), 8);
}

TEST(ParallelFor, SingleThreadRunsInlineInOrder) {
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  parallel_for(16, 1, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  std::vector<std::size_t> expected(16);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, EnvOverrideControlsDefaultThreads) {
  ::setenv("NAPEL_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::default_threads(), 3u);
  ::setenv("NAPEL_THREADS", "0", 1);  // invalid: must fall back
  EXPECT_GE(ThreadPool::default_threads(), 1u);
  ::setenv("NAPEL_THREADS", "junk", 1);
  EXPECT_GE(ThreadPool::default_threads(), 1u);
  ::unsetenv("NAPEL_THREADS");
  EXPECT_GE(ThreadPool::default_threads(), 1u);

  ::setenv("NAPEL_THREADS", "2", 1);
  ThreadPool pool(0);  // 0 → default_threads() → the override
  EXPECT_EQ(pool.size(), 2u);
  ::unsetenv("NAPEL_THREADS");
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // A two-worker pool with 4x8 nested iterations: inner waits must help
  // drain the pool instead of blocking, or this test hangs.
  ThreadPool pool(2);
  std::atomic<int> sum{0};
  parallel_for(
      4, 2,
      [&](std::size_t) {
        parallel_for(8, 2, [&](std::size_t) { ++sum; }, &pool);
      },
      &pool);
  EXPECT_EQ(sum.load(), 32);
}

TEST(ThreadPool, DeeplyNestedOnSingleWorkerPool) {
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  parallel_for(
      3, 4,
      [&](std::size_t) {
        parallel_for(
            3, 4,
            [&](std::size_t) {
              parallel_for(3, 4, [&](std::size_t) { ++sum; }, &pool);
            },
            &pool);
      },
      &pool);
  EXPECT_EQ(sum.load(), 27);
}

TEST(TaskGroup, SubmitFromWorkerIsSafe) {
  ThreadPool pool(2);
  std::atomic<int> v{0};
  TaskGroup outer(pool);
  for (int i = 0; i < 4; ++i) {
    outer.run([&] {
      TaskGroup inner(pool);
      for (int j = 0; j < 4; ++j) inner.run([&] { ++v; });
      inner.wait();
    });
  }
  outer.wait();
  EXPECT_EQ(v.load(), 16);
}

TEST(TaskGroup, WaitRethrowsFirstFailureOnce) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  group.run([] { throw std::logic_error("first"); });
  EXPECT_THROW(group.wait(), std::logic_error);
  group.run([] {});
  EXPECT_NO_THROW(group.wait());  // error was consumed by the first wait
}

TEST(ParallelFor, ManyMoreTasksThanWorkers) {
  ThreadPool pool(2);
  std::vector<int> hits(257, 0);
  parallel_for(hits.size(), 16, [&](std::size_t i) { ++hits[i]; }, &pool);
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], 1);
}

}  // namespace
}  // namespace napel
