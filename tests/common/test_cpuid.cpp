// SIMD dispatch-level resolution (common/cpuid.hpp).
//
// These tests run inside the CI NAPEL_SIMD matrix, so they never assume
// the environment variable is unset: expectations that involve the env
// layer are computed from getenv("NAPEL_SIMD") itself.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>

#include "common/cpuid.hpp"

namespace napel {
namespace {

/// Clears any override installed by a test body, even on assertion exit.
struct OverrideGuard {
  ~OverrideGuard() { set_simd_level_override(std::nullopt); }
};

TEST(Cpuid, NamesAndParseRoundTrip) {
  for (const SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kPortable, SimdLevel::kAvx2}) {
    EXPECT_EQ(parse_simd_level(simd_level_name(level)), level);
  }
  EXPECT_STREQ(simd_level_name(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(simd_level_name(SimdLevel::kPortable), "portable");
  EXPECT_STREQ(simd_level_name(SimdLevel::kAvx2), "avx2");
}

TEST(Cpuid, ParseRejectsUnknownNamesLoudly) {
  for (const char* bad : {"", "AVX2", "sse", "avx512", "scalar ", "auto"}) {
    EXPECT_THROW((void)parse_simd_level(bad), std::invalid_argument) << bad;
  }
}

TEST(Cpuid, ScalarAndPortableAlwaysExecutable) {
  EXPECT_TRUE(cpu_supports(SimdLevel::kScalar));
  EXPECT_TRUE(cpu_supports(SimdLevel::kPortable));
  EXPECT_GE(max_cpu_simd_level(), SimdLevel::kPortable);
  EXPECT_EQ(cpu_supports(SimdLevel::kAvx2),
            max_cpu_simd_level() == SimdLevel::kAvx2);
}

TEST(Cpuid, ClampNeverRaisesAndKeepsSupportedLevels) {
  const SimdLevel max = max_cpu_simd_level();
  for (const SimdLevel req :
       {SimdLevel::kScalar, SimdLevel::kPortable, SimdLevel::kAvx2}) {
    const SimdLevel got = clamp_to_cpu(req);
    EXPECT_LE(got, req);          // never clamps up
    EXPECT_LE(got, max);          // never exceeds the hardware
    EXPECT_TRUE(cpu_supports(got));
    if (cpu_supports(req)) {
      EXPECT_EQ(got, req);  // a supported request is untouched
    }
  }
}

TEST(Cpuid, OverrideBeatsEnvironmentAndClearsCleanly) {
  const OverrideGuard guard;
  for (const SimdLevel req :
       {SimdLevel::kScalar, SimdLevel::kPortable, SimdLevel::kAvx2}) {
    set_simd_level_override(req);
    EXPECT_EQ(resolved_simd_level(), clamp_to_cpu(req))
        << simd_level_name(req);
  }

  // With the override cleared, resolution falls back to NAPEL_SIMD when
  // the CI matrix exported it, else to the CPU maximum.
  set_simd_level_override(std::nullopt);
  SimdLevel expected = max_cpu_simd_level();
  if (const char* env = std::getenv("NAPEL_SIMD"); env != nullptr) {
    expected = clamp_to_cpu(parse_simd_level(env));
  }
  EXPECT_EQ(resolved_simd_level(), expected);
}

TEST(Cpuid, ResolvedLevelIsAlwaysExecutable) {
  const OverrideGuard guard;
  set_simd_level_override(SimdLevel::kAvx2);  // may exceed the hardware
  EXPECT_TRUE(cpu_supports(resolved_simd_level()));
}

}  // namespace
}  // namespace napel
