#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace napel {
namespace {

TEST(Stats, MeanOfKnownValues) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, MeanRejectsEmpty) {
  EXPECT_THROW(mean({}), std::invalid_argument);
}

TEST(Stats, VarianceOfConstantIsZero) {
  const std::vector<double> xs = {3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(variance(xs), 0.0);
}

TEST(Stats, VarianceOfKnownValues) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Stats, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Stats, PercentileEndpoints) {
  const std::vector<double> xs = {10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 20.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
}

TEST(Stats, PercentileRejectsOutOfRange) {
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(percentile(xs, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile(xs, 101.0), std::invalid_argument);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs = {3.0, -1.0, 2.0};
  EXPECT_DOUBLE_EQ(min_of(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 3.0);
}

TEST(Stats, GeomeanOfPowersOfTwo) {
  const std::vector<double> xs = {2.0, 8.0};
  EXPECT_NEAR(geomean(xs), 4.0, 1e-12);
}

TEST(Stats, GeomeanRejectsNonPositive) {
  const std::vector<double> xs = {1.0, 0.0};
  EXPECT_THROW(geomean(xs), std::invalid_argument);
}

TEST(Stats, MreMatchesPaperEquation) {
  // Equation 1: MRE = (1/N) Σ |y' − y| / y.
  const std::vector<double> pred = {110.0, 90.0};
  const std::vector<double> actual = {100.0, 100.0};
  EXPECT_NEAR(mean_relative_error(pred, actual), 0.10, 1e-12);
}

TEST(Stats, MrePerfectPredictionIsZero) {
  const std::vector<double> v = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean_relative_error(v, v), 0.0);
}

TEST(Stats, MreRejectsZeroActual) {
  const std::vector<double> pred = {1.0};
  const std::vector<double> actual = {0.0};
  EXPECT_THROW(mean_relative_error(pred, actual), std::invalid_argument);
}

TEST(Stats, MreRejectsSizeMismatch) {
  const std::vector<double> pred = {1.0, 2.0};
  const std::vector<double> actual = {1.0};
  EXPECT_THROW(mean_relative_error(pred, actual), std::invalid_argument);
}

TEST(Stats, RSquaredPerfectFit) {
  const std::vector<double> v = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(r_squared(v, v), 1.0);
}

TEST(Stats, RSquaredMeanPredictorIsZero) {
  const std::vector<double> actual = {1.0, 2.0, 3.0};
  const std::vector<double> pred = {2.0, 2.0, 2.0};
  EXPECT_NEAR(r_squared(pred, actual), 0.0, 1e-12);
}

TEST(Stats, RmseKnownValue) {
  const std::vector<double> pred = {0.0, 0.0};
  const std::vector<double> actual = {3.0, 4.0};
  EXPECT_NEAR(rmse(pred, actual), std::sqrt(12.5), 1e-12);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::vector<double> ys = {2.0, 4.0, 6.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Stats, PearsonPerfectAnticorrelation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::vector<double> ys = {6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantInputIsZero) {
  const std::vector<double> xs = {1.0, 1.0, 1.0};
  const std::vector<double> ys = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(OnlineStats, MatchesBatchStatistics) {
  Rng rng(5);
  std::vector<double> xs;
  OnlineStats os;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5.0, 5.0);
    xs.push_back(x);
    os.add(x);
  }
  EXPECT_EQ(os.count(), 1000u);
  EXPECT_NEAR(os.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(os.variance(), variance(xs), 1e-9);
  EXPECT_DOUBLE_EQ(os.min(), min_of(xs));
  EXPECT_DOUBLE_EQ(os.max(), max_of(xs));
}

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats os;
  EXPECT_EQ(os.count(), 0u);
  EXPECT_DOUBLE_EQ(os.mean(), 0.0);
  EXPECT_DOUBLE_EQ(os.variance(), 0.0);
  EXPECT_DOUBLE_EQ(os.sum(), 0.0);
}

class OnlineStatsMergeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OnlineStatsMergeTest, MergeEqualsSingleAccumulator) {
  const std::size_t split_at = GetParam();
  Rng rng(31 + split_at);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.normal(3.0, 7.0));

  OnlineStats whole, a, b;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    whole.add(xs[i]);
    (i < split_at ? a : b).add(xs[i]);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-7);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

INSTANTIATE_TEST_SUITE_P(Splits, OnlineStatsMergeTest,
                         ::testing::Values(0, 1, 100, 250, 499, 500));

}  // namespace
}  // namespace napel
