#include "common/journal.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>

#include "common/atomic_file.hpp"
#include "common/fault_injection.hpp"
#include "common/result.hpp"

namespace napel {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "napel_journal_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(f),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f << bytes;
}

// --- Result ---------------------------------------------------------------

TEST(Result, HoldsValueOrError) {
  Result<int> ok_result(42);
  ASSERT_TRUE(ok_result.ok());
  EXPECT_EQ(ok_result.value(), 42);

  Result<int> err_result(PipelineError{.kind = ErrorKind::kIoError,
                                       .context = "ctx",
                                       .message = "boom"});
  ASSERT_FALSE(err_result.ok());
  EXPECT_EQ(err_result.error().kind, ErrorKind::kIoError);
  EXPECT_NE(err_result.error().to_string().find("boom"), std::string::npos);
}

TEST(Result, ValueOrThrowRaisesPipelineException) {
  Result<int> err(PipelineError{.kind = ErrorKind::kWatchdogTimeout,
                                .context = "",
                                .message = "late"});
  try {
    (void)std::move(err).value_or_throw();
    FAIL() << "expected PipelineException";
  } catch (const PipelineException& e) {
    EXPECT_EQ(e.error().kind, ErrorKind::kWatchdogTimeout);
  }
}

TEST(Result, RetryabilityFollowsTheTaxonomy) {
  EXPECT_TRUE(error_kind_retryable(ErrorKind::kIoError));
  EXPECT_TRUE(error_kind_retryable(ErrorKind::kTaskFailed));
  EXPECT_TRUE(error_kind_retryable(ErrorKind::kInjectedFault));
  EXPECT_FALSE(error_kind_retryable(ErrorKind::kWatchdogTimeout));
  EXPECT_FALSE(error_kind_retryable(ErrorKind::kSimBudgetExhausted));
  EXPECT_FALSE(error_kind_retryable(ErrorKind::kCorruptArtifact));
  EXPECT_FALSE(error_kind_retryable(ErrorKind::kQuorumFailed));
}

// --- Double bit codec -----------------------------------------------------

TEST(DoubleBits, RoundTripsExactly) {
  const double values[] = {0.0,
                           -0.0,
                           1.0,
                           -1.0 / 3.0,
                           1e-308,
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::infinity(),
                           6.02214076e23};
  for (const double v : values) {
    const Result<double> back = double_bits_from_hex(double_bits_to_hex(v));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back.value()),
              std::bit_cast<std::uint64_t>(v));
  }
  // NaN: the payload must survive even though NaN != NaN.
  const double nan = std::nan("0x5ca1e");
  const Result<double> back = double_bits_from_hex(double_bits_to_hex(nan));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.value()),
            std::bit_cast<std::uint64_t>(nan));
}

TEST(DoubleBits, RejectsMalformedHex) {
  EXPECT_FALSE(double_bits_from_hex("abc").ok());
  EXPECT_FALSE(double_bits_from_hex("zzzzzzzzzzzzzzzz").ok());
}

// --- atomic_write_file ----------------------------------------------------

TEST(AtomicWrite, WritesAndReplaces) {
  const std::string path = temp_path("aw.txt");
  ASSERT_TRUE(atomic_write_file(path, "first").ok());
  EXPECT_EQ(slurp(path), "first");
  ASSERT_TRUE(atomic_write_file(path, "second").ok());
  EXPECT_EQ(slurp(path), "second");
}

TEST(AtomicWrite, CrashBeforeRenameLeavesOriginalIntact) {
  const std::string path = temp_path("aw_crash.txt");
  ASSERT_TRUE(atomic_write_file(path, "precious").ok());
  FaultPlan faults{{.site = "io/atomic_write", .at = 0,
                    .kind = FaultKind::kCrash}};
  EXPECT_THROW((void)atomic_write_file(path, "overwrite", &faults),
               InjectedCrash);
  EXPECT_EQ(slurp(path), "precious");
}

TEST(AtomicWrite, CorruptWriteFlipsAByte) {
  const std::string path = temp_path("aw_corrupt.txt");
  FaultPlan faults{{.site = "io/atomic_write", .at = 0,
                    .kind = FaultKind::kCorruptWrite}};
  ASSERT_TRUE(atomic_write_file(path, "AAAAAAAA", &faults).ok());
  EXPECT_NE(slurp(path), "AAAAAAAA");
}

// --- Journal --------------------------------------------------------------

TEST(Journal, RoundTripsRecordsWithMonotoneSeq) {
  const std::string path = temp_path("rt.journal");
  {
    Result<JournalWriter> w = JournalWriter::create(path, "meta v=1");
    ASSERT_TRUE(w.ok());
    JournalWriter writer = std::move(w).take();
    ASSERT_TRUE(writer.append("alpha", "payload-a").ok());
    ASSERT_TRUE(writer.append("beta", "payload with\nnewline").ok());
    ASSERT_TRUE(writer.append("gamma", "").ok());
    EXPECT_EQ(writer.next_seq(), 3u);
  }
  const Result<JournalContents> r = read_journal(path);
  ASSERT_TRUE(r.ok());
  const JournalContents& j = r.value();
  EXPECT_EQ(j.meta, "meta v=1");
  EXPECT_FALSE(j.torn_tail);
  ASSERT_EQ(j.records.size(), 3u);
  EXPECT_EQ(j.records[0].key, "alpha");
  EXPECT_EQ(j.records[1].payload, "payload with\nnewline");
  for (std::size_t i = 0; i < j.records.size(); ++i)
    EXPECT_EQ(j.records[i].seq, i);
}

TEST(Journal, TornTailIsDroppedAndTruncatedOnReopen) {
  const std::string path = temp_path("torn.journal");
  {
    JournalWriter writer =
        JournalWriter::create(path, "m").take();
    ASSERT_TRUE(writer.append("k0", "payload-zero").ok());
    ASSERT_TRUE(writer.append("k1", "payload-one").ok());
  }
  const std::string full = slurp(path);
  spit(path, full.substr(0, full.size() - 7));  // tear the last record

  Result<JournalContents> r = read_journal(path);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().torn_tail);
  ASSERT_EQ(r.value().records.size(), 1u);
  EXPECT_EQ(r.value().records[0].key, "k0");

  // Reopen for append: the torn tail is truncated away and sequence
  // numbering continues from the surviving prefix.
  std::vector<JournalRecord> resumed;
  Result<JournalWriter> w = JournalWriter::open_append(path, "m", resumed);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(resumed.size(), 1u);
  JournalWriter writer = std::move(w).take();
  EXPECT_EQ(writer.next_seq(), 1u);
  ASSERT_TRUE(writer.append("k1", "payload-one-again").ok());

  r = read_journal(path);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().torn_tail);
  ASSERT_EQ(r.value().records.size(), 2u);
  EXPECT_EQ(r.value().records[1].payload, "payload-one-again");
}

TEST(Journal, MidFileCorruptionIsAnErrorNotATornTail) {
  const std::string path = temp_path("midfile.journal");
  {
    JournalWriter writer =
        JournalWriter::create(path, "m").take();
    ASSERT_TRUE(writer.append("k0", "payload-zero").ok());
    ASSERT_TRUE(writer.append("k1", "payload-one").ok());
  }
  std::string bytes = slurp(path);
  const std::size_t at = bytes.find("payload-zero");
  ASSERT_NE(at, std::string::npos);
  bytes[at] ^= 0x40;  // flip one payload byte of the FIRST record
  spit(path, bytes);

  const Result<JournalContents> r = read_journal(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().kind, ErrorKind::kCorruptArtifact);
}

TEST(Journal, ChecksumCatchesACorruptedFinalRecordAsTorn) {
  const std::string path = temp_path("cksum.journal");
  {
    JournalWriter writer =
        JournalWriter::create(path, "m").take();
    ASSERT_TRUE(writer.append("k0", "payload-zero").ok());
  }
  std::string bytes = slurp(path);
  const std::size_t at = bytes.find("payload-zero");
  bytes[at] ^= 0x40;
  spit(path, bytes);

  const Result<JournalContents> r = read_journal(path);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().torn_tail);
  EXPECT_TRUE(r.value().records.empty());
}

TEST(Journal, MetaMismatchRefusesResume) {
  const std::string path = temp_path("meta.journal");
  { (void)JournalWriter::create(path, "seed=1").value(); }
  std::vector<JournalRecord> resumed;
  const Result<JournalWriter> w =
      JournalWriter::open_append(path, "seed=2", resumed);
  ASSERT_FALSE(w.ok());
  EXPECT_EQ(w.error().kind, ErrorKind::kIncompatibleJournal);
}

TEST(Journal, MissingFileIsAnIoError) {
  const Result<JournalContents> r =
      read_journal(temp_path("does_not_exist.journal"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().kind, ErrorKind::kIoError);
}

TEST(Journal, InjectedCrashTearsTheAppendAndPoisonsTheWriter) {
  const std::string path = temp_path("crash.journal");
  FaultPlan faults{{.site = "journal/append", .at = 1,
                    .kind = FaultKind::kCrash}};
  JournalWriter writer =
      JournalWriter::create(path, "m", &faults).take();
  ASSERT_TRUE(writer.append("k0", "payload-zero").ok());
  EXPECT_THROW((void)writer.append("k1", "payload-one"), InjectedCrash);

  // A dead process cannot keep writing: later appends fail without
  // touching the file.
  const std::string after_crash = slurp(path);
  const Status retry = writer.append("k1", "payload-one");
  ASSERT_FALSE(retry.ok());
  EXPECT_EQ(retry.error().kind, ErrorKind::kIoError);
  EXPECT_EQ(slurp(path), after_crash);

  // On disk: one valid record and the crash's torn debris.
  const Result<JournalContents> r = read_journal(path);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().torn_tail);
  ASSERT_EQ(r.value().records.size(), 1u);
}

TEST(Journal, CorruptWriteFaultIsDetectedByTheChecksum) {
  const std::string path = temp_path("corruptw.journal");
  FaultPlan faults{{.site = "journal/append", .at = 0,
                    .kind = FaultKind::kCorruptWrite}};
  JournalWriter writer =
      JournalWriter::create(path, "m", &faults).take();
  ASSERT_TRUE(writer.append("k0", "payload-zero").ok());

  const Result<JournalContents> r = read_journal(path);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().torn_tail);  // final record fails its checksum
  EXPECT_TRUE(r.value().records.empty());
}

TEST(FaultPlanTimes, BoundsHowManyOccurrencesFire) {
  FaultPlan faults{{.site = "s", .at = 3, .kind = FaultKind::kThrow,
                    .times = 2}};
  EXPECT_EQ(faults.fire("s", 2), nullptr);
  EXPECT_NE(faults.fire("s", 3), nullptr);
  EXPECT_NE(faults.fire("s", 3), nullptr);
  EXPECT_EQ(faults.fire("s", 3), nullptr);  // charges exhausted
}

}  // namespace
}  // namespace napel
