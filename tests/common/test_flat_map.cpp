#include "common/flat_map.hpp"

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "common/rng.hpp"

namespace napel {
namespace {

TEST(FlatMap, InsertAndFind) {
  FlatMap<int> m;
  bool inserted;
  m.insert_or_get(42, inserted) = 7;
  EXPECT_TRUE(inserted);
  ASSERT_NE(m.find(42), nullptr);
  EXPECT_EQ(*m.find(42), 7);
  EXPECT_EQ(m.find(43), nullptr);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, InsertOrGetReturnsExisting) {
  FlatMap<int> m;
  m[5] = 10;
  bool inserted;
  int& v = m.insert_or_get(5, inserted);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(v, 10);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, OperatorBracketDefaultConstructs) {
  FlatMap<int> m;
  EXPECT_EQ(m[9], 0);
  m[9] = 3;
  EXPECT_EQ(m[9], 3);
}

TEST(FlatMap, GrowsBeyondInitialCapacity) {
  FlatMap<std::uint64_t> m(/*initial_capacity_log2=*/3);  // 8 slots
  for (std::uint64_t k = 1; k <= 1000; ++k) m[k] = k * 2;
  EXPECT_EQ(m.size(), 1000u);
  for (std::uint64_t k = 1; k <= 1000; ++k) {
    ASSERT_NE(m.find(k), nullptr) << k;
    EXPECT_EQ(*m.find(k), k * 2);
  }
}

TEST(FlatMap, MatchesUnorderedMapOnRandomWorkload) {
  FlatMap<std::uint64_t> m;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t k = rng.uniform_index(5000);
    const std::uint64_t v = rng();
    m[k] = v;
    ref[k] = v;
  }
  EXPECT_EQ(m.size(), ref.size());
  for (const auto& [k, v] : ref) {
    ASSERT_NE(m.find(k), nullptr);
    EXPECT_EQ(*m.find(k), v);
  }
}

TEST(FlatMap, ClearEmptiesButKeepsCapacity) {
  FlatMap<int> m;
  for (std::uint64_t k = 0; k < 100; ++k) m[k] = 1;
  m.clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(5), nullptr);
  m[5] = 2;
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, ForEachVisitsEveryEntry) {
  FlatMap<std::uint64_t> m;
  for (std::uint64_t k = 10; k < 60; ++k) m[k] = k + 1;
  std::unordered_set<std::uint64_t> seen;
  m.for_each([&](std::uint64_t k, std::uint64_t v) {
    EXPECT_EQ(v, k + 1);
    seen.insert(k);
  });
  EXPECT_EQ(seen.size(), 50u);
}

TEST(FlatMap, HandlesAdversarialSequentialKeys) {
  // Line ids are often sequential; Fibonacci hashing must spread them.
  FlatMap<int> m(4);
  for (std::uint64_t k = 0; k < 10000; ++k) m[k * 64] = 1;
  EXPECT_EQ(m.size(), 10000u);
}

TEST(FlatMap, ZeroKeyIsValid) {
  FlatMap<int> m;
  m[0] = 99;
  ASSERT_NE(m.find(0), nullptr);
  EXPECT_EQ(*m.find(0), 99);
}

TEST(FlatSet, InsertReportsNovelty) {
  FlatSet s;
  EXPECT_TRUE(s.insert(1));
  EXPECT_FALSE(s.insert(1));
  EXPECT_TRUE(s.insert(2));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains(1));
  EXPECT_FALSE(s.contains(3));
}

TEST(FlatSet, GrowsAndClears) {
  FlatSet s(3);
  for (std::uint64_t k = 0; k < 5000; ++k) s.insert(k * 7);
  EXPECT_EQ(s.size(), 5000u);
  s.clear();
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.contains(7));
}

}  // namespace
}  // namespace napel
